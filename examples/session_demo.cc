// Session guarantees (Section V): without a session, a view read right
// after your own write can be stale; within a session, the coordinator
// blocks the read until your write's propagation completes (Definition 4).

#include <cmath>
#include <cstdio>
#include <string>

#include "store/client.h"
#include "store/cluster.h"
#include "view/maintenance_engine.h"

using namespace mvstore;  // NOLINT: example brevity

namespace {

store::Schema InventorySchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "inventory"}).ok());
  store::ViewDef view;
  view.name = "by_warehouse";
  view.base_table = "inventory";
  view.view_key_column = "warehouse";
  view.materialized_columns = {"stock"};
  MVSTORE_CHECK(schema.CreateView(view).ok());
  return schema;
}

std::string ReadStock(store::Client& client, store::ReadOptions options = {}) {
  auto records = client.QuerySync(
      store::QuerySpec::View("by_warehouse", "yyz"), options);
  MVSTORE_CHECK(records.ok());
  for (const store::ViewRecord& r : records.records) {
    if (r.base_key == "widget") {
      return r.cells.GetValue("stock").value_or("?");
    }
  }
  return "<no record>";
}

}  // namespace

int main() {
  // Slow the propagation executor down (~80 ms dispatch) so the staleness
  // window is clearly visible.
  store::ClusterConfig config;
  config.perf.propagation_dispatch_mu = std::log(80000.0);
  config.perf.propagation_dispatch_sigma = 0.0;
  config.perf.propagation_dispatch_min = Millis(80);

  store::Cluster cluster(config, InventorySchema());
  view::MaintenanceEngine views(&cluster);
  cluster.Start();
  cluster.BootstrapLoadRow("inventory", "widget",
                           {{"warehouse", std::string("yyz")},
                            {"stock", std::string("100")}},
                           100);

  std::printf("== without a session ==\n");
  auto plain = cluster.NewClient(0);
  MVSTORE_CHECK(
      plain
          ->PutSync("inventory", "widget", {{"stock", std::string("99")}},
                    store::WriteOptions{})
          .ok());
  SimTime before = cluster.Now();
  std::string stock = ReadStock(*plain);
  double elapsed_ms = ToMillis(cluster.Now() - before);
  std::printf("  wrote stock=99, immediately read back: stock=%s "
              "(read took %.2f ms)\n",
              stock.c_str(), elapsed_ms);
  std::printf("  -> the view is still propagating; the read was stale.\n");
  views.Quiesce();

  std::printf("\n== within a session (Definition 4) ==\n");
  auto session_client = cluster.NewClient(0);
  session_client->BeginSession();
  MVSTORE_CHECK(session_client
                    ->PutSync("inventory", "widget",
                              {{"stock", std::string("98")}},
                              store::WriteOptions{})
                    .ok());
  before = cluster.Now();
  // Spelled explicitly; a session-carrying read at the default level
  // upgrades to kReadYourWrites automatically.
  stock = ReadStock(
      *session_client,
      {.consistency = store::ReadConsistency::kReadYourWrites});
  elapsed_ms = ToMillis(cluster.Now() - before);
  std::printf("  wrote stock=98, immediately read back: stock=%s "
              "(read took %.2f ms)\n",
              stock.c_str(), elapsed_ms);
  std::printf(
      "  -> the coordinator deferred the read until the session's own\n"
      "     propagation finished (deferrals so far: %llu).\n",
      static_cast<unsigned long long>(
          cluster.metrics().view_get_deferrals));

  std::printf("\n== other sessions are not blocked ==\n");
  auto bystander = cluster.NewClient(0);
  bystander->BeginSession();
  MVSTORE_CHECK(session_client
                    ->PutSync("inventory", "widget",
                              {{"stock", std::string("97")}},
                              store::WriteOptions{})
                    .ok());
  before = cluster.Now();
  stock = ReadStock(*bystander);
  elapsed_ms = ToMillis(cluster.Now() - before);
  std::printf("  bystander read: stock=%s (took %.2f ms, not deferred)\n",
              stock.c_str(), elapsed_ms);
  views.Quiesce();

  std::printf("\n== bounded staleness (the freshness contract) ==\n");
  auto bounded = cluster.NewClient(0);
  MVSTORE_CHECK(
      bounded
          ->PutSync("inventory", "widget", {{"stock", std::string("96")}},
                    store::WriteOptions{})
          .ok());
  before = cluster.Now();
  // No session needed: the read names a staleness bound instead. With
  // propagation ~80 ms away and a 0.1 ms bound, the pending write blocks
  // the view and the router serves the read from the base table
  // (served_by tells you which path answered).
  auto result = bounded->QuerySync(
      store::QuerySpec::View("by_warehouse", "yyz"),
      {.consistency = store::ReadConsistency::kBoundedStaleness,
       .max_staleness = Micros(100)});
  MVSTORE_CHECK(result.ok());
  elapsed_ms = ToMillis(cluster.Now() - before);
  std::string bounded_stock = "<no record>";
  for (const store::ViewRecord& r : result.records) {
    if (r.base_key == "widget") {
      bounded_stock = r.cells.GetValue("stock").value_or("?");
    }
  }
  const char* path = result.served_by == store::ServedBy::kView ? "view"
                     : result.served_by == store::ServedBy::kSiPath
                         ? "secondary index"
                         : "base-table scan";
  std::printf(
      "  wrote stock=96, bounded read (max_staleness=0.1ms): stock=%s\n"
      "  -> served by the %s in %.2f ms; freshness claim is %.2f ms old.\n",
      bounded_stock.c_str(), path, elapsed_ms,
      ToMillis(store::kClientTimestampEpoch + cluster.Now() -
               result.freshness));
  views.Quiesce();
  return 0;
}

// Equi-join views (PNUTS-style, the extension Section III sketches): a
// marketplace joins sellers and listings by region, each side independently
// and asynchronously maintained by the ordinary Algorithm 1-3 pipeline.

#include <cstdio>

#include "store/client.h"
#include "store/cluster.h"
#include "view/join_view.h"
#include "view/maintenance_engine.h"

using namespace mvstore;  // NOLINT: example brevity

int main() {
  view::JoinViewDef market;
  market.name = "market_by_region";
  market.left_table = "seller";
  market.left_join_column = "region";
  market.left_columns = {"name", "rating"};
  market.right_table = "listing";
  market.right_join_column = "region";
  market.right_columns = {"item", "price"};

  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "seller"}).ok());
  MVSTORE_CHECK(schema.CreateTable({.name = "listing"}).ok());
  MVSTORE_CHECK(view::DeclareJoinView(schema, market).ok());

  store::Cluster cluster(store::ClusterConfig{}, std::move(schema));
  view::MaintenanceEngine views(&cluster);
  cluster.Start();

  auto client = cluster.NewClient();
  auto put = [&client](const char* table, const char* key,
                       store::Mutation mutation) {
    MVSTORE_CHECK(
        client->PutSync(table, key, mutation, store::WriteOptions{}).ok());
  };
  put("seller", "s1", {{"region", std::string("emea")},
                       {"name", std::string("Ada's Antiques")},
                       {"rating", std::string("4.9")}});
  put("seller", "s2", {{"region", std::string("apac")},
                       {"name", std::string("Babbage Books")},
                       {"rating", std::string("4.2")}});
  put("listing", "l1", {{"region", std::string("emea")},
                        {"item", std::string("astrolabe")},
                        {"price", std::string("120")}});
  put("listing", "l2", {{"region", std::string("emea")},
                        {"item", std::string("sextant")},
                        {"price", std::string("80")}});
  views.Quiesce();

  auto show = [&](const char* region) {
    auto joined = client->QuerySync(view::JoinQuerySpec(market, region),
                                    {.quorum = 3});
    MVSTORE_CHECK(joined.ok());
    std::printf("%s:\n", region);
    if (joined.joined.empty()) std::printf("  (no matches)\n");
    for (const store::JoinedPair& r : joined.joined) {
      std::printf("  %s (%s*) sells %s for %s\n",
                  r.left.cells.GetValue("name").value_or("?").c_str(),
                  r.left.cells.GetValue("rating").value_or("?").c_str(),
                  r.right.cells.GetValue("item").value_or("?").c_str(),
                  r.right.cells.GetValue("price").value_or("?").c_str());
    }
  };

  std::printf("== inner join seller x listing on region ==\n");
  show("emea");
  show("apac");  // a seller but no listings: empty inner join

  // Both join sides evolve independently; the join follows.
  std::printf("\n== listing l2 moves to apac ==\n");
  put("listing", "l2", {{"region", std::string("apac")}});
  views.Quiesce();
  show("emea");
  show("apac");
  return 0;
}

// Quickstart: spin up a simulated multi-master cluster, define a table and a
// materialized view, write through the client API, and read by secondary key.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>
#include <fstream>

#include "store/client.h"
#include "store/cluster.h"
#include "view/maintenance_engine.h"

using namespace mvstore;  // NOLINT: example brevity

int main() {
  // 1. Define the schema: a "users" table plus a materialized view keyed by
  //    the city column, materializing the plan column.
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "users"}).ok());
  store::ViewDef by_city;
  by_city.name = "users_by_city";
  by_city.base_table = "users";
  by_city.view_key_column = "city";
  by_city.materialized_columns = {"plan"};
  MVSTORE_CHECK(schema.CreateView(by_city).ok());

  // 2. Assemble a 4-server cluster (N=3 replication) with view maintenance.
  store::ClusterConfig config;  // defaults: 4 servers, N=3, R=W=1
  // Hot-path batching knobs (DESIGN.md §6). Replica-write batching is
  // Nagle-style: same-destination mutations arriving while a batch is in
  // flight ship as one network message (idle lanes send immediately);
  // propagation coalescing (on by default) merges pending same-row view
  // updates into one maintenance round.
  config.write_batch_max = 4;
  config.write_batch_delay = Micros(500);
  config.propagation_coalescing = true;
  store::Cluster cluster(config, std::move(schema));
  view::MaintenanceEngine views(&cluster);  // installs itself as the hook
  cluster.Start();

  // 3. Write some users through an ordinary client (any server coordinates).
  auto client = cluster.NewClient();
  MVSTORE_CHECK(client
                    ->PutSync("users", "u1",
                              {{"city", std::string("waterloo")},
                               {"plan", std::string("pro")}},
                              store::WriteOptions{})
                    .ok());
  MVSTORE_CHECK(client
                    ->PutSync("users", "u2",
                              {{"city", std::string("waterloo")},
                               {"plan", std::string("free")}},
                              store::WriteOptions{})
                    .ok());
  MVSTORE_CHECK(client
                    ->PutSync("users", "u3",
                              {{"city", std::string("brisbane")},
                               {"plan", std::string("pro")}},
                              store::WriteOptions{})
                    .ok());

  // 4. View maintenance is ASYNCHRONOUS (Section IV): wait for the update
  //    propagations to finish. (Interactive apps would either tolerate the
  //    staleness or use a session, see examples/session_demo.)
  views.Quiesce();

  // 5. Read by secondary key: one cheap single-partition Get instead of a
  //    cluster-wide scan.
  auto waterloo =
      client->QuerySync(
          store::QuerySpec::View("users_by_city", "waterloo"),
          store::ReadOptions{});
  MVSTORE_CHECK(waterloo.ok());
  std::printf("users in waterloo:\n");
  for (const store::ViewRecord& record : waterloo.records) {
    std::printf("  %s (plan=%s)\n", record.base_key.c_str(),
                record.cells.GetValue("plan").value_or("?").c_str());
  }

  // 6. Update a view key: u1 moves; the view follows.
  MVSTORE_CHECK(client
                    ->PutSync("users", "u1",
                              {{"city", std::string("brisbane")}},
                              store::WriteOptions{})
                    .ok());
  views.Quiesce();
  auto brisbane =
      client->QuerySync(
          store::QuerySpec::View("users_by_city", "brisbane"),
          store::ReadOptions{});
  MVSTORE_CHECK(brisbane.ok());
  std::printf("users in brisbane after the move: %zu\n",
              brisbane.records.size());

  // 7. Cluster health at a glance.
  const store::Metrics& m = cluster.metrics();
  std::printf(
      "metrics: puts=%llu view_gets=%llu propagations=%llu stale_rows=%llu\n",
      static_cast<unsigned long long>(m.client_puts),
      static_cast<unsigned long long>(m.client_view_gets),
      static_cast<unsigned long long>(m.propagations_completed),
      static_cast<unsigned long long>(m.stale_rows_created));

  // 8. Causal tracing: stitch a Put and the ViewGet that observes it into
  //    one trace via the options API, then dump the timeline as JSON. The
  //    dump shows every hop — client, coordinator, replicas, the view
  //    propagation chain — with simulated timestamps.
  Tracer& tracer = cluster.tracer();
  TraceContext root =
      tracer.StartTrace("quickstart.put_then_read", /*where=*/-1,
                        cluster.Now());
  store::WriteOptions traced_write;
  traced_write.trace = root;
  MVSTORE_CHECK(client
                    ->PutSync("users", "u4",
                              {{"city", std::string("waterloo")},
                               {"plan", std::string("pro")}},
                              traced_write)
                    .ok());
  views.Quiesce();
  store::ReadOptions traced_read;
  traced_read.trace = root;
  store::ReadResult traced =
      client->QuerySync(
          store::QuerySpec::View("users_by_city", "waterloo"), traced_read);
  MVSTORE_CHECK(traced.ok());
  tracer.EndSpan(root, cluster.Now());

  std::ofstream trace_out("TRACE_quickstart.json");
  trace_out << tracer.DumpJson(root.trace) << "\n";
  std::printf("traced put+view-get: %zu spans, connected=%s -> "
              "TRACE_quickstart.json\n",
              tracer.Collect(root.trace).size(),
              tracer.IsConnected(root.trace) ? "yes" : "NO");
  return 0;
}

// The paper's running example (Figures 1 and 2): a help-desk ticket table
// with an ASSIGNEDTO view, including the concurrent-reassignment race of
// Example 2 — printed with the versioned view's internal live/stale rows so
// you can see Definition 3 at work.

#include <cstdio>
#include <map>

#include "store/client.h"
#include "store/cluster.h"
#include "store/codec.h"
#include "view/maintenance_engine.h"
#include "view/view_row.h"

using namespace mvstore;  // NOLINT: example brevity

namespace {

// Prints the merged versioned view, stale rows included (clients never see
// those; this peeks at the replicas directly, like Figure 2 does).
void DumpVersionedView(store::Cluster& cluster) {
  std::map<Key, storage::Row> merged;
  for (int s = 0; s < cluster.num_servers(); ++s) {
    cluster.server(static_cast<ServerId>(s))
        .EngineFor("assigned_to")
        .ForEach([&merged](const Key& key, const storage::Row& row) {
          merged[key].MergeFrom(row);
        });
  }
  std::printf("  %-12s %-6s %-10s %-10s %s\n", "AssignedTo", "Ticket",
              "Status", "Next", "role");
  int anchors = 0;
  for (const auto& [key, row] : merged) {
    auto split = store::SplitViewRowKey(key);
    if (!split) continue;
    view::RowStatus status = view::ClassifyViewRow(row, split->first);
    if (!status.exists) continue;
    if (store::IsSentinelViewKey(split->first)) {
      ++anchors;  // per-family chain roots; elided for Figure 2 clarity
      continue;
    }
    const std::string next = store::IsSentinelViewKey(status.next)
                                 ? "(deleted)"
                                 : status.next;
    std::printf("  %-12s %-6s %-10s %-10s %s\n", split->first.c_str(),
                split->second.c_str(),
                row.GetValue("status").value_or("-").c_str(), next.c_str(),
                status.live ? "live" : "stale");
  }
  std::printf("  (+ %d hidden sentinel anchor rows, one per ticket)\n",
              anchors);
}

void DumpClientView(store::Client& client, const char* who) {
  auto records = client.QuerySync(
      store::QuerySpec::View("assigned_to", who), {.quorum = 3});
  MVSTORE_CHECK(records.ok());
  std::printf("  %s ->", who);
  for (const store::ViewRecord& r : records.records) {
    std::printf(" [ticket %s, %s]", r.base_key.c_str(),
                r.cells.GetValue("status").value_or("?").c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "ticket"}).ok());
  store::ViewDef view;
  view.name = "assigned_to";
  view.base_table = "ticket";
  view.view_key_column = "assignee";
  view.materialized_columns = {"status"};
  MVSTORE_CHECK(schema.CreateView(view).ok());

  store::Cluster cluster(store::ClusterConfig{}, std::move(schema));
  view::MaintenanceEngine views(&cluster);
  cluster.Start();

  // Figure 1's database.
  struct Ticket {
    const char* id;
    const char* status;
    const char* assignee;  // nullptr = unassigned
  };
  const Ticket tickets[] = {
      {"1", "open", "rliu"},    {"2", "open", "kmsalem"},
      {"3", "open", "kmsalem"}, {"4", "resolved", "rliu"},
      {"5", "open", "cjin"},    {"6", "new", nullptr},
      {"7", "resolved", "cjin"},
  };
  Timestamp ts = 100;
  for (const Ticket& t : tickets) {
    store::Mutation m;
    m["status"] = t.status;
    if (t.assignee != nullptr) m["assignee"] = t.assignee;
    cluster.BootstrapLoadRow("ticket", t.id, m, ts++);
  }

  auto client = cluster.NewClient();
  std::printf("== Figure 1: the ASSIGNEDTO view ==\n");
  for (const char* who : {"rliu", "kmsalem", "cjin"}) {
    DumpClientView(*client, who);
  }

  // Example 2: two clients concurrently reassign ticket 2. The first sets
  // rliu (smaller timestamp), the second sets cjin (larger timestamp); both
  // are in flight at once, and the propagations may land in either order.
  std::printf("\n== Example 2: concurrent reassignment of ticket 2 ==\n");
  auto client1 = cluster.NewClient(0);
  auto client2 = cluster.NewClient(1);
  const Timestamp base = store::kClientTimestampEpoch + Seconds(1);
  int done = 0;
  client1->Put("ticket", "2", {{"assignee", std::string("rliu")}},
               {.ts = base + 1}, [&done](store::WriteResult) { ++done; });
  client2->Put("ticket", "2", {{"assignee", std::string("cjin")}},
               {.ts = base + 2}, [&done](store::WriteResult) { ++done; });
  while (done < 2) cluster.simulation().Step();
  views.Quiesce();
  cluster.RunFor(Millis(100));

  std::printf("versioned view internals (compare to Figure 2):\n");
  DumpVersionedView(cluster);

  std::printf("\nwhat clients see (stale rows filtered):\n");
  for (const char* who : {"rliu", "kmsalem", "cjin"}) {
    DumpClientView(*client, who);
  }
  std::printf(
      "\nboth orders converge: ticket 2 belongs to cjin (largest timestamp),\n"
      "and the loser left only invisible stale rows chaining to the live "
      "row.\n");
  return 0;
}

// Update skew and stale chains (Section VI-D / Figure 8, in miniature):
// hammer one base row's view key, watch the versioned view grow stale rows
// and propagation retries pile up, then scrub the view to verify the
// algorithm still converged to the right answer.

#include <cstdio>

#include "store/client.h"
#include "store/cluster.h"
#include "view/maintenance_engine.h"
#include "view/scrub.h"

using namespace mvstore;  // NOLINT: example brevity

int main() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "doc"}).ok());
  store::ViewDef view;
  view.name = "by_owner";
  view.base_table = "doc";
  view.view_key_column = "owner";
  view.materialized_columns = {"title"};
  MVSTORE_CHECK(schema.CreateView(view).ok());

  store::Cluster cluster(store::ClusterConfig{}, std::move(schema));
  view::MaintenanceEngine views(&cluster);
  cluster.Start();
  cluster.BootstrapLoadRow(
      "doc", "design-doc",
      {{"owner", std::string("alice")}, {"title", std::string("MV design")}},
      100);

  // Six clients fight over the document's ownership, 8 rounds each, all in
  // flight simultaneously.
  constexpr int kClients = 6;
  constexpr int kRounds = 8;
  std::vector<std::unique_ptr<store::Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(cluster.NewClient(static_cast<ServerId>(c % 4)));
  }
  int done = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int c = 0; c < kClients; ++c) {
      const std::string owner = "user" + std::to_string(c);
      clients[static_cast<std::size_t>(c)]->Put(
          "doc", "design-doc", {{"owner", owner}}, store::WriteOptions{},
          [&done](store::WriteResult) { ++done; });
    }
  }
  while (done < kClients * kRounds) cluster.simulation().Step();
  views.Quiesce();
  cluster.RunFor(Millis(200));

  const store::Metrics& m = cluster.metrics();
  std::printf("after %d conflicting ownership changes:\n", done);
  std::printf("  propagations: %llu completed, %llu retried attempts\n",
              static_cast<unsigned long long>(m.propagations_completed),
              static_cast<unsigned long long>(m.propagation_failures));
  std::printf("  stale rows created: %llu, chain hops walked: %llu\n",
              static_cast<unsigned long long>(m.stale_rows_created),
              static_cast<unsigned long long>(m.chain_hops));
  std::printf("  lock waits: %llu\n",
              static_cast<unsigned long long>(m.lock_waits));

  auto reader = cluster.NewClient();
  for (int c = 0; c < kClients; ++c) {
    const std::string owner = "user" + std::to_string(c);
    auto records = reader->QuerySync(
        store::QuerySpec::View("by_owner", owner), {.quorum = 3});
    MVSTORE_CHECK(records.ok());
    if (!records.records.empty()) {
      std::printf("  final owner: %s\n", owner.c_str());
    }
  }

  const store::ViewDef& def = *cluster.schema().GetView("by_owner");
  view::ScrubReport report = view::CheckView(cluster, def);
  std::printf("  scrub: %s\n", report.Summary().c_str());
  MVSTORE_CHECK(report.clean()) << "versioned view must have converged";
  std::printf(
      "\nthe losers' rows remain as stale rows (invisible to reads) whose\n"
      "Next pointers all lead to the single live row - Definition 3 held\n"
      "despite %llu conflicting concurrent propagations.\n",
      static_cast<unsigned long long>(m.propagations_started));
  return 0;
}

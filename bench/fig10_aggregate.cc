// Figure 10 (extension) — Aggregate views: delta maintenance vs
// recompute-on-read.
//
// An aggregate ("orders per customer", "total qty per group") can be served
// two ways in a record store:
//
//   recompute — keep only the base table (plus the SI on the group column)
//     and fold the aggregate from the matching base rows on EVERY read. The
//     probe broadcasts to every ring member (each holds an index fragment),
//     ships the full row set to the coordinator, and re-folds work that was
//     already done the last hundred times.
//
//   mv — declare an aggregate view (ISSUE 10). Writes delta-maintain one
//     per-base-key sub-aggregate cell through the normal propagation path;
//     a read scans ONE view partition and folds the compact cells at the
//     coordinator.
//
// Both arms run the same flat scan model the paper figures are calibrated
// against (Figures 3/5), the same pre-loaded rows, the same update storm
// before measurement, and the same zipfian read mix. The bench also
// cross-checks correctness: after quiescing, the mv fold of every group
// must equal the recompute fold.
//
// CI gates speedup_rps (mv read throughput / recompute read throughput)
// against bench/baselines/BENCH_fig10_aggregate.json.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "view/aggregate.h"

namespace mvstore::bench {
namespace {

constexpr int kGroups = 8;

store::Schema AggregateSchema(int view_shards) {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "usertable"}).ok());
  auto sum = store::ViewDefBuilder("qty_per_grp")
                 .Base("usertable")
                 .Key("grp")
                 .Aggregate(store::AggregateFn::kSum, "qty")
                 .Shards(view_shards)
                 .Build();
  MVSTORE_CHECK(sum.ok()) << sum.status();
  MVSTORE_CHECK(schema.CreateView(std::move(sum).value()).ok());
  // A second view on the same key exercises the shared change-set group:
  // every qty update fans both deltas in one maintenance round.
  auto count = store::ViewDefBuilder("orders_per_grp")
                   .Base("usertable")
                   .Key("grp")
                   .Aggregate(store::AggregateFn::kCount)
                   .Shards(view_shards)
                   .Build();
  MVSTORE_CHECK(count.ok()) << count.status();
  MVSTORE_CHECK(schema.CreateView(std::move(count).value()).ok());
  return schema;
}

store::Schema RecomputeSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "usertable"}).ok());
  MVSTORE_CHECK(
      schema.CreateIndex({.table = "usertable", .column = "grp"}).ok());
  return schema;
}

std::int64_t FoldRows(const std::vector<storage::KeyedRow>& rows) {
  std::int64_t sum = 0;
  for (const storage::KeyedRow& kr : rows) {
    if (auto qty = kr.row.GetValue("qty")) {
      if (auto value = view::ParseAggregateValue(*qty)) sum += *value;
    }
  }
  return sum;
}

struct Arm {
  double rps = 0;
  double p50_us = 0;
  Histogram latency;
  std::map<std::string, std::int64_t> folds;  ///< group -> final aggregate
  std::uint64_t multi_view_groups = 0;
  std::uint64_t aggregate_folds = 0;
};

/// Loads the shared dataset and runs the shared update storm through
/// `cluster`'s client path, so both arms maintain their derived state (view
/// deltas / index updates) through the same write plan.
void LoadAndUpdate(store::Cluster& cluster, const BenchScale& scale,
                   std::uint64_t seed) {
  for (std::int64_t i = 0; i < scale.rows; ++i) {
    cluster.BootstrapLoadRow(
        "usertable", workload::FormatKey("k", static_cast<std::uint64_t>(i)),
        {{"grp", workload::FormatKey(
             "g", static_cast<std::uint64_t>(i % kGroups))},
         {"qty", std::to_string(i % 100)}},
        /*ts=*/1000 + i);
  }
  // The update storm delta-maintains the mv arm (and the recompute arm's
  // index): re-price a zipfian-hot subset, move some rows between groups.
  Rng rng(seed);
  workload::ZipfianKeyGenerator keys(
      "k", static_cast<std::uint64_t>(scale.rows), 0.99);
  auto client = cluster.NewClient();
  const std::int64_t updates = std::min<std::int64_t>(scale.rows, 2000);
  for (std::int64_t i = 0; i < updates; ++i) {
    store::Mutation mutation{
        {"qty", std::to_string(rng.UniformInt(0, 99))}};
    if (rng.Chance(0.2)) {
      mutation["grp"] = workload::FormatKey(
          "g", static_cast<std::uint64_t>(rng.UniformInt(0, kGroups - 1)));
    }
    MVSTORE_CHECK(
        client->PutSync("usertable", keys.Next(rng), mutation, {.quorum = 1})
            .ok());
  }
}

Arm MeasureMv(const BenchScale& scale, int view_shards) {
  store::ClusterConfig config = PaperConfig(/*seed=*/10100);
  store::Cluster cluster(config, AggregateSchema(view_shards));
  view::MaintenanceEngine views(&cluster);
  cluster.Start();
  LoadAndUpdate(cluster, scale, /*seed=*/10200);
  views.Quiesce();

  Rng rng(10300);
  workload::ZipfianKeyGenerator groups("g", kGroups, 0.99);
  workload::ClosedLoopRunner runner(
      &cluster, /*num_clients=*/1,
      [&rng, &groups](int, store::Client& client,
                      std::function<void(bool)> done) {
        client.Query(store::QuerySpec::View("qty_per_grp", groups.Next(rng)),
                     store::ReadOptions{},
                     [done](store::ReadResult result) {
                       done(result.ok() && result.records.size() == 1);
                     });
      });
  workload::RunResult result =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  MVSTORE_CHECK_EQ(result.failures, 0u);

  Arm arm;
  arm.rps = result.Throughput();
  arm.p50_us =
      result.latency.count() > 0 ? result.latency.Percentile(50) : 0.0;
  arm.latency = result.latency;
  arm.multi_view_groups = cluster.metrics().prop_multi_view_groups;
  arm.aggregate_folds = cluster.metrics().view_aggregate_folds;
  auto client = cluster.NewClient();
  for (int g = 0; g < kGroups; ++g) {
    const std::string group =
        workload::FormatKey("g", static_cast<std::uint64_t>(g));
    auto read = client->QuerySync(
        store::QuerySpec::View("qty_per_grp", group), {.quorum = 3});
    MVSTORE_CHECK(read.ok()) << read.status;
    MVSTORE_CHECK_EQ(read.records.size(), 1u);
    arm.folds[group] = *view::ParseAggregateValue(
        *read.records[0].cells.GetValue("sum(qty)"));
  }
  return arm;
}

Arm MeasureRecompute(const BenchScale& scale) {
  store::ClusterConfig config = PaperConfig(/*seed=*/10100);
  store::Cluster cluster(config, RecomputeSchema());
  cluster.Start();
  LoadAndUpdate(cluster, scale, /*seed=*/10200);

  Rng rng(10300);
  workload::ZipfianKeyGenerator groups("g", kGroups, 0.99);
  workload::ClosedLoopRunner runner(
      &cluster, /*num_clients=*/1,
      [&rng, &groups](int, store::Client& client,
                      std::function<void(bool)> done) {
        client.Query(
            store::QuerySpec::Index("usertable", "grp", groups.Next(rng)),
            store::ReadOptions{}, [done](store::ReadResult result) {
              // The fold happens client-side on every read — that IS the
              // recompute arm's contract.
              done(result.ok() && FoldRows(result.rows) >= 0);
            });
      });
  workload::RunResult result =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  MVSTORE_CHECK_EQ(result.failures, 0u);

  Arm arm;
  arm.rps = result.Throughput();
  arm.p50_us =
      result.latency.count() > 0 ? result.latency.Percentile(50) : 0.0;
  arm.latency = result.latency;
  auto client = cluster.NewClient();
  for (int g = 0; g < kGroups; ++g) {
    const std::string group =
        workload::FormatKey("g", static_cast<std::uint64_t>(g));
    auto read = client->QuerySync(
        store::QuerySpec::Index("usertable", "grp", group), {});
    MVSTORE_CHECK(read.ok()) << read.status;
    arm.folds[group] = FoldRows(read.rows);
  }
  return arm;
}

void Run() {
  BenchScale scale;
  const int shards = static_cast<int>(EnvInt("MV_BENCH_VIEW_SHARDS", 4));
  PrintTitle(
      "Figure 10: Aggregate Views — delta maintenance vs recompute-on-read");
  PrintNote(StrFormat(
      "rows=%lld groups=%d window=%llds view_shards=%d (1 reader, zipfian "
      "groups, shared update storm)",
      static_cast<long long>(scale.rows), kGroups,
      static_cast<long long>(scale.measure_seconds), shards));

  const Arm mv = MeasureMv(scale, shards);
  const Arm recompute = MeasureRecompute(scale);
  // Same writes, quiesced views: the delta-maintained fold must equal the
  // recomputed one for every group, or the speedup is measuring a bug.
  for (const auto& [group, want] : recompute.folds) {
    const auto it = mv.folds.find(group);
    MVSTORE_CHECK(it != mv.folds.end()) << group;
    MVSTORE_CHECK_EQ(it->second, want) << "aggregate diverged for " << group;
  }
  const double speedup = recompute.rps > 0 ? mv.rps / recompute.rps : 0.0;

  std::printf("%-12s %10s %12s\n", "arm", "req/sec", "p50(us)");
  std::printf("%-12s %10.1f %12.0f\n", "recompute", recompute.rps,
              recompute.p50_us);
  std::printf("%-12s %10.1f %12.0f\n", "mv", mv.rps, mv.p50_us);
  std::printf("speedup: %.2fx (multi-view groups: %llu)\n", speedup,
              static_cast<unsigned long long>(mv.multi_view_groups));

  BenchReport report("fig10_aggregate");
  report.Add("rows", scale.rows);
  report.Add("groups", kGroups);
  report.Add("window_seconds", scale.measure_seconds);
  report.Add("view_shards", shards);
  report.Add("recompute_rps", recompute.rps);
  report.AddHistogramUs("recompute_latency", recompute.latency);
  report.Add("mv_rps", mv.rps);
  report.AddHistogramUs("mv_latency", mv.latency);
  report.Add("mv_multi_view_groups", mv.multi_view_groups);
  report.Add("mv_aggregate_folds", mv.aggregate_folds);
  report.Add("speedup_rps", speedup);
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Figure 6 — Write throughput vs number of concurrent clients.
//
// Paper setup: like Figure 5, but 1..10 closed-loop writers, uniformly
// distributed over the records ("a best case for MV update throughput,
// because stale chains stay short").
//
// Paper result: BT highest; SI and MV lower because of maintenance work; MV
// pays both the coordinator's read-before-write and the asynchronous
// propagation traffic (GetLiveKey + view Puts on majority quorums), which
// competes with foreground writes for server capacity.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

double MeasureWriteThroughput(Scenario scenario, int clients,
                              const BenchScale& scale) {
  BenchCluster bc(scenario, scale);
  Rng rng(6000 + static_cast<std::uint64_t>(clients));
  std::uint64_t fresh = static_cast<std::uint64_t>(clients) << 32;
  workload::ClosedLoopRunner runner(
      &bc.cluster, clients,
      [&rng, &scale, &fresh](int, store::Client& client,
                             std::function<void(bool)> done) {
        const auto rank =
            static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
        IssueSkeyUpdate(client, rank, fresh++, std::move(done));
      });
  workload::RunResult result =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  MVSTORE_CHECK_EQ(result.failures, 0u);
  return result.Throughput();
}

void Run() {
  BenchScale scale;
  PrintTitle("Figure 6: Write Throughput (req/sec vs #clients)");
  PrintNote(StrFormat(
      "rows=%lld window=%llds per point, uniform keys (paper: 1M rows, 300s)",
      static_cast<long long>(scale.rows),
      static_cast<long long>(scale.measure_seconds)));
  std::printf("%-8s %10s %10s %10s\n", "clients", "BT", "SI", "MV");
  BenchReport report("fig6_write_throughput");
  report.Add("rows", scale.rows);
  report.Add("window_seconds", scale.measure_seconds);
  const store::ClusterConfig config = PaperConfig();
  report.Add("write_batch_max", config.write_batch_max);
  report.Add("propagation_coalescing",
             config.propagation_coalescing ? 1 : 0);
  for (int clients = 1; clients <= 10; ++clients) {
    const double bt =
        MeasureWriteThroughput(Scenario::kBaseTable, clients, scale);
    const double si =
        MeasureWriteThroughput(Scenario::kSecondaryIndex, clients, scale);
    const double mv =
        MeasureWriteThroughput(Scenario::kMaterializedView, clients, scale);
    std::printf("%-8d %10.0f %10.0f %10.0f\n", clients, bt, si, mv);
    const std::string prefix = "clients" + std::to_string(clients);
    report.Add(prefix + "_BT_rps", bt);
    report.Add(prefix + "_SI_rps", si);
    report.Add(prefix + "_MV_rps", mv);
  }
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

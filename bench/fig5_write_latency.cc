// Figure 5 — Write latency.
//
// Paper setup: a single client updating the secondary-key column of randomly
// chosen records by primary key, under BT (no index/view), SI (native index
// on the column), and MV (view keyed by the column).
//
// Paper result: BT ~= SI (native indexes update locally and synchronously);
// MV ~2.5x higher, because the coordinator must read the old view key before
// writing (Algorithm 1 line 2 — the paper's prototype issues it as a
// separate Get; see ablation_combined_getput for the fused variant).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

struct Result {
  double mean_ms;
  double p99_ms;
};

Result MeasureWriteLatency(Scenario scenario, const BenchScale& scale) {
  BenchCluster bc(scenario, scale);
  auto client = bc.cluster.NewClient(0);
  Rng rng(5678);

  Histogram latency;
  std::int64_t remaining = scale.latency_reads;  // reuse the request budget
  std::uint64_t fresh = 0;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    const auto rank =
        static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
    const SimTime start = bc.cluster.Now();
    IssueSkeyUpdate(*client, rank, fresh++, [&, start](bool ok) {
      MVSTORE_CHECK(ok);
      latency.Record(bc.cluster.Now() - start);
      next();
    });
  };
  next();
  while (latency.count() < static_cast<std::uint64_t>(scale.latency_reads)) {
    MVSTORE_CHECK(bc.cluster.simulation().Step());
  }
  return Result{latency.Mean() / 1000.0, latency.Percentile(99) / 1000.0};
}

void Run() {
  BenchScale scale;
  PrintTitle("Figure 5: Write Latency (single client, mean ms)");
  PrintNote(StrFormat("rows=%lld requests=%lld (paper: 1M rows, 100k reqs)",
                      static_cast<long long>(scale.rows),
                      static_cast<long long>(scale.latency_reads)));
  std::printf("%-4s %12s %12s\n", "", "mean(ms)", "p99(ms)");
  BenchReport report("fig5_write_latency");
  report.Add("rows", scale.rows);
  report.Add("requests", scale.latency_reads);
  double bt = 0;
  double mv = 0;
  for (Scenario s : {Scenario::kBaseTable, Scenario::kSecondaryIndex,
                     Scenario::kMaterializedView}) {
    Result r = MeasureWriteLatency(s, scale);
    if (s == Scenario::kBaseTable) bt = r.mean_ms;
    if (s == Scenario::kMaterializedView) mv = r.mean_ms;
    std::printf("%-4s %12.3f %12.3f\n", ScenarioName(s), r.mean_ms, r.p99_ms);
    report.Add(std::string(ScenarioName(s)) + "_mean_ms", r.mean_ms);
    report.Add(std::string(ScenarioName(s)) + "_p99_ms", r.p99_ms);
  }
  PrintNote(StrFormat("MV/BT latency ratio: %.2fx (paper: ~2.5x)", mv / bt));
  report.Add("mv_over_bt_ratio", mv / bt);
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Chaos bench — membership churn: elastic joins and decommissions under a
// live read/write workload, optionally mixed with crash/restart cycles.
//
// A seeded schedule bootstraps spare server slots into the ring (kJoin) and
// decommissions baseline servers out of it (kLeave) while closed-loop
// clients keep reading the view and updating base rows. Every acknowledged
// write is tracked (base key -> max acked timestamp); after the nemesis
// heals and the cluster quiesces the bench gates on:
//
//   1. every join and leave that started also completed, and no
//      decommission had to force-abandon its hint drain,
//   2. zero lost acked writes — each tracked base key still exposes cells
//      at least as new as its newest acknowledged Put,
//   3. hints_outstanding == 0 on every server (drains really drained),
//   4. the view converges to the Definition-1 recomputation.
//
// Exit status is non-zero when any gate fails, so CI can run this binary
// directly as the membership-churn convergence gate.
//
//   MV_BENCH_CHURN_SECONDS  fault-window length        (default 12)
//   MV_BENCH_CHURN_SEED     schedule seed              (default 1)
//   MV_BENCH_CHURN_CYCLES   join+leave churn cycles    (default 2)
//   MV_BENCH_CHURN_CRASHES  crash/restart cycles       (default 1)
//   MV_BENCH_CHURN_HOT_KEYS update key range           (default 256)

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "sim/nemesis.h"
#include "view/scrub.h"
#include "workload/key_generator.h"

namespace mvstore::bench {
namespace {

/// Closed-loop churn workload state. Unlike workload::ClosedLoopRunner this
/// loop re-attaches a client whose coordinator left the ring (a real driver
/// would re-resolve the contact list), and records the max acked write
/// timestamp per base key for the lost-write audit.
struct ChurnState {
  store::Cluster* cluster = nullptr;
  SimTime window_end = 0;
  bool stopped = false;
  std::vector<std::unique_ptr<store::Client>> clients;
  Rng rng{1};
  std::uint64_t rows = 0;
  std::uint64_t hot = 0;
  std::uint64_t fresh = 0;
  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  std::uint64_t reattaches = 0;
  std::map<Key, Timestamp> acked;  ///< base key -> max acknowledged Put ts
};

void Issue(const std::shared_ptr<ChurnState>& st, int index);

void OnDone(const std::shared_ptr<ChurnState>& st, int index, bool ok) {
  ++st->ops;
  if (!ok) ++st->failures;
  if (st->stopped || st->cluster->simulation().Now() >= st->window_end) return;
  st->cluster->simulation().After(Millis(10),
                                  [st, index] { Issue(st, index); });
}

void Issue(const std::shared_ptr<ChurnState>& st, int index) {
  if (st->stopped) return;
  auto& slot = st->clients[static_cast<std::size_t>(index)];
  // Re-attach when the coordinator has been decommissioned (or is mid-drain
  // and rejects new coordination): pick the nearest serving member.
  const ServerId coord = slot->coordinator();
  if (st->cluster->server(coord).membership() !=
      store::MembershipState::kServing) {
    slot = st->cluster->NewClient(st->cluster->PickServingServer(coord));
    slot->set_request_timeout(Millis(250));
    ++st->reattaches;
  }
  store::Client& client = *slot;
  if (client.request_timeout() == 0) client.set_request_timeout(Millis(250));

  if (st->rng.Chance(0.5)) {
    const auto rank =
        static_cast<std::uint64_t>(st->rng.UniformInt(0, st->rows - 1));
    IssueRead(Scenario::kMaterializedView, client, rank,
              [st, index](bool ok) { OnDone(st, index, ok); });
  } else {
    const auto rank =
        static_cast<std::uint64_t>(st->rng.UniformInt(0, st->hot - 1));
    const Key key = workload::FormatKey("k", rank);
    client.Put(
        "usertable", key,
        {{"skey", workload::FormatKey("x", st->rows + st->fresh++, 12)},
         {"field0", std::string("churn-") + std::to_string(st->fresh)}},
        store::WriteOptions{}, [st, index, key](store::WriteResult result) {
          if (result.ok()) {
            Timestamp& seen = st->acked[key];
            seen = std::max(seen, result.ts);
          }
          OnDone(st, index, result.ok());
        });
  }
}

int Run() {
  BenchScale scale;
  const auto seconds = EnvInt("MV_BENCH_CHURN_SECONDS", 12);
  const auto seed =
      static_cast<std::uint64_t>(EnvInt("MV_BENCH_CHURN_SEED", 1));
  const auto cycles = static_cast<int>(EnvInt("MV_BENCH_CHURN_CYCLES", 2));
  const auto crashes = static_cast<int>(EnvInt("MV_BENCH_CHURN_CRASHES", 1));
  const auto hot_keys =
      static_cast<std::uint64_t>(EnvInt("MV_BENCH_CHURN_HOT_KEYS", 256));

  store::ClusterConfig config = PaperConfig(seed);
  config.rpc_timeout = Millis(100);
  config.lock_lease_ttl = Millis(500);
  config.anti_entropy_interval = Millis(500);
  // Leave-orphaned propagations are recovered by the periodic owned-range
  // scrub of the new primaries; churn runs need it on.
  config.view_scrub_interval = Millis(500);
  config.hint_replay_interval = Millis(500);
  // One spare slot per churn cycle so every kJoin can bootstrap a fresh
  // server (decommissioned slots never rejoin in this bench).
  config.max_servers = config.num_servers + cycles;
  BenchCluster bc(Scenario::kMaterializedView, scale, config);

  sim::Nemesis nemesis(
      &bc.cluster.simulation(), &bc.cluster.network(),
      [&bc](sim::EndpointId s) { bc.cluster.CrashServer(s); },
      [&bc](sim::EndpointId s) { bc.cluster.RestartServer(s); });
  nemesis.SetMembershipCallbacks(
      [&bc] { bc.cluster.JoinServer(); },
      [&bc](sim::EndpointId s) { bc.cluster.DecommissionServer(s); });
  sim::NemesisOptions options;
  options.horizon = Seconds(seconds);
  options.num_servers = config.num_servers;  // churn targets baseline slots
  options.membership_churn = cycles;
  options.min_churn_gap = Seconds(1);
  options.max_churn_gap = Seconds(3);
  options.crashes = crashes;
  options.min_downtime = Millis(300);
  options.max_downtime = Seconds(1);
  options.partitions = 1;
  options.min_partition = Millis(200);
  options.max_partition = Millis(800);
  options.drop_surges = 1;
  options.latency_spikes = 1;
  const sim::FaultSchedule schedule =
      sim::GenerateRandomSchedule(Rng(seed), options);
  nemesis.Schedule(schedule);
  nemesis.HealAllAt(options.horizon);

  PrintTitle("Chaos: membership churn over the MV scenario");
  PrintNote(StrFormat(
      "seed=%llu, horizon=%llds, %d churn cycles, %d crash cycles, "
      "%zu scheduled events",
      static_cast<unsigned long long>(seed), static_cast<long long>(seconds),
      cycles, crashes, schedule.size()));
  for (const sim::FaultEvent& event : schedule) {
    PrintNote("  " + event.ToString());
  }

  auto st = std::make_shared<ChurnState>();
  st->cluster = &bc.cluster;
  st->window_end = bc.cluster.simulation().Now() + options.horizon;
  st->rng = Rng(seed * 101);
  st->rows = static_cast<std::uint64_t>(scale.rows);
  st->hot = std::min(hot_keys, st->rows);
  const int num_clients = 8;
  for (int i = 0; i < num_clients; ++i) {
    st->clients.push_back(bc.cluster.NewClient(bc.cluster.PickServingServer(
        static_cast<ServerId>(i % bc.cluster.num_servers()))));
    st->clients.back()->set_request_timeout(Millis(250));
  }
  for (int i = 0; i < num_clients; ++i) Issue(st, i);

  bc.cluster.simulation().RunUntil(st->window_end);
  st->stopped = true;
  bc.cluster.RunFor(Millis(50));

  std::printf("\nfault window: %llu ops, %llu failed/timed out, "
              "%llu client re-attaches\n",
              static_cast<unsigned long long>(st->ops),
              static_cast<unsigned long long>(st->failures),
              static_cast<unsigned long long>(st->reattaches));

  // Heal happened at the horizon. Let in-flight joins/decommissions finish
  // (a leave interrupted by a crash resumes on restart, so this converges),
  // then drain propagations and give anti-entropy + scrub their window.
  const store::Metrics& m = bc.cluster.metrics();
  for (int i = 0; i < 30 && (m.member_joins_completed < m.member_joins_started ||
                             m.member_leaves_completed < m.member_leaves_started);
       ++i) {
    bc.cluster.RunFor(Seconds(1));
  }
  bc.views->Quiesce();
  bc.cluster.RunFor(Seconds(3));

  std::printf("\nmembership counters:\n");
  std::printf("  %-34s %10llu\n  %-34s %10llu\n  %-34s %10llu\n"
              "  %-34s %10llu\n  %-34s %10llu\n  %-34s %10llu\n"
              "  %-34s %10llu\n  %-34s %10llu\n",
              "joins started",
              static_cast<unsigned long long>(m.member_joins_started),
              "joins completed",
              static_cast<unsigned long long>(m.member_joins_completed),
              "leaves started",
              static_cast<unsigned long long>(m.member_leaves_started),
              "leaves completed",
              static_cast<unsigned long long>(m.member_leaves_completed),
              "ranges streamed",
              static_cast<unsigned long long>(m.member_ranges_streamed),
              "rows streamed",
              static_cast<unsigned long long>(m.member_rows_streamed),
              "hints rerouted",
              static_cast<unsigned long long>(m.member_hints_rerouted),
              "in-flight ops retargeted",
              static_cast<unsigned long long>(m.member_ops_retargeted));
  std::printf("\nfault counters:\n");
  PrintFaultCounters(m);

  // Gate 1: membership operations ran to completion, drains were natural.
  const bool membership_settled =
      m.member_joins_completed == m.member_joins_started &&
      m.member_leaves_completed == m.member_leaves_started &&
      m.member_drains_forced == 0;

  // Gate 3: no server is still sitting on hinted handoffs.
  std::size_t hints_left = 0;
  for (int i = 0; i < bc.cluster.num_servers(); ++i) {
    hints_left += bc.cluster.server(static_cast<ServerId>(i))
                      .hints_outstanding();
  }

  // Gate 2: every acked write survived the churn. Read each tracked base
  // key at R = replication factor (merges all live replicas); both written
  // columns must expose cells at least as new as the newest acked Put.
  auto auditor = bc.cluster.NewClient(bc.cluster.PickServingServer(0));
  std::uint64_t lost_acked_writes = 0;
  store::ReadOptions audit_options;
  audit_options.quorum = config.replication_factor;
  audit_options.columns = {"skey", "field0"};
  for (const auto& [key, ts] : st->acked) {
    const store::ReadResult result =
        auditor->GetSync("usertable", key, audit_options);
    if (!result.ok()) {
      ++lost_acked_writes;
      continue;
    }
    const auto skey = result.row.Get("skey");
    const auto field0 = result.row.Get("field0");
    if (!skey.has_value() || skey->ts < ts || !field0.has_value() ||
        field0->ts < ts) {
      ++lost_acked_writes;
    }
  }

  // Gate 4: Definition-1 convergence of the view.
  const store::ViewDef& view = *bc.cluster.schema().GetView("by_skey");
  auto expected = view::ComputeExpectedView(bc.cluster, view);
  auto exposed = view::ReadConvergedView(bc.cluster, view);
  std::size_t value_mismatches = 0;
  if (expected.size() == exposed.size()) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (expected[i].view_key != exposed[i].view_key ||
          expected[i].base_key != exposed[i].base_key ||
          expected[i].cells.GetValue("field0") !=
              exposed[i].cells.GetValue("field0")) {
        ++value_mismatches;
      }
    }
  }
  const bool converged =
      expected.size() == exposed.size() && value_mismatches == 0;

  const bool ok = membership_settled && hints_left == 0 &&
                  lost_acked_writes == 0 && converged;
  std::printf("\nchurn gate: %s (membership %s, %zu hints outstanding, "
              "%llu lost acked writes of %zu tracked keys, view %s: "
              "%zu expected / %zu exposed / %zu mismatches)\n",
              ok ? "PASS" : "FAIL",
              membership_settled ? "settled" : "UNSETTLED", hints_left,
              static_cast<unsigned long long>(lost_acked_writes),
              st->acked.size(), converged ? "CONVERGED" : "DIVERGED",
              expected.size(), exposed.size(), value_mismatches);

  BenchReport report("chaos_churn");
  report.Add("seed", seed);
  report.Add("horizon_seconds", seconds);
  report.Add("churn_cycles", cycles);
  report.Add("crash_cycles", crashes);
  report.Add("ops", st->ops);
  report.Add("ops_failed", st->failures);
  report.Add("client_reattaches", st->reattaches);
  report.Add("tracked_keys", static_cast<std::uint64_t>(st->acked.size()));
  report.Add("lost_acked_writes", lost_acked_writes);
  report.Add("hints_outstanding", static_cast<std::uint64_t>(hints_left));
  report.Add("membership_settled", membership_settled ? "settled"
                                                      : "unsettled");
  report.Add("converged", converged ? "converged" : "diverged");
  report.Add("expected_records", static_cast<std::uint64_t>(expected.size()));
  report.Add("exposed_records", static_cast<std::uint64_t>(exposed.size()));
  report.Add("value_mismatches",
             static_cast<std::uint64_t>(value_mismatches));
  report.Add("joins_started", static_cast<std::uint64_t>(m.member_joins_started));
  report.Add("joins_completed",
             static_cast<std::uint64_t>(m.member_joins_completed));
  report.Add("leaves_started",
             static_cast<std::uint64_t>(m.member_leaves_started));
  report.Add("leaves_completed",
             static_cast<std::uint64_t>(m.member_leaves_completed));
  report.Add("ranges_streamed",
             static_cast<std::uint64_t>(m.member_ranges_streamed));
  report.Add("rows_streamed",
             static_cast<std::uint64_t>(m.member_rows_streamed));
  report.Add("stream_retries",
             static_cast<std::uint64_t>(m.member_stream_retries));
  report.Add("hints_rerouted",
             static_cast<std::uint64_t>(m.member_hints_rerouted));
  report.Add("ops_retargeted",
             static_cast<std::uint64_t>(m.member_ops_retargeted));
  report.Add("drains_forced",
             static_cast<std::uint64_t>(m.member_drains_forced));
  report.AddRaw("metrics", m.ToJson());
  report.Write();

  return ok ? 0 : 1;
}

}  // namespace
}  // namespace mvstore::bench

int main() { return mvstore::bench::Run(); }

// Chaos bench — availability and convergence under the crash-stop nemesis.
//
// A seeded fault schedule (crash/restart cycles, partitions, drop surges,
// latency spikes) runs against the MV scenario while closed-loop clients
// keep reading and writing with a request deadline. Reported: foreground
// throughput and failure rate during the fault window, the fault-model
// counters, and whether the view converges to the Definition-1
// recomputation after the nemesis heals and the cluster quiesces.
//
//   MV_BENCH_CHAOS_SECONDS   fault-window length  (default 10)
//   MV_BENCH_CHAOS_SEED      nemesis seed         (default 1)
//   MV_BENCH_CHAOS_CRASHES   crash/restart cycles (default 6)
//   MV_BENCH_CHAOS_HOT_KEYS  update key range     (default 256; reads stay
//                            uniform — skewed writes collide on base rows,
//                            exercising propagation coalescing under faults;
//                            very narrow ranges inflate unsynchronized-mode
//                            retry storms and run much longer)

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "sim/nemesis.h"
#include "view/scrub.h"

namespace mvstore::bench {
namespace {

void Run() {
  BenchScale scale;
  const auto seconds = EnvInt("MV_BENCH_CHAOS_SECONDS", 10);
  const auto seed = static_cast<std::uint64_t>(EnvInt("MV_BENCH_CHAOS_SEED", 1));
  const auto crashes = static_cast<int>(EnvInt("MV_BENCH_CHAOS_CRASHES", 6));
  const auto hot_keys =
      static_cast<std::uint64_t>(EnvInt("MV_BENCH_CHAOS_HOT_KEYS", 256));

  store::ClusterConfig config = PaperConfig();
  config.rpc_timeout = Millis(100);
  config.lock_lease_ttl = Millis(500);
  config.view_scrub_interval = Millis(500);
  config.anti_entropy_interval = Millis(500);
  BenchCluster bc(Scenario::kMaterializedView, scale, config);

  sim::Nemesis nemesis(
      &bc.cluster.simulation(), &bc.cluster.network(),
      [&bc](sim::EndpointId s) { bc.cluster.CrashServer(s); },
      [&bc](sim::EndpointId s) { bc.cluster.RestartServer(s); });
  sim::NemesisOptions options;
  options.horizon = Seconds(seconds);
  options.num_servers = bc.cluster.num_servers();
  options.crashes = crashes;
  options.min_downtime = Millis(300);
  options.max_downtime = Seconds(2);
  options.partitions = 3;
  options.drop_surges = 2;
  options.latency_spikes = 2;
  const sim::FaultSchedule schedule =
      sim::GenerateRandomSchedule(Rng(seed), options);
  nemesis.Schedule(schedule);
  nemesis.HealAllAt(options.horizon);

  Rng rng(seed * 101);
  const auto rows = static_cast<std::uint64_t>(scale.rows);
  std::uint64_t fresh = 0;
  const std::uint64_t hot = std::min(hot_keys, rows);
  workload::ClosedLoopRunner runner(
      &bc.cluster, /*num_clients=*/8,
      [&rng, rows, hot, &fresh](int, store::Client& client,
                                std::function<void(bool)> done) {
        if (client.request_timeout() == 0) {
          client.set_request_timeout(Millis(250));
        }
        if (rng.Chance(0.5)) {
          const auto rank =
              static_cast<std::uint64_t>(rng.UniformInt(0, rows - 1));
          IssueRead(Scenario::kMaterializedView, client, rank,
                    std::move(done));
        } else {
          const auto rank =
              static_cast<std::uint64_t>(rng.UniformInt(0, hot - 1));
          IssueSkeyUpdate(client, rank, rows + fresh++, std::move(done));
        }
      });
  runner.set_think_time(Millis(10));

  PrintTitle("Chaos: crash-stop nemesis over the MV scenario");
  PrintNote(StrFormat(
      "seed=%llu, horizon=%llds, %d crash cycles, %zu scheduled events",
      static_cast<unsigned long long>(seed), static_cast<long long>(seconds),
      crashes, schedule.size()));
  for (const sim::FaultEvent& event : schedule) {
    PrintNote("  " + event.ToString());
  }

  workload::RunResult run = runner.Run(Millis(500), options.horizon);
  std::printf("\nfault window: %.0f req/sec, %llu ok, %llu failed/timed out\n",
              run.Throughput(),
              static_cast<unsigned long long>(run.operations - run.failures),
              static_cast<unsigned long long>(run.failures));

  // Heal happened at the horizon; drain and give recovery its window.
  bc.views->Quiesce();
  bc.cluster.RunFor(Seconds(3));

  std::printf("\nfault counters:\n");
  PrintFaultCounters(bc.cluster.metrics());
  std::printf("  %-34s %10llu\n  %-34s %10llu\n  %-34s %10llu\n",
              "propagations coalesced",
              static_cast<unsigned long long>(
                  bc.cluster.metrics().prop_batched),
              "replica-write batches",
              static_cast<unsigned long long>(
                  bc.cluster.metrics().replica_write_batches),
              "coordinator retries",
              static_cast<unsigned long long>(
                  bc.cluster.metrics().coordinator_retries));

  const store::ViewDef& view = *bc.cluster.schema().GetView("by_skey");
  auto expected = view::ComputeExpectedView(bc.cluster, view);
  auto exposed = view::ReadConvergedView(bc.cluster, view);
  std::size_t value_mismatches = 0;
  if (expected.size() == exposed.size()) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (expected[i].view_key != exposed[i].view_key ||
          expected[i].base_key != exposed[i].base_key ||
          expected[i].cells.GetValue("field0") !=
              exposed[i].cells.GetValue("field0")) {
        ++value_mismatches;
      }
    }
  }
  const bool converged =
      expected.size() == exposed.size() && value_mismatches == 0;
  std::printf("\nconvergence after heal: %s (%zu expected records, %zu "
              "exposed, %zu value mismatches)\n",
              converged ? "CONVERGED" : "DIVERGED", expected.size(),
              exposed.size(), value_mismatches);

  const store::Metrics& m = bc.cluster.metrics();
  BenchReport report("chaos_nemesis");
  report.Add("seed", seed);
  report.Add("horizon_seconds", seconds);
  report.Add("crash_cycles", crashes);
  report.Add("hot_keys", static_cast<std::uint64_t>(hot));
  report.Add("rps", run.Throughput());
  report.Add("ops_ok", run.operations - run.failures);
  report.Add("ops_failed", run.failures);
  report.Add("converged", converged ? "converged" : "diverged");
  report.Add("expected_records", static_cast<std::uint64_t>(expected.size()));
  report.Add("exposed_records", static_cast<std::uint64_t>(exposed.size()));
  report.Add("value_mismatches",
             static_cast<std::uint64_t>(value_mismatches));
  report.Add("server_crashes", static_cast<std::uint64_t>(m.server_crashes));
  report.Add("server_restarts", static_cast<std::uint64_t>(m.server_restarts));
  report.Add("wal_cells_replayed",
             static_cast<std::uint64_t>(m.wal_cells_replayed));
  report.Add("propagations_orphaned",
             static_cast<std::uint64_t>(m.propagations_orphaned));
  report.Add("prop_batched", static_cast<std::uint64_t>(m.prop_batched));
  report.Add("replica_write_batches",
             static_cast<std::uint64_t>(m.replica_write_batches));
  report.Add("coordinator_retries",
             static_cast<std::uint64_t>(m.coordinator_retries));
  report.AddRaw("metrics", m.ToJson());
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

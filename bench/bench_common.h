// Shared infrastructure for the figure-reproduction benches.
//
// Each bench binary rebuilds one of the paper's experiments (Section VI) on
// the simulated cluster: 4 servers, N=3, R=W=1 (Cassandra defaults), a
// uniformly keyed base table with a unique secondary-key column, and one of
// three access-path scenarios:
//
//   BT — plain base table (primary-key access only)
//   SI — native secondary index on the secondary-key column
//   MV — materialized view keyed by the secondary-key column
//
// Scale is controlled by environment variables so the full paper-scale run
// is possible but the default stays laptop-quick:
//   MV_BENCH_ROWS             table size          (default 20000; paper 1M)
//   MV_BENCH_MEASURE_SECONDS  measurement window  (default 10; paper 300)
//   MV_BENCH_READS            fixed-count latency reads (default 2000;
//                             paper 100k)
//   MV_BENCH_WRITE_BATCH      write-path batching: 0/1 disables replica-
//                             write batching AND propagation coalescing;
//                             N>1 sets write_batch_max=N with coalescing on;
//                             unset keeps the ClusterConfig defaults
//   MV_BENCH_ROW_CACHE        replica-local row cache: 0 disables it (the
//                             exact pre-cache read path, for before/after
//                             runs); N>0 sets row_cache_entries=N; unset
//                             uses the bench default (65536 — large enough
//                             to keep every bootstrap-loaded replica hot)
//   MV_BENCH_VIEW_SHARDS      sub-shards per view key for the MV scenario
//                             (default 1 = classic layout; >1 spreads each
//                             view key over that many ring partitions and
//                             ViewGets scatter-gather, see DESIGN.md §12)

#ifndef MVSTORE_BENCH_BENCH_COMMON_H_
#define MVSTORE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/json_writer.h"
#include "common/str_util.h"
#include "store/client.h"
#include "store/cluster.h"
#include "store/config.h"
#include "store/schema.h"
#include "view/maintenance_engine.h"
#include "workload/key_generator.h"
#include "workload/runner.h"

namespace mvstore::bench {

enum class Scenario { kBaseTable, kSecondaryIndex, kMaterializedView };

inline const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kBaseTable:
      return "BT";
    case Scenario::kSecondaryIndex:
      return "SI";
    case Scenario::kMaterializedView:
      return "MV";
  }
  return "?";
}

inline std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

struct BenchScale {
  std::int64_t rows = EnvInt("MV_BENCH_ROWS", 20000);
  std::int64_t measure_seconds = EnvInt("MV_BENCH_MEASURE_SECONDS", 10);
  std::int64_t latency_reads = EnvInt("MV_BENCH_READS", 2000);
};

/// The PerfModel calibrated against the paper's testbed (DESIGN.md §4):
/// dual-core servers on a 1 GbE LAN; constants tuned so BT read latency and
/// the BT:SI:MV ratios land near Figures 3 and 5.
inline store::ClusterConfig PaperConfig(std::uint64_t seed = 42) {
  store::ClusterConfig config;
  config.num_servers = 4;
  config.replication_factor = 3;
  config.cores_per_server = 2;
  config.default_read_quorum = 1;
  config.default_write_quorum = 1;
  config.seed = seed;
  config.network.base_latency = Micros(100);
  config.network.jitter_mean = Micros(55);
  config.perf.read_local = Micros(60);
  config.perf.write_local = Micros(50);
  config.perf.coordinator_op = Micros(15);
  config.perf.index_update_local = Micros(20);
  config.perf.index_scan_local = Micros(950);
  config.perf.view_scan_local = Micros(90);
  // The paper's measured prototype propagated without concurrency control
  // (Section IV-F's lock service / dedicated propagators are proposals;
  // bench/ablation_propagation_mode compares all three).
  config.propagation_mode = store::PropagationMode::kUnsynchronized;
  // Hot-path batching toggle for before/after comparisons (CI runs the
  // fig6 smoke with this at 0 and at 4 and requires on >= off).
  const std::int64_t batch = EnvInt("MV_BENCH_WRITE_BATCH", -1);
  if (batch == 0 || batch == 1) {
    config.write_batch_max = 1;
    config.propagation_coalescing = false;
  } else if (batch > 1) {
    config.write_batch_max = static_cast<int>(batch);
    config.write_batch_delay = Micros(500);
    config.propagation_coalescing = true;
  }
  // Replica-local row cache (ISSUE 5). On by default for benches — real
  // deployments read hot rows from memory — with 0 restoring the exact
  // pre-cache path for before/after comparisons (CI diffs the two).
  const std::int64_t cache = EnvInt("MV_BENCH_ROW_CACHE", -1);
  if (cache == 0) {
    config.row_cache_entries = 0;
  } else if (cache > 0) {
    config.row_cache_entries = static_cast<std::size_t>(cache);
  } else {
    config.row_cache_entries = 65536;
  }
  // Sub-shards per view key (ISSUE 9); BenchSchema builds "by_skey" with
  // this count.
  config.view_shard_count =
      static_cast<int>(EnvInt("MV_BENCH_VIEW_SHARDS", 1));
  return config;
}

/// Schema: "usertable" keyed by primary key, with the secondary-key column
/// "skey" (values unique across rows, as in Section VI-A) and a payload
/// column "field0". The scenario decides whether an index or a view exists
/// on skey.
inline store::Schema BenchSchema(Scenario scenario, int view_shards = 1) {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "usertable"}).ok());
  if (scenario == Scenario::kSecondaryIndex) {
    MVSTORE_CHECK(
        schema.CreateIndex({.table = "usertable", .column = "skey"}).ok());
  }
  if (scenario == Scenario::kMaterializedView) {
    auto view = store::ViewDefBuilder("by_skey")
                    .Base("usertable")
                    .Key("skey")
                    .Materialize("field0")
                    .Shards(view_shards)
                    .Build();
    MVSTORE_CHECK(view.ok()) << view.status();
    MVSTORE_CHECK(schema.CreateView(std::move(view).value()).ok());
  }
  return schema;
}

/// A cluster plus view engine for one scenario, loaded with `rows` records:
/// primary key k<i>, skey s<i> (unique), payload field0.
struct BenchCluster {
  BenchCluster(Scenario scenario, const BenchScale& scale,
               store::ClusterConfig config = PaperConfig())
      : scenario(scenario),
        cluster(config, BenchSchema(scenario, config.view_shard_count)),
        views(std::make_unique<view::MaintenanceEngine>(&cluster)) {
    cluster.Start();
    for (std::int64_t i = 0; i < scale.rows; ++i) {
      cluster.BootstrapLoadRow(
          "usertable", workload::FormatKey("k", static_cast<std::uint64_t>(i)),
          {{"skey", workload::FormatKey("s", static_cast<std::uint64_t>(i))},
           {"field0", std::string("payload-") + std::to_string(i)}},
          /*ts=*/1000 + i);
    }
  }

  Scenario scenario;
  store::Cluster cluster;
  std::unique_ptr<view::MaintenanceEngine> views;
};

/// One secondary- or primary-key read, per scenario. `done(ok)` fires on
/// completion. `rank` selects the record.
inline void IssueRead(Scenario scenario, store::Client& client,
                      std::uint64_t rank, std::function<void(bool)> done) {
  switch (scenario) {
    case Scenario::kBaseTable: {
      store::ReadOptions options;
      options.columns = {"field0"};
      client.Get("usertable", workload::FormatKey("k", rank), options,
                 [done](store::ReadResult result) { done(result.ok()); });
      break;
    }
    case Scenario::kSecondaryIndex:
      client.Query(store::QuerySpec::Index("usertable", "skey",
                                           workload::FormatKey("s", rank)),
                   store::ReadOptions{}, [done](store::ReadResult result) {
                     done(result.ok() && !result.rows.empty());
                   });
      break;
    case Scenario::kMaterializedView: {
      store::ReadOptions options;
      options.columns = {"field0"};
      client.Query(
          store::QuerySpec::View("by_skey", workload::FormatKey("s", rank)),
          options, [done](store::ReadResult result) {
            done(result.ok() && !result.records.empty());
          });
      break;
    }
  }
}

/// One base-table update of the secondary-key column (the write the paper's
/// Section VI-B measures). New skey values are drawn from a disjoint range
/// so they stay unique.
inline void IssueSkeyUpdate(store::Client& client, std::uint64_t rank,
                            std::uint64_t fresh_value,
                            std::function<void(bool)> done) {
  client.Put("usertable", workload::FormatKey("k", rank),
             {{"skey", workload::FormatKey("x", fresh_value, 12)}},
             store::WriteOptions{},
             [done](store::WriteResult result) { done(result.ok()); });
}

// --- output helpers: every bench prints a paper-shaped table ---

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("%s\n", note.c_str());
}

/// The crash-fault-model counters, one per line (chaos/nemesis benches).
inline void PrintFaultCounters(const store::Metrics& m) {
  std::printf("  %-34s %10llu\n  %-34s %10llu\n  %-34s %10llu\n"
              "  %-34s %10llu\n  %-34s %10llu\n  %-34s %10llu\n"
              "  %-34s %10llu\n",
              "server crashes",
              static_cast<unsigned long long>(m.server_crashes),
              "server restarts",
              static_cast<unsigned long long>(m.server_restarts),
              "commit-log cells replayed",
              static_cast<unsigned long long>(m.wal_cells_replayed),
              "in-flight ops aborted",
              static_cast<unsigned long long>(m.inflight_ops_aborted),
              "lock leases expired",
              static_cast<unsigned long long>(m.locks_expired),
              "propagations orphaned",
              static_cast<unsigned long long>(m.propagations_orphaned),
              "orphaned families re-scrubbed",
              static_cast<unsigned long long>(
                  m.orphaned_propagations_recovered));
}

// --- machine-readable output: every bench also writes BENCH_<name>.json ---

/// Collects a bench's headline numbers and writes them as one JSON document,
/// `BENCH_<name>.json`, into $MV_BENCH_JSON_DIR (or the working directory).
/// Entries keep insertion order; doubles use the deterministic formatter, so
/// same-seed runs produce byte-identical files. The human-readable table the
/// bench prints is unaffected — this rides alongside it for CI artifacts and
/// plotting scripts.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    entries_.emplace_back(key, JsonFormatDouble(value));
  }
  void Add(const std::string& key, std::int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<std::int64_t>(value));
  }
  void Add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, JsonQuote(value));
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }

  /// Records a latency histogram (simulated microseconds) as an object of
  /// count / mean / p50 / p95 / p99 / max.
  void AddHistogramUs(const std::string& key, const Histogram& h) {
    JsonWriter w;
    w.BeginObject();
    w.Key("count").Value(h.count());
    w.Key("mean_us").Value(h.count() > 0 ? h.Mean() : 0.0);
    w.Key("p50_us").Value(h.count() > 0 ? h.Percentile(50) : 0.0);
    w.Key("p95_us").Value(h.count() > 0 ? h.Percentile(95) : 0.0);
    w.Key("p99_us").Value(h.count() > 0 ? h.Percentile(99) : 0.0);
    w.Key("max_us").Value(h.count() > 0 ? h.max() : 0);
    w.EndObject();
    entries_.emplace_back(key, w.str());
  }

  /// Splices a pre-rendered JSON value (e.g. Metrics::ToJson()) verbatim.
  void AddRaw(const std::string& key, const std::string& json) {
    entries_.emplace_back(key, json);
  }

  /// Writes BENCH_<name>.json and prints its path. Returns false (and warns
  /// on stderr) when the file cannot be opened.
  bool Write() const {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value(name_);
    for (const auto& [key, json] : entries_) w.Key(key).Raw(json);
    w.EndObject();

    std::string dir = ".";
    if (const char* env = std::getenv("MV_BENCH_JSON_DIR");
        env != nullptr && env[0] != '\0') {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    out << w.str() << "\n";
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace mvstore::bench

#endif  // MVSTORE_BENCH_BENCH_COMMON_H_

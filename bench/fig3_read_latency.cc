// Figure 3 — Read latency.
//
// Paper setup: 1M-row table (N=3, 4 servers), a single client reading
// randomly chosen records as fast as possible, 100k requests; mean Get
// latency for BT (by primary key), SI (by secondary key through the native
// index), and MV (by secondary key through the materialized view).
//
// Paper result: BT ~0.45 ms, MV ~0.5 ms (similar), SI ~3.5x higher.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

struct Result {
  double mean_ms;
  double p99_ms;
};

Result MeasureReadLatency(Scenario scenario, const BenchScale& scale) {
  BenchCluster bc(scenario, scale);
  auto client = bc.cluster.NewClient(0);
  Rng rng(1234);

  Histogram latency;
  std::int64_t remaining = scale.latency_reads;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    const auto rank = static_cast<std::uint64_t>(
        rng.UniformInt(0, scale.rows - 1));
    const SimTime start = bc.cluster.Now();
    IssueRead(scenario, *client, rank, [&, start](bool ok) {
      MVSTORE_CHECK(ok);
      latency.Record(bc.cluster.Now() - start);
      next();
    });
  };
  next();
  while (latency.count() <
         static_cast<std::uint64_t>(scale.latency_reads)) {
    MVSTORE_CHECK(bc.cluster.simulation().Step());
  }
  return Result{latency.Mean() / 1000.0, latency.Percentile(99) / 1000.0};
}

void Run() {
  BenchScale scale;
  PrintTitle("Figure 3: Read Latency (single client, mean ms)");
  PrintNote(StrFormat("rows=%lld requests=%lld (paper: 1M rows, 100k reqs)",
                      static_cast<long long>(scale.rows),
                      static_cast<long long>(scale.latency_reads)));
  std::printf("%-4s %12s %12s\n", "", "mean(ms)", "p99(ms)");
  BenchReport report("fig3_read_latency");
  report.Add("rows", scale.rows);
  report.Add("requests", scale.latency_reads);
  double bt = 0;
  double si = 0;
  for (Scenario s : {Scenario::kBaseTable, Scenario::kSecondaryIndex,
                     Scenario::kMaterializedView}) {
    Result r = MeasureReadLatency(s, scale);
    if (s == Scenario::kBaseTable) bt = r.mean_ms;
    if (s == Scenario::kSecondaryIndex) si = r.mean_ms;
    std::printf("%-4s %12.3f %12.3f\n", ScenarioName(s), r.mean_ms, r.p99_ms);
    report.Add(std::string(ScenarioName(s)) + "_mean_ms", r.mean_ms);
    report.Add(std::string(ScenarioName(s)) + "_p99_ms", r.p99_ms);
  }
  PrintNote(StrFormat("SI/BT latency ratio: %.2fx (paper: ~3.5x)", si / bt));
  report.Add("si_over_bt_ratio", si / bt);
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Microbench M1a — data-structure hot paths (google-benchmark, wall time):
// the storage engine (apply / point read / prefix scan / compaction), cell
// merging, composite-key codec, ring lookups, and workload generators.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "storage/engine.h"
#include "store/codec.h"
#include "store/ring.h"
#include "workload/key_generator.h"

namespace mvstore {
namespace {

void BM_CellMerge(benchmark::State& state) {
  storage::Cell a = storage::Cell::Live("value-a", 100);
  storage::Cell b = storage::Cell::Live("value-b", 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::MergeCells(a, b));
  }
}
BENCHMARK(BM_CellMerge);

void BM_MemTableApply(benchmark::State& state) {
  storage::MemTable memtable;
  Rng rng(1);
  Timestamp ts = 0;
  for (auto _ : state) {
    const Key key = workload::FormatKey(
        "k", static_cast<std::uint64_t>(rng.UniformInt(0, 4095)));
    memtable.Apply(key, "c", storage::Cell::Live("v", ++ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTableApply);

void BM_EngineApply(benchmark::State& state) {
  storage::Engine engine;
  Rng rng(2);
  Timestamp ts = 0;
  for (auto _ : state) {
    const Key key = workload::FormatKey(
        "k", static_cast<std::uint64_t>(rng.UniformInt(0, 65535)));
    engine.Apply(key, "c", storage::Cell::Live("v", ++ts));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineApply);

void BM_EnginePointRead(benchmark::State& state) {
  storage::Engine engine;
  const std::int64_t rows = state.range(0);
  for (std::int64_t i = 0; i < rows; ++i) {
    engine.Apply(workload::FormatKey("k", static_cast<std::uint64_t>(i)), "c",
                 storage::Cell::Live("v", i));
  }
  engine.Flush();
  Rng rng(3);
  for (auto _ : state) {
    const Key key = workload::FormatKey(
        "k", static_cast<std::uint64_t>(rng.UniformInt(0, rows - 1)));
    benchmark::DoNotOptimize(engine.GetRow(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePointRead)->Arg(1024)->Arg(65536);

void BM_EnginePrefixScan(benchmark::State& state) {
  storage::Engine engine;
  // 64 partitions x 16 rows, composite keys like a view table.
  for (std::uint64_t p = 0; p < 64; ++p) {
    for (std::uint64_t r = 0; r < 16; ++r) {
      engine.Apply(store::ComposeViewRowKey(workload::FormatKey("vk", p),
                                            workload::FormatKey("b", r)),
                   "c", storage::Cell::Live("v", 1));
    }
  }
  engine.Flush();
  Rng rng(4);
  for (auto _ : state) {
    const Key prefix = store::ViewPartitionPrefix(workload::FormatKey(
        "vk", static_cast<std::uint64_t>(rng.UniformInt(0, 63))));
    std::size_t count = 0;
    engine.ScanPrefix(prefix,
                      [&count](const Key&, const storage::Row&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePrefixScan);

void BM_EngineCompaction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    storage::EngineOptions options;
    options.memtable_flush_entries = 256;
    options.max_runs = 1000;  // no auto-compaction
    storage::Engine engine(options);
    for (std::uint64_t i = 0; i < 4096; ++i) {
      engine.Apply(workload::FormatKey("k", i % 1024), "c",
                   storage::Cell::Live("v", static_cast<Timestamp>(i)));
    }
    state.ResumeTiming();
    engine.Compact(kNullTimestamp);
    benchmark::DoNotOptimize(engine.num_runs());
  }
}
BENCHMARK(BM_EngineCompaction);

void BM_CodecCompose(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    const Key composed = store::ComposeViewRowKey(
        workload::FormatKey(
            "vk", static_cast<std::uint64_t>(rng.UniformInt(0, 9999))),
        workload::FormatKey(
            "b", static_cast<std::uint64_t>(rng.UniformInt(0, 9999))));
    benchmark::DoNotOptimize(store::SplitViewRowKey(composed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecCompose);

void BM_RingReplicas(benchmark::State& state) {
  store::Ring ring(16, 64, 7);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.ReplicasFor(
        workload::FormatKey(
            "k", static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 20))),
        3));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingReplicas);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(7);
  ZipfianGenerator zipf(1000000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfianNext);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(8);
  for (auto _ : state) {
    histogram.Record(rng.UniformInt(0, 1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace mvstore

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_micro_storage.json (google-benchmark's own JSON schema) in
// $MV_BENCH_JSON_DIR, next to the other benches' reports. An explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::string dir = ".";
  if (const char* env = std::getenv("MV_BENCH_JSON_DIR");
      env != nullptr && env[0] != '\0') {
    dir = env;
  }
  const std::string path = dir + "/BENCH_micro_storage.json";
  const std::string out_flag = "--benchmark_out=" + path;
  const std::string format_flag = "--benchmark_out_format=json";

  bool user_out = false;
  std::vector<char*> args(argv, argv + argc);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) user_out = true;
  }
  if (!user_out) {
    args.push_back(const_cast<char*>(out_flag.c_str()));
    args.push_back(const_cast<char*>(format_flag.c_str()));
  }

  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!user_out) std::printf("wrote %s\n", path.c_str());
  benchmark::Shutdown();
  return 0;
}

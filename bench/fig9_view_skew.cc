// Figure 9 (extension) — Hot view keys: read latency/throughput vs the
// view's sub-shard count.
//
// The paper's workload gives every view key exactly one row, so a view read
// is a cheap single-partition probe. Real skewed workloads are not so kind:
// a view keyed by a low-cardinality column ("all tickets of this team")
// concentrates thousands of rows under a handful of view keys, and every
// read of a hot key scans its whole partition on one replica set while the
// rest of the cluster idles.
//
// Setup: "usertable" rows spread uniformly over a few groups; a view keyed
// by the group column; one closed-loop reader issuing ViewGets with ZIPFIAN
// group choice. The perf model charges scans per row scanned
// (view_scan_per_row), the regime sub-sharding targets. Swept over
// shard_count 1 (classic layout) and MV_BENCH_VIEW_SHARDS (default 8):
// with sub-shards, each ViewGet scatter-gathers 8 small scans spread over
// the whole ring instead of one monolithic scan, so the latency-bound hot
// read speeds up by nearly the shard count (capped by cores and the
// per-scan fixed cost).
//
// CI gates speedup_rps >= 2 at 8 shards (bench/baselines).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

constexpr int kGroups = 8;

store::Schema GroupedSchema(int view_shards) {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "usertable"}).ok());
  auto view = store::ViewDefBuilder("by_grp")
                  .Base("usertable")
                  .Key("grp")
                  .Materialize("field0")
                  .Shards(view_shards)
                  .Build();
  MVSTORE_CHECK(view.ok()) << view.status();
  MVSTORE_CHECK(schema.CreateView(std::move(view).value()).ok());
  return schema;
}

struct Point {
  double rps = 0;
  double p50_us = 0;
  Histogram latency;
  std::uint64_t scatter_scans = 0;
};

Point MeasureHotReads(int view_shards, const BenchScale& scale) {
  store::ClusterConfig config = PaperConfig(/*seed=*/9000 + view_shards);
  // Row-proportional scan cost: the hot-partition regime this figure is
  // about (0 — the unique-skey figures' model — would make every scan flat
  // and sub-sharding pure overhead).
  config.perf.view_scan_per_row = Micros(8);
  store::Cluster cluster(config, GroupedSchema(view_shards));
  view::MaintenanceEngine views(&cluster);
  cluster.Start();
  for (std::int64_t i = 0; i < scale.rows; ++i) {
    cluster.BootstrapLoadRow(
        "usertable", workload::FormatKey("k", static_cast<std::uint64_t>(i)),
        {{"grp", workload::FormatKey("g", static_cast<std::uint64_t>(
                                              i % kGroups))},
         {"field0", std::string("payload-") + std::to_string(i)}},
        /*ts=*/1000 + i);
  }

  // ONE closed-loop reader: the hot partition is a latency problem before
  // it is a capacity one (a single reader cannot saturate the cluster, so
  // the speedup below is scan parallelism, not added hardware).
  Rng rng(9900 + static_cast<std::uint64_t>(view_shards));
  workload::ZipfianKeyGenerator groups("g", kGroups, 0.99);
  workload::ClosedLoopRunner runner(
      &cluster, /*num_clients=*/1,
      [&rng, &groups](int, store::Client& client,
                      std::function<void(bool)> done) {
        store::ReadOptions options;
        options.columns = {"field0"};
        client.Query(store::QuerySpec::View("by_grp", groups.Next(rng)),
                     options, [done](store::ReadResult result) {
                       done(result.ok() && !result.records.empty());
                     });
      });
  workload::RunResult result =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  MVSTORE_CHECK_EQ(result.failures, 0u);
  Point point;
  point.rps = result.Throughput();
  point.p50_us =
      result.latency.count() > 0 ? result.latency.Percentile(50) : 0.0;
  point.latency = result.latency;
  point.scatter_scans = cluster.metrics().view_scatter_scans;
  return point;
}

void Run() {
  BenchScale scale;
  const int shards =
      static_cast<int>(EnvInt("MV_BENCH_VIEW_SHARDS", 8));
  PrintTitle("Figure 9: Hot View Keys vs Sub-Shard Count (zipfian reads)");
  PrintNote(StrFormat(
      "rows=%lld groups=%d window=%llds shards=1 vs %d (1 reader, "
      "per-row scan cost on)",
      static_cast<long long>(scale.rows), kGroups,
      static_cast<long long>(scale.measure_seconds), shards));

  const Point flat = MeasureHotReads(1, scale);
  const Point sharded = MeasureHotReads(shards, scale);
  const double speedup = flat.rps > 0 ? sharded.rps / flat.rps : 0.0;

  std::printf("%-10s %10s %12s %14s\n", "shards", "req/sec", "p50(us)",
              "scatter_scans");
  std::printf("%-10d %10.1f %12.0f %14llu\n", 1, flat.rps, flat.p50_us,
              static_cast<unsigned long long>(flat.scatter_scans));
  std::printf("%-10d %10.1f %12.0f %14llu\n", shards, sharded.rps,
              sharded.p50_us,
              static_cast<unsigned long long>(sharded.scatter_scans));
  std::printf("speedup: %.2fx\n", speedup);

  BenchReport report("fig9_view_skew");
  report.Add("rows", scale.rows);
  report.Add("groups", kGroups);
  report.Add("window_seconds", scale.measure_seconds);
  report.Add("shards", shards);
  report.Add("shards1_rps", flat.rps);
  report.AddHistogramUs("shards1_latency", flat.latency);
  report.Add("sharded_rps", sharded.rps);
  report.AddHistogramUs("sharded_latency", sharded.latency);
  report.Add("sharded_scatter_scans", sharded.scatter_scans);
  report.Add("speedup_rps", speedup);
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Figure 7 — Cost of session guarantees.
//
// Paper setup: one single-threaded client issues 100k Put/Get pairs with a
// configurable client-introduced delay between Put and Get. SI: the Put
// updates an indexed column; the Get reads the row through the native
// secondary index. MV: the Put updates a view-materialized column; the Get
// reads the corresponding view cell WITHIN A SESSION, so the coordinator
// blocks it until the Put's propagation completes (Definition 4). Reported:
// average (pair latency - client delay) vs the delay.
//
// Paper result: SI flat (index maintenance is synchronous). MV starts high
// (the Get blocks on the freshly triggered propagation) and decays as the
// delay grows, leveling off near 640 ms — by then almost every propagation
// has already finished when the Get arrives.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

// `staleness` (optional) collects the freshness-contract staleness of each
// Get: client clock at completion minus the result's freshness claim
// (ISSUE 7) — for the session-guarded MV read this shows what the
// Definition-4 wait actually bought.
double MeasurePairLatency(Scenario scenario, SimTime client_delay,
                          const BenchScale& scale, std::int64_t pairs,
                          Histogram* staleness = nullptr) {
  BenchCluster bc(scenario, scale);
  auto client = bc.cluster.NewClient(0);
  client->BeginSession();
  Rng rng(7000 + static_cast<std::uint64_t>(client_delay));

  Histogram pair_latency;
  std::int64_t remaining = pairs;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    const auto rank =
        static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
    const SimTime start = bc.cluster.Now();
    // Put: update field0 (a view-materialized column in MV; any column in
    // SI — the index stays on skey either way, matching the paper).
    client->Put(
        "usertable", workload::FormatKey("k", rank),
        {{"field0", "v" + std::to_string(start)}},
        store::WriteOptions{},
        [&, rank, start](store::WriteResult w) {
          MVSTORE_CHECK(w.ok()) << w.status;
          bc.cluster.simulation().After(client_delay, [&, rank, start] {
            auto finish = [&, start](bool ok, Timestamp freshness) {
              MVSTORE_CHECK(ok);
              pair_latency.Record(bc.cluster.Now() - start - client_delay);
              if (staleness != nullptr && freshness != kNullTimestamp) {
                staleness->Record(std::max<Timestamp>(
                    0, store::kClientTimestampEpoch + bc.cluster.Now() -
                           freshness));
              }
              next();
            };
            if (bc.scenario == Scenario::kSecondaryIndex) {
              client->Query(
                  store::QuerySpec::Index("usertable", "skey", workload::FormatKey("s", rank)),
                  store::ReadOptions{}, [finish](store::ReadResult r) {
                    finish(r.ok() && !r.rows.empty(), r.freshness);
                  });
            } else {
              client->Query(
                  store::QuerySpec::View("by_skey", workload::FormatKey("s", rank)),
                  {.columns = {"field0"}}, [finish](store::ReadResult r) {
                    finish(r.ok() && !r.records.empty(), r.freshness);
                  });
            }
          });
        });
  };
  next();
  while (pair_latency.count() < static_cast<std::uint64_t>(pairs)) {
    MVSTORE_CHECK(bc.cluster.simulation().Step());
  }
  return pair_latency.Mean() / 1000.0;
}

void Run() {
  BenchScale scale;
  const std::int64_t pairs = EnvInt("MV_BENCH_PAIRS", 300);
  PrintTitle(
      "Figure 7: Session Guarantees - avg Put/Get pair latency minus client "
      "delay (ms)");
  PrintNote(StrFormat("rows=%lld pairs=%lld per point (paper: 100k pairs)",
                      static_cast<long long>(scale.rows),
                      static_cast<long long>(pairs)));
  std::printf("%-12s %10s %10s\n", "interval(ms)", "SI", "MV");
  BenchReport report("fig7_session_guarantees");
  report.Add("rows", scale.rows);
  report.Add("pairs", pairs);
  const std::vector<std::int64_t> delays_ms = {10, 20,  40,  80,
                                               160, 320, 640, 1000};
  for (std::int64_t delay : delays_ms) {
    Histogram si_staleness;
    Histogram mv_staleness;
    const double si = MeasurePairLatency(Scenario::kSecondaryIndex,
                                         Millis(delay), scale, pairs,
                                         &si_staleness);
    const double mv = MeasurePairLatency(Scenario::kMaterializedView,
                                         Millis(delay), scale, pairs,
                                         &mv_staleness);
    std::printf("%-12lld %10.2f %10.2f\n", static_cast<long long>(delay), si,
                mv);
    const std::string prefix = "delay" + std::to_string(delay) + "ms";
    report.Add(prefix + "_SI_ms", si);
    report.Add(prefix + "_MV_ms", mv);
    report.AddHistogramUs(prefix + "_SI_staleness", si_staleness);
    report.AddHistogramUs(prefix + "_MV_staleness", mv_staleness);
  }
  PrintNote(
      "expected shape: SI flat; MV decaying with delay, flat after ~640 ms");
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

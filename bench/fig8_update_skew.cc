// Figure 8 — Effect of write skew on write throughput.
//
// Paper setup: a materialized view is defined on the base table; 10 clients
// update the VIEW KEY column of rows drawn uniformly from a key range whose
// width sweeps from 100k down to 1 (all clients hammering one row). Average
// base-table update throughput over the run.
//
// Paper result: throughput collapses as the range narrows. Mechanisms (all
// emergent here): updates concentrate on one partition's replicas instead of
// spreading over the cluster; concurrent view-key propagations on the same
// row serialize (locks) and mostly start from not-yet-propagated guesses, so
// GetLiveKey fails and retries pile up, burning server capacity that
// foreground writes need; stale chains lengthen, making each propagation
// walk further.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

double MeasureSkewedWrites(std::uint64_t range_width, const BenchScale& scale,
                           std::uint64_t* chain_hops,
                           std::uint64_t* retries) {
  BenchCluster bc(Scenario::kMaterializedView, scale);
  Rng rng(8000 + range_width);
  std::uint64_t fresh = 0;
  workload::ClosedLoopRunner runner(
      &bc.cluster, /*num_clients=*/10,
      [&rng, range_width, &fresh](int, store::Client& client,
                                  std::function<void(bool)> done) {
        const auto rank = static_cast<std::uint64_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(range_width) - 1));
        IssueSkeyUpdate(client, rank, fresh++, std::move(done));
      });
  workload::RunResult result =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  *chain_hops = bc.cluster.metrics().chain_hops;
  *retries = bc.cluster.metrics().propagation_failures;
  return result.Throughput();
}

void Run() {
  BenchScale scale;
  PrintTitle("Figure 8: Write Skew vs Write Throughput (10 clients, MV)");
  PrintNote(StrFormat(
      "rows=%lld window=%llds per point (paper: 100k rows, 300s)",
      static_cast<long long>(scale.rows),
      static_cast<long long>(scale.measure_seconds)));
  std::printf("%-12s %12s %12s %12s\n", "range", "req/sec", "chain_hops",
              "retries");
  std::vector<std::uint64_t> widths;
  for (std::uint64_t w : {1ull, 10ull, 100ull, 1000ull, 10000ull, 100000ull}) {
    if (w < static_cast<std::uint64_t>(scale.rows)) widths.push_back(w);
  }
  widths.push_back(static_cast<std::uint64_t>(scale.rows));
  BenchReport report("fig8_update_skew");
  report.Add("rows", scale.rows);
  report.Add("window_seconds", scale.measure_seconds);
  for (std::uint64_t width : widths) {
    std::uint64_t hops = 0;
    std::uint64_t retries = 0;
    const double throughput =
        MeasureSkewedWrites(width, scale, &hops, &retries);
    std::printf("%-12llu %12.0f %12llu %12llu\n",
                static_cast<unsigned long long>(width), throughput,
                static_cast<unsigned long long>(hops),
                static_cast<unsigned long long>(retries));
    const std::string prefix = "range" + std::to_string(width);
    report.Add(prefix + "_rps", throughput);
    report.Add(prefix + "_chain_hops", hops);
    report.Add(prefix + "_retries", retries);
  }
  PrintNote("expected shape: throughput falls steeply as the range narrows");
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

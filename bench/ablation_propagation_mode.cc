// Ablation A2 — The three propagation concurrency-control designs under
// skew: unsynchronized (the paper's prototype), the Section IV-F lock
// service, and Section IV-F dedicated propagators.
//
// Measured on the Figure-8 hot-range workload (10 writers, narrow key
// range): foreground write throughput, propagation completion within the
// window, and — the correctness side — whether the converged view survives
// a scrub. Unsynchronized is expected to burn capacity on retry storms (and
// can strand anomalies); the two §IV-F designs keep the view clean and shed
// conflict load, at the cost of propagation backlog.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "view/scrub.h"

namespace mvstore::bench {
namespace {

struct Result {
  double throughput;
  std::uint64_t completed;
  std::uint64_t started;
  std::uint64_t retries;
  std::uint64_t abandoned;
  bool scrub_clean;
};

Result MeasureMode(store::PropagationMode mode, std::uint64_t range,
                   const BenchScale& scale) {
  store::ClusterConfig config = PaperConfig();
  config.propagation_mode = mode;
  if (mode != store::PropagationMode::kUnsynchronized) {
    // The heavy-tailed dispatch delay models the PROTOTYPE's executor
    // (DESIGN.md substitution 2); our Section IV-F engines dispatch
    // promptly, so submission order tracks dependency order.
    config.perf.propagation_dispatch_mu = std::log(2000.0);  // 2 ms
    config.perf.propagation_dispatch_sigma = 0.3;
  }
  BenchCluster bc(Scenario::kMaterializedView, scale, config);
  Rng rng(222);
  std::uint64_t fresh = 0;
  workload::ClosedLoopRunner runner(
      &bc.cluster, /*num_clients=*/10,
      [&rng, range, &fresh](int, store::Client& client,
                            std::function<void(bool)> done) {
        const auto rank = static_cast<std::uint64_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(range) - 1));
        IssueSkeyUpdate(client, rank, fresh++, std::move(done));
      });
  // Throttle to a SUSTAINABLE rate (~400 writes/s): under overload every
  // asynchronous maintenance design falls behind without bound, hiding the
  // real difference between the modes (correctness + retry efficiency).
  runner.set_think_time(Millis(25));
  workload::RunResult run =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  // Drain every outstanding propagation before scrubbing (abandonments
  // terminate too, so this is bounded).
  bc.views->Quiesce();
  bc.cluster.RunFor(Millis(200));
  const store::ViewDef& view = *bc.cluster.schema().GetView("by_skey");
  const bool clean = view::CheckView(bc.cluster, view).clean();
  return Result{run.Throughput(), bc.cluster.metrics().propagations_completed,
                bc.cluster.metrics().propagations_started,
                bc.cluster.metrics().propagation_failures,
                bc.cluster.metrics().propagations_abandoned, clean};
}

void Run() {
  BenchScale scale;
  const std::uint64_t range = static_cast<std::uint64_t>(
      EnvInt("MV_BENCH_SKEW_RANGE", 8));
  PrintTitle("Ablation A2: propagation concurrency control under skew");
  PrintNote(StrFormat("hot range width=%llu, 10 writers, %llds window",
                      static_cast<unsigned long long>(range),
                      static_cast<long long>(scale.measure_seconds)));
  std::printf("%-24s %10s %11s %11s %9s %10s %7s\n", "mode", "req/sec",
              "prop done", "prop start", "retries", "abandoned", "scrub");
  struct ModeInfo {
    store::PropagationMode mode;
    const char* name;
  };
  const ModeInfo modes[] = {
      {store::PropagationMode::kUnsynchronized, "unsynchronized (paper)"},
      {store::PropagationMode::kLockService, "lock service (IV-F)"},
      {store::PropagationMode::kDedicatedPropagators, "propagators (IV-F)"},
  };
  BenchReport report("ablation_propagation_mode");
  report.Add("range", range);
  report.Add("window_seconds", scale.measure_seconds);
  const char* keys[] = {"unsynchronized", "lock_service", "propagators"};
  int index = 0;
  for (const ModeInfo& info : modes) {
    Result r = MeasureMode(info.mode, range, scale);
    std::printf("%-24s %10.0f %11llu %11llu %9llu %10llu %7s\n", info.name,
                r.throughput, static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.started),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.abandoned),
                r.scrub_clean ? "clean" : "DIRTY");
    const std::string prefix = keys[index++];
    report.Add(prefix + "_rps", r.throughput);
    report.Add(prefix + "_prop_completed", r.completed);
    report.Add(prefix + "_prop_started", r.started);
    report.Add(prefix + "_retries", r.retries);
    report.Add(prefix + "_abandoned", r.abandoned);
    report.Add(prefix + "_scrub_clean", r.scrub_clean ? "clean" : "dirty");
  }
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

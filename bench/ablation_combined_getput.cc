// Ablation A1 — Separate Get then Put (the paper's prototype) vs the
// combined Get-then-Put message (the optimization Section IV-C describes:
// "in practice they can be combined into a single combined Get-then-Put
// request", which the prototype did not implement — the paper attributes
// most of Figure 5's MV write-latency penalty to this).
//
// Expectation: combined mode removes the pre-read round trip, pulling MV
// write latency most of the way back to BT's.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

double MeasureMvWriteLatency(bool combined, const BenchScale& scale) {
  store::ClusterConfig config = PaperConfig();
  config.combined_get_then_put = combined;
  BenchCluster bc(Scenario::kMaterializedView, scale, config);
  auto client = bc.cluster.NewClient(0);
  Rng rng(911);

  Histogram latency;
  std::int64_t remaining = scale.latency_reads;
  std::uint64_t fresh = 0;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    const auto rank =
        static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
    const SimTime start = bc.cluster.Now();
    IssueSkeyUpdate(*client, rank, fresh++, [&, start](bool ok) {
      MVSTORE_CHECK(ok);
      latency.Record(bc.cluster.Now() - start);
      next();
    });
  };
  next();
  while (latency.count() < static_cast<std::uint64_t>(scale.latency_reads)) {
    MVSTORE_CHECK(bc.cluster.simulation().Step());
  }
  return latency.Mean() / 1000.0;
}

double MeasureBtWriteLatency(const BenchScale& scale) {
  BenchCluster bc(Scenario::kBaseTable, scale);
  auto client = bc.cluster.NewClient(0);
  Rng rng(911);
  Histogram latency;
  std::int64_t remaining = scale.latency_reads;
  std::uint64_t fresh = 0;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    const auto rank =
        static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
    const SimTime start = bc.cluster.Now();
    IssueSkeyUpdate(*client, rank, fresh++, [&, start](bool ok) {
      MVSTORE_CHECK(ok);
      latency.Record(bc.cluster.Now() - start);
      next();
    });
  };
  next();
  while (latency.count() < static_cast<std::uint64_t>(scale.latency_reads)) {
    MVSTORE_CHECK(bc.cluster.simulation().Step());
  }
  return latency.Mean() / 1000.0;
}

void Run() {
  BenchScale scale;
  PrintTitle("Ablation A1: separate Get->Put vs combined Get-then-Put");
  const double bt = MeasureBtWriteLatency(scale);
  const double separate = MeasureMvWriteLatency(/*combined=*/false, scale);
  const double combined = MeasureMvWriteLatency(/*combined=*/true, scale);
  std::printf("%-28s %12s %8s\n", "mode", "mean(ms)", "vs BT");
  std::printf("%-28s %12.3f %7.2fx\n", "BT baseline (no view)", bt, 1.0);
  std::printf("%-28s %12.3f %7.2fx\n", "MV separate (paper prototype)",
              separate, separate / bt);
  std::printf("%-28s %12.3f %7.2fx\n", "MV combined (Section IV-C)", combined,
              combined / bt);
  PrintNote(StrFormat("combining recovers %.0f%% of the MV write penalty",
                      100.0 * (separate - combined) / (separate - bt)));
  BenchReport report("ablation_combined_getput");
  report.Add("rows", scale.rows);
  report.Add("requests", scale.latency_reads);
  report.Add("bt_mean_ms", bt);
  report.Add("mv_separate_mean_ms", separate);
  report.Add("mv_combined_mean_ms", combined);
  report.Add("penalty_recovered_fraction",
             (separate - combined) / (separate - bt));
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Microbench M1b — GetLiveKey cost vs stale-chain length.
//
// Builds a versioned-view row family with a stale chain of length L (by L
// sequential view-key reassignments), then runs a propagation whose guess is
// the OLDEST key, so GetLiveKey must walk the whole chain. Reports simulated
// time and chain hops per propagation — the mechanism behind Figure 8's
// degradation ("the more updates to a row, the larger the number of
// corresponding stale rows, and potentially the longer it will take to find
// the live row").

#include <cstdio>

#include "bench/bench_common.h"
#include "view/propagation.h"

namespace mvstore::bench {
namespace {

void Run() {
  PrintTitle("Micro M1b: GetLiveKey latency vs stale-chain length");
  std::printf("%-8s %14s %12s\n", "chain", "sim-time(ms)", "hops");
  BenchReport report("micro_chain");
  for (int length : {0, 1, 2, 4, 8, 16, 32, 64}) {
    BenchScale scale;
    scale.rows = 1;
    BenchCluster bc(Scenario::kMaterializedView, scale);
    auto client = bc.cluster.NewClient(0);

    // Build the chain: L reassignments, each propagated before the next, so
    // every old key leaves exactly one stale row pointing onward.
    for (int i = 1; i <= length; ++i) {
      MVSTORE_CHECK(client
                        ->PutSync("usertable", workload::FormatKey("k", 0),
                                  {{"skey", "hop" + std::to_string(i)}},
                                  store::WriteOptions{})
                        .ok());
      bc.views->Quiesce();
    }
    bc.cluster.RunFor(Millis(100));

    // A propagation that guesses the ORIGINAL view key walks all L hops.
    auto task = std::make_shared<view::PropagationTask>();
    task->view = bc.cluster.schema().GetView("by_skey");
    task->base_key = workload::FormatKey("k", 0);
    task->materialized_updates.Apply(
        "field0", storage::Cell::Live("probe", store::kClientTimestampEpoch +
                                                   Seconds(900)));
    task->guesses.push_back(storage::Cell::Live(workload::FormatKey("s", 0),
                                                1000));
    const std::uint64_t hops_before = bc.cluster.metrics().chain_hops;
    const SimTime start = bc.cluster.Now();
    bool done = false;
    SimTime elapsed = 0;
    view::Propagation::Run(&bc.cluster.server(0), task, task->guesses[0],
                           [&](Status status) {
                             MVSTORE_CHECK(status.ok()) << status;
                             elapsed = bc.cluster.Now() - start;
                             done = true;
                           });
    while (!done) MVSTORE_CHECK(bc.cluster.simulation().Step());
    const std::uint64_t hops = bc.cluster.metrics().chain_hops - hops_before;
    std::printf("%-8d %14.3f %12llu\n", length, ToMillis(elapsed),
                static_cast<unsigned long long>(hops));
    const std::string prefix = "chain" + std::to_string(length);
    report.Add(prefix + "_sim_ms", ToMillis(elapsed));
    report.Add(prefix + "_hops", hops);
  }
  PrintNote("sim-time grows linearly: one majority-quorum read per hop");

  // Burst phase — propagation throughput when one base row takes a salvo of
  // updates back to back. With coalescing, pending same-row tasks merge into
  // one maintenance round instead of racing each other through GetLiveKey.
  constexpr int kBurst = 32;
  {
    BenchScale scale;
    scale.rows = 1;
    BenchCluster bc(Scenario::kMaterializedView, scale);
    auto client = bc.cluster.NewClient(0);
    std::printf("\nburst: %d same-row skey updates, issued back to back\n",
                kBurst);
    int pending = kBurst;
    for (int i = 0; i < kBurst; ++i) {
      client->Put("usertable", workload::FormatKey("k", 0),
                  {{"skey", "burst" + std::to_string(i)}},
                  store::WriteOptions{}, [&pending](store::WriteResult result) {
                    MVSTORE_CHECK(result.ok()) << result.status;
                    --pending;
                  });
    }
    const SimTime start = bc.cluster.Now();
    while (pending > 0) MVSTORE_CHECK(bc.cluster.simulation().Step());
    bc.views->Quiesce();
    const SimTime settle = bc.cluster.Now() - start;
    const store::Metrics& m = bc.cluster.metrics();
    std::printf("burst settle: %.3f ms, %llu propagations coalesced, "
                "%llu completed, %llu guess misses\n",
                ToMillis(settle),
                static_cast<unsigned long long>(m.prop_batched),
                static_cast<unsigned long long>(m.propagations_completed),
                static_cast<unsigned long long>(m.propagation_failures));
    report.Add("burst_updates", kBurst);
    report.Add("burst_settle_ms", ToMillis(settle));
    report.Add("burst_prop_batched", static_cast<std::uint64_t>(m.prop_batched));
    report.Add("burst_propagations_completed",
               static_cast<std::uint64_t>(m.propagations_completed));
    report.Add("burst_propagation_failures",
               static_cast<std::uint64_t>(m.propagation_failures));
  }
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Ablation A3 — Quorum settings (R, W) vs latency and staleness.
//
// The system model (Section II) promises: R+W > N gives reads that see the
// latest acked write; R+W <= N trades that for latency. This bench sweeps
// (R, W) on base-table traffic, reporting read/write latency and a measured
// staleness rate (fraction of read-your-write probes that returned a stale
// value).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

struct Result {
  double read_ms;
  double write_ms;
  double stale_rate;
  /// Age of the returned data: client clock at read completion minus the
  /// newest cell timestamp in the returned row (the freshness-contract
  /// vocabulary, ISSUE 7). R+W>N keeps this at round-trip scale; weaker
  /// quorums let it grow into replication-lag territory.
  Histogram staleness_age_us;
};

Result MeasureQuorums(int read_quorum, int write_quorum,
                      const BenchScale& scale) {
  store::ClusterConfig config = PaperConfig();
  config.default_read_quorum = read_quorum;
  config.default_write_quorum = write_quorum;
  BenchCluster bc(Scenario::kBaseTable, scale, config);
  auto client = bc.cluster.NewClient(0);
  Rng rng(333);

  Histogram read_latency;
  Histogram write_latency;
  Histogram staleness_age;
  std::int64_t remaining = scale.latency_reads;
  std::int64_t probes = 0;
  std::int64_t stale = 0;

  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    const auto rank =
        static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
    const Key key = workload::FormatKey("k", rank);
    const std::string value = "v" + std::to_string(remaining);
    const SimTime wstart = bc.cluster.Now();
    client->Put(
        "usertable", key, {{"field0", value}}, store::WriteOptions{},
        [&, key, value, wstart](store::WriteResult w) {
          MVSTORE_CHECK(w.ok());
          write_latency.Record(bc.cluster.Now() - wstart);
          const SimTime rstart = bc.cluster.Now();
          client->Get("usertable", key, {.columns = {"field0"}},
                      [&, value, rstart](store::ReadResult row) {
                        MVSTORE_CHECK(row.ok());
                        read_latency.Record(bc.cluster.Now() - rstart);
                        ++probes;
                        if (row.row.GetValue("field0").value_or("") != value) {
                          ++stale;
                        }
                        const Timestamp newest = row.row.MaxTimestamp();
                        if (newest != kNullTimestamp) {
                          staleness_age.Record(store::kClientTimestampEpoch +
                                               bc.cluster.Now() - newest);
                        }
                        next();
                      });
        });
  };
  next();
  while (read_latency.count() <
         static_cast<std::uint64_t>(scale.latency_reads)) {
    MVSTORE_CHECK(bc.cluster.simulation().Step());
  }
  Result result{read_latency.Mean() / 1000.0, write_latency.Mean() / 1000.0,
                probes == 0 ? 0.0
                            : static_cast<double>(stale) /
                                  static_cast<double>(probes),
                {}};
  result.staleness_age_us = staleness_age;
  return result;
}

void Run() {
  BenchScale scale;
  PrintTitle("Ablation A3: quorum settings (N=3) vs latency and staleness");
  std::printf("%-10s %10s %11s %12s %12s\n", "R,W", "R+W>N?", "read(ms)",
              "write(ms)", "stale reads");
  const std::vector<std::pair<int, int>> settings = {
      {1, 1}, {1, 3}, {2, 2}, {3, 1}, {2, 1}, {1, 2}};
  BenchReport report("ablation_quorums");
  report.Add("rows", scale.rows);
  report.Add("requests", scale.latency_reads);
  for (const auto& [r, w] : settings) {
    Result result = MeasureQuorums(r, w, scale);
    std::printf("R=%d,W=%d    %10s %11.3f %12.3f %11.2f%%\n", r, w,
                r + w > 3 ? "yes" : "no", result.read_ms, result.write_ms,
                100.0 * result.stale_rate);
    const std::string prefix =
        "R" + std::to_string(r) + "W" + std::to_string(w);
    report.Add(prefix + "_read_ms", result.read_ms);
    report.Add(prefix + "_write_ms", result.write_ms);
    report.Add(prefix + "_stale_rate", result.stale_rate);
    report.AddHistogramUs(prefix + "_staleness", result.staleness_age_us);
  }
  PrintNote("R+W>N rows must show 0% stale; R+W<=N may not");
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

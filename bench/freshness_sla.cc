// Freshness SLA — p99 staleness vs throughput under the freshness contract
// (ISSUE 7).
//
// Setup: the MV scenario cluster, plus a native secondary index on the same
// skey column so the adaptive router has a real SI escape hatch. One client
// issues Put/ViewGet pairs back-to-back (the worst case for a bounded read:
// the Put's propagation intent is pending when the Get arrives), sweeping
// the read's consistency setting:
//
//   eventual     — the baseline: read whatever the view holds.
//   bound=500ms  — generous bound; the pending intent is younger than the
//                  bound, so the tracker proves the bound immediately.
//   bound=20ms   — mid bound; usually provable, occasionally parks until
//                  the propagation applies.
//   bound=200us  — unsatisfiable: typical propagation lag far exceeds the
//                  bound, so the router sends the read to the SI path.
//
// Reported per setting: throughput (pairs/s of simulated time), observed
// staleness percentiles (client clock at completion minus the result's
// freshness claim), the served_by split, and the freshness counters. The
// expected shape: staleness p99 drops as the bound tightens, throughput
// pays for it (wider quorums, parks, SI scans); the tight bound is served
// almost entirely by the SI.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

struct Setting {
  std::string name;
  store::ReadConsistency consistency;
  SimTime max_staleness;  // 0 = cluster default (bounded only)
};

struct Outcome {
  Histogram staleness_us;
  Histogram pair_latency_us;
  std::uint64_t served_view = 0;
  std::uint64_t served_si = 0;
  std::uint64_t served_base = 0;
  double sim_seconds = 0;
  std::uint64_t bound_misses = 0;
  std::uint64_t bound_waits = 0;
  std::uint64_t fallback_si = 0;
  std::uint64_t fallback_base = 0;
  std::uint64_t targeted_repairs = 0;
};

/// MV schema plus a secondary index on the view-key column: the router's
/// fallback then has the cheap path the contract's cost model prefers.
store::Schema SchemaWithEscapeHatch() {
  store::Schema schema = BenchSchema(Scenario::kMaterializedView);
  MVSTORE_CHECK(
      schema.CreateIndex({.table = "usertable", .column = "skey"}).ok());
  return schema;
}

Outcome RunSetting(const Setting& setting, const BenchScale& scale,
                   std::int64_t pairs) {
  store::ClusterConfig config = PaperConfig();
  store::Cluster cluster(config, SchemaWithEscapeHatch());
  view::MaintenanceEngine views(&cluster);
  cluster.Start();
  for (std::int64_t i = 0; i < scale.rows; ++i) {
    cluster.BootstrapLoadRow(
        "usertable", workload::FormatKey("k", static_cast<std::uint64_t>(i)),
        {{"skey", workload::FormatKey("s", static_cast<std::uint64_t>(i))},
         {"field0", std::string("payload-") + std::to_string(i)}},
        /*ts=*/1000 + i);
  }
  auto client = cluster.NewClient(0);
  Rng rng(9100 + static_cast<std::uint64_t>(setting.max_staleness));

  // Warmup primes the tracker's propagation-lag EWMA so the router has a
  // real estimate before measurement starts.
  const std::int64_t warmup = std::max<std::int64_t>(20, pairs / 10);
  Outcome out;
  std::int64_t issued = 0;
  std::int64_t completed = 0;
  SimTime measure_start = 0;
  std::uint64_t base_misses = 0, base_waits = 0, base_fb_si = 0,
                base_fb_base = 0, base_repairs = 0;

  std::function<void()> next = [&] {
    if (issued++ >= warmup + pairs) return;
    if (issued == warmup + 1) {
      measure_start = cluster.Now();
      const store::Metrics& m = cluster.metrics();
      base_misses = m.freshness_bound_misses;
      base_waits = m.freshness_bound_waits;
      base_fb_si = m.freshness_fallback_si;
      base_fb_base = m.freshness_fallback_base;
      base_repairs = m.freshness_targeted_repairs;
    }
    const bool measuring = issued > warmup;
    const auto rank =
        static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
    const SimTime start = cluster.Now();
    client->Put("usertable", workload::FormatKey("k", rank),
                {{"field0", "v" + std::to_string(start)}},
                store::WriteOptions{},
                [&, rank, start, measuring](store::WriteResult w) {
                  MVSTORE_CHECK(w.ok()) << w.status;
                  store::ReadOptions options;
                  options.columns = {"field0"};
                  options.consistency = setting.consistency;
                  options.max_staleness = setting.max_staleness;
                  client->Query(
                      store::QuerySpec::View("by_skey", workload::FormatKey("s", rank)),
                      options, [&, start, measuring](store::ReadResult r) {
                        MVSTORE_CHECK(r.ok()) << r.status;
                        if (measuring) {
                          const Timestamp now_ts =
                              store::kClientTimestampEpoch + cluster.Now();
                          if (r.freshness != kNullTimestamp) {
                            out.staleness_us.Record(
                                std::max<Timestamp>(0, now_ts - r.freshness));
                          }
                          out.pair_latency_us.Record(cluster.Now() - start);
                          switch (r.served_by) {
                            case store::ServedBy::kView:
                              out.served_view++;
                              break;
                            case store::ServedBy::kSiPath:
                              out.served_si++;
                              break;
                            case store::ServedBy::kBaseScan:
                              out.served_base++;
                              break;
                          }
                          completed++;
                        }
                        next();
                      });
                });
  };
  next();
  while (completed < pairs) {
    MVSTORE_CHECK(cluster.simulation().Step())
        << "simulation ran dry mid-bench";
  }
  out.sim_seconds = static_cast<double>(cluster.Now() - measure_start) / 1e6;
  const store::Metrics& m = cluster.metrics();
  out.bound_misses = m.freshness_bound_misses - base_misses;
  out.bound_waits = m.freshness_bound_waits - base_waits;
  out.fallback_si = m.freshness_fallback_si - base_fb_si;
  out.fallback_base = m.freshness_fallback_base - base_fb_base;
  out.targeted_repairs = m.freshness_targeted_repairs - base_repairs;
  views.Quiesce();
  return out;
}

void Run() {
  BenchScale scale;
  const std::int64_t pairs = EnvInt("MV_BENCH_PAIRS", 300);
  PrintTitle(
      "Freshness SLA: p99 staleness vs throughput across staleness bounds");
  PrintNote(StrFormat(
      "rows=%lld pairs=%lld per setting; Put/ViewGet back-to-back (pending "
      "propagation on every read)",
      static_cast<long long>(scale.rows), static_cast<long long>(pairs)));

  const std::vector<Setting> settings = {
      {"eventual", store::ReadConsistency::kEventual, 0},
      {"bound_500ms", store::ReadConsistency::kBoundedStaleness, Millis(500)},
      {"bound_20ms", store::ReadConsistency::kBoundedStaleness, Millis(20)},
      {"bound_200us", store::ReadConsistency::kBoundedStaleness, Micros(200)},
  };

  BenchReport report("freshness_sla");
  report.Add("rows", scale.rows);
  report.Add("pairs", pairs);

  std::printf("%-12s %10s %12s %12s %8s %8s %8s %8s %8s\n", "setting",
              "pairs/s", "stale_p50us", "stale_p99us", "view", "si", "base",
              "waits", "repairs");
  for (const Setting& setting : settings) {
    const Outcome out = RunSetting(setting, scale, pairs);
    const double throughput =
        out.sim_seconds > 0 ? static_cast<double>(pairs) / out.sim_seconds : 0;
    const double p50 =
        out.staleness_us.count() ? out.staleness_us.Percentile(50) : 0;
    const double p99 =
        out.staleness_us.count() ? out.staleness_us.Percentile(99) : 0;
    std::printf("%-12s %10.1f %12.0f %12.0f %8llu %8llu %8llu %8llu %8llu\n",
                setting.name.c_str(), throughput, p50, p99,
                static_cast<unsigned long long>(out.served_view),
                static_cast<unsigned long long>(out.served_si),
                static_cast<unsigned long long>(out.served_base),
                static_cast<unsigned long long>(out.bound_waits),
                static_cast<unsigned long long>(out.targeted_repairs));

    const std::string& p = setting.name;
    report.Add(p + "_bound_us", static_cast<std::int64_t>(
                                    setting.max_staleness));
    report.Add(p + "_pairs_per_s", throughput);
    report.AddHistogramUs(p + "_staleness", out.staleness_us);
    report.AddHistogramUs(p + "_pair_latency", out.pair_latency_us);
    report.Add(p + "_served_view", out.served_view);
    report.Add(p + "_served_si", out.served_si);
    report.Add(p + "_served_base", out.served_base);
    report.Add(p + "_bound_misses", out.bound_misses);
    report.Add(p + "_bound_waits", out.bound_waits);
    report.Add(p + "_fallback_si", out.fallback_si);
    report.Add(p + "_fallback_base", out.fallback_base);
    report.Add(p + "_targeted_repairs", out.targeted_repairs);
  }
  PrintNote(
      "expected shape: staleness p99 falls as the bound tightens; the "
      "tight bound routes to the SI (served si >> view) and pays in "
      "throughput");
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

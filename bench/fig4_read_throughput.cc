// Figure 4 — Read throughput vs number of concurrent clients.
//
// Paper setup: same data as Figure 3; 1..10 closed-loop clients reading
// randomly chosen records for 5 minutes; aggregate requests/second.
//
// Paper result: BT highest and climbing with clients; MV slightly lower
// (view reads scan/filter stale rows); SI far lower and saturating early —
// every SI lookup consumes index-probe service on EVERY server, so the
// whole cluster caps its rate.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

double MeasureThroughput(Scenario scenario, int clients,
                         const BenchScale& scale) {
  BenchCluster bc(scenario, scale);
  Rng rng(4000 + static_cast<std::uint64_t>(clients));
  workload::ClosedLoopRunner runner(
      &bc.cluster, clients,
      [scenario, &rng, &scale](int, store::Client& client,
                               std::function<void(bool)> done) {
        const auto rank =
            static_cast<std::uint64_t>(rng.UniformInt(0, scale.rows - 1));
        IssueRead(scenario, client, rank, std::move(done));
      });
  workload::RunResult result =
      runner.Run(Millis(500), Seconds(scale.measure_seconds));
  MVSTORE_CHECK_EQ(result.failures, 0u);
  return result.Throughput();
}

void Run() {
  BenchScale scale;
  PrintTitle("Figure 4: Read Throughput (req/sec vs #clients)");
  PrintNote(StrFormat(
      "rows=%lld window=%llds per point (paper: 1M rows, 300s)",
      static_cast<long long>(scale.rows),
      static_cast<long long>(scale.measure_seconds)));
  std::printf("%-8s %10s %10s %10s\n", "clients", "BT", "SI", "MV");
  BenchReport report("fig4_read_throughput");
  report.Add("rows", scale.rows);
  report.Add("window_seconds", scale.measure_seconds);
  for (int clients = 1; clients <= 10; ++clients) {
    const double bt = MeasureThroughput(Scenario::kBaseTable, clients, scale);
    const double si =
        MeasureThroughput(Scenario::kSecondaryIndex, clients, scale);
    const double mv =
        MeasureThroughput(Scenario::kMaterializedView, clients, scale);
    std::printf("%-8d %10.0f %10.0f %10.0f\n", clients, bt, si, mv);
    const std::string prefix = "clients" + std::to_string(clients);
    report.Add(prefix + "_BT_rps", bt);
    report.Add(prefix + "_SI_rps", si);
    report.Add(prefix + "_MV_rps", mv);
  }
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() { mvstore::bench::Run(); }

// Harness-speed bench — simulated-ops per wall-second on a fixed seed.
//
// Every other bench in this directory measures *simulated* performance
// (latency and throughput in virtual time, which a fixed seed makes exactly
// reproducible). This one measures the opposite axis: how much wall-clock
// the harness burns to push a fixed seeded workload through the full
// client -> quorum -> storage -> view-maintenance stack. It is the gate for
// the raw-speed work (ISSUE 8): calendar event queue, move-only closures,
// interned keys, pooled flush/merge buffers.
//
// The workload is deliberately allocation-heavy for the harness: closed-loop
// clients mix view reads, base reads, and skey updates (each update fans out
// replica writes AND a view propagation with composed view-row keys), while
// small memtables force continuous flush/merge churn underneath.
//
//   MV_BENCH_ROWS             table size                (default 5000)
//   MV_BENCH_MEASURE_SECONDS  simulated window          (default 3)
//   MV_BENCH_SIM_CLIENTS      closed-loop clients       (default 16)
//   MV_BENCH_SIM_SEED         workload seed             (default 42)
//
// Wall-clock numbers are machine-dependent; the CI gate therefore compares
// against a committed baseline (bench/baselines/BENCH_sim_speed_baseline.json)
// captured on the same runner class, and the JSON also records the
// machine-independent fingerprint (sim events, client ops, end time) so a
// speed change can be told apart from a workload change.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace mvstore::bench {
namespace {

void Run() {
  // Smaller defaults than the figure benches: the pre-refactor harness pays
  // O(table) scan copies per anti-entropy round, and the baseline must stay
  // runnable on a CI machine.
  BenchScale scale;
  scale.rows = EnvInt("MV_BENCH_ROWS", 5000);
  scale.measure_seconds = EnvInt("MV_BENCH_MEASURE_SECONDS", 3);
  const auto clients = static_cast<int>(EnvInt("MV_BENCH_SIM_CLIENTS", 16));
  const auto seed = static_cast<std::uint64_t>(EnvInt("MV_BENCH_SIM_SEED", 42));
  const SimTime measure = Seconds(scale.measure_seconds > 0
                                      ? scale.measure_seconds
                                      : 3);

  store::ClusterConfig config = PaperConfig(seed);
  // Small memtables keep the flush -> run -> size-tiered merge pipeline hot;
  // the compaction clock adds periodic full merges on top.
  config.engine.memtable_flush_entries = 512;
  config.compaction_interval = Millis(500);
  config.anti_entropy_interval = Millis(800);

  PrintTitle("sim_speed: harness wall-clock throughput (fixed seed)");
  std::printf("rows=%lld clients=%d simulated=%llds seed=%llu\n",
              static_cast<long long>(scale.rows), clients,
              static_cast<long long>(ToSeconds(measure)),
              static_cast<unsigned long long>(seed));

  const auto wall_start = std::chrono::steady_clock::now();
  BenchCluster bc(Scenario::kMaterializedView, scale, config);
  const auto wall_loaded = std::chrono::steady_clock::now();

  const auto rows = static_cast<std::uint64_t>(scale.rows);
  Rng rng(seed * 9176);
  std::uint64_t fresh = rows;
  workload::ClosedLoopRunner runner(
      &bc.cluster, clients,
      [&](int, store::Client& client, std::function<void(bool)> done) {
        const std::uint64_t rank = rng.UniformInt(0, rows - 1);
        const double draw = rng.NextDouble();
        if (draw < 0.40) {
          IssueSkeyUpdate(client, rank, fresh++, std::move(done));
        } else if (draw < 0.80) {
          IssueRead(Scenario::kMaterializedView, client, rank,
                    std::move(done));
        } else {
          IssueRead(Scenario::kBaseTable, client, rank, std::move(done));
        }
      });
  workload::RunResult result = runner.Run(/*warmup=*/Millis(500), measure);
  bc.views->Quiesce();
  bc.cluster.RunFor(Millis(500));
  const auto wall_end = std::chrono::steady_clock::now();

  const double wall_load_s =
      std::chrono::duration<double>(wall_loaded - wall_start).count();
  const double wall_run_s =
      std::chrono::duration<double>(wall_end - wall_loaded).count();
  const std::uint64_t sim_events = bc.cluster.simulation().steps();
  const double events_per_wall_s =
      wall_run_s > 0 ? static_cast<double>(sim_events) / wall_run_s : 0;
  const double ops_per_wall_s =
      wall_run_s > 0 ? static_cast<double>(result.operations) / wall_run_s : 0;

  std::printf("\n  %-34s %12.2f\n  %-34s %12.2f\n", "bootstrap wall s",
              wall_load_s, "run wall s", wall_run_s);
  std::printf("  %-34s %12llu\n  %-34s %12llu\n", "sim events executed",
              static_cast<unsigned long long>(sim_events), "client ops",
              static_cast<unsigned long long>(result.operations));
  std::printf("  %-34s %12.0f\n  %-34s %12.0f\n", "sim events / wall s",
              events_per_wall_s, "client ops / wall s", ops_per_wall_s);
  std::printf("  %-34s %12.0f\n", "sim ops / sim s (virtual)",
              result.Throughput());

  BenchReport report("sim_speed");
  report.Add("rows", static_cast<std::int64_t>(scale.rows));
  report.Add("clients", clients);
  report.Add("seed", static_cast<std::uint64_t>(seed));
  report.Add("simulated_seconds", ToSeconds(measure));
  // Machine-independent fingerprint: identical across machines for one
  // build of the code, so baseline comparisons can verify the workload
  // itself did not drift.
  report.Add("sim_events", sim_events);
  report.Add("client_ops", result.operations);
  report.Add("client_failures", result.failures);
  report.Add("sim_end_time_us", static_cast<std::int64_t>(bc.cluster.Now()));
  // Machine-dependent speed (what the gate ratios against the baseline).
  report.Add("bootstrap_wall_s", wall_load_s);
  report.Add("run_wall_s", wall_run_s);
  report.Add("sim_events_per_wall_s", events_per_wall_s);
  report.Add("client_ops_per_wall_s", ops_per_wall_s);
  report.Write();
}

}  // namespace
}  // namespace mvstore::bench

int main() {
  mvstore::bench::Run();
  return 0;
}

// Closed-loop workload runner.
//
// Reproduces the paper's measurement methodology: a configurable number of
// closed-loop clients (each issues its next request as soon as the previous
// one completes, optionally after think time), run for a warmup period and
// then a measurement window; aggregate throughput is completed operations
// per simulated second, latency is client-observed.

#ifndef MVSTORE_WORKLOAD_RUNNER_H_
#define MVSTORE_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "store/client.h"
#include "store/cluster.h"

namespace mvstore::workload {

struct RunResult {
  std::uint64_t operations = 0;  ///< completed inside the window
  std::uint64_t failures = 0;    ///< non-OK completions inside the window
  Histogram latency;             ///< client-observed, microseconds
  SimTime window = 0;

  double Throughput() const {
    return window == 0 ? 0.0
                       : static_cast<double>(operations) / ToSeconds(window);
  }
};

class ClosedLoopRunner {
 public:
  /// Issues one operation on behalf of client `index`; must invoke `done(ok)`
  /// exactly once when the operation completes.
  using Operation = std::function<void(int index, store::Client& client,
                                       std::function<void(bool ok)> done)>;

  ClosedLoopRunner(store::Cluster* cluster, int num_clients, Operation op);

  /// Delay between an operation's completion and the next issue.
  void set_think_time(SimTime think) { think_time_ = think; }

  /// Runs warmup + measurement; returns the measurement window's result.
  /// Drives the cluster's simulation; in-flight operations at the window
  /// edges are attributed to the window in which they complete.
  RunResult Run(SimTime warmup, SimTime measure);

  struct State;  // implementation detail, public for the .cc's free helpers

 private:
  store::Cluster* cluster_;
  int num_clients_;
  Operation op_;
  SimTime think_time_ = 0;
};

}  // namespace mvstore::workload

#endif  // MVSTORE_WORKLOAD_RUNNER_H_

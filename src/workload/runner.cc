#include "workload/runner.h"

#include <memory>

#include "common/logging.h"

namespace mvstore::workload {

// Everything the in-flight closures touch lives here, kept alive by
// shared_ptr until the last scheduled event has fired (events can outlive
// Run(): a think-time wakeup scheduled just before the window closed fires
// during a later simulation run; it must find valid state and no-op).
struct ClosedLoopRunner::State {
  store::Cluster* cluster = nullptr;
  Operation op;
  SimTime think_time = 0;
  SimTime window_start = 0;
  SimTime window_end = 0;
  bool stopped = false;
  std::vector<std::unique_ptr<store::Client>> clients;
  RunResult result;
};

namespace {

void Issue(const std::shared_ptr<ClosedLoopRunner::State>& state, int index);

void OnOpDone(const std::shared_ptr<ClosedLoopRunner::State>& state,
              int index, SimTime issued_at, bool ok) {
  sim::Simulation& sim = state->cluster->simulation();
  const SimTime now = sim.Now();
  if (now >= state->window_start && now < state->window_end) {
    state->result.operations++;
    if (!ok) state->result.failures++;
    state->result.latency.Record(now - issued_at);
  }
  if (state->stopped || now >= state->window_end) return;
  if (state->think_time > 0) {
    sim.After(state->think_time, [state, index] { Issue(state, index); });
  } else {
    Issue(state, index);
  }
}

void Issue(const std::shared_ptr<ClosedLoopRunner::State>& state, int index) {
  if (state->stopped) return;
  const SimTime issued_at = state->cluster->simulation().Now();
  state->op(index, *state->clients[static_cast<std::size_t>(index)],
            [state, index, issued_at](bool ok) {
              OnOpDone(state, index, issued_at, ok);
            });
}

}  // namespace

ClosedLoopRunner::ClosedLoopRunner(store::Cluster* cluster, int num_clients,
                                   Operation op)
    : cluster_(cluster), num_clients_(num_clients), op_(std::move(op)) {
  MVSTORE_CHECK_GT(num_clients, 0);
}

RunResult ClosedLoopRunner::Run(SimTime warmup, SimTime measure) {
  auto state = std::make_shared<State>();
  sim::Simulation& sim = cluster_->simulation();
  state->cluster = cluster_;
  state->op = op_;
  state->think_time = think_time_;
  state->window_start = sim.Now() + warmup;
  state->window_end = state->window_start + measure;
  state->result.window = measure;
  state->clients.reserve(static_cast<std::size_t>(num_clients_));
  for (int i = 0; i < num_clients_; ++i) {
    // num_servers() counts capacity slots (including spares that have never
    // joined); route each client to a serving member near its round-robin
    // position so elastic-membership benches attach to live coordinators.
    state->clients.push_back(cluster_->NewClient(cluster_->PickServingServer(
        static_cast<ServerId>(i % cluster_->num_servers()))));
  }

  for (int i = 0; i < num_clients_; ++i) Issue(state, i);

  sim.RunUntil(state->window_end);
  state->stopped = true;
  // Let in-flight work drain so it does not leak into later measurements
  // (drained completions fall outside the window and are not recorded).
  sim.RunFor(Millis(50));
  return state->result;
}

}  // namespace mvstore::workload

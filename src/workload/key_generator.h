// Key generators for workloads.
//
// Keys are zero-padded decimals (lexicographic order == numeric order) with
// an optional prefix, e.g. "k00004213". Generators draw ranks from a
// distribution and format them; all draw through the caller's Rng so runs
// stay deterministic.

#ifndef MVSTORE_WORKLOAD_KEY_GENERATOR_H_
#define MVSTORE_WORKLOAD_KEY_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace mvstore::workload {

/// Formats rank `i` as prefix + zero-padded decimal.
Key FormatKey(const std::string& prefix, std::uint64_t i, int width = 8);

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual Key Next(Rng& rng) = 0;
};

/// Uniform over ranks [0, n).
class UniformKeyGenerator : public KeyGenerator {
 public:
  UniformKeyGenerator(std::string prefix, std::uint64_t n)
      : prefix_(std::move(prefix)), n_(n) {}
  Key Next(Rng& rng) override;

 private:
  std::string prefix_;
  std::uint64_t n_;
};

/// Uniform over a sub-range [lo, lo + width) — Figure 8's skew knob: the
/// narrower the range, the hotter each row.
class RangeKeyGenerator : public KeyGenerator {
 public:
  RangeKeyGenerator(std::string prefix, std::uint64_t lo, std::uint64_t width)
      : prefix_(std::move(prefix)), lo_(lo), width_(width) {}
  Key Next(Rng& rng) override;

 private:
  std::string prefix_;
  std::uint64_t lo_;
  std::uint64_t width_;
};

/// Zipfian over ranks [0, n), theta in [0, 1) (0.99 = YCSB default), with
/// rank scrambling so hot keys are spread over the keyspace.
class ZipfianKeyGenerator : public KeyGenerator {
 public:
  ZipfianKeyGenerator(std::string prefix, std::uint64_t n, double theta);
  Key Next(Rng& rng) override;

 private:
  std::string prefix_;
  std::uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace mvstore::workload

#endif  // MVSTORE_WORKLOAD_KEY_GENERATOR_H_

#include "workload/key_generator.h"

#include "common/hash.h"
#include "common/logging.h"
#include "common/str_util.h"

namespace mvstore::workload {

Key FormatKey(const std::string& prefix, std::uint64_t i, int width) {
  return prefix + PaddedInt(i, width);
}

Key UniformKeyGenerator::Next(Rng& rng) {
  return FormatKey(prefix_,
                   static_cast<std::uint64_t>(
                       rng.UniformInt(0, static_cast<std::int64_t>(n_) - 1)));
}

Key RangeKeyGenerator::Next(Rng& rng) {
  const std::uint64_t offset =
      width_ <= 1 ? 0
                  : static_cast<std::uint64_t>(rng.UniformInt(
                        0, static_cast<std::int64_t>(width_) - 1));
  return FormatKey(prefix_, lo_ + offset);
}

ZipfianKeyGenerator::ZipfianKeyGenerator(std::string prefix, std::uint64_t n,
                                         double theta)
    : prefix_(std::move(prefix)), n_(n), zipf_(n, theta) {}

Key ZipfianKeyGenerator::Next(Rng& rng) {
  const std::uint64_t rank = zipf_.Next(rng);
  // Scramble so that popularity is independent of key order.
  const std::uint64_t scrambled =
      Hash64(std::string_view(reinterpret_cast<const char*>(&rank),
                              sizeof(rank))) %
      n_;
  return FormatKey(prefix_, scrambled);
}

}  // namespace mvstore::workload

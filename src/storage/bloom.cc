#include "storage/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace mvstore::storage {

BloomFilter::BloomFilter(std::size_t expected_keys, int bits_per_key) {
  bit_count_ = std::max<std::size_t>(64, expected_keys * bits_per_key);
  bits_.assign((bit_count_ + 63) / 64, 0);
  probes_ = std::clamp(
      static_cast<int>(bits_per_key * 0.69 /* ln 2 */ + 0.5), 1, 8);
}

void BloomFilter::Add(std::string_view key) {
  // Double hashing: h_i = h1 + i * h2 (Kirsch-Mitzenmacher).
  const std::uint64_t h1 = Hash64(key, /*seed=*/0x62463137);
  const std::uint64_t h2 = Hash64(key, /*seed=*/0x7C3A9D51) | 1;
  for (int i = 0; i < probes_; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_;
    bits_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
  }
  ++added_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  const std::uint64_t h1 = Hash64(key, /*seed=*/0x62463137);
  const std::uint64_t h2 = Hash64(key, /*seed=*/0x7C3A9D51) | 1;
  for (int i = 0; i < probes_; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_;
    if ((bits_[bit / 64] & (std::uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
  }
  return true;
}

double BloomFilter::EstimatedFalsePositiveRate() const {
  const double k = probes_;
  const double n = static_cast<double>(added_);
  const double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace mvstore::storage

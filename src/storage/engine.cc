#include "storage/engine.h"

#include <map>

namespace mvstore::storage {

Engine::Engine(EngineOptions options) : options_(options) {}

void Engine::Apply(const Key& key, const ColumnName& col, const Cell& cell) {
  AppendToLog(key, col, cell);
  memtable_.Apply(key, col, cell);
  MaybeFlushAndCompact();
}

void Engine::ApplyRow(const Key& key, const Row& row) {
  for (const auto& [col, cell] : row.cells()) {
    AppendToLog(key, col, cell);
  }
  memtable_.ApplyRow(key, row);
  MaybeFlushAndCompact();
}

void Engine::AppendToLog(const Key& key, const ColumnName& col,
                         const Cell& cell) {
  if (!options_.commit_log_enabled) return;
  if (options_.commit_log_max_cells > 0 &&
      log_.size() >= options_.commit_log_max_cells) {
    log_.pop_front();
    ++log_dropped_;
  }
  log_.push_back(LogRecord{key, col, cell});
}

void Engine::LoseVolatileState() { memtable_.Clear(); }

std::size_t Engine::RecoverFromLog() {
  // Replay straight into the memtable: re-appending the replayed cells to
  // the log would double them, and LWW makes the replay idempotent even
  // when some cells also reached a durable run before the crash.
  for (const LogRecord& record : log_) {
    memtable_.Apply(record.key, record.col, record.cell);
  }
  const std::size_t replayed = log_.size();
  MaybeFlushAndCompact();
  return replayed;
}

std::optional<Row> Engine::GetRow(const Key& key) const {
  Row merged;
  bool found = false;
  for (const auto& run : runs_) {
    if (const Row* row = run->Get(key)) {
      merged.MergeFrom(*row);
      found = true;
    }
  }
  if (const Row* row = memtable_.Get(key)) {
    merged.MergeFrom(*row);
    found = true;
  }
  if (!found) return std::nullopt;
  return merged;
}

std::optional<Cell> Engine::GetCell(const Key& key,
                                    const ColumnName& col) const {
  std::optional<Cell> best;
  auto consider = [&](const Row* row) {
    if (row == nullptr) return;
    if (auto cell = row->Get(col)) {
      if (!best || Supersedes(*cell, *best)) best = *cell;
    }
  };
  for (const auto& run : runs_) consider(run->Get(key));
  consider(memtable_.Get(key));
  return best;
}

void Engine::ScanPrefix(
    const Key& prefix,
    const std::function<void(const Key&, const Row&)>& fn) const {
  std::map<Key, Row> merged;
  auto collect = [&](const Key& key, const Row& row) {
    merged[key].MergeFrom(row);
  };
  for (const auto& run : runs_) run->ScanPrefix(prefix, collect);
  memtable_.ScanPrefix(prefix, collect);
  for (const auto& [key, row] : merged) fn(key, row);
}

void Engine::ForEach(
    const std::function<void(const Key&, const Row&)>& fn) const {
  std::map<Key, Row> merged;
  auto collect = [&](const Key& key, const Row& row) {
    merged[key].MergeFrom(row);
  };
  for (const auto& run : runs_) run->ForEach(collect);
  memtable_.ForEach(collect);
  for (const auto& [key, row] : merged) fn(key, row);
}

void Engine::Flush() {
  if (memtable_.empty()) return;
  std::vector<KeyedRow> entries;
  entries.reserve(memtable_.entries());
  memtable_.ForEach([&](const Key& key, const Row& row) {
    entries.push_back(KeyedRow{key, row});
  });
  runs_.push_back(Run::FromSorted(std::move(entries)));
  memtable_.Clear();
  // Checkpoint: everything logged so far now lives in a durable run.
  log_.clear();
}

void Engine::Compact(Timestamp now) {
  // Flush first so no structure outside the merge can hold cells older than
  // a purged tombstone (which would resurrect deleted data).
  Flush();
  if (runs_.empty()) return;
  const Timestamp purge_before =
      now == kNullTimestamp ? kNullTimestamp : now - options_.tombstone_gc_grace;
  auto merged = Run::Merge(runs_, purge_before);
  runs_.clear();
  if (merged->entries() > 0) runs_.push_back(std::move(merged));
  ++compactions_;
}

void Engine::MaybeFlushAndCompact() {
  if (memtable_.entries() >= options_.memtable_flush_entries) {
    Flush();
  }
  if (runs_.size() > options_.max_runs) {
    // Periodic size-tiered compaction without a clock: keep tombstones
    // (purge only on explicit Compact(now) calls from the server's GC task).
    auto merged = Run::Merge(runs_, kNullTimestamp);
    runs_.clear();
    if (merged->entries() > 0) runs_.push_back(std::move(merged));
    ++compactions_;
  }
}

std::size_t Engine::ApproxEntries() const {
  std::size_t total = memtable_.entries();
  for (const auto& run : runs_) total += run->entries();
  return total;
}

}  // namespace mvstore::storage

#include "storage/engine.h"

#include <algorithm>
#include <map>
#include <set>

namespace mvstore::storage {

namespace {

bool HasPrefix(const Key& key, const Key& prefix) {
  return key.compare(0, prefix.size(), prefix) == 0;
}

/// One sorted input to a merged scan: a run's entry span or the memtable's
/// row map (distinguished by `from_map`).
struct SourceCursor {
  const KeyedRow* vit = nullptr;
  const KeyedRow* vend = nullptr;
  std::map<Key, Row>::const_iterator mit;
  std::map<Key, Row>::const_iterator mend;
  bool from_map = false;

  bool Done(const Key* prefix) const {
    if (from_map ? mit == mend : vit == vend) return true;
    return prefix != nullptr && !HasPrefix(key(), *prefix);
  }
  const Key& key() const { return from_map ? mit->first : vit->key; }
  const Row& row() const { return from_map ? mit->second : vit->row; }
  void Advance() {
    if (from_map) {
      ++mit;
    } else {
      ++vit;
    }
  }
};

/// Streaming k-way merge in key order. The old implementation accumulated a
/// full std::map<Key, Row> copy of the table per scan — the dominant cost of
/// anti-entropy at large table sizes. Here a key served by one source is
/// handed to `fn` by reference (zero copies); only keys present in several
/// sources merge, through `scratch`, whose buffer is reused across keys.
void MergedScan(std::vector<SourceCursor>& cursors, const Key* prefix,
                Row& scratch,
                const std::function<void(const Key&, const Row&)>& fn) {
  while (true) {
    const Key* min_key = nullptr;
    for (const SourceCursor& c : cursors) {
      if (!c.Done(prefix) && (min_key == nullptr || c.key() < *min_key)) {
        min_key = &c.key();
      }
    }
    if (min_key == nullptr) break;
    const Row* single = nullptr;
    int matches = 0;
    for (const SourceCursor& c : cursors) {
      if (!c.Done(prefix) && c.key() == *min_key) {
        single = &c.row();
        ++matches;
      }
    }
    if (matches == 1) {
      fn(*min_key, *single);
    } else {
      // Sources merge in cursor order (runs oldest-first, then memtable),
      // matching the map-based code this replaced; LWW is commutative so
      // the merged row is the same either way.
      scratch.Clear();
      for (const SourceCursor& c : cursors) {
        if (!c.Done(prefix) && c.key() == *min_key) scratch.MergeFrom(c.row());
      }
      fn(*min_key, scratch);
    }
    // min_key stays valid while advancing: it points into a run's immutable
    // entry array or a live map node.
    for (SourceCursor& c : cursors) {
      if (!c.Done(prefix) && c.key() == *min_key) c.Advance();
    }
  }
}

}  // namespace

Engine::Engine(EngineOptions options) : options_(options) {}

void Engine::Apply(const Key& key, const ColumnName& col, const Cell& cell) {
  if (row_cache_ != nullptr) row_cache_->Invalidate(cache_tag_, key);
  AppendToLog(key, col, cell);
  memtable_.Apply(key, col, cell);
  MaybeFlushAndCompact();
}

void Engine::ApplyRow(const Key& key, const Row& row) {
  if (row_cache_ != nullptr) row_cache_->Invalidate(cache_tag_, key);
  for (const auto& [col, cell] : row.cells()) {
    AppendToLog(key, col, cell);
  }
  memtable_.ApplyRow(key, row);
  MaybeFlushAndCompact();
}

void Engine::ApplyRow(const Key& key, Row&& row) {
  if (row_cache_ != nullptr) row_cache_->Invalidate(cache_tag_, key);
  for (const auto& [col, cell] : row.cells()) {
    AppendToLog(key, col, cell);
  }
  memtable_.ApplyRow(key, std::move(row));
  MaybeFlushAndCompact();
}

void Engine::AppendToLog(const Key& key, const ColumnName& col,
                         const Cell& cell) {
  if (!options_.commit_log_enabled) return;
  if (options_.commit_log_max_cells > 0 &&
      log_.size() >= options_.commit_log_max_cells) {
    log_.pop_front();
    ++log_dropped_;
  }
  log_.push_back(LogRecord{key, col, cell});
}

void Engine::LoseVolatileState() {
  memtable_.Clear();
  // The cache is volatile too — and entries may now be newer than the
  // surviving durable state, so keeping them would serve phantom rows.
  if (row_cache_ != nullptr) row_cache_->Clear();
}

std::size_t Engine::RecoverFromLog() {
  // Replay straight into the memtable: re-appending the replayed cells to
  // the log would double them, and LWW makes the replay idempotent even
  // when some cells also reached a durable run before the crash.
  for (const LogRecord& record : log_) {
    memtable_.Apply(record.key, record.col, record.cell);
  }
  const std::size_t replayed = log_.size();
  MaybeFlushAndCompact();
  return replayed;
}

std::optional<Row> Engine::GetRow(const Key& key) const {
  if (row_cache_ != nullptr) {
    if (const Row* cached = row_cache_->Get(cache_tag_, key)) return *cached;
  }
  Row merged;
  bool found = false;
  for (const auto& run : runs_) {
    if (const Row* row = run->Get(key)) {
      merged.MergeFrom(*row);
      found = true;
    }
  }
  if (const Row* row = memtable_.Get(key)) {
    merged.MergeFrom(*row);
    found = true;
  }
  if (!found) return std::nullopt;
  if (row_cache_ != nullptr) row_cache_->Put(cache_tag_, key, merged);
  return merged;
}

std::optional<Cell> Engine::GetCell(const Key& key,
                                    const ColumnName& col) const {
  if (row_cache_ != nullptr) {
    // Route through the row cache: one merged-row hit answers every column
    // of the hot row, and the merged row yields the same LWW winner as the
    // structure-by-structure scan below.
    auto row = GetRow(key);
    if (!row) return std::nullopt;
    return row->Get(col);
  }
  std::optional<Cell> best;
  auto consider = [&](const Row* row) {
    if (row == nullptr) return;
    if (auto cell = row->Get(col)) {
      if (!best || Supersedes(*cell, *best)) best = *cell;
    }
  };
  for (const auto& run : runs_) consider(run->Get(key));
  consider(memtable_.Get(key));
  return best;
}

void Engine::ScanPrefix(
    const Key& prefix,
    const std::function<void(const Key&, const Row&)>& fn) const {
  std::vector<SourceCursor> cursors;
  cursors.reserve(runs_.size() + 1);
  for (const auto& run : runs_) {
    SourceCursor c;
    c.vit = run->PrefixLowerBound(prefix);
    c.vend = run->entries_end();
    if (c.vit != c.vend) cursors.push_back(c);
  }
  const auto& rows = memtable_.rows();
  auto mit = rows.lower_bound(prefix);
  if (mit != rows.end()) {
    SourceCursor c;
    c.from_map = true;
    c.mit = mit;
    c.mend = rows.end();
    cursors.push_back(c);
  }
  MergedScan(cursors, &prefix, scan_scratch_, fn);
}

void Engine::ForEach(
    const std::function<void(const Key&, const Row&)>& fn) const {
  std::vector<SourceCursor> cursors;
  cursors.reserve(runs_.size() + 1);
  for (const auto& run : runs_) {
    const auto& entries = run->sorted_entries();
    if (entries.empty()) continue;
    SourceCursor c;
    c.vit = entries.data();
    c.vend = entries.data() + entries.size();
    cursors.push_back(c);
  }
  const auto& rows = memtable_.rows();
  if (!rows.empty()) {
    SourceCursor c;
    c.from_map = true;
    c.mit = rows.begin();
    c.mend = rows.end();
    cursors.push_back(c);
  }
  MergedScan(cursors, nullptr, scan_scratch_, fn);
}

std::vector<Key> Engine::CollectKeysAfter(
    const Key& after, int limit,
    const std::function<bool(const Key&)>& match, bool* more) const {
  // Bounded top-k: keep the (limit + 1) smallest qualifying keys seen so
  // far; the extra slot tells the caller whether anything remains. Keys are
  // only ever compared (a set of at most limit + 1 strings), never merged
  // into rows, which keeps resumable range streaming linear in table size.
  std::set<Key> keys;
  const auto cap = static_cast<std::size_t>(limit) + 1;
  auto collect = [&](const Key& key, const Row&) {
    if (key <= after || !match(key)) return;
    if (keys.size() >= cap) {
      if (key >= *keys.rbegin()) return;
      keys.erase(std::prev(keys.end()));
    }
    keys.insert(key);
  };
  for (const auto& run : runs_) run->ForEach(collect);
  memtable_.ForEach(collect);
  *more = keys.size() >= cap;
  std::vector<Key> out(keys.begin(), keys.end());
  if (out.size() > static_cast<std::size_t>(limit)) {
    out.resize(static_cast<std::size_t>(limit));
  }
  return out;
}

void Engine::Flush() {
  if (memtable_.empty()) return;
  // Seal by MOVING the memtable's rows into the run — keys and cell buffers
  // transfer; nothing is copied per cell.
  runs_.push_back(Run::FromSorted(memtable_.DrainSorted()));
  // Checkpoint: everything logged so far now lives in a durable run.
  log_.clear();
}

GcStats Engine::Compact(Timestamp now, Timestamp purge_floor) {
  GcStats stats;
  // Flush first so no structure outside the merge can hold cells older than
  // a purged tombstone (which would resurrect deleted data).
  Flush();
  if (runs_.empty()) return stats;
  const Timestamp grace_cutoff =
      now == kNullTimestamp ? kNullTimestamp : now - options_.tombstone_gc_grace;
  // The purge floor wins when it is lower: a tombstone whose delete is still
  // owed to some replica (a stored hint) must survive even past grace,
  // otherwise the lagging replica's stale live cell resurrects the row.
  const Timestamp purge_before = std::min(grace_cutoff, purge_floor);
  auto merged = Run::Merge(runs_, purge_before, grace_cutoff, &stats);
  runs_.clear();
  if (merged->entries() > 0) runs_.push_back(std::move(merged));
  ++compactions_;
  // Cached rows may still carry cells the merge just purged.
  if (row_cache_ != nullptr && stats.tombstones_purged > 0) {
    row_cache_->Clear();
  }
  return stats;
}

void Engine::MaybeFlushAndCompact() {
  if (memtable_.entries() >= options_.memtable_flush_entries) {
    Flush();
  }
  while (runs_.size() > options_.max_runs && runs_.size() >= 2) {
    // Size-tiered: merge only the tier of smallest runs (every run within 2x
    // of the smallest, minimum two) instead of rewriting the whole store on
    // each trigger. Tombstones are kept — purging needs a clock and happens
    // only on explicit Compact(now) calls from the server's GC task.
    std::vector<std::size_t> order(runs_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (runs_[a]->entries() != runs_[b]->entries()) {
        return runs_[a]->entries() < runs_[b]->entries();
      }
      return a < b;  // deterministic tie-break: older run first
    });
    const std::size_t smallest = runs_[order[0]]->entries();
    std::vector<bool> in_tier(runs_.size(), false);
    std::size_t tier_size = 0;
    for (std::size_t idx : order) {
      if (tier_size >= 2 && runs_[idx]->entries() > 2 * smallest) break;
      in_tier[idx] = true;
      ++tier_size;
    }
    std::vector<std::shared_ptr<const Run>> tier;
    std::vector<std::shared_ptr<const Run>> rest;
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      (in_tier[i] ? tier : rest).push_back(runs_[i]);
    }
    auto merged = Run::Merge(tier, kNullTimestamp);
    runs_ = std::move(rest);
    // The merged tier is older than any run flushed after it; since `rest`
    // preserves relative order and the tier spans the smallest (oldest-ish)
    // runs, prepend to keep oldest-first ordering conservative.
    if (merged->entries() > 0) {
      runs_.insert(runs_.begin(), std::move(merged));
    }
    ++compactions_;
  }
}

std::vector<std::size_t> Engine::run_entry_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(runs_.size());
  for (const auto& run : runs_) counts.push_back(run->entries());
  return counts;
}

std::uint64_t Engine::run_fence_skips() const {
  std::uint64_t total = 0;
  for (const auto& run : runs_) total += run->fence_skips();
  return total;
}

std::uint64_t Engine::run_bloom_negatives() const {
  std::uint64_t total = 0;
  for (const auto& run : runs_) total += run->bloom_negatives();
  return total;
}

std::size_t Engine::ApproxEntries() const {
  std::size_t total = memtable_.entries();
  for (const auto& run : runs_) total += run->entries();
  return total;
}

}  // namespace mvstore::storage

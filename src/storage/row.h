// Rows: maps from column name to cell.
//
// Different records in the same table may have different column sets
// (schema-free, as in the paper's system model), so a Row is simply an
// ordered map. Merging two versions of a row merges cell-wise with LWW.

#ifndef MVSTORE_STORAGE_ROW_H_
#define MVSTORE_STORAGE_ROW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "common/types.h"
#include "storage/cell.h"

namespace mvstore::storage {

class Row {
 public:
  Row() = default;

  /// Applies `cell` to `col` with LWW resolution. Returns true if the stored
  /// cell changed.
  bool Apply(const ColumnName& col, const Cell& cell);

  /// Merges every cell of `other` into this row.
  void MergeFrom(const Row& other);

  /// The cell stored under `col`, or nullopt if the column was never written
  /// (tombstoned columns ARE returned — callers distinguish deletions from
  /// absence, which replication needs).
  std::optional<Cell> Get(const ColumnName& col) const;

  /// The live value under `col`: nullopt if absent or tombstoned.
  std::optional<Value> GetValue(const ColumnName& col) const;

  bool empty() const { return cells_.empty(); }
  std::size_t size() const { return cells_.size(); }

  /// Largest cell timestamp in the row (kNullTimestamp if empty).
  Timestamp MaxTimestamp() const;

  /// True if every cell in the row is a tombstone (the row is logically
  /// deleted and eligible for GC once past the grace period).
  bool AllTombstones() const;

  const std::map<ColumnName, Cell>& cells() const { return cells_; }

  friend bool operator==(const Row& a, const Row& b) {
    return a.cells_ == b.cells_;
  }

 private:
  std::map<ColumnName, Cell> cells_;
};

std::ostream& operator<<(std::ostream& os, const Row& row);

/// Order-insensitive 64-bit digest of a row's full cell content (columns,
/// values, timestamps, tombstones). Two replicas hold identical copies of a
/// row iff the digests match (modulo hash collisions); anti-entropy compares
/// these instead of shipping rows.
std::uint64_t RowDigest(const Row& row);

/// A (key, row) pair returned from scans.
struct KeyedRow {
  Key key;
  Row row;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_ROW_H_

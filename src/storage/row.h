// Rows: maps from column name to cell.
//
// Different records in the same table may have different column sets
// (schema-free, as in the paper's system model), so a Row is a sorted
// association of column name to cell. Merging two versions of a row merges
// cell-wise with LWW.
//
// Representation: a sorted vector of (column, cell) pairs, not a node-based
// map. Rows hold a handful of columns, so binary search plus contiguous
// storage beats per-node allocation everywhere rows are built, merged, and
// scanned — and a whole row moves as one buffer through flushes and run
// merges (the pooled-cells path: scratch rows recycle their vectors via
// Clear(), and ReleaseCells()/the Cells constructor transfer a built row
// without touching the individual cells).

#ifndef MVSTORE_STORAGE_ROW_H_
#define MVSTORE_STORAGE_ROW_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "common/types.h"
#include "storage/cell.h"

namespace mvstore::storage {

class Row {
 public:
  /// Sorted by column name, unique.
  using Cells = std::vector<std::pair<ColumnName, Cell>>;

  Row() = default;

  /// Adopts `cells`, which must already be sorted by column and unique
  /// (checked in debug) — the zero-copy path out of a merge scratch row.
  explicit Row(Cells cells);

  /// Applies `cell` to `col` with LWW resolution. Returns true if the stored
  /// cell changed.
  bool Apply(const ColumnName& col, const Cell& cell);
  bool Apply(const ColumnName& col, Cell&& cell);

  /// Merges every cell of `other` into this row.
  void MergeFrom(const Row& other);
  /// Move form: `other`'s cells are consumed (it is left empty).
  void MergeFrom(Row&& other);

  /// The cell stored under `col`, or nullopt if the column was never written
  /// (tombstoned columns ARE returned — callers distinguish deletions from
  /// absence, which replication needs).
  std::optional<Cell> Get(const ColumnName& col) const;

  /// The live value under `col`: nullopt if absent or tombstoned.
  std::optional<Value> GetValue(const ColumnName& col) const;

  bool empty() const { return cells_.empty(); }
  std::size_t size() const { return cells_.size(); }

  /// Empties the row but keeps its buffer — scratch rows reused across merge
  /// iterations allocate once.
  void Clear() { cells_.clear(); }

  /// Moves the cell buffer out, leaving the row empty.
  Cells ReleaseCells() { return std::move(cells_); }

  /// Largest cell timestamp in the row (kNullTimestamp if empty).
  Timestamp MaxTimestamp() const;

  /// True if every cell in the row is a tombstone (the row is logically
  /// deleted and eligible for GC once past the grace period).
  bool AllTombstones() const;

  const Cells& cells() const { return cells_; }

  friend bool operator==(const Row& a, const Row& b) {
    return a.cells_ == b.cells_;
  }

 private:
  Cells::iterator LowerBound(const ColumnName& col);

  Cells cells_;
};

std::ostream& operator<<(std::ostream& os, const Row& row);

/// Order-insensitive 64-bit digest of a row's full cell content (columns,
/// values, timestamps, tombstones). Two replicas hold identical copies of a
/// row iff the digests match (modulo hash collisions); anti-entropy compares
/// these instead of shipping rows.
std::uint64_t RowDigest(const Row& row);

/// A (key, row) pair returned from scans.
struct KeyedRow {
  Key key;
  Row row;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_ROW_H_

#include "storage/run.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace mvstore::storage {

Run::Run(std::vector<KeyedRow> entries)
    : entries_(std::move(entries)), filter_(entries_.size()) {
  for (const KeyedRow& entry : entries_) {
    filter_.Add(entry.key);
  }
  if (!entries_.empty()) {
    min_key_ = entries_.front().key;
    max_key_ = entries_.back().key;
  }
}

std::shared_ptr<const Run> Run::FromSorted(std::vector<KeyedRow> entries) {
  for (std::size_t i = 1; i < entries.size(); ++i) {
    MVSTORE_CHECK_LT(entries[i - 1].key, entries[i].key)
        << "Run entries must be sorted and unique";
  }
  return std::shared_ptr<const Run>(new Run(std::move(entries)));
}

std::shared_ptr<const Run> Run::Merge(
    const std::vector<std::shared_ptr<const Run>>& runs,
    Timestamp purge_tombstones_before, Timestamp defer_before,
    GcStats* stats) {
  // Simulation-scale partitions are small; a map-based merge keeps this
  // obviously correct. (A k-way heap merge would be the disk-scale choice.)
  std::map<Key, Row> merged;
  for (const auto& run : runs) {
    run->ForEach([&](const Key& key, const Row& row) {
      merged[key].MergeFrom(row);
    });
  }
  std::vector<KeyedRow> entries;
  entries.reserve(merged.size());
  for (auto& [key, row] : merged) {
    Row kept;
    for (const auto& [col, cell] : row.cells()) {
      if (cell.tombstone) {
        if (cell.ts < purge_tombstones_before) {
          if (stats != nullptr) ++stats->tombstones_purged;
          continue;
        }
        if (cell.ts < defer_before && stats != nullptr) {
          ++stats->tombstones_deferred;
        }
      }
      kept.Apply(col, cell);
    }
    if (!kept.empty()) {
      entries.push_back(KeyedRow{key, std::move(kept)});
    }
  }
  return std::shared_ptr<const Run>(new Run(std::move(entries)));
}

const Row* Run::Get(const Key& key) const {
  if (entries_.empty() || key < min_key_ || max_key_ < key) {
    ++fence_skips_;
    return nullptr;
  }
  if (!filter_.MayContain(key)) {
    ++bloom_negatives_;
    return nullptr;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const KeyedRow& e, const Key& k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &it->row;
}

bool Run::MayContainPrefix(const Key& prefix) const {
  if (entries_.empty()) return false;
  // Everything below the prefix range: the largest key sorts before it.
  if (max_key_ < prefix) return false;
  // Everything above it: the smallest key already sorts after every key that
  // could start with the prefix.
  if (min_key_.compare(0, prefix.size(), prefix) > 0) return false;
  return true;
}

void Run::ScanPrefix(
    const Key& prefix,
    const std::function<void(const Key&, const Row&)>& fn) const {
  if (!MayContainPrefix(prefix)) {
    ++fence_skips_;
    return;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const KeyedRow& e, const Key& k) { return e.key < k; });
  for (; it != entries_.end(); ++it) {
    if (it->key.compare(0, prefix.size(), prefix) != 0) break;
    fn(it->key, it->row);
  }
}

void Run::ForEach(
    const std::function<void(const Key&, const Row&)>& fn) const {
  for (const auto& entry : entries_) fn(entry.key, entry.row);
}

}  // namespace mvstore::storage

#include "storage/run.h"

#include <algorithm>

#include "common/logging.h"

namespace mvstore::storage {

Run::Run(std::vector<KeyedRow> entries)
    : entries_(std::move(entries)), filter_(entries_.size()) {
  for (const KeyedRow& entry : entries_) {
    filter_.Add(entry.key);
  }
  if (!entries_.empty()) {
    min_key_ = entries_.front().key;
    max_key_ = entries_.back().key;
  }
}

std::shared_ptr<const Run> Run::FromSorted(std::vector<KeyedRow> entries) {
  for (std::size_t i = 1; i < entries.size(); ++i) {
    MVSTORE_CHECK_LT(entries[i - 1].key, entries[i].key)
        << "Run entries must be sorted and unique";
  }
  return std::shared_ptr<const Run>(new Run(std::move(entries)));
}

std::shared_ptr<const Run> Run::Merge(
    const std::vector<std::shared_ptr<const Run>>& runs,
    Timestamp purge_tombstones_before, Timestamp defer_before,
    GcStats* stats) {
  // Streaming k-way merge over the sorted inputs: each output row is built
  // once, in key order, with no intermediate map and no per-cell heap churn
  // — a key held by a single input is copied wholesale, and multi-input
  // keys merge through one reused scratch row whose buffer transfers into
  // the output entry.
  struct Cursor {
    const KeyedRow* it;
    const KeyedRow* end;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  std::size_t total = 0;
  for (const auto& run : runs) {
    const auto& entries = run->sorted_entries();
    if (!entries.empty()) {
      cursors.push_back(Cursor{entries.data(), entries.data() + entries.size()});
      total += entries.size();
    }
  }
  const bool may_purge = purge_tombstones_before != kNullTimestamp ||
                         defer_before != kNullTimestamp;
  std::vector<KeyedRow> entries;
  entries.reserve(total);
  Row scratch;
  while (true) {
    const Key* min_key = nullptr;
    for (const Cursor& c : cursors) {
      if (c.it != c.end && (min_key == nullptr || c.it->key < *min_key)) {
        min_key = &c.it->key;
      }
    }
    if (min_key == nullptr) break;
    // Collect every input holding the key (in input order, matching the LWW
    // merge order of the map-based code this replaced — the result is the
    // same either way because the cell merge is commutative).
    const Row* single = nullptr;
    int matches = 0;
    for (const Cursor& c : cursors) {
      if (c.it != c.end && c.it->key == *min_key) {
        single = &c.it->row;
        ++matches;
      }
    }
    if (matches == 1 && !may_purge) {
      entries.push_back(KeyedRow{*min_key, *single});
    } else {
      scratch.Clear();
      for (const Cursor& c : cursors) {
        if (c.it != c.end && c.it->key == *min_key) {
          scratch.MergeFrom(c.it->row);
        }
      }
      Row::Cells cells = scratch.ReleaseCells();
      auto kept = cells.begin();
      for (auto it = cells.begin(); it != cells.end(); ++it) {
        if (it->second.tombstone) {
          if (it->second.ts < purge_tombstones_before) {
            if (stats != nullptr) ++stats->tombstones_purged;
            continue;
          }
          if (it->second.ts < defer_before && stats != nullptr) {
            ++stats->tombstones_deferred;
          }
        }
        if (kept != it) *kept = std::move(*it);
        ++kept;
      }
      cells.erase(kept, cells.end());
      if (!cells.empty()) {
        // Copy the key BEFORE advancing the cursors below (min_key points
        // into one of them).
        entries.push_back(KeyedRow{*min_key, Row(std::move(cells))});
      }
    }
    for (Cursor& c : cursors) {
      if (c.it != c.end && c.it->key == *min_key) ++c.it;
    }
  }
  return std::shared_ptr<const Run>(new Run(std::move(entries)));
}

const Row* Run::Get(const Key& key) const {
  if (entries_.empty() || key < min_key_ || max_key_ < key) {
    ++fence_skips_;
    return nullptr;
  }
  if (!filter_.MayContain(key)) {
    ++bloom_negatives_;
    return nullptr;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const KeyedRow& e, const Key& k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &it->row;
}

bool Run::MayContainPrefix(const Key& prefix) const {
  if (entries_.empty()) return false;
  // Everything below the prefix range: the largest key sorts before it.
  if (max_key_ < prefix) return false;
  // Everything above it: the smallest key already sorts after every key that
  // could start with the prefix.
  if (min_key_.compare(0, prefix.size(), prefix) > 0) return false;
  return true;
}

const KeyedRow* Run::PrefixLowerBound(const Key& prefix) const {
  if (!MayContainPrefix(prefix)) {
    ++fence_skips_;
    return entries_end();
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const KeyedRow& e, const Key& k) { return e.key < k; });
  return entries_.data() + (it - entries_.begin());
}

void Run::ScanPrefix(
    const Key& prefix,
    const std::function<void(const Key&, const Row&)>& fn) const {
  if (!MayContainPrefix(prefix)) {
    ++fence_skips_;
    return;
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const KeyedRow& e, const Key& k) { return e.key < k; });
  for (; it != entries_.end(); ++it) {
    if (it->key.compare(0, prefix.size(), prefix) != 0) break;
    fn(it->key, it->row);
  }
}

void Run::ForEach(
    const std::function<void(const Key&, const Row&)>& fn) const {
  for (const auto& entry : entries_) fn(entry.key, entry.row);
}

}  // namespace mvstore::storage

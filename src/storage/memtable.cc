#include "storage/memtable.h"

namespace mvstore::storage {

void MemTable::Apply(const Key& key, const ColumnName& col, const Cell& cell) {
  Row& row = rows_[key];
  const std::size_t before = row.size();
  row.Apply(col, cell);
  cell_count_ += row.size() - before;
}

void MemTable::ApplyRow(const Key& key, const Row& row) {
  Row& dst = rows_[key];
  const std::size_t before = dst.size();
  dst.MergeFrom(row);
  cell_count_ += dst.size() - before;
}

void MemTable::ApplyRow(const Key& key, Row&& row) {
  Row& dst = rows_[key];
  const std::size_t before = dst.size();
  dst.MergeFrom(std::move(row));
  cell_count_ += dst.size() - before;
}

const Row* MemTable::Get(const Key& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

void MemTable::ScanPrefix(
    const Key& prefix,
    const std::function<void(const Key&, const Row&)>& fn) const {
  for (auto it = rows_.lower_bound(prefix); it != rows_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    fn(it->first, it->second);
  }
}

void MemTable::ForEach(
    const std::function<void(const Key&, const Row&)>& fn) const {
  for (const auto& [key, row] : rows_) fn(key, row);
}

void MemTable::Clear() {
  rows_.clear();
  cell_count_ = 0;
}

std::vector<KeyedRow> MemTable::DrainSorted() {
  std::vector<KeyedRow> out;
  out.reserve(rows_.size());
  // extract() hands back the node with a mutable key, so both the key and
  // the row's cell buffer move instead of copying.
  while (!rows_.empty()) {
    auto node = rows_.extract(rows_.begin());
    out.push_back(KeyedRow{std::move(node.key()), std::move(node.mapped())});
  }
  cell_count_ = 0;
  return out;
}

}  // namespace mvstore::storage

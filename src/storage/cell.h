// Cells: the unit of storage and of conflict resolution.
//
// A cell is (value, timestamp) or a tombstone (deletion marker, also carrying
// the timestamp of the deleting Put). Replicas resolve divergent cells by
// last-writer-wins on the application timestamp; ties break toward the
// tombstone, then toward the lexicographically larger value, which makes the
// merge a commutative, associative, idempotent join — the property that lets
// every replica converge regardless of delivery order (Section II of the
// paper: "all servers will agree on the ordering of updates to each cell").

#ifndef MVSTORE_STORAGE_CELL_H_
#define MVSTORE_STORAGE_CELL_H_

#include <ostream>
#include <string>

#include "common/types.h"

namespace mvstore::storage {

struct Cell {
  Value value;
  Timestamp ts = kNullTimestamp;
  bool tombstone = false;

  /// A live cell.
  static Cell Live(Value v, Timestamp t) { return Cell{std::move(v), t, false}; }
  /// A deletion marker with the deleting Put's timestamp.
  static Cell Tombstone(Timestamp t) { return Cell{Value(), t, true}; }

  /// True for a cell that has never been written (NULL timestamp).
  bool IsNull() const { return ts == kNullTimestamp; }

  friend bool operator==(const Cell& a, const Cell& b) {
    return a.ts == b.ts && a.tombstone == b.tombstone && a.value == b.value;
  }
};

/// True when `a` supersedes `b` under last-writer-wins.
bool Supersedes(const Cell& a, const Cell& b);

/// The LWW join of two cells (whichever supersedes; b if neither, so that
/// Merge(x, x) == x).
const Cell& MergeCells(const Cell& a, const Cell& b);

std::ostream& operator<<(std::ostream& os, const Cell& c);

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_CELL_H_

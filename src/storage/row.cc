#include "storage/row.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace mvstore::storage {

Row::Row(Cells cells) : cells_(std::move(cells)) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < cells_.size(); ++i) {
    MVSTORE_CHECK_LT(cells_[i - 1].first, cells_[i].first)
        << "Row cells must be sorted and unique";
  }
#endif
}

Row::Cells::iterator Row::LowerBound(const ColumnName& col) {
  return std::lower_bound(
      cells_.begin(), cells_.end(), col,
      [](const auto& entry, const ColumnName& c) { return entry.first < c; });
}

bool Row::Apply(const ColumnName& col, const Cell& cell) {
  auto it = LowerBound(col);
  if (it == cells_.end() || it->first != col) {
    cells_.insert(it, {col, cell});
    return true;
  }
  if (Supersedes(cell, it->second)) {
    it->second = cell;
    return true;
  }
  return false;
}

bool Row::Apply(const ColumnName& col, Cell&& cell) {
  auto it = LowerBound(col);
  if (it == cells_.end() || it->first != col) {
    cells_.insert(it, {col, std::move(cell)});
    return true;
  }
  if (Supersedes(cell, it->second)) {
    it->second = std::move(cell);
    return true;
  }
  return false;
}

void Row::MergeFrom(const Row& other) {
  if (other.cells_.empty()) return;
  if (cells_.empty()) {
    cells_ = other.cells_;
    return;
  }
  // Both sides are sorted: a two-pointer merge instead of per-cell binary
  // searches. LWW picks the winner when a column appears on both sides.
  Cells merged;
  merged.reserve(cells_.size() + other.cells_.size());
  auto a = cells_.begin();
  auto b = other.cells_.begin();
  while (a != cells_.end() && b != other.cells_.end()) {
    if (a->first < b->first) {
      merged.push_back(std::move(*a++));
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      if (Supersedes(b->second, a->second)) {
        merged.emplace_back(std::move(a->first), b->second);
      } else {
        merged.push_back(std::move(*a));
      }
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), std::make_move_iterator(a),
                std::make_move_iterator(cells_.end()));
  merged.insert(merged.end(), b, other.cells_.end());
  cells_ = std::move(merged);
}

void Row::MergeFrom(Row&& other) {
  if (other.cells_.empty()) return;
  if (cells_.empty()) {
    cells_ = std::move(other.cells_);
    return;
  }
  Cells merged;
  merged.reserve(cells_.size() + other.cells_.size());
  auto a = cells_.begin();
  auto b = other.cells_.begin();
  while (a != cells_.end() && b != other.cells_.end()) {
    if (a->first < b->first) {
      merged.push_back(std::move(*a++));
    } else if (b->first < a->first) {
      merged.push_back(std::move(*b++));
    } else {
      if (Supersedes(b->second, a->second)) {
        merged.emplace_back(std::move(a->first), std::move(b->second));
      } else {
        merged.push_back(std::move(*a));
      }
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), std::make_move_iterator(a),
                std::make_move_iterator(cells_.end()));
  merged.insert(merged.end(), std::make_move_iterator(b),
                std::make_move_iterator(other.cells_.end()));
  cells_ = std::move(merged);
  other.cells_.clear();
}

std::optional<Cell> Row::Get(const ColumnName& col) const {
  auto it = std::lower_bound(
      cells_.begin(), cells_.end(), col,
      [](const auto& entry, const ColumnName& c) { return entry.first < c; });
  if (it == cells_.end() || it->first != col) return std::nullopt;
  return it->second;
}

std::optional<Value> Row::GetValue(const ColumnName& col) const {
  auto it = std::lower_bound(
      cells_.begin(), cells_.end(), col,
      [](const auto& entry, const ColumnName& c) { return entry.first < c; });
  if (it == cells_.end() || it->first != col || it->second.tombstone) {
    return std::nullopt;
  }
  return it->second.value;
}

Timestamp Row::MaxTimestamp() const {
  Timestamp max_ts = kNullTimestamp;
  for (const auto& [col, cell] : cells_) {
    max_ts = std::max(max_ts, cell.ts);
  }
  return max_ts;
}

bool Row::AllTombstones() const {
  return std::all_of(cells_.begin(), cells_.end(),
                     [](const auto& kv) { return kv.second.tombstone; });
}

std::uint64_t RowDigest(const Row& row) {
  std::uint64_t digest = 0x9E3779B97F4A7C15ull;
  for (const auto& [col, cell] : row.cells()) {
    std::uint64_t h = Hash64(col);
    h = HashCombine(h, Hash64(cell.value));
    h = HashCombine(h, static_cast<std::uint64_t>(cell.ts));
    h = HashCombine(h, cell.tombstone ? 1 : 0);
    digest = HashCombine(digest, h);
  }
  return digest;
}

std::ostream& operator<<(std::ostream& os, const Row& row) {
  os << "{";
  bool first = true;
  for (const auto& [col, cell] : row.cells()) {
    if (!first) os << ", ";
    first = false;
    os << col << "=" << cell;
  }
  return os << "}";
}

}  // namespace mvstore::storage

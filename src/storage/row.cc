#include "storage/row.h"

#include <algorithm>

#include "common/hash.h"

namespace mvstore::storage {

bool Row::Apply(const ColumnName& col, const Cell& cell) {
  auto [it, inserted] = cells_.try_emplace(col, cell);
  if (inserted) return true;
  if (Supersedes(cell, it->second)) {
    it->second = cell;
    return true;
  }
  return false;
}

void Row::MergeFrom(const Row& other) {
  for (const auto& [col, cell] : other.cells_) {
    Apply(col, cell);
  }
}

std::optional<Cell> Row::Get(const ColumnName& col) const {
  auto it = cells_.find(col);
  if (it == cells_.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> Row::GetValue(const ColumnName& col) const {
  auto it = cells_.find(col);
  if (it == cells_.end() || it->second.tombstone) return std::nullopt;
  return it->second.value;
}

Timestamp Row::MaxTimestamp() const {
  Timestamp max_ts = kNullTimestamp;
  for (const auto& [col, cell] : cells_) {
    max_ts = std::max(max_ts, cell.ts);
  }
  return max_ts;
}

bool Row::AllTombstones() const {
  return std::all_of(cells_.begin(), cells_.end(),
                     [](const auto& kv) { return kv.second.tombstone; });
}

std::uint64_t RowDigest(const Row& row) {
  std::uint64_t digest = 0x9E3779B97F4A7C15ull;
  for (const auto& [col, cell] : row.cells()) {
    std::uint64_t h = Hash64(col);
    h = HashCombine(h, Hash64(cell.value));
    h = HashCombine(h, static_cast<std::uint64_t>(cell.ts));
    h = HashCombine(h, cell.tombstone ? 1 : 0);
    digest = HashCombine(digest, h);
  }
  return digest;
}

std::ostream& operator<<(std::ostream& os, const Row& row) {
  os << "{";
  bool first = true;
  for (const auto& [col, cell] : row.cells()) {
    if (!first) os << ", ";
    first = false;
    os << col << "=" << cell;
  }
  return os << "}";
}

}  // namespace mvstore::storage

// The per-replica storage engine: one Engine instance per (server, table).
//
// LSM-lite layout: an active memtable absorbing writes, plus a stack of
// immutable sorted runs. Reads merge cell-wise across memtable and runs
// (LWW), so a read is correct regardless of where the newest cell lives.
// Size-tiered compaction bounds the run count; compaction purges tombstones
// older than the GC grace period (expired deletions).
//
// Durability model (crash-stop faults): sorted runs are durable, the
// memtable is volatile. Every Apply/ApplyRow also appends to a per-engine
// commit log; sealing the memtable into a run checkpoints (truncates) the
// log, so the log always holds exactly the cells that would be lost with
// the memtable. LoseVolatileState() models the crash, RecoverFromLog()
// the restart replay. The log can be capped or disabled to model real
// data loss (a replica that forgets acknowledged writes).

#ifndef MVSTORE_STORAGE_ENGINE_H_
#define MVSTORE_STORAGE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/memtable.h"
#include "storage/row_cache.h"
#include "storage/run.h"

namespace mvstore::storage {

struct EngineOptions {
  /// Seal the memtable into a run once it holds this many rows.
  std::size_t memtable_flush_entries = 8192;
  /// Trigger compaction when more than this many runs exist.
  std::size_t max_runs = 6;
  /// Tombstones older than this (relative to the compaction call's `now`)
  /// are purged during compaction. Mirrors Cassandra's gc_grace_seconds.
  Timestamp tombstone_gc_grace = Seconds(600);
  /// Append every applied cell to the commit log (replayed after a crash).
  /// Off = a crash loses the whole memtable, as in a store running with
  /// fsync disabled.
  bool commit_log_enabled = true;
  /// Cap on logged cells; once full the OLDEST records are discarded, so a
  /// recovery replays only a suffix of the unflushed writes (models a
  /// bounded WAL device losing data). 0 = unbounded.
  std::size_t commit_log_max_cells = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = EngineOptions());

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Attaches a (server-owned) row cache. `tag` namespaces this engine's
  /// entries — the cache is shared by every table of one server. GetRow
  /// consults and populates the cache; every apply invalidates the touched
  /// key; tombstone-purging compactions and LoseVolatileState clear it.
  /// Never attached (the default) = the exact pre-cache code path.
  void set_row_cache(RowCache* cache, std::string tag) {
    row_cache_ = cache;
    cache_tag_ = std::move(tag);
  }

  /// Applies one cell write (LWW). May trigger a flush and compaction.
  void Apply(const Key& key, const ColumnName& col, const Cell& cell);

  /// Merges a whole row (replication / anti-entropy path).
  void ApplyRow(const Key& key, const Row& row);
  /// Move form: the row's cell buffer lands in the memtable without a copy.
  void ApplyRow(const Key& key, Row&& row);

  /// Merged view of a row across memtable and all runs. Returns nullopt when
  /// the key appears nowhere (tombstoned rows ARE returned).
  std::optional<Row> GetRow(const Key& key) const;

  /// Merged cell for (key, col); nullopt when never written.
  std::optional<Cell> GetCell(const Key& key, const ColumnName& col) const;

  /// Merged prefix scan in key order.
  void ScanPrefix(const Key& prefix,
                  const std::function<void(const Key&, const Row&)>& fn) const;

  /// Merged full scan in key order (anti-entropy, index rebuild).
  void ForEach(
      const std::function<void(const Key&, const Row&)>& fn) const;

  /// The smallest `limit` keys strictly greater than `after` that satisfy
  /// `match`, in key order; `*more` is set when further matching keys
  /// remain beyond the returned window. A bounded selection over one cheap
  /// pass of every stored entry: rows are never merged, only keys compared,
  /// so a sparse token-range scan (membership range streaming) costs
  /// O(entries) key work per slice instead of a full-table merge — callers
  /// fetch the few returned rows with GetRow.
  std::vector<Key> CollectKeysAfter(
      const Key& after, int limit,
      const std::function<bool(const Key&)>& match, bool* more) const;

  /// Seals the memtable into a run (no-op when empty).
  void Flush();

  /// Full compaction of all runs; `now` drives tombstone GC. Tombstones past
  /// the grace period are still kept when they are >= `purge_floor` — the
  /// caller passes the oldest pending-hint timestamp so an unacknowledged
  /// delete can never be purged before every replica has seen it (the
  /// tombstone-resurrection guard). Returns what was purged and deferred.
  GcStats Compact(Timestamp now,
                  Timestamp purge_floor = std::numeric_limits<Timestamp>::max());

  std::size_t num_runs() const { return runs_.size(); }
  std::size_t memtable_entries() const { return memtable_.entries(); }
  std::uint64_t compactions() const { return compactions_; }

  /// Entry count per run, oldest first (size-tier assertions in tests).
  std::vector<std::size_t> run_entry_counts() const;

  /// Sum of fence rejections across live runs (pruning observability).
  std::uint64_t run_fence_skips() const;
  /// Sum of bloom rejections across live runs.
  std::uint64_t run_bloom_negatives() const;

  /// Total distinct keys across structures (upper bound; pre-merge).
  std::size_t ApproxEntries() const;

  // --- crash-stop fault model ---

  /// Models a crash: discards the memtable (volatile state). Durable runs
  /// and the commit log survive. Does NOT flush first — that is the point.
  void LoseVolatileState();

  /// Replays the commit log into the memtable (idempotent under LWW).
  /// Returns the number of cells replayed.
  std::size_t RecoverFromLog();

  std::size_t commit_log_cells() const { return log_.size(); }
  std::uint64_t commit_log_cells_dropped() const { return log_dropped_; }

 private:
  struct LogRecord {
    Key key;
    ColumnName col;
    Cell cell;
  };

  void MaybeFlushAndCompact();
  void AppendToLog(const Key& key, const ColumnName& col, const Cell& cell);

  EngineOptions options_;
  MemTable memtable_;
  std::vector<std::shared_ptr<const Run>> runs_;  // oldest first
  std::uint64_t compactions_ = 0;
  std::deque<LogRecord> log_;  // cells applied since the last flush
  std::uint64_t log_dropped_ = 0;
  RowCache* row_cache_ = nullptr;  // not owned; nullptr = caching disabled
  std::string cache_tag_;
  /// Pooled scratch for multi-source keys in merged scans: cleared per key,
  /// reallocated never (mutable: scans are logically const).
  mutable Row scan_scratch_;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_ENGINE_H_

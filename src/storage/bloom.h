// Bloom filters for immutable runs.
//
// Point lookups consult every run; most runs do not contain the key. A
// per-run bloom filter (built at seal/compaction time, ~10 bits per key)
// short-circuits those probes, the same way SSTable filters do in
// Cassandra/RocksDB. False positives cost one binary search; false
// negatives cannot happen.

#ifndef MVSTORE_STORAGE_BLOOM_H_
#define MVSTORE_STORAGE_BLOOM_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace mvstore::storage {

class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` at `bits_per_key` (k hash probes
  /// derived as ln2 * bits_per_key, clamped to [1, 8]).
  explicit BloomFilter(std::size_t expected_keys, int bits_per_key = 10);

  void Add(std::string_view key);

  /// False means DEFINITELY absent; true means probably present.
  bool MayContain(std::string_view key) const;

  std::size_t bit_count() const { return bit_count_; }
  int probes() const { return probes_; }

  /// Measured false-positive probability estimate for the current load
  /// (classic (1 - e^(-kn/m))^k formula).
  double EstimatedFalsePositiveRate() const;

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t bit_count_;
  int probes_;
  std::size_t added_ = 0;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_BLOOM_H_

// Replica-local row cache (ISSUE 5).
//
// An LRU cache over (table, key) -> merged Row, shared by every Engine of
// one server. A point read that hits the cache skips the memtable/run merge
// entirely — in the service model that is the difference between
// `perf.read_local` and `perf.read_cached_local`. The cache is invalidated
// on every local apply (client write, hint replay, read-repair push,
// anti-entropy row install, batched replica-write apply), cleared by
// tombstone-purging compactions (a cached row could otherwise resurface
// purged cells), and cleared on crash — it is volatile state.
//
// Determinism: the index is an ordered map and the LRU a plain list, so two
// same-seed runs touch the cache identically. With capacity 0 the cache is
// never constructed and every read takes the exact pre-cache path.

#ifndef MVSTORE_STORAGE_ROW_CACHE_H_
#define MVSTORE_STORAGE_ROW_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <utility>

#include "common/types.h"
#include "storage/row.h"

namespace mvstore::storage {

class RowCache {
 public:
  explicit RowCache(std::size_t capacity);

  RowCache(const RowCache&) = delete;
  RowCache& operator=(const RowCache&) = delete;

  /// The cached merged row, or nullptr on a miss. Bumps the entry to
  /// most-recently-used and counts a hit or a miss.
  const Row* Get(const std::string& table, const Key& key);

  /// Pure probe: true when (table, key) is cached. No LRU bump, no counter —
  /// used by the service model to price a read before it executes.
  bool Contains(const std::string& table, const Key& key) const;

  /// Inserts (or replaces) the merged row, evicting the least-recently-used
  /// entry when full. A zero-capacity cache stores nothing.
  void Put(const std::string& table, const Key& key, Row row);

  /// Drops one entry (a local apply changed the row).
  void Invalidate(const std::string& table, const Key& key);

  /// Drops everything (crash, tombstone-purging compaction).
  void Clear();

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t invalidations() const { return invalidations_; }

 private:
  using CacheKey = std::pair<std::string, Key>;
  struct Entry {
    CacheKey key;
    Row row;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<CacheKey, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_ROW_CACHE_H_

// Immutable sorted runs (in-memory SSTables).
//
// A Run is a sealed, key-sorted array of rows produced by flushing a memtable
// or by compacting older runs. Point lookups binary-search; prefix scans walk
// a contiguous range. Runs never change after construction, which is what
// makes size-tiered compaction and consistent iteration simple.

#ifndef MVSTORE_STORAGE_RUN_H_
#define MVSTORE_STORAGE_RUN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "storage/bloom.h"
#include "storage/row.h"

namespace mvstore::storage {

/// Tombstone-GC accounting for one Merge call (compaction observability and
/// the hint-floor purge guard, ISSUE 5).
struct GcStats {
  std::uint64_t tombstones_purged = 0;
  /// Tombstones past the grace period but retained because a stored hint
  /// proves some replica may not have seen the deletion yet.
  std::uint64_t tombstones_deferred = 0;
};

class Run {
 public:
  /// Builds a run from pre-sorted unique-keyed entries.
  static std::shared_ptr<const Run> FromSorted(std::vector<KeyedRow> entries);

  /// Merges several runs (newest data wins cell-wise; input order is
  /// irrelevant because the cell merge is commutative). Tombstones with
  /// timestamp < `purge_tombstones_before` are dropped; rows left empty are
  /// elided. Tombstones in [`purge_tombstones_before`, `defer_before`) are
  /// KEPT but counted as deferred in `stats` — the caller lowered the purge
  /// threshold below the grace cutoff to protect an unacknowledged delete
  /// (`defer_before` <= `purge_tombstones_before` disables the accounting).
  static std::shared_ptr<const Run> Merge(
      const std::vector<std::shared_ptr<const Run>>& runs,
      Timestamp purge_tombstones_before = kNullTimestamp,
      Timestamp defer_before = kNullTimestamp, GcStats* stats = nullptr);

  /// Point lookup; checks the run's min/max key fence, then the bloom
  /// filter, so misses are usually resolved without touching the entries.
  const Row* Get(const Key& key) const;

  /// True when `prefix` could match a key in [min_key, max_key]. Exact on
  /// the low side (max_key < prefix) and on the high side (min_key already
  /// sorts above every key carrying the prefix).
  bool MayContainPrefix(const Key& prefix) const;

  /// Read-pruning statistics (tests and microbenches).
  std::uint64_t bloom_negatives() const { return bloom_negatives_; }
  /// Lookups and scans rejected by the min/max key fence alone.
  std::uint64_t fence_skips() const { return fence_skips_; }

  /// Key-range fences (empty strings for an empty run).
  const Key& min_key() const { return min_key_; }
  const Key& max_key() const { return max_key_; }

  void ScanPrefix(const Key& prefix,
                  const std::function<void(const Key&, const Row&)>& fn) const;

  void ForEach(
      const std::function<void(const Key&, const Row&)>& fn) const;

  std::size_t entries() const { return entries_.size(); }

  /// The run's entries in key order — raw input for the engine's streaming
  /// k-way merge (no callback per entry, no copies).
  const std::vector<KeyedRow>& sorted_entries() const { return entries_; }

  /// Pointer to the first entry whose key starts with `prefix` (scan forward
  /// until the prefix stops matching); entries_end() when the run's fences
  /// exclude the prefix (counted as a fence skip, like ScanPrefix).
  const KeyedRow* PrefixLowerBound(const Key& prefix) const;
  const KeyedRow* entries_end() const { return entries_.data() + entries_.size(); }

 private:
  explicit Run(std::vector<KeyedRow> entries);

  std::vector<KeyedRow> entries_;
  BloomFilter filter_;
  Key min_key_;
  Key max_key_;
  mutable std::uint64_t bloom_negatives_ = 0;
  mutable std::uint64_t fence_skips_ = 0;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_RUN_H_

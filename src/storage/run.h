// Immutable sorted runs (in-memory SSTables).
//
// A Run is a sealed, key-sorted array of rows produced by flushing a memtable
// or by compacting older runs. Point lookups binary-search; prefix scans walk
// a contiguous range. Runs never change after construction, which is what
// makes size-tiered compaction and consistent iteration simple.

#ifndef MVSTORE_STORAGE_RUN_H_
#define MVSTORE_STORAGE_RUN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "storage/bloom.h"
#include "storage/row.h"

namespace mvstore::storage {

class Run {
 public:
  /// Builds a run from pre-sorted unique-keyed entries.
  static std::shared_ptr<const Run> FromSorted(std::vector<KeyedRow> entries);

  /// Merges several runs (newest data wins cell-wise; input order is
  /// irrelevant because the cell merge is commutative). Tombstones with
  /// timestamp < `purge_tombstones_before` are dropped; rows left empty are
  /// elided.
  static std::shared_ptr<const Run> Merge(
      const std::vector<std::shared_ptr<const Run>>& runs,
      Timestamp purge_tombstones_before = kNullTimestamp);

  /// Point lookup; consults the run's bloom filter first, so misses are
  /// usually resolved without touching the entries.
  const Row* Get(const Key& key) const;

  /// Bloom statistics (tests and microbenches).
  std::uint64_t bloom_negatives() const { return bloom_negatives_; }

  void ScanPrefix(const Key& prefix,
                  const std::function<void(const Key&, const Row&)>& fn) const;

  void ForEach(
      const std::function<void(const Key&, const Row&)>& fn) const;

  std::size_t entries() const { return entries_.size(); }

 private:
  explicit Run(std::vector<KeyedRow> entries);

  std::vector<KeyedRow> entries_;
  BloomFilter filter_;
  mutable std::uint64_t bloom_negatives_ = 0;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_RUN_H_

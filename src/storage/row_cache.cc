#include "storage/row_cache.h"

namespace mvstore::storage {

RowCache::RowCache(std::size_t capacity) : capacity_(capacity) {}

const Row* RowCache::Get(const std::string& table, const Key& key) {
  auto it = index_.find(CacheKey{table, key});
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->row;
}

bool RowCache::Contains(const std::string& table, const Key& key) const {
  return index_.find(CacheKey{table, key}) != index_.end();
}

void RowCache::Put(const std::string& table, const Key& key, Row row) {
  if (capacity_ == 0) return;
  CacheKey ck{table, key};
  auto it = index_.find(ck);
  if (it != index_.end()) {
    it->second->row = std::move(row);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (index_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{ck, std::move(row)});
  index_.emplace(std::move(ck), lru_.begin());
}

void RowCache::Invalidate(const std::string& table, const Key& key) {
  auto it = index_.find(CacheKey{table, key});
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
  ++invalidations_;
}

void RowCache::Clear() {
  invalidations_ += index_.size();
  index_.clear();
  lru_.clear();
}

}  // namespace mvstore::storage

// In-memory write buffer of the storage engine.
//
// All Puts land here first; when the memtable reaches the configured size the
// engine seals it into an immutable sorted Run. Ordered by key to support the
// prefix scans that versioned-view reads need.

#ifndef MVSTORE_STORAGE_MEMTABLE_H_
#define MVSTORE_STORAGE_MEMTABLE_H_

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "storage/row.h"

namespace mvstore::storage {

class MemTable {
 public:
  MemTable() = default;

  /// Applies one cell write with LWW resolution.
  void Apply(const Key& key, const ColumnName& col, const Cell& cell);

  /// Merges a whole row (used by replication/anti-entropy).
  void ApplyRow(const Key& key, const Row& row);
  /// Move form: `row`'s cell buffer is consumed instead of copied.
  void ApplyRow(const Key& key, Row&& row);

  const Row* Get(const Key& key) const;

  /// Calls fn for each (key, row) with the given prefix, in key order.
  void ScanPrefix(const Key& prefix,
                  const std::function<void(const Key&, const Row&)>& fn) const;

  /// Calls fn for every (key, row), in key order.
  void ForEach(
      const std::function<void(const Key&, const Row&)>& fn) const;

  std::size_t entries() const { return rows_.size(); }
  std::size_t cell_count() const { return cell_count_; }
  bool empty() const { return rows_.empty(); }
  void Clear();

  /// Moves every (key, row) out in key order and leaves the memtable empty.
  /// The flush path: rows (and their cell buffers) transfer into the sealed
  /// run without a per-cell copy.
  std::vector<KeyedRow> DrainSorted();

  const std::map<Key, Row>& rows() const { return rows_; }

 private:
  std::map<Key, Row> rows_;
  std::size_t cell_count_ = 0;
};

}  // namespace mvstore::storage

#endif  // MVSTORE_STORAGE_MEMTABLE_H_

#include "storage/cell.h"

namespace mvstore::storage {

bool Supersedes(const Cell& a, const Cell& b) {
  if (a.ts != b.ts) return a.ts > b.ts;
  if (a.tombstone != b.tombstone) return a.tombstone;
  return a.value > b.value;
}

const Cell& MergeCells(const Cell& a, const Cell& b) {
  return Supersedes(a, b) ? a : b;
}

std::ostream& operator<<(std::ostream& os, const Cell& c) {
  if (c.IsNull()) return os << "(null)";
  if (c.tombstone) return os << "(tombstone@" << c.ts << ")";
  return os << "('" << c.value << "'@" << c.ts << ")";
}

}  // namespace mvstore::storage

// Native secondary indexes, modeled after Cassandra's.
//
// Each server keeps a LOCAL index over its OWN replicas, partitioned and
// distributed by the base table's primary key (Section I of the paper). That
// choice is what gives native indexes their performance profile:
//   - maintenance is synchronous and cheap (the indexed data is local), so
//     indexed writes cost about the same as plain writes (Fig 5),
//   - lookups must be broadcast to every server, each of which probes its
//     fragment, so indexed reads are slow and expensive (Fig 3/4).

#ifndef MVSTORE_INDEX_LOCAL_INDEX_H_
#define MVSTORE_INDEX_LOCAL_INDEX_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace mvstore::index {

/// The index fragment for one (table, column) on one server:
/// column value -> set of primary keys whose local replica has that value.
class LocalIndex {
 public:
  LocalIndex(std::string table, ColumnName column)
      : table_(std::move(table)), column_(std::move(column)) {}

  /// Reflects a local cell change: removes the (old_value -> key) posting if
  /// any, adds (new_value -> key) if any. Called synchronously from the
  /// server's local write path, AFTER the write has merged, with the merged
  /// before/after values.
  void Update(const Key& key, const std::optional<Value>& old_value,
              const std::optional<Value>& new_value);

  /// Primary keys whose local replica currently has `value` in the indexed
  /// column.
  std::vector<Key> Lookup(const Value& value) const;

  const std::string& table() const { return table_; }
  const ColumnName& column() const { return column_; }
  std::size_t distinct_values() const { return postings_.size(); }
  std::size_t entries() const { return entries_; }

 private:
  std::string table_;
  ColumnName column_;
  std::map<Value, std::set<Key>> postings_;
  std::size_t entries_ = 0;
};

}  // namespace mvstore::index

#endif  // MVSTORE_INDEX_LOCAL_INDEX_H_

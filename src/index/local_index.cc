#include "index/local_index.h"

namespace mvstore::index {

void LocalIndex::Update(const Key& key, const std::optional<Value>& old_value,
                        const std::optional<Value>& new_value) {
  if (old_value == new_value) return;
  if (old_value) {
    auto it = postings_.find(*old_value);
    if (it != postings_.end() && it->second.erase(key) > 0) {
      --entries_;
      if (it->second.empty()) postings_.erase(it);
    }
  }
  if (new_value) {
    if (postings_[*new_value].insert(key).second) {
      ++entries_;
    }
  }
}

std::vector<Key> LocalIndex::Lookup(const Value& value) const {
  auto it = postings_.find(value);
  if (it == postings_.end()) return {};
  return std::vector<Key>(it->second.begin(), it->second.end());
}

}  // namespace mvstore::index

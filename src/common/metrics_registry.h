// Named-metrics registry: the cluster's single source of observability
// state.
//
// Subsystems register counters and latency histograms by name and keep the
// returned reference; increments stay a single inlined add on a plain
// integer. The registry owns the instruments (node-stable storage), can
// snapshot every instrument at once, diff two snapshots, and export
// deterministically to JSON — two same-seed runs produce byte-identical
// exports, which is what makes metrics diffs trustworthy evidence in perf
// work.

#ifndef MVSTORE_COMMON_METRICS_REGISTRY_H_
#define MVSTORE_COMMON_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace mvstore {

/// A monotonically increasing counter. Behaves like the uint64_t field it
/// replaced: ++, +=, and implicit reads all still compile at the old call
/// sites.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  Counter& operator++() {
    ++value_;
    return *this;
  }
  void operator++(int) { ++value_; }
  Counter& operator+=(std::uint64_t delta) {
    value_ += delta;
    return *this;
  }
  operator std::uint64_t() const { return value_; }  // NOLINT: drop-in read
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const Counter& c) {
  return os << c.value();
}

/// Point-in-time copy of every registered instrument. Histograms are reduced
/// to summary statistics (diffable and cheap to export).
struct MetricsSnapshot {
  struct HistogramStats {
    std::uint64_t count = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    double sum = 0;
    double mean = 0;
    double p50 = 0;
    double p99 = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramStats> histograms;

  /// Deterministic export: keys sorted (std::map order), doubles printed via
  /// JsonFormatDouble.
  std::string ToJson() const;
};

/// after - before, per instrument. Histogram deltas carry the count/sum
/// difference (mean over the interval); min/max/percentiles are cumulative
/// in the inputs and not meaningful as differences, so they are zeroed.
MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter/histogram registered under `name`, creating it on
  /// first use. References stay valid for the registry's lifetime.
  Counter& RegisterCounter(const std::string& name);
  Histogram& RegisterHistogram(const std::string& name);

  /// Instrument lookup without creation (nullptr when absent).
  const Counter* FindCounter(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every instrument (references stay valid).
  void Reset();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Per-interval deltas of a registry, sampled on a caller-driven clock (the
/// cluster ticks it on simulated time). Each point holds the delta since the
/// previous sample, so a run exports as a time series of rates.
class MetricsTimeSeries {
 public:
  struct Point {
    SimTime at = 0;
    MetricsSnapshot delta;
  };

  /// Records the delta since the previous Sample call (the first call only
  /// establishes the baseline).
  void Sample(SimTime now, const MetricsRegistry& registry);

  const std::vector<Point>& points() const { return points_; }

  /// JSON array of {"t_us", "counters", "histograms"}; zero-valued entries
  /// are omitted to keep exports small (deterministically — omission depends
  /// only on the data).
  std::string ToJson() const;

 private:
  bool has_baseline_ = false;
  MetricsSnapshot baseline_;
  std::vector<Point> points_;
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_METRICS_REGISTRY_H_

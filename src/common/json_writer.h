// Deterministic JSON emission.
//
// JsonWriter builds a JSON document as a string, handling commas, key
// quoting, and string escaping. Output is byte-deterministic: the same
// sequence of calls always yields the same bytes (doubles are printed with
// a fixed shortest-round-trip format, never locale-dependent), which is
// what lets same-seed runs assert byte-identical metrics exports.

#ifndef MVSTORE_COMMON_JSON_WRITER_H_
#define MVSTORE_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mvstore {

/// Formats a double deterministically (shortest representation that round-
/// trips, via %.17g then trimming; "0" for zero, no locale effects).
std::string JsonFormatDouble(double value);

/// Escapes and quotes a string for JSON.
std::string JsonQuote(const std::string& s);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key (must be inside an object, before a value).
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(double v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(bool v);

  /// Splices a pre-rendered JSON fragment in value position, verbatim.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once the first element was written
  /// (the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_JSON_WRITER_H_

#include "common/trace.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/json_writer.h"

namespace mvstore {

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

TraceEvent* Tracer::Find(const TraceContext& ctx) {
  if (!ctx) return nullptr;
  auto it = slot_of_.find(ctx.span);
  if (it == slot_of_.end()) return nullptr;
  TraceEvent& event = ring_[it->second];
  // The slot may have been recycled for a newer span after eviction.
  return event.span == ctx.span ? &event : nullptr;
}

TraceContext Tracer::Append(TraceEvent event) {
  const TraceContext ctx{event.trace, event.span};
  ++recorded_;
  if (ring_.size() < capacity_) {
    slot_of_.emplace(event.span, ring_.size());
    ring_.push_back(std::move(event));
    return ctx;
  }
  // Ring full: evict the oldest slot.
  TraceEvent& slot = ring_[next_slot_];
  slot_of_.erase(slot.span);
  slot_of_.emplace(event.span, next_slot_);
  slot = std::move(event);
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++evicted_;
  return ctx;
}

TraceContext Tracer::StartTrace(const std::string& name, int where,
                                SimTime now) {
  if (!enabled()) return TraceContext{};
  TraceEvent event;
  event.trace = ++next_trace_;
  event.span = ++next_span_;
  event.parent = 0;
  event.name = name;
  event.where = where;
  event.start = now;
  return Append(std::move(event));
}

TraceContext Tracer::StartSpan(const TraceContext& parent,
                               const std::string& name, int where,
                               SimTime now) {
  if (!enabled() || !parent) return TraceContext{};
  TraceEvent event;
  event.trace = parent.trace;
  event.span = ++next_span_;
  event.parent = parent.span;
  event.name = name;
  event.where = where;
  event.start = now;
  return Append(std::move(event));
}

void Tracer::EndSpan(const TraceContext& ctx, SimTime now) {
  if (TraceEvent* event = Find(ctx)) event->end = now;
}

void Tracer::Annotate(const TraceContext& ctx, const std::string& note) {
  TraceEvent* event = Find(ctx);
  if (event == nullptr) return;
  if (!event->note.empty()) event->note += "; ";
  event->note += note;
}

std::vector<TraceEvent> Tracer::Collect(TraceId trace) const {
  std::vector<TraceEvent> events;
  if (trace == 0) return events;
  for (const TraceEvent& event : ring_) {
    if (event.trace == trace) events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.span < b.span;
            });
  return events;
}

bool Tracer::IsConnected(TraceId trace) const {
  const std::vector<TraceEvent> events = Collect(trace);
  if (events.empty()) return false;
  std::set<SpanId> spans;
  for (const TraceEvent& event : events) spans.insert(event.span);
  int roots = 0;
  for (const TraceEvent& event : events) {
    if (event.parent == 0) {
      ++roots;
    } else if (spans.count(event.parent) == 0) {
      return false;  // orphan: parent missing (evicted or foreign)
    }
  }
  return roots == 1;
}

std::string Tracer::DumpJson(TraceId trace) const {
  JsonWriter json;
  json.BeginObject();
  json.Key("trace").Value(trace);
  json.Key("events").BeginArray();
  for (const TraceEvent& event : Collect(trace)) {
    json.BeginObject();
    json.Key("span").Value(event.span);
    json.Key("parent").Value(event.parent);
    json.Key("name").Value(event.name);
    json.Key("where").Value(event.where);
    json.Key("start_us").Value(event.start);
    json.Key("end_us").Value(event.end);
    if (!event.note.empty()) json.Key("note").Value(event.note);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace mvstore

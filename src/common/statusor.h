// StatusOr<T>: the result of a fallible operation that yields a T on success.
//
// Mirrors absl::StatusOr in spirit: holds either an OK Status plus a value,
// or a non-OK Status. Accessing the value of an error StatusOr aborts the
// process (library invariant violation), so callers must check ok() first.

#ifndef MVSTORE_COMMON_STATUSOR_H_
#define MVSTORE_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace mvstore {

template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK (an OK status with no
  /// value is meaningless).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    MVSTORE_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MVSTORE_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    MVSTORE_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    MVSTORE_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a StatusOr<T>), propagating its error to the caller; on
// success assigns the value to `lhs`.
#define MVSTORE_ASSIGN_OR_RETURN(lhs, rexpr)           \
  MVSTORE_ASSIGN_OR_RETURN_IMPL_(                      \
      MVSTORE_STATUS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define MVSTORE_STATUS_CONCAT_INNER_(a, b) a##b
#define MVSTORE_STATUS_CONCAT_(a, b) MVSTORE_STATUS_CONCAT_INNER_(a, b)
#define MVSTORE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace mvstore

#endif  // MVSTORE_COMMON_STATUSOR_H_

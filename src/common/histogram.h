// Latency statistics.
//
// Histogram records non-negative integer samples (simulated microseconds)
// into exponentially sized buckets, supporting approximate percentiles with
// bounded relative error, plus exact count / sum / min / max.

#ifndef MVSTORE_COMMON_HISTOGRAM_H_
#define MVSTORE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mvstore {

class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative samples are clamped to zero.
  void Record(std::int64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const { return max_; }
  double sum() const { return sum_; }
  double Mean() const;

  /// Approximate p-th percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }

  /// One-line summary, e.g. "n=100 mean=4.2 p50=4 p99=9 max=12".
  std::string Summary() const;

 private:
  // Buckets: [0], [1], ..., [15], then ~8% geometric growth. Index for a
  // value is found by binary search over precomputed bounds.
  static const std::vector<std::int64_t>& BucketBounds();
  static std::size_t BucketFor(std::int64_t value);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_;
  double sum_;
  std::int64_t min_;
  std::int64_t max_;
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_HISTOGRAM_H_

// Key interning: byte strings to fixed-size handles.
//
// Row keys, column names, and partition prefixes recur constantly — every
// routing decision, view-maintenance step, and anti-entropy comparison
// re-hashes and re-compares the same few byte strings. Interning maps each
// distinct string to a stable 32-bit KeyRef: equality is an integer compare,
// the 64-bit hash (common/hash.h, the same function data placement uses) is
// computed once at intern time and read back in O(1), and the bytes live in
// an arena so a KeyRef's string_view stays valid for the interner's
// lifetime.
//
// Ownership rule: a KeyRef is a handle INTO one KeyInterner — it is only
// meaningful alongside the interner that produced it, and it never expires
// (interners don't evict). Components that model crashes must treat the
// interner as durable metadata or re-intern after restart; nothing in the
// storage fault model (engine.h) stores KeyRefs across LoseVolatileState.

#ifndef MVSTORE_COMMON_INTERNER_H_
#define MVSTORE_COMMON_INTERNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/arena.h"

namespace mvstore {

/// Fixed-size handle to an interned string. Two KeyRefs from the same
/// interner are equal iff their strings are byte-equal.
struct KeyRef {
  static constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

  std::uint32_t id = kInvalidId;

  bool valid() const { return id != kInvalidId; }

  friend bool operator==(KeyRef a, KeyRef b) { return a.id == b.id; }
  friend bool operator!=(KeyRef a, KeyRef b) { return a.id != b.id; }
  friend bool operator<(KeyRef a, KeyRef b) { return a.id < b.id; }
};

class KeyInterner {
 public:
  struct Options {
    /// Initial open-addressing table capacity (rounded up to a power of
    /// two). The table grows at 3/4 load; sizing it for the expected
    /// distinct-key count avoids rehashes.
    std::size_t initial_capacity = 1024;
    /// Block size of the arena holding the interned bytes.
    std::size_t arena_block_bytes = 64 * 1024;
  };

  KeyInterner();
  explicit KeyInterner(Options options);

  KeyInterner(const KeyInterner&) = delete;
  KeyInterner& operator=(const KeyInterner&) = delete;

  /// The handle for `s`, interning it on first sight.
  KeyRef Intern(std::string_view s);

  /// The handle for `s` if already interned; KeyRef{} otherwise. Never
  /// allocates — probe-only lookups for read paths.
  KeyRef Find(std::string_view s) const;

  /// The interned bytes. Valid for the interner's lifetime.
  std::string_view View(KeyRef ref) const {
    return entries_[ref.id].bytes;
  }

  /// The string's Hash64, computed once at intern time.
  std::uint64_t HashOf(KeyRef ref) const { return entries_[ref.id].hash; }

  std::size_t size() const { return entries_.size(); }
  std::size_t arena_bytes() const { return arena_.bytes_used(); }

 private:
  struct Entry {
    std::string_view bytes;  // owned by arena_
    std::uint64_t hash = 0;
  };

  /// Index into slots_ where `s` lives or would be inserted.
  std::size_t Probe(std::string_view s, std::uint64_t hash) const;
  void GrowTable();

  Arena arena_;
  std::vector<Entry> entries_;            // indexed by KeyRef::id
  std::vector<std::uint32_t> slots_;      // open addressing; kInvalidId = empty
  std::size_t mask_ = 0;                  // slots_.size() - 1 (power of two)
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_INTERNER_H_

#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace mvstore {

const std::vector<std::int64_t>& Histogram::BucketBounds() {
  // Upper bound (inclusive) of each bucket. Never destroyed (static storage
  // duration objects with non-trivial destructors are avoided by leaking).
  static const auto& bounds = *new std::vector<std::int64_t>([] {
    std::vector<std::int64_t> b;
    for (std::int64_t v = 0; v < 16; ++v) b.push_back(v);
    double v = 16;
    while (v < 4e15) {
      b.push_back(static_cast<std::int64_t>(v));
      v *= 1.08;
    }
    b.push_back(std::numeric_limits<std::int64_t>::max());
    return b;
  }());
  return bounds;
}

std::size_t Histogram::BucketFor(std::int64_t value) {
  const auto& bounds = BucketBounds();
  auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

Histogram::Histogram()
    : buckets_(BucketBounds().size(), 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<std::int64_t>::max()),
      max_(std::numeric_limits<std::int64_t>::min()) {}

void Histogram::Record(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += static_cast<double>(value);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  MVSTORE_CHECK_EQ(buckets_.size(), other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<std::int64_t>::max();
  max_ = std::numeric_limits<std::int64_t>::min();
}

std::int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target && buckets_[i] > 0) {
      // Report the bucket's upper bound, clamped to observed extremes.
      const std::int64_t bound = BucketBounds()[i];
      return static_cast<double>(std::clamp(bound, min_, max_));
    }
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ > 0) {
    os << " mean=" << Mean() << " p50=" << Percentile(50)
       << " p99=" << Percentile(99) << " max=" << max_;
  }
  return os.str();
}

}  // namespace mvstore

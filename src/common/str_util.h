// Small string formatting helpers used by examples and bench tables.

#ifndef MVSTORE_COMMON_STR_UTIL_H_
#define MVSTORE_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mvstore {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Zero-padded decimal rendering of `v` to `width` digits. Used to build
/// lexicographically ordered numeric keys, e.g. PaddedInt(7, 8) == "00000007".
std::string PaddedInt(std::uint64_t v, int width);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

}  // namespace mvstore

#endif  // MVSTORE_COMMON_STR_UTIL_H_

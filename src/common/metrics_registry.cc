#include "common/metrics_registry.h"

#include <utility>

#include "common/json_writer.h"

namespace mvstore {

Counter& MetricsRegistry::RegisterCounter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::RegisterHistogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = hist->count();
    if (stats.count > 0) {
      stats.min = hist->min();
      stats.max = hist->max();
      stats.sum = hist->sum();
      stats.mean = hist->Mean();
      stats.p50 = hist->Percentile(50);
      stats.p99 = hist->Percentile(99);
    }
    snap.histograms.emplace(name, stats);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

namespace {

void WriteHistogramStats(JsonWriter& json,
                         const MetricsSnapshot::HistogramStats& stats) {
  json.BeginObject();
  json.Key("count").Value(stats.count);
  json.Key("min").Value(stats.min);
  json.Key("max").Value(stats.max);
  json.Key("sum").Value(stats.sum);
  json.Key("mean").Value(stats.mean);
  json.Key("p50").Value(stats.p50);
  json.Key("p99").Value(stats.p99);
  json.EndObject();
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    json.Key(name).Value(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, stats] : histograms) {
    json.Key(name);
    WriteHistogramStats(json, stats);
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

MetricsSnapshot Delta(const MetricsSnapshot& before,
                      const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    const std::uint64_t prior = it == before.counters.end() ? 0 : it->second;
    delta.counters.emplace(name, value - prior);
  }
  for (const auto& [name, stats] : after.histograms) {
    MetricsSnapshot::HistogramStats d;
    auto it = before.histograms.find(name);
    const std::uint64_t prior_count =
        it == before.histograms.end() ? 0 : it->second.count;
    const double prior_sum = it == before.histograms.end() ? 0 : it->second.sum;
    d.count = stats.count - prior_count;
    d.sum = stats.sum - prior_sum;
    d.mean = d.count > 0 ? d.sum / static_cast<double>(d.count) : 0;
    delta.histograms.emplace(name, d);
  }
  return delta;
}

void MetricsTimeSeries::Sample(SimTime now, const MetricsRegistry& registry) {
  MetricsSnapshot snap = registry.Snapshot();
  if (has_baseline_) {
    points_.push_back(Point{now, Delta(baseline_, snap)});
  }
  baseline_ = std::move(snap);
  has_baseline_ = true;
}

std::string MetricsTimeSeries::ToJson() const {
  JsonWriter json;
  json.BeginArray();
  for (const Point& point : points_) {
    json.BeginObject();
    json.Key("t_us").Value(point.at);
    json.Key("counters").BeginObject();
    for (const auto& [name, value] : point.delta.counters) {
      if (value != 0) json.Key(name).Value(value);
    }
    json.EndObject();
    json.Key("histograms").BeginObject();
    for (const auto& [name, stats] : point.delta.histograms) {
      if (stats.count == 0) continue;
      json.Key(name).BeginObject();
      json.Key("count").Value(stats.count);
      json.Key("mean").Value(stats.mean);
      json.EndObject();
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

}  // namespace mvstore

#include "common/hash.h"

#include <cstring>

namespace mvstore {

namespace {

inline std::uint64_t Fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

inline std::uint64_t Load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::uint64_t Hash64(std::string_view data, std::uint64_t seed) {
  // MurmurHash2-64A variant.
  constexpr std::uint64_t kMul = 0xC6A4A7935BD1E995ull;
  constexpr int kShift = 47;

  std::uint64_t h = seed ^ (data.size() * kMul);
  const char* p = data.data();
  const char* end = p + (data.size() & ~std::size_t{7});

  while (p != end) {
    std::uint64_t k = Load64(p);
    k *= kMul;
    k ^= k >> kShift;
    k *= kMul;
    h ^= k;
    h *= kMul;
    p += 8;
  }

  const std::size_t tail = data.size() & 7;
  if (tail != 0) {
    std::uint64_t k = 0;
    std::memcpy(&k, p, tail);
    h ^= k;
    h *= kMul;
  }

  return Fmix64(h);
}

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return Fmix64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

}  // namespace mvstore

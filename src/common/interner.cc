#include "common/interner.h"

#include "common/hash.h"
#include "common/logging.h"

namespace mvstore {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

KeyInterner::KeyInterner() : KeyInterner(Options()) {}

KeyInterner::KeyInterner(Options options)
    : arena_(options.arena_block_bytes) {
  const std::size_t capacity =
      RoundUpPow2(options.initial_capacity < 16 ? 16 : options.initial_capacity);
  slots_.assign(capacity, KeyRef::kInvalidId);
  mask_ = capacity - 1;
}

std::size_t KeyInterner::Probe(std::string_view s, std::uint64_t hash) const {
  // Linear probing: the table is power-of-two sized and kept under 3/4
  // load, so clusters stay short and the scan is cache-friendly.
  std::size_t i = static_cast<std::size_t>(hash) & mask_;
  while (true) {
    const std::uint32_t id = slots_[i];
    if (id == KeyRef::kInvalidId) return i;
    const Entry& entry = entries_[id];
    if (entry.hash == hash && entry.bytes == s) return i;
    i = (i + 1) & mask_;
  }
}

KeyRef KeyInterner::Intern(std::string_view s) {
  const std::uint64_t hash = Hash64(s);
  std::size_t slot = Probe(s, hash);
  if (slots_[slot] != KeyRef::kInvalidId) return KeyRef{slots_[slot]};
  if ((entries_.size() + 1) * 4 > slots_.size() * 3) {
    GrowTable();
    slot = Probe(s, hash);
  }
  MVSTORE_CHECK_LT(entries_.size(), KeyRef::kInvalidId);
  const auto id = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(Entry{arena_.Copy(s), hash});
  slots_[slot] = id;
  return KeyRef{id};
}

KeyRef KeyInterner::Find(std::string_view s) const {
  const std::size_t slot = Probe(s, Hash64(s));
  return KeyRef{slots_[slot]};
}

void KeyInterner::GrowTable() {
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(old.size() * 2, KeyRef::kInvalidId);
  mask_ = slots_.size() - 1;
  for (std::uint32_t id : old) {
    if (id == KeyRef::kInvalidId) continue;
    const Entry& entry = entries_[id];
    std::size_t i = static_cast<std::size_t>(entry.hash) & mask_;
    while (slots_[i] != KeyRef::kInvalidId) i = (i + 1) & mask_;
    slots_[i] = id;
  }
}

}  // namespace mvstore

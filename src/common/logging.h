// Minimal logging and assertion macros.
//
// MVSTORE_CHECK(cond) << "context";   aborts with the message if cond fails.
// MVSTORE_LOG(INFO) << "message";     writes to stderr, filtered by level.
//
// Logging is intentionally tiny: the library runs inside a deterministic
// simulation, so structured logging frameworks would be overkill. Severity
// filtering is controlled at runtime via SetLogLevel.

#ifndef MVSTORE_COMMON_LOGGING_H_
#define MVSTORE_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>

namespace mvstore {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity emitted by MVSTORE_LOG. Default: kWarning
/// (benches and tests stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal);
  ~LogMessage();  // emits the message; aborts if fatal

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

// Turns the result of streaming into void so it can appear in a ternary
// expression alongside (void)0.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace mvstore

#define MVSTORE_LOG(severity)                                             \
  ::mvstore::internal_logging::LogMessage(                                \
      ::mvstore::LogLevel::k##severity, __FILE__, __LINE__, false)        \
      .stream()

// Fatal assertion: aborts the process with the streamed context when the
// condition is false. Used for library invariants, never for user errors
// (those return Status).
#define MVSTORE_CHECK(cond)                                               \
  (cond) ? static_cast<void>(0)                                           \
         : ::mvstore::internal_logging::Voidify() &                       \
               ::mvstore::internal_logging::LogMessage(                   \
                   ::mvstore::LogLevel::kError, __FILE__, __LINE__, true) \
                   .stream()                                              \
               << "Check failed: " #cond " "

#define MVSTORE_CHECK_EQ(a, b) \
  MVSTORE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVSTORE_CHECK_NE(a, b) \
  MVSTORE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVSTORE_CHECK_LE(a, b) \
  MVSTORE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVSTORE_CHECK_LT(a, b) \
  MVSTORE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVSTORE_CHECK_GE(a, b) \
  MVSTORE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MVSTORE_CHECK_GT(a, b) \
  MVSTORE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // MVSTORE_COMMON_LOGGING_H_

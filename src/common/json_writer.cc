#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

namespace mvstore {

std::string JsonFormatDouble(double value) {
  if (value == 0.0) return "0";  // covers -0.0 too
  if (!std::isfinite(value)) return value > 0 ? "1e999" : "-1e999";
  // Find the shortest %.*g precision that round-trips, so "4" prints as "4"
  // and not "4.0000000000000000". Deterministic for a given bit pattern.
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buf;
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted its comma
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_.push_back(',');
    has_element_.back() = true;
  }
  out_ += JsonQuote(key);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_ += JsonQuote(v);
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) {
  return Value(std::string(v));
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  out_ += JsonFormatDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace mvstore

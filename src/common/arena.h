// Block bump allocator.
//
// Backs the key interner (common/interner.h) and per-engine scratch pools:
// many small byte strings with identical lifetime are carved out of a few
// large blocks, so allocation is a pointer bump and deallocation is freeing
// the blocks. Nothing allocated from an Arena is individually freed — the
// owner drops everything at once (Reset) or never (interned keys live for
// the process).

#ifndef MVSTORE_COMMON_ARENA_H_
#define MVSTORE_COMMON_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace mvstore {

class Arena {
 public:
  /// `block_bytes` is the granularity of the backing allocations; requests
  /// larger than a block get a dedicated oversized block.
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` bytes (byte-aligned; this arena serves
  /// string payloads, not typed objects).
  char* Allocate(std::size_t n) {
    if (n > remaining_) Grow(n);
    char* out = next_;
    next_ += n;
    remaining_ -= n;
    bytes_used_ += n;
    return out;
  }

  /// Copies `s` into the arena and returns a view of the stable copy.
  std::string_view Copy(std::string_view s) {
    if (s.empty()) return {};
    char* dst = Allocate(s.size());
    std::memcpy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  /// Drops every allocation and all blocks. Invalidates every pointer and
  /// view previously handed out.
  void Reset() {
    blocks_.clear();
    next_ = nullptr;
    remaining_ = 0;
    bytes_used_ = 0;
  }

  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t blocks() const { return blocks_.size(); }
  std::size_t block_bytes() const { return block_bytes_; }

 private:
  void Grow(std::size_t min_bytes) {
    const std::size_t size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    blocks_.push_back(std::make_unique<char[]>(size));
    next_ = blocks_.back().get();
    remaining_ = size;
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* next_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t bytes_used_ = 0;
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_ARENA_H_

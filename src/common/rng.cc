#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace mvstore {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next()); }

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  MVSTORE_CHECK_LE(lo, hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull / range) * range;
  std::uint64_t r = Next();
  while (r >= limit) r = Next();
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  MVSTORE_CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * Normal());
}

bool Rng::Chance(double p) { return NextDouble() < p; }

namespace {
double Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  MVSTORE_CHECK_GE(n, 1u);
  MVSTORE_CHECK_GE(theta, 0.0);
  MVSTORE_CHECK(theta < 1.0) << "theta must be in [0,1) for this generator";
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

std::uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace mvstore

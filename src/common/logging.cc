#include "common/logging.h"

#include <cstdlib>

namespace mvstore {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= g_log_level) {
  if (enabled_) {
    // Strip directories from the file name for readability.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace mvstore

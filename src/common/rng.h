// Deterministic pseudo-random number generation.
//
// All randomness in the simulator flows through Rng instances seeded from the
// experiment configuration, so every run is exactly reproducible. The core
// generator is xoshiro256**, seeded via splitmix64.

#ifndef MVSTORE_COMMON_RNG_H_
#define MVSTORE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace mvstore {

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  /// Creates an independent generator derived from this one's seed stream.
  /// Used to give each simulated component its own stream so that adding a
  /// component does not perturb the randomness seen by the others.
  Rng Fork();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  /// Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Bernoulli trial.
  bool Chance(double p);

  /// Uniformly shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, i - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

/// Zipfian distribution over {0, ..., n-1} with skew parameter theta
/// (theta = 0 is uniform; YCSB uses 0.99). Uses the Gray et al. rejection-
/// free method with precomputed zeta constants.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  /// Draws the next rank; rank 0 is the most popular item.
  std::uint64_t Next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_RNG_H_

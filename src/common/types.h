// Fundamental types shared across mvstore.
//
// Terminology follows the paper's generic system model (Section II):
// a *table* maps a *key* to a record of named *columns*; each (key, column)
// pair is a *cell* holding a value and an application-supplied timestamp.

#ifndef MVSTORE_COMMON_TYPES_H_
#define MVSTORE_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace mvstore {

/// Primary (or view) key of a record. Keys are opaque byte strings; ordering
/// is lexicographic.
using Key = std::string;

/// Name of a column within a record.
using ColumnName = std::string;

/// Cell payload. NULL values are represented by tombstones (see
/// storage/cell.h), never by a distinguished Value.
using Value = std::string;

/// Application-supplied update timestamp (microseconds by convention).
/// Put operations carry timestamps; last-writer-wins resolution compares
/// them. kNullTimestamp orders before every real timestamp — it is the
/// timestamp of a never-written cell.
using Timestamp = std::int64_t;
inline constexpr Timestamp kNullTimestamp =
    std::numeric_limits<Timestamp>::min();

/// Identifies a server in the cluster. Dense, 0-based.
using ServerId = std::uint32_t;
inline constexpr ServerId kInvalidServer =
    std::numeric_limits<ServerId>::max();

/// Simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

/// Convenience conversions for simulated durations.
constexpr SimTime Micros(std::int64_t us) { return us; }
constexpr SimTime Millis(std::int64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(std::int64_t s) { return s * 1000 * 1000; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace mvstore

#endif  // MVSTORE_COMMON_TYPES_H_

#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace mvstore {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string PaddedInt(std::uint64_t v, int width) {
  std::string digits = std::to_string(v);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<std::size_t>(width) - digits.size(), '0') +
         digits;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

}  // namespace mvstore

// Causal tracing for simulated operations.
//
// A trace is a tree of spans minted at a client operation and carried
// through every asynchronous hop the operation causes: coordinator service,
// replica messages, hinted handoff, anti-entropy, and view-propagation tasks
// (including chain hops and lock waits). Spans record simulated timestamps
// into a bounded per-cluster ring buffer, so one ViewGet-after-Put can be
// reconstructed as a complete causal timeline — and because everything is
// simulated, two same-seed runs produce identical traces.
//
// Propagation is hybrid. The Tracer keeps an AMBIENT current context, saved
// and restored by the RAII Scope: the network and the service queues wrap
// each delivery in a Scope for the hop's span, so a chain of sends and
// enqueues nests automatically with no per-call plumbing. The ambient
// context does NOT survive a bare Simulation::After (a timer is not a causal
// hop); code that defers work across a timer and wants the causality edge
// captures the context explicitly (propagation dispatch, retries, read
// spins, session deferrals).

#ifndef MVSTORE_COMMON_TRACE_H_
#define MVSTORE_COMMON_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace mvstore {

using TraceId = std::uint64_t;  ///< 0 = not traced
using SpanId = std::uint64_t;   ///< 0 = none

/// The pair that travels with work: which trace, and which span new child
/// spans should hang off.
struct TraceContext {
  TraceId trace = 0;
  SpanId span = 0;
  explicit operator bool() const { return trace != 0; }
};

/// One recorded span. `end == 0` means the span never finished (dropped
/// message, crashed server, still running at collection time).
struct TraceEvent {
  TraceId trace = 0;
  SpanId span = 0;
  SpanId parent = 0;  ///< 0 = root of its trace
  std::string name;
  int where = -1;  ///< endpoint id the span executed at; -1 = unknown/client
  SimTime start = 0;
  SimTime end = 0;
  std::string note;
};

class Tracer {
 public:
  /// `capacity` bounds the event ring buffer; 0 disables tracing entirely
  /// (every operation becomes a no-op returning a null context).
  explicit Tracer(std::size_t capacity = 65536);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return capacity_ > 0; }

  /// Opens a new root span in a fresh trace.
  TraceContext StartTrace(const std::string& name, int where, SimTime now);

  /// Opens a child span of `parent`. Null parent (or disabled tracer) is a
  /// no-op returning a null context, so call sites need no guards.
  TraceContext StartSpan(const TraceContext& parent, const std::string& name,
                         int where, SimTime now);

  void EndSpan(const TraceContext& ctx, SimTime now);

  /// Appends a note to the span's annotation string ("; "-separated).
  void Annotate(const TraceContext& ctx, const std::string& note);

  /// The ambient context new hops inherit (see file comment).
  const TraceContext& current() const { return current_; }

  /// RAII installer for the ambient context.
  class Scope {
   public:
    Scope(Tracer* tracer, const TraceContext& ctx) : tracer_(tracer) {
      if (tracer_ != nullptr) {
        saved_ = tracer_->current_;
        tracer_->current_ = ctx;
      }
    }
    ~Scope() {
      if (tracer_ != nullptr) tracer_->current_ = saved_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
    TraceContext saved_;
  };

  /// All still-buffered events of `trace`, ordered by (start, span id).
  std::vector<TraceEvent> Collect(TraceId trace) const;

  /// True when the trace is non-empty, has exactly one root, and every
  /// non-root event's parent is itself present — i.e. the events form one
  /// connected span tree.
  bool IsConnected(TraceId trace) const;

  /// Deterministic JSON dump: {"trace": id, "events": [...]}.
  std::string DumpJson(TraceId trace) const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t evicted() const { return evicted_; }

 private:
  /// Slot of a still-buffered span, or nullptr if evicted/unknown.
  TraceEvent* Find(const TraceContext& ctx);

  TraceContext Append(TraceEvent event);

  std::size_t capacity_;
  TraceContext current_;
  std::uint64_t next_trace_ = 0;
  std::uint64_t next_span_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  /// Fixed-capacity ring; `next_slot_` is the eviction cursor once full.
  std::vector<TraceEvent> ring_;
  std::size_t next_slot_ = 0;
  std::map<SpanId, std::size_t> slot_of_;
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_TRACE_H_

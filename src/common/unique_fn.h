// Move-only callable wrapper with a large inline buffer.
//
// The simulator stores every scheduled event, network delivery, and service
// completion as a closure. With std::function those closures must be
// copyable — forcing captured payloads (rows, batched write vectors) to be
// copyable too — and anything beyond a couple of words heap-allocates per
// event. UniqueFn lifts both limits: captures may be move-only (payload
// vectors ride through Network::Send without a copy), and closures up to
// kInlineBytes live inside the event record itself, so scheduling the
// common timer/completion closures does not allocate.

#ifndef MVSTORE_COMMON_UNIQUE_FN_H_
#define MVSTORE_COMMON_UNIQUE_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mvstore {

template <typename Signature>
class UniqueFn;

template <typename R, typename... Args>
class UniqueFn<R(Args...)> {
 public:
  /// Sized so a typical simulator closure (an object pointer, a couple of
  /// ids, a trace context) fits without touching the heap, while the whole
  /// wrapper stays one cache line.
  static constexpr std::size_t kInlineBytes = 56;

  UniqueFn() noexcept = default;
  /*implicit*/ UniqueFn(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  /*implicit*/ UniqueFn(F&& fn) {
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFn(UniqueFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  UniqueFn& operator=(UniqueFn&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFn& operator=(std::nullptr_t) noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
    return *this;
  }

  ~UniqueFn() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    /// Move-constructs into `dst` and destroys `src` (both point at the
    /// inline buffer; heap targets just relocate the owning pointer).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self, Args&&... args) -> R {
        return (*static_cast<D*>(self))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        D* d = static_cast<D*>(src);
        ::new (dst) D(std::move(*d));
        d->~D();
      },
      [](void* self) noexcept { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* self, Args&&... args) -> R {
        return (**static_cast<D**>(self))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        *static_cast<D**>(dst) = *static_cast<D**>(src);
      },
      [](void* self) noexcept { delete *static_cast<D**>(self); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace mvstore

#endif  // MVSTORE_COMMON_UNIQUE_FN_H_

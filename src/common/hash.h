// Hashing utilities.
//
// Record placement on the consistent-hash ring and secondary-index bucketing
// use a 64-bit MurmurHash3-style finalizer-quality hash over byte strings.

#ifndef MVSTORE_COMMON_HASH_H_
#define MVSTORE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace mvstore {

/// 64-bit hash of an arbitrary byte string (xxhash-like construction).
/// Stable across runs and platforms; used for data placement, so changing it
/// changes the partitioning of every simulated cluster.
std::uint64_t Hash64(std::string_view data, std::uint64_t seed = 0);

/// Mixes two 64-bit values (for composing hashes).
std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b);

}  // namespace mvstore

#endif  // MVSTORE_COMMON_HASH_H_

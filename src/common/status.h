// Error handling primitives for mvstore.
//
// The library does not use exceptions. Fallible operations return a Status
// (or a StatusOr<T>, see statusor.h) that callers must inspect. The design
// follows the conventions of absl::Status / arrow::Status: a Status is a
// cheap value type carrying an error code and a human-readable message.

#ifndef MVSTORE_COMMON_STATUS_H_
#define MVSTORE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mvstore {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,         // requested record / table / row does not exist
  kAlreadyExists = 2,    // create of an existing table / view / index
  kInvalidArgument = 3,  // caller error: bad quorum, bad column set, ...
  kFailedPrecondition = 4,  // operation not valid in the current state
  kUnavailable = 5,      // quorum not reachable / server down
  kTimedOut = 6,         // operation exceeded its deadline
  kAborted = 7,          // lost a conflict and should be retried
  kInternal = 8,         // invariant violation inside the library
};

/// Returns the canonical lowercase name of a status code ("ok", "not_found").
const char* StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK Status to the caller. Usable in functions returning
// Status.
#define MVSTORE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::mvstore::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace mvstore

#endif  // MVSTORE_COMMON_STATUS_H_

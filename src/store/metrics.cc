#include "store/metrics.h"

namespace mvstore::store {

Metrics::Metrics()
    : client_gets(registry.RegisterCounter("client_gets")),
      client_puts(registry.RegisterCounter("client_puts")),
      client_view_gets(registry.RegisterCounter("client_view_gets")),
      client_index_gets(registry.RegisterCounter("client_index_gets")),
      replica_reads(registry.RegisterCounter("replica_reads")),
      replica_writes(registry.RegisterCounter("replica_writes")),
      read_repairs(registry.RegisterCounter("read_repairs")),
      quorum_failures(registry.RegisterCounter("quorum_failures")),
      coordinator_retries(registry.RegisterCounter("coordinator_retries")),
      replica_write_batches(
          registry.RegisterCounter("replica_write_batches")),
      anti_entropy_rows_pushed(
          registry.RegisterCounter("anti_entropy_rows_pushed")),
      anti_entropy_digest_exchanges(
          registry.RegisterCounter("anti_entropy_digest_exchanges")),
      anti_entropy_buckets_synced(
          registry.RegisterCounter("anti_entropy_buckets_synced")),
      hints_stored(registry.RegisterCounter("hints_stored")),
      hints_replayed(registry.RegisterCounter("hints_replayed")),
      hints_dropped(registry.RegisterCounter("hints_dropped")),
      index_updates(registry.RegisterCounter("index_updates")),
      index_fragment_probes(
          registry.RegisterCounter("index_fragment_probes")),
      propagations_started(registry.RegisterCounter("propagations_started")),
      propagations_completed(
          registry.RegisterCounter("propagations_completed")),
      propagation_failures(registry.RegisterCounter("propagation_failures")),
      stale_rows_created(registry.RegisterCounter("stale_rows_created")),
      live_row_switches(registry.RegisterCounter("live_row_switches")),
      chain_hops(registry.RegisterCounter("chain_hops")),
      lock_waits(registry.RegisterCounter("lock_waits")),
      propagations_abandoned(
          registry.RegisterCounter("propagations_abandoned")),
      prop_batched(registry.RegisterCounter("prop_batched")),
      view_get_deferrals(registry.RegisterCounter("view_get_deferrals")),
      view_get_spins(registry.RegisterCounter("view_get_spins")),
      stale_rows_filtered(registry.RegisterCounter("stale_rows_filtered")),
      row_cache_hits(registry.RegisterCounter("row_cache_hits")),
      row_cache_misses(registry.RegisterCounter("row_cache_misses")),
      compactions_run(registry.RegisterCounter("compactions_run")),
      tombstones_purged(registry.RegisterCounter("tombstones_purged")),
      tombstone_purge_deferred(
          registry.RegisterCounter("tombstone_purge_deferred")),
      server_crashes(registry.RegisterCounter("server_crashes")),
      server_restarts(registry.RegisterCounter("server_restarts")),
      wal_cells_replayed(registry.RegisterCounter("wal_cells_replayed")),
      locks_expired(registry.RegisterCounter("locks_expired")),
      inflight_ops_aborted(registry.RegisterCounter("inflight_ops_aborted")),
      propagations_orphaned(
          registry.RegisterCounter("propagations_orphaned")),
      orphaned_propagations_recovered(
          registry.RegisterCounter("orphaned_propagations_recovered")),
      member_joins_started(registry.RegisterCounter("member_joins_started")),
      member_joins_completed(
          registry.RegisterCounter("member_joins_completed")),
      member_leaves_started(
          registry.RegisterCounter("member_leaves_started")),
      member_leaves_completed(
          registry.RegisterCounter("member_leaves_completed")),
      member_ranges_streamed(
          registry.RegisterCounter("member_ranges_streamed")),
      member_rows_streamed(registry.RegisterCounter("member_rows_streamed")),
      member_stream_retries(
          registry.RegisterCounter("member_stream_retries")),
      member_hints_rerouted(
          registry.RegisterCounter("member_hints_rerouted")),
      member_ops_retargeted(
          registry.RegisterCounter("member_ops_retargeted")),
      member_drains_forced(registry.RegisterCounter("member_drains_forced")),
      get_latency(registry.RegisterHistogram("get_latency")),
      put_latency(registry.RegisterHistogram("put_latency")),
      view_get_latency(registry.RegisterHistogram("view_get_latency")),
      index_get_latency(registry.RegisterHistogram("index_get_latency")),
      propagation_delay(registry.RegisterHistogram("propagation_delay")),
      stage_queue_wait(registry.RegisterHistogram("stage_queue_wait")),
      stage_service(registry.RegisterHistogram("stage_service")),
      stage_network(registry.RegisterHistogram("stage_network")),
      stage_batch_flush(registry.RegisterHistogram("stage_batch_flush")),
      stage_compaction(registry.RegisterHistogram("stage_compaction")) {}

}  // namespace mvstore::store

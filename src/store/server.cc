#include "store/server.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "store/codec.h"

namespace mvstore::store {

Server::Server(ServerId id, sim::Simulation* sim, sim::Network* network,
               const Schema* schema, const Ring* ring,
               const ClusterConfig* config, Metrics* metrics, Tracer* tracer)
    : id_(id),
      sim_(sim),
      network_(network),
      schema_(schema),
      ring_(ring),
      config_(config),
      metrics_(metrics),
      tracer_(tracer),
      queue_(sim, config->cores_per_server) {
  queue_.set_tracer(tracer_, static_cast<int>(id_));
  queue_.set_stage_histograms(&metrics_->stage_queue_wait,
                              &metrics_->stage_service);
  // One local index fragment per index definition in the schema.
  for (const std::string& table : schema_->TableNames()) {
    for (const IndexDef& def : schema_->IndexesOn(table)) {
      indexes_.push_back(
          std::make_unique<index::LocalIndex>(def.table, def.column));
    }
  }
}

storage::Engine& Server::EngineFor(const std::string& table) {
  auto it = engines_.find(table);
  if (it == engines_.end()) {
    it = engines_
             .emplace(table,
                      std::make_unique<storage::Engine>(config_->engine))
             .first;
  }
  return *it->second;
}

Key Server::PartitionKeyFor(const std::string& table, const Key& key) const {
  const TableDef* def = schema_->GetTable(table);
  if (def != nullptr && def->composite_keys) {
    return PartitionPrefixOf(key);
  }
  return key;
}

std::vector<ServerId> Server::ReplicasOf(const std::string& table,
                                         const Key& key) const {
  return ring_->ReplicasFor(PartitionKeyFor(table, key),
                            config_->replication_factor);
}

// ---------------------------------------------------------------------------
// Local replica handlers.
// ---------------------------------------------------------------------------

storage::Row Server::LocalRead(const std::string& table, const Key& key,
                               const std::vector<ColumnName>& columns) {
  metrics_->replica_reads++;
  storage::Engine& engine = EngineFor(table);
  storage::Row result;
  if (columns.empty()) {
    if (auto row = engine.GetRow(key)) result = *std::move(row);
    return result;
  }
  for (const ColumnName& col : columns) {
    if (auto cell = engine.GetCell(key, col)) {
      result.Apply(col, *cell);
    }
  }
  return result;
}

void Server::LocalApply(const std::string& table, const Key& key,
                        const storage::Row& cells) {
  metrics_->replica_writes++;
  storage::Engine& engine = EngineFor(table);

  // Snapshot indexed-column values before the merge so the local index
  // fragments can be maintained synchronously (Cassandra-style).
  std::vector<std::pair<index::LocalIndex*, std::optional<Value>>> touched;
  for (const auto& index : indexes_) {
    if (index->table() != table) continue;
    if (!cells.Get(index->column())) continue;  // column not written
    std::optional<Value> before;
    if (auto cell = engine.GetCell(key, index->column());
        cell && !cell->tombstone) {
      before = cell->value;
    }
    touched.emplace_back(index.get(), std::move(before));
  }

  engine.ApplyRow(key, cells);

  for (auto& [index, before] : touched) {
    std::optional<Value> after;
    if (auto cell = engine.GetCell(key, index->column());
        cell && !cell->tombstone) {
      after = cell->value;
    }
    if (before != after) {
      index->Update(key, before, after);
      metrics_->index_updates++;
    }
  }
}

storage::Row Server::LocalReadThenApply(
    const std::string& table, const Key& key,
    const std::vector<ColumnName>& read_columns, const storage::Row& cells) {
  storage::Row pre_image = LocalRead(table, key, read_columns);
  LocalApply(table, key, cells);
  return pre_image;
}

std::vector<storage::KeyedRow> Server::LocalScanPrefix(
    const std::string& table, const Key& prefix) {
  metrics_->replica_reads++;
  std::vector<storage::KeyedRow> result;
  EngineFor(table).ScanPrefix(prefix, [&](const Key& key,
                                          const storage::Row& row) {
    result.push_back(storage::KeyedRow{key, row});
  });
  return result;
}

std::vector<storage::KeyedRow> Server::LocalIndexProbe(
    const std::string& table, const ColumnName& column, const Value& value) {
  metrics_->index_fragment_probes++;
  std::vector<storage::KeyedRow> result;
  for (const auto& index : indexes_) {
    if (index->table() != table || index->column() != column) continue;
    storage::Engine& engine = EngineFor(table);
    for (const Key& key : index->Lookup(value)) {
      if (auto row = engine.GetRow(key)) {
        result.push_back(storage::KeyedRow{key, *std::move(row)});
      }
    }
    break;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Quorum read.
// ---------------------------------------------------------------------------

struct Server::ReadOp {
  Server* coord;
  std::string table;
  Key key;
  std::vector<ColumnName> columns;
  int quorum;
  std::vector<ServerId> replicas;
  std::vector<std::optional<storage::Row>> responses;
  int num_responses = 0;
  bool replied = false;
  bool finalized = false;
  std::function<void(StatusOr<storage::Row>)> callback;
  std::function<void(std::vector<storage::Row>)> collect_all;
  sim::EventHandle timeout;
  std::uint64_t op_id = 0;
  /// Ambient context at op creation; finalization re-enters it so read
  /// repair and the collect_all continuation stay on the op's trace even
  /// when triggered by the (context-free) rpc timeout.
  TraceContext trace;

  storage::Row MergedSoFar() const {
    storage::Row merged;
    for (const auto& row : responses) {
      if (row) merged.MergeFrom(*row);
    }
    return merged;
  }

  void OnReply(std::size_t slot, storage::Row row) {
    if (finalized) return;
    if (responses[slot]) return;  // duplicate
    responses[slot] = std::move(row);
    ++num_responses;
    if (!replied && num_responses >= quorum) {
      replied = true;
      callback(MergedSoFar());
    }
    if (num_responses == static_cast<int>(replicas.size())) Finalize();
  }

  /// Crash-stop: the coordinator process died mid-operation. Fire the
  /// outstanding callbacks with errors/partials (internal callers need them
  /// to stay live; client-facing callbacks are incarnation-guarded and get
  /// dropped) but perform NO side effects — a dead process cannot push read
  /// repairs.
  void Abort() {
    if (finalized) return;
    finalized = true;
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      callback(Status::Unavailable("coordinator crashed"));
    }
    if (collect_all) {
      std::vector<storage::Row> collected;
      for (auto& row : responses) {
        if (row) collected.push_back(*std::move(row));
      }
      collect_all(std::move(collected));
    }
  }

  void Finalize() {
    if (finalized) return;
    finalized = true;
    coord->DeregisterInflightOp(op_id);
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      coord->metrics_->quorum_failures++;
      callback(Status::Unavailable("read quorum not reached"));
    }
    // Read repair: push the merged image to every replica that answered
    // with something older.
    storage::Row merged = MergedSoFar();
    if (!merged.empty()) {
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (responses[i] && !(*responses[i] == merged)) {
          coord->metrics_->read_repairs++;
          std::string t = table;
          Key k = key;
          storage::Row m = merged;
          coord->CallPeer<bool>(
              replicas[i], coord->config_->perf.write_local,
              [t = std::move(t), k = std::move(k),
               m = std::move(m)](Server& s) {
                s.LocalApply(t, k, m);
                return true;
              },
              [](bool) {});
        }
      }
    }
    if (collect_all) {
      std::vector<storage::Row> collected;
      for (auto& row : responses) {
        if (row) collected.push_back(*std::move(row));
      }
      collect_all(std::move(collected));
    }
  }
};

void Server::CoordinateRead(
    const std::string& table, const Key& key, std::vector<ColumnName> columns,
    int read_quorum, std::function<void(StatusOr<storage::Row>)> callback,
    std::function<void(std::vector<storage::Row>)> collect_all) {
  auto op = std::make_shared<ReadOp>();
  op->coord = this;
  op->table = table;
  op->key = key;
  op->columns = std::move(columns);
  op->quorum = read_quorum;
  op->replicas = ReplicasOf(table, key);
  op->responses.resize(op->replicas.size());
  op->callback = std::move(callback);
  op->collect_all = std::move(collect_all);
  if (tracer_ != nullptr) op->trace = tracer_->current();
  op->op_id = RegisterInflightOp([op] { op->Abort(); });
  MVSTORE_CHECK_LE(op->quorum, static_cast<int>(op->replicas.size()));

  for (std::size_t i = 0; i < op->replicas.size(); ++i) {
    CallPeer<storage::Row>(
        op->replicas[i], config_->perf.read_local,
        [table = op->table, key = op->key, columns = op->columns](Server& s) {
          return s.LocalRead(table, key, columns);
        },
        [op, i](storage::Row row) { op->OnReply(i, std::move(row)); });
  }
  op->timeout =
      sim_->AfterCancelable(config_->rpc_timeout, [op] { op->Finalize(); });
}

// ---------------------------------------------------------------------------
// Quorum write.
// ---------------------------------------------------------------------------

struct Server::WriteOp {
  Server* coord;
  std::string table;
  Key key;
  storage::Row cells;
  int quorum;
  std::vector<ServerId> replicas;
  std::vector<bool> acked;
  int acks = 0;
  bool replied = false;
  bool finalized = false;
  std::function<void(Status)> callback;
  sim::EventHandle timeout;
  std::uint64_t op_id = 0;
  TraceContext trace;

  void OnAck(std::size_t slot) {
    if (finalized) return;
    if (acked[slot]) return;
    acked[slot] = true;
    ++acks;
    if (!replied && acks >= quorum) {
      replied = true;
      callback(Status::OK());
    }
    if (acks == static_cast<int>(replicas.size())) Finalize();
  }

  /// Crash-stop: error the caller out, store no hints (they would be lost
  /// with the crashed process anyway).
  void Abort() {
    if (finalized) return;
    finalized = true;
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      callback(Status::Unavailable("coordinator crashed"));
    }
  }

  void Finalize() {
    if (finalized) return;
    finalized = true;
    coord->DeregisterInflightOp(op_id);
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      coord->metrics_->quorum_failures++;
      callback(Status::Unavailable("write quorum not reached"));
    }
    // Hinted handoff: every replica that did not acknowledge in time gets a
    // hint at this coordinator, replayed until it acks (the write may or may
    // not have landed; re-applying is idempotent under LWW).
    if (coord->config_->hint_replay_interval > 0) {
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (!acked[i]) {
          coord->StoreHint(replicas[i], table, key, cells);
        }
      }
    }
  }
};

// Per-replica service demand of applying `cells` to `table`: the base write
// plus synchronous maintenance of each local index fragment whose column is
// being written (Cassandra-style).
SimTime Server::WriteServiceFor(const std::string& table,
                                const storage::Row& cells) const {
  SimTime service = config_->perf.write_local;
  for (const IndexDef& index : schema_->IndexesOn(table)) {
    if (cells.Get(index.column)) {
      service += config_->perf.index_update_local;
    }
  }
  return service;
}

void Server::CoordinateWrite(const std::string& table, const Key& key,
                             const storage::Row& cells, int write_quorum,
                             std::function<void(Status)> callback) {
  auto op = std::make_shared<WriteOp>();
  op->coord = this;
  op->table = table;
  op->key = key;
  op->cells = cells;
  op->quorum = write_quorum;
  op->replicas = ReplicasOf(table, key);
  op->acked.assign(op->replicas.size(), false);
  op->callback = std::move(callback);
  if (tracer_ != nullptr) op->trace = tracer_->current();
  op->op_id = RegisterInflightOp([op] { op->Abort(); });
  MVSTORE_CHECK_LE(op->quorum, static_cast<int>(op->replicas.size()));

  const SimTime service = WriteServiceFor(table, cells);
  for (std::size_t i = 0; i < op->replicas.size(); ++i) {
    CallPeer<bool>(
        op->replicas[i], service,
        [table, key, cells](Server& s) {
          s.LocalApply(table, key, cells);
          return true;
        },
        [op, i](bool) { op->OnAck(i); });
  }
  op->timeout =
      sim_->AfterCancelable(config_->rpc_timeout, [op] { op->Finalize(); });
}

// ---------------------------------------------------------------------------
// Combined Get-then-Put (Section IV-C).
// ---------------------------------------------------------------------------

struct Server::ReadThenWriteOp {
  Server* coord;
  std::string table;
  Key key;
  storage::Row cells;
  std::vector<ServerId> replicas;
  int quorum;
  int total;
  std::vector<std::optional<storage::Row>> pre_images;
  int num_responses = 0;
  bool replied = false;
  bool finalized = false;
  std::function<void(Status)> callback;
  std::function<void(std::vector<storage::Row>)> collect;
  sim::EventHandle timeout;
  std::uint64_t op_id = 0;
  TraceContext trace;

  void OnReply(std::size_t slot, storage::Row pre_image) {
    if (finalized) return;
    if (pre_images[slot]) return;
    pre_images[slot] = std::move(pre_image);
    ++num_responses;
    if (!replied && num_responses >= quorum) {
      replied = true;
      callback(Status::OK());
    }
    if (num_responses == total) Finalize();
  }

  /// Crash-stop: error + partial collection, no hints.
  void Abort() {
    if (finalized) return;
    finalized = true;
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      callback(Status::Unavailable("coordinator crashed"));
    }
    std::vector<storage::Row> collected;
    for (auto& row : pre_images) {
      if (row) collected.push_back(*std::move(row));
    }
    collect(std::move(collected));
  }

  void Finalize() {
    if (finalized) return;
    finalized = true;
    coord->DeregisterInflightOp(op_id);
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      coord->metrics_->quorum_failures++;
      callback(Status::Unavailable("write quorum not reached"));
    }
    if (coord->config_->hint_replay_interval > 0) {
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (!pre_images[i]) {
          coord->StoreHint(replicas[i], table, key, cells);
        }
      }
    }
    std::vector<storage::Row> collected;
    for (auto& row : pre_images) {
      if (row) collected.push_back(*std::move(row));
    }
    collect(std::move(collected));
  }
};

void Server::CoordinateReadThenWrite(
    const std::string& table, const Key& key,
    std::vector<ColumnName> read_columns, const storage::Row& cells,
    int write_quorum, std::function<void(Status)> callback,
    std::function<void(std::vector<storage::Row>)> collect_pre_images) {
  auto op = std::make_shared<ReadThenWriteOp>();
  op->coord = this;
  op->table = table;
  op->key = key;
  op->cells = cells;
  op->quorum = write_quorum;
  op->replicas = ReplicasOf(table, key);
  const std::vector<ServerId>& replicas = op->replicas;
  op->total = static_cast<int>(replicas.size());
  op->pre_images.resize(replicas.size());
  op->callback = std::move(callback);
  op->collect = std::move(collect_pre_images);
  if (tracer_ != nullptr) op->trace = tracer_->current();
  op->op_id = RegisterInflightOp([op] { op->Abort(); });
  MVSTORE_CHECK_LE(op->quorum, op->total);

  const SimTime service =
      config_->perf.read_local + WriteServiceFor(table, cells);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    CallPeer<storage::Row>(
        replicas[i], service,
        [table, key, read_columns, cells](Server& s) {
          return s.LocalReadThenApply(table, key, read_columns, cells);
        },
        [op, i](storage::Row pre) { op->OnReply(i, std::move(pre)); });
  }
  op->timeout =
      sim_->AfterCancelable(config_->rpc_timeout, [op] { op->Finalize(); });
}

// ---------------------------------------------------------------------------
// Partition scan.
// ---------------------------------------------------------------------------

struct Server::ScanOp {
  Server* coord;
  std::string table;
  int quorum;
  std::vector<ServerId> replicas;
  std::vector<std::optional<std::vector<storage::KeyedRow>>> responses;
  int num_responses = 0;
  bool replied = false;
  bool finalized = false;
  std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback;
  sim::EventHandle timeout;
  std::uint64_t op_id = 0;
  TraceContext trace;

  std::map<Key, storage::Row> MergedSoFar() const {
    std::map<Key, storage::Row> merged;
    for (const auto& response : responses) {
      if (!response) continue;
      for (const auto& kr : *response) {
        merged[kr.key].MergeFrom(kr.row);
      }
    }
    return merged;
  }

  void Reply() {
    replied = true;
    std::vector<storage::KeyedRow> rows;
    std::map<Key, storage::Row> merged = MergedSoFar();
    rows.reserve(merged.size());
    for (auto& [key, row] : merged) {
      rows.push_back(storage::KeyedRow{key, std::move(row)});
    }
    callback(std::move(rows));
  }

  void OnReply(std::size_t slot, std::vector<storage::KeyedRow> rows) {
    if (finalized) return;
    if (responses[slot]) return;
    responses[slot] = std::move(rows);
    ++num_responses;
    if (!replied && num_responses >= quorum) Reply();
    if (num_responses == static_cast<int>(replicas.size())) Finalize();
  }

  /// Crash-stop: error the caller out; no scan-path read repair.
  void Abort() {
    if (finalized) return;
    finalized = true;
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      callback(Status::Unavailable("coordinator crashed"));
    }
  }

  void Finalize() {
    if (finalized) return;
    finalized = true;
    coord->DeregisterInflightOp(op_id);
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    if (!replied) {
      replied = true;
      coord->metrics_->quorum_failures++;
      callback(Status::Unavailable("scan quorum not reached"));
      return;
    }
    // Scan-path read repair: push every row a responding replica is missing
    // or holds stale, batched per replica. This is what heals view
    // partitions on access (a view row's replicas may have missed the
    // propagation's third write).
    const std::map<Key, storage::Row> merged = MergedSoFar();
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      if (!responses[i]) continue;
      std::map<Key, const storage::Row*> have;
      for (const auto& kr : *responses[i]) have[kr.key] = &kr.row;
      std::vector<storage::KeyedRow> fixes;
      for (const auto& [key, row] : merged) {
        auto it = have.find(key);
        if (it == have.end() || !(*it->second == row)) {
          fixes.push_back(storage::KeyedRow{key, row});
        }
      }
      if (fixes.empty()) continue;
      coord->metrics_->read_repairs += fixes.size();
      const SimTime service =
          coord->config_->perf.write_local *
          static_cast<SimTime>(fixes.size());
      std::string t = table;
      coord->CallPeer<bool>(
          replicas[i], service,
          [t, fixes = std::move(fixes)](Server& s) {
            for (const auto& kr : fixes) s.LocalApply(t, kr.key, kr.row);
            return true;
          },
          [](bool) {});
    }
  }
};

void Server::CoordinateScan(
    const std::string& table, const Key& partition_prefix, int read_quorum,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  auto op = std::make_shared<ScanOp>();
  op->coord = this;
  op->table = table;
  op->quorum = read_quorum;
  op->replicas = ReplicasOf(table, partition_prefix);
  op->responses.resize(op->replicas.size());
  op->callback = std::move(callback);
  if (tracer_ != nullptr) op->trace = tracer_->current();
  op->op_id = RegisterInflightOp([op] { op->Abort(); });
  MVSTORE_CHECK_LE(op->quorum, static_cast<int>(op->replicas.size()));

  for (std::size_t i = 0; i < op->replicas.size(); ++i) {
    CallPeer<std::vector<storage::KeyedRow>>(
        op->replicas[i], config_->perf.view_scan_local,
        [table, partition_prefix](Server& s) {
          return s.LocalScanPrefix(table, partition_prefix);
        },
        [op, i](std::vector<storage::KeyedRow> rows) {
          op->OnReply(i, std::move(rows));
        });
  }
  op->timeout =
      sim_->AfterCancelable(config_->rpc_timeout, [op] { op->Finalize(); });
}

// ---------------------------------------------------------------------------
// Broadcast secondary-index lookup.
// ---------------------------------------------------------------------------

struct Server::IndexScanOp {
  Server* coord;
  ColumnName column;
  Value value;
  int total;
  int num_responses = 0;
  bool done = false;
  std::map<Key, storage::Row> merged;
  std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback;
  sim::EventHandle timeout;
  std::uint64_t op_id = 0;
  TraceContext trace;

  void OnReply(std::vector<storage::KeyedRow> rows) {
    if (done) return;
    for (auto& kr : rows) {
      merged[kr.key].MergeFrom(kr.row);
    }
    ++num_responses;
    if (num_responses == total) Complete();
  }

  /// Crash-stop: error the caller out.
  void Abort() {
    if (done) return;
    done = true;
    timeout.Cancel();
    callback(Status::Unavailable("coordinator crashed"));
  }

  void Complete() {
    if (done) return;
    done = true;
    coord->DeregisterInflightOp(op_id);
    timeout.Cancel();
    Tracer::Scope scope(coord->tracer_, trace);
    // A fragment may return keys whose globally-latest value no longer
    // matches (its replica was stale); filter on the merged image, as
    // Cassandra's coordinator re-checks index hits.
    std::vector<storage::KeyedRow> rows;
    for (auto& [key, row] : merged) {
      auto current = row.GetValue(column);
      if (!current || *current != value) continue;
      rows.push_back(storage::KeyedRow{key, std::move(row)});
    }
    callback(std::move(rows));
  }

  void OnTimeout() {
    if (done) return;
    done = true;
    coord->DeregisterInflightOp(op_id);
    coord->metrics_->quorum_failures++;
    Tracer::Scope scope(coord->tracer_, trace);
    callback(Status::Unavailable("index fragments unreachable"));
  }
};

void Server::HandleClientIndexGet(
    const std::string& table, const ColumnName& column, const Value& value,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  metrics_->client_index_gets++;
  if (schema_->FindIndex(table, column) == nullptr) {
    callback(Status::NotFound("no index on " + table + "." + column));
    return;
  }
  auto op = std::make_shared<IndexScanOp>();
  op->coord = this;
  op->column = column;
  op->value = value;
  op->total = config_->num_servers;
  op->callback = WrapReply(std::move(callback));
  if (tracer_ != nullptr) op->trace = tracer_->current();
  op->op_id = RegisterInflightOp([op] { op->Abort(); });

  Enqueue(config_->perf.coordinator_op, [this, op, table, column, value] {
    for (ServerId s = 0; s < static_cast<ServerId>(config_->num_servers);
         ++s) {
      CallPeer<std::vector<storage::KeyedRow>>(
          s, config_->perf.index_scan_local,
          [table, column, value](Server& server) {
            return server.LocalIndexProbe(table, column, value);
          },
          [op](std::vector<storage::KeyedRow> rows) {
            op->OnReply(std::move(rows));
          });
    }
    op->timeout = sim_->AfterCancelable(config_->rpc_timeout,
                                        [op] { op->OnTimeout(); });
  });
}

// ---------------------------------------------------------------------------
// Client-facing entry points.
// ---------------------------------------------------------------------------

template <typename ResultT>
std::function<void(ResultT)> Server::WrapReply(
    std::function<void(ResultT)> callback) {
  // Charges coordinator service time for assembling the reply, so reply
  // processing contributes to saturation under load.
  return [this, callback = std::move(callback)](ResultT result) mutable {
    Enqueue(config_->perf.coordinator_op,
            [callback = std::move(callback),
             result = std::move(result)]() mutable {
              callback(std::move(result));
            });
  };
}

void Server::HandleClientGet(
    const std::string& table, const Key& key, std::vector<ColumnName> columns,
    int read_quorum, std::function<void(StatusOr<storage::Row>)> callback) {
  metrics_->client_gets++;
  const TableDef* def = schema_->GetTable(table);
  if (def == nullptr) {
    callback(Status::NotFound("no table '" + table + "'"));
    return;
  }
  if (def->is_view_backing) {
    callback(Status::InvalidArgument(
        "use view Get for '" + table + "' (views return record sets)"));
    return;
  }
  auto reply = WrapReply(std::move(callback));
  Enqueue(config_->perf.coordinator_op,
          [this, table, key, columns = std::move(columns), read_quorum,
           reply = std::move(reply)]() mutable {
            CoordinateRead(table, key, std::move(columns), read_quorum,
                           std::move(reply));
          });
}

void Server::HandleClientPut(const std::string& table, const Key& key,
                             const Mutation& mutation, Timestamp ts,
                             int write_quorum, SessionId session,
                             std::function<void(Status)> callback) {
  metrics_->client_puts++;
  const TableDef* def = schema_->GetTable(table);
  if (def == nullptr) {
    callback(Status::NotFound("no table '" + table + "'"));
    return;
  }
  if (def->is_view_backing) {
    callback(Status::InvalidArgument("views are not updateable"));
    return;
  }
  if (mutation.empty()) {
    callback(Status::InvalidArgument("empty mutation"));
    return;
  }

  storage::Row cells;
  for (const auto& [col, value] : mutation) {
    cells.Apply(col, value ? storage::Cell::Live(*value, ts)
                           : storage::Cell::Tombstone(ts));
  }

  // Which views does this Put affect (Algorithm 1, line 1)?
  std::vector<const ViewDef*> affected;
  if (view_hook_ != nullptr) {
    for (const ViewDef* view : schema_->ViewsOn(table)) {
      // The first byte of sentinel view keys is reserved (deleted-row
      // anchors, see store/codec.h).
      if (auto it = mutation.find(view->view_key_column);
          it != mutation.end() && it->second.has_value() &&
          !it->second->empty() && (*it->second)[0] == kSentinelPrefix) {
        callback(Status::InvalidArgument(
            "view key values must not start with byte 0x03 (reserved)"));
        return;
      }
      for (const auto& [col, unused] : mutation) {
        if (view->Affects(col)) {
          affected.push_back(view);
          break;
        }
      }
    }
  }

  auto reply = WrapReply(std::move(callback));

  if (affected.empty()) {
    Enqueue(config_->perf.coordinator_op,
            [this, table, key, cells, write_quorum,
             reply = std::move(reply)]() mutable {
              CoordinateWrite(table, key, cells, write_quorum,
                              std::move(reply));
            });
    return;
  }

  // Columns whose pre-update versions Algorithm 1 must collect: the view
  // key column of every affected view.
  std::vector<ColumnName> read_columns;
  for (const ViewDef* view : affected) {
    if (std::find(read_columns.begin(), read_columns.end(),
                  view->view_key_column) == read_columns.end()) {
      read_columns.push_back(view->view_key_column);
    }
  }

  auto on_collected = [this, affected, key, cells,
                       session](std::vector<storage::Row> pre_images) {
    const bool full_collection =
        static_cast<int>(pre_images.size()) == config_->replication_factor;
    std::vector<CollectedViewKeys> collected;
    collected.reserve(affected.size());
    for (const ViewDef* view : affected) {
      CollectedViewKeys entry;
      entry.view = view;
      entry.full_collection = full_collection;
      std::set<std::pair<Timestamp, Value>> seen;
      for (const storage::Row& pre : pre_images) {
        storage::Cell cell;  // null cell when the replica had no value
        if (auto c = pre.Get(view->view_key_column)) cell = *c;
        if (cell.tombstone) cell.value.clear();
        const auto fingerprint =
            std::make_pair(cell.ts, cell.tombstone ? Value() : cell.value);
        if (seen.insert(fingerprint).second) {
          entry.old_keys.push_back(std::move(cell));
        }
      }
      if (entry.old_keys.empty()) {
        entry.old_keys.push_back(storage::Cell{});  // nothing collected
      }
      collected.push_back(std::move(entry));
    }
    view_hook_->OnBasePutCommitted(this, key, cells, std::move(collected),
                                   session);
  };

  if (config_->combined_get_then_put) {
    Enqueue(config_->perf.coordinator_op,
            [this, table, key, cells, write_quorum,
             read_columns = std::move(read_columns),
             reply = std::move(reply),
             on_collected = std::move(on_collected)]() mutable {
              CoordinateReadThenWrite(table, key, std::move(read_columns),
                                      cells, write_quorum, std::move(reply),
                                      std::move(on_collected));
            });
    return;
  }

  // Paper-prototype mode: a separate Get (line 2) collects the distinct
  // view-key versions from ALL replicas before the Put (line 3) is issued —
  // the simplest way to have every version in hand when propagation starts,
  // and the reason Figure 5's MV write latency is ~2.5x BT's. (The combined
  // mode above fuses both into one round; see bench/ablation_combined_getput.)
  const int preread_quorum = config_->replication_factor;
  Enqueue(config_->perf.coordinator_op, [this, table, key, cells, write_quorum,
                                         preread_quorum,
                                         read_columns = std::move(read_columns),
                                         reply = std::move(reply),
                                         on_collected =
                                             std::move(on_collected)]() mutable {
    CoordinateRead(
        table, key, read_columns, preread_quorum,
        [this, table, key, cells, write_quorum,
         reply = std::move(reply)](StatusOr<storage::Row> pre) mutable {
          // The pre-read's value only feeds propagation guesses; an
          // unreachable replica (Unavailable after the timeout) must not
          // fail the client's Put — Algorithm 1 issues the Put regardless,
          // and collection proceeds with the versions that did arrive.
          CoordinateWrite(table, key, cells, write_quorum, std::move(reply));
        },
        std::move(on_collected));
  });
}

void Server::HandleClientViewGet(
    const std::string& view_name, const Key& view_key,
    std::vector<ColumnName> columns, int read_quorum, SessionId session,
    std::function<void(StatusOr<std::vector<ViewRecord>>)> callback) {
  metrics_->client_view_gets++;
  const ViewDef* view = schema_->GetView(view_name);
  if (view == nullptr) {
    callback(Status::NotFound("no view '" + view_name + "'"));
    return;
  }
  if (view_hook_ == nullptr) {
    callback(Status::FailedPrecondition("view engine not installed"));
    return;
  }
  auto reply = WrapReply(std::move(callback));
  Enqueue(config_->perf.coordinator_op,
          [this, view, view_key, columns = std::move(columns), read_quorum,
           session, reply = std::move(reply)]() mutable {
            view_hook_->HandleViewGet(this, *view, view_key,
                                      std::move(columns), read_quorum, session,
                                      std::move(reply));
          });
}

// ---------------------------------------------------------------------------
// Background anti-entropy.
// ---------------------------------------------------------------------------

void Server::Start() { ScheduleBackgroundTicks(); }

void Server::ScheduleBackgroundTicks() {
  // Tick chains belong to one process incarnation: when the server crashes,
  // the pending chain link notices the incarnation changed and dies;
  // Restart() arms a fresh chain.
  const std::uint64_t incarnation = incarnation_;
  if (config_->anti_entropy_interval > 0) {
    // Stagger the servers so rounds do not align.
    const SimTime phase = config_->anti_entropy_interval *
                          static_cast<SimTime>(id_ + 1) /
                          static_cast<SimTime>(config_->num_servers);
    sim_->After(phase, [this, incarnation] {
      if (incarnation == incarnation_) AntiEntropyTick();
    });
  }
  if (config_->hint_replay_interval > 0) {
    const SimTime phase = config_->hint_replay_interval *
                          static_cast<SimTime>(id_ + 1) /
                          static_cast<SimTime>(config_->num_servers);
    sim_->After(phase, [this, incarnation] {
      if (incarnation == incarnation_) HintReplayTick();
    });
  }
}

void Server::AntiEntropyTick() {
  if (crashed_) return;
  RunAntiEntropyRound();
  const std::uint64_t incarnation = incarnation_;
  sim_->After(config_->anti_entropy_interval, [this, incarnation] {
    if (incarnation == incarnation_) AntiEntropyTick();
  });
}

std::vector<std::uint64_t> Server::ComputeSyncDigests(const std::string& table,
                                                      ServerId peer,
                                                      int buckets) const {
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(buckets), 0);
  auto it = engines_.find(table);
  if (it == engines_.end()) return digests;
  it->second->ForEach([&](const Key& key, const storage::Row& row) {
    const auto replicas = ReplicasOf(table, key);
    const bool shared =
        std::find(replicas.begin(), replicas.end(), id_) != replicas.end() &&
        std::find(replicas.begin(), replicas.end(), peer) != replicas.end();
    if (!shared) return;
    const std::size_t bucket =
        Hash64(key) % static_cast<std::uint64_t>(buckets);
    // XOR-combine so the bucket digest is set-like (order-insensitive).
    digests[bucket] ^= HashCombine(Hash64(key), storage::RowDigest(row));
  });
  return digests;
}

std::vector<storage::KeyedRow> Server::CollectBucketRows(
    const std::string& table, ServerId peer, const std::vector<int>& buckets,
    int total_buckets) const {
  std::vector<storage::KeyedRow> rows;
  auto it = engines_.find(table);
  if (it == engines_.end()) return rows;
  std::vector<bool> wanted(static_cast<std::size_t>(total_buckets), false);
  for (int bucket : buckets) wanted[static_cast<std::size_t>(bucket)] = true;
  it->second->ForEach([&](const Key& key, const storage::Row& row) {
    const std::size_t bucket =
        Hash64(key) % static_cast<std::uint64_t>(total_buckets);
    if (!wanted[bucket]) return;
    const auto replicas = ReplicasOf(table, key);
    const bool shared =
        std::find(replicas.begin(), replicas.end(), id_) != replicas.end() &&
        std::find(replicas.begin(), replicas.end(), peer) != replicas.end();
    if (shared) rows.push_back(storage::KeyedRow{key, row});
  });
  return rows;
}

void Server::SyncTableWithPeer(const std::string& table, ServerId peer) {
  const int buckets = config_->anti_entropy_buckets;
  const std::vector<std::uint64_t> mine =
      ComputeSyncDigests(table, peer, buckets);
  metrics_->anti_entropy_digest_exchanges++;
  const ServerId self_id = id_;
  // Phase 1: the peer compares digests and answers with mismatched buckets.
  CallPeer<std::vector<int>>(
      peer, config_->perf.read_local,
      [table, self_id, buckets, mine](Server& s) {
        const std::vector<std::uint64_t> theirs =
            s.ComputeSyncDigests(table, self_id, buckets);
        std::vector<int> mismatched;
        for (int b = 0; b < buckets; ++b) {
          if (mine[static_cast<std::size_t>(b)] !=
              theirs[static_cast<std::size_t>(b)]) {
            mismatched.push_back(b);
          }
        }
        return mismatched;
      },
      [this, table, peer, buckets](std::vector<int> mismatched) {
        if (mismatched.empty()) return;
        metrics_->anti_entropy_buckets_synced += mismatched.size();
        // Phase 2: ship our rows of the mismatched buckets; the peer applies
        // them and answers with ITS rows of the same buckets (bidirectional).
        std::vector<storage::KeyedRow> ours =
            CollectBucketRows(table, peer, mismatched, buckets);
        metrics_->anti_entropy_rows_pushed += ours.size();
        const ServerId self_id2 = id_;
        const SimTime service =
            config_->perf.write_local *
            static_cast<SimTime>(ours.size() + 1);
        CallPeer<std::vector<storage::KeyedRow>>(
            peer, service,
            [table, self_id2, mismatched, buckets,
             ours = std::move(ours)](Server& s) {
              for (const auto& kr : ours) s.LocalApply(table, kr.key, kr.row);
              return s.CollectBucketRows(table, self_id2, mismatched, buckets);
            },
            [this, table](std::vector<storage::KeyedRow> theirs) {
              metrics_->anti_entropy_rows_pushed += theirs.size();
              for (const auto& kr : theirs) LocalApply(table, kr.key, kr.row);
            });
      });
}

void Server::RunAntiEntropyRound() {
  // Each round is its own root trace: background repair has no client
  // operation to hang off, but its fan-out is still worth reconstructing.
  TraceContext round;
  if (tracer_ != nullptr) {
    round = tracer_->StartTrace("anti_entropy.round", static_cast<int>(id_),
                                sim_->Now());
  }
  Tracer::Scope scope(tracer_, round);
  for (ServerId peer = 0; peer < static_cast<ServerId>(config_->num_servers);
       ++peer) {
    if (peer == id_) continue;
    for (const auto& [table, engine] : engines_) {
      SyncTableWithPeer(table, peer);
    }
  }
  if (round) tracer_->EndSpan(round, sim_->Now());
}

// ---------------------------------------------------------------------------
// Crash-stop fault model.
// ---------------------------------------------------------------------------

std::uint64_t Server::RegisterInflightOp(std::function<void()> abort) {
  const std::uint64_t op_id = ++next_op_id_;
  inflight_aborts_.emplace(op_id, std::move(abort));
  return op_id;
}

void Server::DeregisterInflightOp(std::uint64_t op_id) {
  inflight_aborts_.erase(op_id);
}

void Server::Crash() {
  MVSTORE_CHECK(!crashed_) << "server " << id_ << " crashed while down";
  crashed_ = true;
  metrics_->server_crashes++;

  // 1. The view engine loses this server's share of its volatile state
  //    (propagation tasks, session bookkeeping, propagator queues) FIRST, so
  //    the abort callbacks below cannot resurrect work on a dead process.
  if (view_hook_ != nullptr) view_hook_->OnServerCrash(this);

  // 2. Abort every in-flight coordinator operation. Internal callers (the
  //    propagation machines) get their error callbacks synchronously; client
  //    replies travel through WrapReply -> Enqueue, which is guarded by the
  //    incarnation bump below, so clients learn of the crash only through
  //    their own request timeouts — exactly like a real silent crash.
  auto aborts = std::move(inflight_aborts_);
  inflight_aborts_.clear();
  for (auto& [op_id, abort] : aborts) abort();
  metrics_->inflight_ops_aborted += aborts.size();

  // 3. Volatile state dies with the process: memtables (the commit logs and
  //    flushed runs are durable), stored hints, and the run-queue backlog.
  for (auto& [table, engine] : engines_) engine->LoseVolatileState();
  hints_.clear();
  queue_.Reset();

  // 4. Disappear from the network. Bumping the incarnation (a) drops every
  //    in-flight message to/from the dead process at delivery time and
  //    (b) invalidates every closure the old incarnation enqueued.
  ++incarnation_;
  network_->BumpIncarnation(id_);
  network_->SetEndpointDown(id_, true);
}

void Server::Restart() {
  MVSTORE_CHECK(crashed_) << "restart of live server " << id_;
  crashed_ = false;
  metrics_->server_restarts++;

  // Rejoin the ring: the endpoint comes back up under the incarnation
  // Crash() already bumped.
  network_->SetEndpointDown(id_, false);

  // Recovery: replay each table's commit log into the fresh memtable
  // (idempotent under LWW; the log was truncated at the last flush).
  for (auto& [table, engine] : engines_) {
    metrics_->wal_cells_replayed += engine->RecoverFromLog();
  }

  // Catch up with the writes this replica missed while down: re-arm the
  // periodic ticks and run one anti-entropy round right away.
  ScheduleBackgroundTicks();
  RunAntiEntropyRound();

  // Let the view engine re-scrub the ranges this server owns, adopting
  // propagations orphaned by the crash.
  if (view_hook_ != nullptr) view_hook_->OnServerRestart(this);
}

// ---------------------------------------------------------------------------
// Hinted handoff.
// ---------------------------------------------------------------------------

void Server::StoreHint(ServerId target, const std::string& table,
                       const Key& key, const storage::Row& cells) {
  std::deque<Hint>& queue = hints_[target];
  if (queue.size() >= config_->max_hints_per_target) {
    queue.pop_front();  // oldest first; anti-entropy is the backstop
    metrics_->hints_dropped++;
  }
  Hint hint{table, key, cells, {}};
  if (tracer_ != nullptr) {
    hint.trace = tracer_->current();
    if (hint.trace) {
      TraceContext span = tracer_->StartSpan(
          hint.trace, "hint.stored", static_cast<int>(id_), sim_->Now());
      tracer_->Annotate(span, "target=" + std::to_string(target));
      tracer_->EndSpan(span, sim_->Now());
    }
  }
  queue.push_back(std::move(hint));
  metrics_->hints_stored++;
}

std::size_t Server::pending_hints(ServerId target) const {
  auto it = hints_.find(target);
  return it == hints_.end() ? 0 : it->second.size();
}

void Server::HintReplayTick() {
  if (crashed_) return;
  ReplayHints();
  const std::uint64_t incarnation = incarnation_;
  sim_->After(config_->hint_replay_interval, [this, incarnation] {
    if (incarnation == incarnation_) HintReplayTick();
  });
}

void Server::ReplayHints() {
  for (auto& [target, queue] : hints_) {
    if (queue.empty()) continue;
    // Ship the whole queue; drop it only when the target acknowledges.
    // (Re-delivery after a lost ack is harmless: LWW applies are
    // idempotent.)
    auto batch =
        std::make_shared<std::vector<Hint>>(queue.begin(), queue.end());
    const std::size_t count = batch->size();
    if (tracer_ != nullptr) {
      // Instant markers tie each originating write's trace to the replay
      // attempt that finally delivers it.
      for (const Hint& hint : *batch) {
        if (!hint.trace) continue;
        TraceContext span = tracer_->StartSpan(
            hint.trace, "hint.replay", static_cast<int>(id_), sim_->Now());
        tracer_->Annotate(span, "target=" + std::to_string(target));
        tracer_->EndSpan(span, sim_->Now());
      }
    }
    const ServerId target_id = target;
    const SimTime service =
        config_->perf.write_local * static_cast<SimTime>(count);
    CallPeer<bool>(
        target_id, service,
        [batch](Server& s) {
          for (const Hint& hint : *batch) {
            s.LocalApply(hint.table, hint.key, hint.cells);
          }
          return true;
        },
        [this, target_id, count](bool) {
          // Acked: retire the replayed prefix (new hints may have queued
          // behind it meanwhile).
          std::deque<Hint>& q = hints_[target_id];
          const std::size_t drop = std::min(count, q.size());
          q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(drop));
          metrics_->hints_replayed += drop;
        });
  }
}

}  // namespace mvstore::store

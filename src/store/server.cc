#include "store/server.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "store/codec.h"
#include "store/quorum_op.h"

namespace mvstore::store {

namespace {

/// Salt mixed into each anti-entropy digest entry before summation, so the
/// combiner is not the plain entry hash (defense against crafted inputs
/// that target the entry-hash function directly).
constexpr std::uint64_t kSyncDigestSalt = 0x9e3779b97f4a7c15ULL;

/// LWW merge of every answered slot's row.
storage::Row MergeRowResponses(
    const std::vector<std::optional<storage::Row>>& responses) {
  storage::Row merged;
  for (const auto& row : responses) {
    if (row) merged.MergeFrom(*row);
  }
  return merged;
}

/// LWW merge of every answered slot's scan result, keyed by row.
std::map<Key, storage::Row> MergeScanResponses(
    const std::vector<std::optional<std::vector<storage::KeyedRow>>>&
        responses) {
  std::map<Key, storage::Row> merged;
  for (const auto& response : responses) {
    if (!response) continue;
    for (const auto& kr : *response) {
      merged[kr.key].MergeFrom(kr.row);
    }
  }
  return merged;
}

}  // namespace

Server::Server(ServerId id, sim::Simulation* sim, sim::Network* network,
               const Schema* schema, const Ring* ring,
               const ClusterConfig* config, Metrics* metrics, Tracer* tracer)
    : id_(id),
      sim_(sim),
      network_(network),
      schema_(schema),
      ring_(ring),
      config_(config),
      metrics_(metrics),
      tracer_(tracer),
      queue_(sim, config->cores_per_server) {
  queue_.set_tracer(tracer_, static_cast<int>(id_));
  queue_.set_stage_histograms(&metrics_->stage_queue_wait,
                              &metrics_->stage_service);
  // Row cache off (the default) means no cache object at all: every read
  // takes the exact pre-cache code path, keeping same-seed runs bit-identical
  // to a build without the feature.
  if (config_->row_cache_entries > 0) {
    row_cache_ =
        std::make_unique<storage::RowCache>(config_->row_cache_entries);
  }
  // One local index fragment per index definition in the schema.
  for (const std::string& table : schema_->TableNames()) {
    for (const IndexDef& def : schema_->IndexesOn(table)) {
      indexes_.push_back(
          std::make_unique<index::LocalIndex>(def.table, def.column));
    }
  }
}

storage::Engine& Server::EngineFor(const std::string& table) {
  auto it = engines_.find(table);
  if (it == engines_.end()) {
    it = engines_
             .emplace(table,
                      std::make_unique<storage::Engine>(config_->engine))
             .first;
    if (row_cache_ != nullptr) {
      // All of this server's engines share the one cache, namespaced by
      // table name.
      it->second->set_row_cache(row_cache_.get(), table);
    }
  }
  return *it->second;
}

Key Server::PartitionKeyFor(const std::string& table, const Key& key) const {
  return Key(PartitionViewFor(table, key));
}

std::string_view Server::PartitionViewFor(const std::string& table,
                                          const Key& key) const {
  const TableDef* def = schema_->GetTable(table);
  if (def != nullptr && def->composite_keys) {
    return PartitionPrefixViewOf(key);
  }
  return key;
}

const std::vector<ServerId>& Server::ReplicasOf(const std::string& table,
                                                const Key& key) const {
  const KeyRef ref = placement_keys_.Intern(PartitionViewFor(table, key));
  if (ref.id >= placement_cache_.size()) {
    placement_cache_.resize(static_cast<std::size_t>(ref.id) + 1);
  }
  PlacementEntry& entry = placement_cache_[ref.id];
  const std::uint64_t version = ring_->version();
  if (!entry.valid || entry.ring_version != version) {
    entry.replicas = ring_->ReplicasFor(placement_keys_.View(ref),
                                        config_->replication_factor);
    entry.ring_version = version;
    entry.valid = true;
  }
  return entry.replicas;
}

SimTime Server::ReadServiceFor(const std::string& table,
                               const Key& key) const {
  if (row_cache_ != nullptr && row_cache_->Contains(table, key)) {
    return config_->perf.read_cached_local;
  }
  return config_->perf.read_local;
}

void Server::WarmRowCache(const std::string& table, const Key& key) {
  if (row_cache_ == nullptr) return;
  // GetRow populates the cache as a side effect when the key exists.
  EngineFor(table).GetRow(key);
}

Timestamp Server::OldestHintTimestamp() const {
  Timestamp oldest = std::numeric_limits<Timestamp>::max();
  for (const auto& [target, queue] : hints_) {
    for (const Hint& hint : queue) {
      for (const auto& [col, cell] : hint.cells.cells()) {
        oldest = std::min(oldest, cell.ts);
      }
    }
  }
  return oldest;
}

// ---------------------------------------------------------------------------
// Local replica handlers.
// ---------------------------------------------------------------------------

storage::Row Server::LocalRead(const std::string& table, const Key& key,
                               const std::vector<ColumnName>& columns) {
  metrics_->replica_reads++;
  storage::Engine& engine = EngineFor(table);
  const std::uint64_t hits_before =
      row_cache_ != nullptr ? row_cache_->hits() : 0;
  const std::uint64_t misses_before =
      row_cache_ != nullptr ? row_cache_->misses() : 0;
  storage::Row result;
  if (columns.empty()) {
    if (auto row = engine.GetRow(key)) result = *std::move(row);
  } else {
    for (const ColumnName& col : columns) {
      if (auto cell = engine.GetCell(key, col)) {
        result.Apply(col, *cell);
      }
    }
  }
  if (row_cache_ != nullptr) {
    // Delta-sample the cache so per-column reads of one hot row still count
    // as one logical probe each.
    const std::uint64_t hit_delta = row_cache_->hits() - hits_before;
    const std::uint64_t miss_delta = row_cache_->misses() - misses_before;
    metrics_->row_cache_hits += hit_delta;
    metrics_->row_cache_misses += miss_delta;
    if (tracer_ != nullptr && tracer_->current() &&
        (hit_delta > 0 || miss_delta > 0)) {
      TraceContext span = tracer_->StartSpan(
          tracer_->current(), hit_delta > 0 ? "cache.hit" : "cache.miss",
          static_cast<int>(id_), sim_->Now());
      tracer_->Annotate(span, table + "/" + key);
      tracer_->EndSpan(span, sim_->Now());
    }
  }
  return result;
}

void Server::LocalApply(const std::string& table, const Key& key,
                        const storage::Row& cells) {
  metrics_->replica_writes++;
  storage::Engine& engine = EngineFor(table);

  // Snapshot indexed-column values before the merge so the local index
  // fragments can be maintained synchronously (Cassandra-style).
  std::vector<std::pair<index::LocalIndex*, std::optional<Value>>> touched;
  for (const auto& index : indexes_) {
    if (index->table() != table) continue;
    if (!cells.Get(index->column())) continue;  // column not written
    std::optional<Value> before;
    if (auto cell = engine.GetCell(key, index->column());
        cell && !cell->tombstone) {
      before = cell->value;
    }
    touched.emplace_back(index.get(), std::move(before));
  }

  engine.ApplyRow(key, cells);

  for (auto& [index, before] : touched) {
    std::optional<Value> after;
    if (auto cell = engine.GetCell(key, index->column());
        cell && !cell->tombstone) {
      after = cell->value;
    }
    if (before != after) {
      index->Update(key, before, after);
      metrics_->index_updates++;
    }
  }
}

storage::Row Server::LocalReadThenApply(
    const std::string& table, const Key& key,
    const std::vector<ColumnName>& read_columns, const storage::Row& cells) {
  storage::Row pre_image = LocalRead(table, key, read_columns);
  LocalApply(table, key, cells);
  return pre_image;
}

std::vector<storage::KeyedRow> Server::LocalScanPrefix(
    const std::string& table, const Key& prefix) {
  metrics_->replica_reads++;
  std::vector<storage::KeyedRow> result;
  EngineFor(table).ScanPrefix(prefix, [&](const Key& key,
                                          const storage::Row& row) {
    result.push_back(storage::KeyedRow{key, row});
  });
  return result;
}

std::vector<storage::KeyedRow> Server::LocalIndexProbe(
    const std::string& table, const ColumnName& column, const Value& value) {
  metrics_->index_fragment_probes++;
  std::vector<storage::KeyedRow> result;
  for (const auto& index : indexes_) {
    if (index->table() != table || index->column() != column) continue;
    storage::Engine& engine = EngineFor(table);
    for (const Key& key : index->Lookup(value)) {
      if (auto row = engine.GetRow(key)) {
        result.push_back(storage::KeyedRow{key, *std::move(row)});
      }
    }
    break;
  }
  return result;
}

std::vector<storage::KeyedRow> Server::LocalMatchScan(
    const std::string& table, const ColumnName& column, const Value& value) {
  metrics_->replica_reads++;
  std::vector<storage::KeyedRow> result;
  EngineFor(table).ForEach([&](const Key& key, const storage::Row& row) {
    auto current = row.GetValue(column);
    if (current && *current == value) {
      result.push_back(storage::KeyedRow{key, row});
    }
  });
  return result;
}

// ---------------------------------------------------------------------------
// Quorum read: a QuorumOp policy. The merge rule is LWW across the answered
// slots; settlement pushes read repair to stale responders (never on abort —
// a dead process cannot push repairs) and hands every reachable replica's
// raw response to `collect_all` (Algorithm 1's version collection).
// ---------------------------------------------------------------------------

void Server::CoordinateRead(
    const std::string& table, const Key& key, std::vector<ColumnName> columns,
    int read_quorum, std::function<void(StatusOr<storage::Row>)> callback,
    std::function<void(std::vector<storage::Row>)> collect_all) {
  using Op = QuorumOp<storage::Row>;
  Op::Spec spec;
  spec.name = "read";
  spec.targets = ReplicasOf(table, key);
  spec.quorum = read_quorum;
  spec.service = config_->perf.read_local;
  if (config_->row_cache_entries > 0) {
    // Resolve the demand on each replica at delivery: a cached row costs
    // read_cached_local there instead of the full merge.
    spec.service_at = [table, key](Server& s) {
      return s.ReadServiceFor(table, key);
    };
  }
  spec.request = [table, key, columns = std::move(columns)](Server& s) {
    return s.LocalRead(table, key, columns);
  };
  spec.quorum_error = "read quorum not reached";
  spec.on_quorum = [callback](Op& op) {
    callback(MergeRowResponses(op.responses()));
  };
  spec.on_error = [callback = std::move(callback)](Op&,
                                                   const Status& status) {
    callback(status);
  };
  spec.on_settled = [table, key, collect_all = std::move(collect_all)](
                        Op& op, bool aborted) {
    Server& coord = op.coordinator();
    if (!aborted) {
      // Read repair: push the merged image to every replica that answered
      // with something older (rides the replica-write batch when enabled).
      storage::Row merged = MergeRowResponses(op.responses());
      if (!merged.empty()) {
        for (std::size_t i = 0; i < op.targets().size(); ++i) {
          if (op.responses()[i] && !(*op.responses()[i] == merged)) {
            coord.metrics()->read_repairs++;
            coord.SendReplicaWrite(op.targets()[i], table, key, merged,
                                   coord.config().perf.write_local,
                                   [](bool) {});
          }
        }
      }
    }
    if (collect_all) {
      std::vector<storage::Row> collected;
      for (const auto& row : op.responses()) {
        if (row) collected.push_back(*row);
      }
      collect_all(std::move(collected));
    }
  };
  Op::Start(this, std::move(spec));
}

// ---------------------------------------------------------------------------
// Quorum write: a QuorumOp policy shipping through the replica-write batch.
// Hinted handoff for unacknowledged targets is the framework's doing (the
// spec carries the hint payload).
// ---------------------------------------------------------------------------

// Per-replica service demand of applying `cells` to `table`: the base write
// plus synchronous maintenance of each local index fragment whose column is
// being written (Cassandra-style).
SimTime Server::WriteServiceFor(const std::string& table,
                                const storage::Row& cells) const {
  SimTime service = config_->perf.write_local;
  for (const IndexDef& index : schema_->IndexesOn(table)) {
    if (cells.Get(index.column)) {
      service += config_->perf.index_update_local;
    }
  }
  return service;
}

void Server::CoordinateWrite(const std::string& table, const Key& key,
                             const storage::Row& cells, int write_quorum,
                             std::function<void(Status)> callback) {
  using Op = QuorumOp<bool>;
  Op::Spec spec;
  spec.name = "write";
  spec.targets = ReplicasOf(table, key);
  spec.quorum = write_quorum;
  const SimTime service = WriteServiceFor(table, cells);
  spec.send = [table, key, cells, service](
                  Server& coord, ServerId to,
                  std::function<void(bool)> on_reply) {
    coord.SendReplicaWrite(to, table, key, cells, service,
                           std::move(on_reply));
  };
  spec.quorum_error = "write quorum not reached";
  spec.hint_table = table;
  spec.hint_key = key;
  spec.hint_cells = cells;
  spec.on_quorum = [callback](Op&) { callback(Status::OK()); };
  spec.on_error = [callback = std::move(callback)](Op&,
                                                   const Status& status) {
    callback(status);
  };
  Op::Start(this, std::move(spec));
}

void Server::SendReplicaWrite(ServerId to, const std::string& table,
                              const Key& key, const storage::Row& cells,
                              SimTime service,
                              UniqueFn<void(bool)> on_ack) {
  if (config_->write_batch_max <= 1) {
    CallPeer<bool>(
        to, service,
        [table, key, cells](Server& s) {
          s.LocalApply(table, key, cells);
          return true;
        },
        std::move(on_ack));
    return;
  }
  ReplicaWriteLane& lane = write_lanes_[to];
  lane.parked.push_back(PendingReplicaWrite{table, key, cells, service,
                                            std::move(on_ack), sim_->Now()});
  // Nagle gate: while the lane is idle the mutation ships at once (a batch
  // of one — no latency is ever added to a solo write). Only while a batch
  // is in flight do later mutations park, so batch size adapts to how many
  // writes arrive per round trip.
  if (lane.in_flight == 0 ||
      static_cast<int>(lane.parked.size()) >= config_->write_batch_max) {
    FlushReplicaWrites(to);
    return;
  }
  if (lane.parked.size() == 1) {
    // First mutation parked in this flight: arm the fallback flush timer so
    // a lost ack can only stall parked writes for write_batch_delay. An
    // earlier flush may empty the lane first, in which case the timer
    // flushes whatever newer batch has formed by then (or nothing).
    const std::uint64_t incarnation = incarnation_;
    sim_->After(config_->write_batch_delay, [this, to, incarnation] {
      if (incarnation != incarnation_ || crashed_) return;
      FlushReplicaWrites(to);
    });
  }
}

void Server::FlushReplicaWrites(ServerId to) {
  auto it = write_lanes_.find(to);
  if (it == write_lanes_.end() || it->second.parked.empty()) return;
  ReplicaWriteLane& lane = it->second;
  std::vector<PendingReplicaWrite> batch = std::move(lane.parked);
  lane.parked.clear();
  ++lane.in_flight;
  metrics_->replica_write_batches++;
  const SimTime now = sim_->Now();
  const std::uint64_t payloads = batch.size();
  SimTime service = 0;
  // Split the batch: the acks stay on this coordinator (the reply closure
  // owns them), the payload rows move into the request closure outright —
  // no shared ownership, no copy of the batched cells.
  std::vector<UniqueFn<void(bool)>> acks;
  acks.reserve(batch.size());
  for (PendingReplicaWrite& item : batch) {
    metrics_->stage_batch_flush.Record(now - item.enqueued_at);
    service += item.service;
    acks.push_back(std::move(item.on_ack));
  }
  // Reopen the lane when the batch acks — or after rpc_timeout if the ack
  // was lost — and ship whatever parked during the flight.
  auto open = std::make_shared<bool>(true);
  auto settle = [this, to, open, incarnation = incarnation_] {
    if (!*open) return;
    *open = false;
    if (incarnation != incarnation_ || crashed_) return;
    auto lt = write_lanes_.find(to);
    if (lt == write_lanes_.end()) return;
    if (lt->second.in_flight > 0) --lt->second.in_flight;
    FlushReplicaWrites(to);
  };
  // One message, one receive overhead, the summed apply demand; the single
  // ack fans back out to every batched mutation's op.
  CallPeer<bool>(
      to, service,
      [batch = std::move(batch)](Server& s) {
        for (const PendingReplicaWrite& item : batch) {
          s.LocalApply(item.table, item.key, item.cells);
        }
        return true;
      },
      [acks = std::move(acks), settle](bool ok) mutable {
        for (UniqueFn<void(bool)>& ack : acks) ack(ok);
        settle();
      },
      payloads);
  sim_->After(config_->rpc_timeout, settle);
}

// ---------------------------------------------------------------------------
// Combined Get-then-Put (Section IV-C): a QuorumOp policy. Each replica
// returns its pre-update view-key versions and applies the write in one
// round; settlement hands the collected pre-images to Algorithm 1 (on abort
// too — the propagation machinery needs the partials to stay live).
// ---------------------------------------------------------------------------

void Server::CoordinateReadThenWrite(
    const std::string& table, const Key& key,
    std::vector<ColumnName> read_columns, const storage::Row& cells,
    int write_quorum, std::function<void(Status)> callback,
    std::function<void(std::vector<storage::Row>)> collect_pre_images) {
  using Op = QuorumOp<storage::Row>;
  Op::Spec spec;
  spec.name = "get_then_put";
  spec.targets = ReplicasOf(table, key);
  spec.quorum = write_quorum;
  spec.service = config_->perf.read_local + WriteServiceFor(table, cells);
  if (config_->row_cache_entries > 0) {
    // The write half is schema-determined (identical on every server); only
    // the read half depends on the target's cache.
    const SimTime write_service = WriteServiceFor(table, cells);
    spec.service_at = [table, key, write_service](Server& s) {
      return s.ReadServiceFor(table, key) + write_service;
    };
  }
  spec.request = [table, key, read_columns = std::move(read_columns),
                  cells](Server& s) {
    return s.LocalReadThenApply(table, key, read_columns, cells);
  };
  spec.quorum_error = "get-then-put quorum not reached";
  spec.hint_table = table;
  spec.hint_key = key;
  spec.hint_cells = cells;
  spec.on_quorum = [callback](Op&) { callback(Status::OK()); };
  spec.on_error = [callback = std::move(callback)](Op&,
                                                   const Status& status) {
    callback(status);
  };
  spec.on_settled = [collect = std::move(collect_pre_images)](Op& op, bool) {
    std::vector<storage::Row> collected;
    for (const auto& row : op.responses()) {
      if (row) collected.push_back(*row);
    }
    collect(std::move(collected));
  };
  Op::Start(this, std::move(spec));
}

// ---------------------------------------------------------------------------
// Partition scan: a QuorumOp policy. The merge rule is per-key LWW across
// the answered slots; settlement performs scan-path read repair — pushing
// every row a responding replica is missing or holds stale, batched per
// replica. This is what heals view partitions on access (a view row's
// replicas may have missed the propagation's third write).
// ---------------------------------------------------------------------------

void Server::CoordinateScan(
    const std::string& table, const Key& partition_prefix, int read_quorum,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  using Op = QuorumOp<std::vector<storage::KeyedRow>>;
  Op::Spec spec;
  spec.name = "scan";
  spec.targets = ReplicasOf(table, partition_prefix);
  spec.quorum = read_quorum;
  spec.service = config_->perf.view_scan_local;
  if (config_->perf.view_scan_per_row > 0) {
    // Row-proportional scan demand, evaluated against the target's local
    // partition size: the cost that view sub-sharding divides.
    spec.service_at = [table, partition_prefix,
                       base = config_->perf.view_scan_local,
                       per_row =
                           config_->perf.view_scan_per_row](Server& s) {
      SimTime rows = 0;
      s.EngineFor(table).ScanPrefix(
          partition_prefix, [&rows](const Key&, const storage::Row&) {
            ++rows;
          });
      return base + per_row * rows;
    };
  }
  spec.request = [table, partition_prefix](Server& s) {
    return s.LocalScanPrefix(table, partition_prefix);
  };
  spec.quorum_error = "scan quorum not reached";
  spec.on_quorum = [callback](Op& op) {
    std::map<Key, storage::Row> merged = MergeScanResponses(op.responses());
    std::vector<storage::KeyedRow> rows;
    rows.reserve(merged.size());
    for (auto& [key, row] : merged) {
      rows.push_back(storage::KeyedRow{key, std::move(row)});
    }
    callback(std::move(rows));
  };
  spec.on_error = [callback = std::move(callback)](Op&,
                                                   const Status& status) {
    callback(status);
  };
  spec.on_settled = [table, read_quorum](Op& op, bool aborted) {
    if (aborted || op.num_responses() < read_quorum) return;
    Server& coord = op.coordinator();
    const std::map<Key, storage::Row> merged =
        MergeScanResponses(op.responses());
    for (std::size_t i = 0; i < op.targets().size(); ++i) {
      if (!op.responses()[i]) continue;
      std::map<Key, const storage::Row*> have;
      for (const auto& kr : *op.responses()[i]) have[kr.key] = &kr.row;
      std::vector<storage::KeyedRow> fixes;
      for (const auto& [key, row] : merged) {
        auto it = have.find(key);
        if (it == have.end() || !(*it->second == row)) {
          fixes.push_back(storage::KeyedRow{key, row});
        }
      }
      if (fixes.empty()) continue;
      coord.metrics()->read_repairs += fixes.size();
      const std::uint64_t payloads = fixes.size();
      const SimTime service = coord.config().perf.write_local *
                              static_cast<SimTime>(fixes.size());
      std::string t = table;
      coord.CallPeer<bool>(
          op.targets()[i], service,
          [t, fixes = std::move(fixes)](Server& s) {
            for (const auto& kr : fixes) s.LocalApply(t, kr.key, kr.row);
            return true;
          },
          [](bool) {}, payloads);
    }
  };
  Op::Start(this, std::move(spec));
}

// ---------------------------------------------------------------------------
// Scatter-gather over a sharded view partition (ISSUE 9): one CoordinateScan
// per sub-shard (each its own QuorumOp with the scan path's retarget and
// read-repair behaviour), gathered at this coordinator with a streaming
// k-way merge of the per-shard sorted results.
// ---------------------------------------------------------------------------

std::vector<storage::KeyedRow> MergeSortedShardScans(
    std::vector<std::vector<storage::KeyedRow>> shards) {
  struct Cursor {
    std::size_t shard;
    std::size_t pos;
  };
  auto after = [&shards](const Cursor& a, const Cursor& b) {
    return shards[a.shard][a.pos].key > shards[b.shard][b.pos].key;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(
      after);
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    total += shards[i].size();
    if (!shards[i].empty()) heap.push(Cursor{i, 0});
  }
  std::vector<storage::KeyedRow> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    storage::KeyedRow& kr = shards[c.shard][c.pos];
    if (!out.empty() && out.back().key == kr.key) {
      out.back().row.MergeFrom(kr.row);
    } else {
      out.push_back(std::move(kr));
    }
    if (++c.pos < shards[c.shard].size()) heap.push(c);
  }
  return out;
}

void Server::CoordinateViewScatterScan(
    const std::string& table, std::vector<Key> shard_prefixes, int read_quorum,
    bool allow_partial,
    std::function<void(StatusOr<ScatterScanResult>)> callback) {
  MVSTORE_CHECK(!shard_prefixes.empty()) << "scatter scan needs a prefix";
  const int total = static_cast<int>(shard_prefixes.size());
  if (shard_prefixes.size() == 1) {
    // One shard: partial coverage is impossible — either the scan answers
    // the whole partition or the query fails, allow_partial or not.
    CoordinateScan(table, shard_prefixes[0], read_quorum,
                   [callback = std::move(callback)](
                       StatusOr<std::vector<storage::KeyedRow>> scan) {
                     if (!scan.ok()) {
                       callback(scan.status());
                       return;
                     }
                     ScatterScanResult result;
                     result.rows = *std::move(scan);
                     result.total_shards = 1;
                     callback(std::move(result));
                   });
    return;
  }
  metrics_->view_scatter_scans++;
  struct Gather {
    std::vector<std::vector<storage::KeyedRow>> results;
    std::vector<bool> ok;
    std::size_t pending = 0;
    Status first_error = Status::OK();
    std::function<void(StatusOr<ScatterScanResult>)> callback;
  };
  auto gather = std::make_shared<Gather>();
  gather->results.resize(shard_prefixes.size());
  gather->ok.assign(shard_prefixes.size(), false);
  gather->pending = shard_prefixes.size();
  gather->callback = std::move(callback);
  for (std::size_t i = 0; i < shard_prefixes.size(); ++i) {
    CoordinateScan(
        table, shard_prefixes[i], read_quorum,
        [gather, i, total, allow_partial,
         metrics = metrics_](StatusOr<std::vector<storage::KeyedRow>> scan) {
          if (scan.ok()) {
            gather->results[i] = *std::move(scan);
            gather->ok[i] = true;
          } else if (gather->first_error.ok()) {
            gather->first_error = scan.status();
          }
          if (--gather->pending > 0) return;
          const int failed = total - static_cast<int>(std::count(
                                         gather->ok.begin(), gather->ok.end(),
                                         true));
          // A failed shard fails the whole query unless the caller opted
          // into partial coverage AND at least one shard answered (an
          // all-shards-dead "partial" would be an empty lie).
          if (failed > 0 && (!allow_partial || failed == total)) {
            gather->callback(std::move(gather->first_error));
            return;
          }
          ScatterScanResult result;
          result.rows = MergeSortedShardScans(std::move(gather->results));
          result.failed_shards = failed;
          result.total_shards = total;
          if (failed > 0) metrics->view_scatter_partial++;
          gather->callback(std::move(result));
        });
  }
}

// ---------------------------------------------------------------------------
// Broadcast secondary-index lookup: a QuorumOp policy whose quorum is ALL
// fragments (every server holds part of the index). The framework's slot
// dedupe also closes the old hole where a replayed fragment response could
// count twice toward completion.
// ---------------------------------------------------------------------------

void Server::HandleClientIndexGet(
    const std::string& table, const ColumnName& column, const Value& value,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  metrics_->client_index_gets++;
  if (!AcceptsCoordination()) {
    callback(Status::Unavailable("server leaving the ring"));
    return;
  }
  if (schema_->FindIndex(table, column) == nullptr) {
    callback(Status::NotFound("no index on " + table + "." + column));
    return;
  }
  auto reply = WrapReply(std::move(callback));
  Enqueue(config_->perf.coordinator_op, [this, table, column, value,
                                         reply = std::move(reply)]() mutable {
    CoordinateIndexScan(table, column, value, std::move(reply));
  });
}

void Server::CoordinateIndexScan(
    const std::string& table, const ColumnName& column, const Value& value,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  using Op = QuorumOp<std::vector<storage::KeyedRow>>;
  Op::Spec spec;
  spec.name = "index_scan";
  // Every CURRENT ring member holds a fragment; servers that left (or
  // never joined) hold nothing and would only stall the full-broadcast
  // quorum.
  spec.targets.assign(ring_->members().begin(), ring_->members().end());
  spec.quorum = static_cast<int>(spec.targets.size());
  spec.service = config_->perf.index_scan_local;
  spec.request = [table, column, value](Server& server) {
    return server.LocalIndexProbe(table, column, value);
  };
  spec.quorum_error = "index fragments unreachable";
  spec.on_quorum = [column, value, callback](Op& op) {
    // A fragment may return keys whose globally-latest value no longer
    // matches (its replica was stale); filter on the merged image, as
    // Cassandra's coordinator re-checks index hits.
    std::map<Key, storage::Row> merged = MergeScanResponses(op.responses());
    std::vector<storage::KeyedRow> rows;
    for (auto& [key, row] : merged) {
      auto current = row.GetValue(column);
      if (!current || *current != value) continue;
      rows.push_back(storage::KeyedRow{key, std::move(row)});
    }
    callback(std::move(rows));
  };
  spec.on_error = [callback = std::move(callback)](Op&,
                                                   const Status& status) {
    callback(status);
  };
  Op::Start(this, std::move(spec));
}

void Server::CoordinateBaseMatchScan(
    const std::string& table, const ColumnName& column, const Value& value,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  using Op = QuorumOp<std::vector<storage::KeyedRow>>;
  Op::Spec spec;
  spec.name = "base_match_scan";
  // Same broadcast shape as the index scan, but every server walks its whole
  // local fragment of the table — the router's priced-in worst case.
  spec.targets.assign(ring_->members().begin(), ring_->members().end());
  spec.quorum = static_cast<int>(spec.targets.size());
  spec.service = config_->perf.base_scan_local;
  spec.request = [table, column, value](Server& server) {
    return server.LocalMatchScan(table, column, value);
  };
  spec.quorum_error = "base-scan replicas unreachable";
  spec.on_quorum = [column, value, callback](Op& op) {
    std::map<Key, storage::Row> merged = MergeScanResponses(op.responses());
    std::vector<storage::KeyedRow> rows;
    for (auto& [key, row] : merged) {
      auto current = row.GetValue(column);
      if (!current || *current != value) continue;
      rows.push_back(storage::KeyedRow{key, std::move(row)});
    }
    callback(std::move(rows));
  };
  spec.on_error = [callback = std::move(callback)](Op&,
                                                   const Status& status) {
    callback(status);
  };
  Op::Start(this, std::move(spec));
}

// ---------------------------------------------------------------------------
// Client-facing entry points.
// ---------------------------------------------------------------------------

template <typename ResultT>
std::function<void(ResultT)> Server::WrapReply(
    std::function<void(ResultT)> callback) {
  // Charges coordinator service time for assembling the reply, so reply
  // processing contributes to saturation under load.
  return [this, callback = std::move(callback)](ResultT result) mutable {
    Enqueue(config_->perf.coordinator_op,
            [callback = std::move(callback),
             result = std::move(result)]() mutable {
              callback(std::move(result));
            });
  };
}

void Server::HandleClientGet(
    const std::string& table, const Key& key, std::vector<ColumnName> columns,
    int read_quorum, std::function<void(StatusOr<storage::Row>)> callback) {
  metrics_->client_gets++;
  if (!AcceptsCoordination()) {
    callback(Status::Unavailable("server leaving the ring"));
    return;
  }
  const TableDef* def = schema_->GetTable(table);
  if (def == nullptr) {
    callback(Status::NotFound("no table '" + table + "'"));
    return;
  }
  if (def->is_view_backing) {
    callback(Status::InvalidArgument(
        "use view Get for '" + table + "' (views return record sets)"));
    return;
  }
  auto reply = WrapReply(std::move(callback));
  Enqueue(config_->perf.coordinator_op,
          [this, table, key, columns = std::move(columns), read_quorum,
           reply = std::move(reply)]() mutable {
            CoordinateRead(table, key, std::move(columns), read_quorum,
                           std::move(reply));
          });
}

void Server::HandleClientPut(const std::string& table, const Key& key,
                             const Mutation& mutation, Timestamp ts,
                             int write_quorum, SessionId session,
                             std::function<void(Status)> callback) {
  metrics_->client_puts++;
  if (!AcceptsCoordination()) {
    callback(Status::Unavailable("server leaving the ring"));
    return;
  }
  const TableDef* def = schema_->GetTable(table);
  if (def == nullptr) {
    callback(Status::NotFound("no table '" + table + "'"));
    return;
  }
  if (def->is_view_backing) {
    callback(Status::InvalidArgument("views are not updateable"));
    return;
  }
  if (mutation.empty()) {
    callback(Status::InvalidArgument("empty mutation"));
    return;
  }

  storage::Row cells;
  for (const auto& [col, value] : mutation) {
    cells.Apply(col, value ? storage::Cell::Live(*value, ts)
                           : storage::Cell::Tombstone(ts));
  }

  // Which views does this Put affect (Algorithm 1, line 1)?
  std::vector<const ViewDef*> affected;
  if (view_hook_ != nullptr) {
    for (const ViewDef* view : schema_->ViewsOn(table)) {
      // The first byte of sentinel view keys is reserved (deleted-row
      // anchors, see store/codec.h).
      if (auto it = mutation.find(view->view_key_column);
          it != mutation.end() && it->second.has_value() &&
          !it->second->empty() && (*it->second)[0] == kSentinelPrefix) {
        callback(Status::InvalidArgument(
            "view key values must not start with byte 0x03 (reserved)"));
        return;
      }
      for (const auto& [col, unused] : mutation) {
        if (view->Affects(col)) {
          affected.push_back(view);
          break;
        }
      }
    }
  }

  auto reply = WrapReply(std::move(callback));

  if (affected.empty()) {
    Enqueue(config_->perf.coordinator_op,
            [this, table, key, cells, write_quorum,
             reply = std::move(reply)]() mutable {
              CoordinateWrite(table, key, cells, write_quorum,
                              std::move(reply));
            });
    return;
  }

  // Freshness contract (ISSUE 7): register the pending propagations NOW,
  // synchronously, before any replica traffic — a bounded-staleness read
  // issued the instant this Put is acknowledged must already see them.
  const std::uint64_t put_group =
      view_hook_->OnBasePutIssued(this, key, affected, ts, session);

  // Columns whose pre-update versions Algorithm 1 must collect: the view
  // key column of every affected view.
  std::vector<ColumnName> read_columns;
  for (const ViewDef* view : affected) {
    if (std::find(read_columns.begin(), read_columns.end(),
                  view->view_key_column) == read_columns.end()) {
      read_columns.push_back(view->view_key_column);
    }
  }

  auto on_collected = [this, affected, key, cells, session,
                       put_group](std::vector<storage::Row> pre_images) {
    const bool full_collection =
        static_cast<int>(pre_images.size()) == config_->replication_factor;
    // Dedupe the pre-image versions ONCE per distinct view-key column and
    // share the guess list across every view keyed by it — part of the
    // shared change-set (ISSUE 10): a Put touching N same-column views does
    // the collection work once, not N times.
    std::map<ColumnName, std::vector<storage::Cell>> guesses_by_column;
    for (const ViewDef* view : affected) {
      auto [it, inserted] = guesses_by_column.try_emplace(
          view->view_key_column);
      if (!inserted) continue;
      std::set<std::pair<Timestamp, Value>> seen;
      for (const storage::Row& pre : pre_images) {
        storage::Cell cell;  // null cell when the replica had no value
        if (auto c = pre.Get(view->view_key_column)) cell = *c;
        if (cell.tombstone) cell.value.clear();
        const auto fingerprint =
            std::make_pair(cell.ts, cell.tombstone ? Value() : cell.value);
        if (seen.insert(fingerprint).second) {
          it->second.push_back(std::move(cell));
        }
      }
      if (it->second.empty()) {
        it->second.push_back(storage::Cell{});  // nothing collected
      }
    }
    std::vector<CollectedViewKeys> collected;
    collected.reserve(affected.size());
    for (const ViewDef* view : affected) {
      CollectedViewKeys entry;
      entry.view = view;
      entry.full_collection = full_collection;
      entry.old_keys = guesses_by_column[view->view_key_column];
      collected.push_back(std::move(entry));
    }
    view_hook_->OnBasePutCommitted(this, key, cells, std::move(collected),
                                   session, put_group);
  };

  if (config_->combined_get_then_put) {
    Enqueue(config_->perf.coordinator_op,
            [this, table, key, cells, write_quorum,
             read_columns = std::move(read_columns),
             reply = std::move(reply),
             on_collected = std::move(on_collected)]() mutable {
              CoordinateReadThenWrite(table, key, std::move(read_columns),
                                      cells, write_quorum, std::move(reply),
                                      std::move(on_collected));
            });
    return;
  }

  // Paper-prototype mode: a separate Get (line 2) collects the distinct
  // view-key versions from ALL replicas before the Put (line 3) is issued —
  // the simplest way to have every version in hand when propagation starts,
  // and the reason Figure 5's MV write latency is ~2.5x BT's. (The combined
  // mode above fuses both into one round; see bench/ablation_combined_getput.)
  const int preread_quorum = config_->replication_factor;
  Enqueue(config_->perf.coordinator_op, [this, table, key, cells, write_quorum,
                                         preread_quorum,
                                         read_columns = std::move(read_columns),
                                         reply = std::move(reply),
                                         on_collected =
                                             std::move(on_collected)]() mutable {
    CoordinateRead(
        table, key, read_columns, preread_quorum,
        [this, table, key, cells, write_quorum,
         reply = std::move(reply)](StatusOr<storage::Row> pre) mutable {
          // The pre-read's value only feeds propagation guesses; an
          // unreachable replica (Unavailable after the timeout) must not
          // fail the client's Put — Algorithm 1 issues the Put regardless,
          // and collection proceeds with the versions that did arrive.
          CoordinateWrite(table, key, cells, write_quorum, std::move(reply));
        },
        std::move(on_collected));
  });
}

void Server::HandleClientViewGet(
    const std::string& view_name, const Key& view_key,
    std::vector<ColumnName> columns, int read_quorum, SessionId session,
    ReadConsistency consistency, SimTime max_staleness,
    std::function<void(StatusOr<ViewReadOutcome>)> callback) {
  metrics_->client_view_gets++;
  if (!AcceptsCoordination()) {
    callback(Status::Unavailable("server leaving the ring"));
    return;
  }
  const ViewDef* view = schema_->GetView(view_name);
  if (view == nullptr) {
    callback(Status::NotFound("no view '" + view_name + "'"));
    return;
  }
  if (view_hook_ == nullptr) {
    callback(Status::FailedPrecondition("view engine not installed"));
    return;
  }
  ViewReadSpec spec;
  spec.columns = std::move(columns);
  spec.read_quorum = read_quorum;
  spec.session = session;
  spec.consistency = consistency;
  spec.max_staleness = max_staleness;
  auto reply = WrapReply(std::move(callback));
  Enqueue(config_->perf.coordinator_op,
          [this, view, view_key, spec = std::move(spec),
           reply = std::move(reply)]() mutable {
            view_hook_->HandleViewGet(this, *view, view_key, std::move(spec),
                                      std::move(reply));
          });
}

// ---------------------------------------------------------------------------
// Background anti-entropy.
// ---------------------------------------------------------------------------

void Server::Start() {
  // Capacity slots that never joined (and servers that left) stay silent
  // until ActivateForJoin arms them.
  if (membership_ == MembershipState::kLeft) return;
  ScheduleBackgroundTicks();
}

void Server::ScheduleBackgroundTicks() {
  // Tick chains belong to one process incarnation: when the server crashes,
  // the pending chain link notices the incarnation changed and dies;
  // Restart() arms a fresh chain.
  const std::uint64_t incarnation = incarnation_;
  if (config_->anti_entropy_interval > 0) {
    // Stagger the servers so rounds do not align.
    const SimTime phase = config_->anti_entropy_interval *
                          static_cast<SimTime>(id_ + 1) /
                          static_cast<SimTime>(config_->num_servers);
    sim_->After(phase, [this, incarnation] {
      if (incarnation == incarnation_) AntiEntropyTick();
    });
  }
  if (config_->hint_replay_interval > 0) {
    const SimTime phase = config_->hint_replay_interval *
                          static_cast<SimTime>(id_ + 1) /
                          static_cast<SimTime>(config_->num_servers);
    sim_->After(phase, [this, incarnation] {
      if (incarnation == incarnation_) HintReplayTick();
    });
  }
  if (config_->compaction_interval > 0) {
    const SimTime phase = config_->compaction_interval *
                          static_cast<SimTime>(id_ + 1) /
                          static_cast<SimTime>(config_->num_servers);
    sim_->After(phase, [this, incarnation] {
      if (incarnation == incarnation_) CompactionTick();
    });
  }
}

void Server::AntiEntropyTick() {
  if (crashed_) return;
  // A draining server shares no ranges with anyone (it already left the
  // ring); its handoff runs through the decommission streams instead.
  if (membership_ == MembershipState::kLeft ||
      membership_ == MembershipState::kDraining) {
    return;
  }
  RunAntiEntropyRound();
  const std::uint64_t incarnation = incarnation_;
  sim_->After(config_->anti_entropy_interval, [this, incarnation] {
    if (incarnation == incarnation_) AntiEntropyTick();
  });
}

// ---------------------------------------------------------------------------
// Clock-driven compaction (tombstone GC in the service model).
// ---------------------------------------------------------------------------

void Server::CompactionTick() {
  if (crashed_ || membership_ == MembershipState::kLeft) return;
  RunCompactionRound();
  const std::uint64_t incarnation = incarnation_;
  sim_->After(config_->compaction_interval, [this, incarnation] {
    if (incarnation == incarnation_) CompactionTick();
  });
}

void Server::RunCompactionRound() {
  for (const auto& [table, engine] : engines_) {
    storage::Engine* eng = engine.get();
    // Demand scales with the merge width; it contends with foreground work
    // on the same cores (the point of modelling compaction at all).
    const SimTime demand =
        config_->perf.compaction_service *
        static_cast<SimTime>(std::max<std::size_t>(1, eng->num_runs()));
    Enqueue(demand, [this, eng, demand] {
      // Both clocks are evaluated at execution time, not scheduling time:
      // the GC cutoff in the client-timestamp domain, and the purge floor
      // from whatever hints are STILL pending when the merge actually runs.
      const Timestamp now = kClientTimestampEpoch + sim_->Now();
      const storage::GcStats stats = eng->Compact(now, OldestHintTimestamp());
      metrics_->compactions_run++;
      metrics_->tombstones_purged += stats.tombstones_purged;
      metrics_->tombstone_purge_deferred += stats.tombstones_deferred;
      metrics_->stage_compaction.Record(demand);
    });
  }
}

std::vector<std::uint64_t> Server::ComputeSyncDigests(const std::string& table,
                                                      ServerId peer,
                                                      int buckets) const {
  std::vector<std::uint64_t> digests(static_cast<std::size_t>(buckets), 0);
  auto it = engines_.find(table);
  if (it == engines_.end()) return digests;
  // Sum (mod 2^64) of salted entry hashes, folded with the bucket's row
  // count. Addition is commutative, so the digest is still set-like — but
  // unlike the XOR combiner this used to be, it is not a GF(2) linear map:
  // with XOR, any bucket whose entry hashes form a linearly dependent set
  // (guaranteed once a bucket holds > 64 rows, and constructible with far
  // fewer) could cancel to the same digest on two replicas holding
  // DIFFERENT rows, silently skipping the bucket forever.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(buckets), 0);
  it->second->ForEach([&](const Key& key, const storage::Row& row) {
    const auto& replicas = ReplicasOf(table, key);
    const bool shared =
        std::find(replicas.begin(), replicas.end(), id_) != replicas.end() &&
        std::find(replicas.begin(), replicas.end(), peer) != replicas.end();
    if (!shared) return;
    const std::uint64_t key_hash = Hash64(key);
    const std::size_t bucket =
        key_hash % static_cast<std::uint64_t>(buckets);
    digests[bucket] +=
        HashCombine(HashCombine(key_hash, storage::RowDigest(row)),
                    kSyncDigestSalt);
    ++counts[bucket];
  });
  for (std::size_t b = 0; b < digests.size(); ++b) {
    // Empty buckets stay 0 so a server with no engine for the table (all-zero
    // fast path above) agrees with a peer that has the engine but no shared
    // rows.
    if (counts[b] > 0) digests[b] = HashCombine(digests[b], counts[b]);
  }
  return digests;
}

std::vector<storage::KeyedRow> Server::CollectBucketRows(
    const std::string& table, ServerId peer, const std::vector<int>& buckets,
    int total_buckets) const {
  std::vector<storage::KeyedRow> rows;
  auto it = engines_.find(table);
  if (it == engines_.end()) return rows;
  std::vector<bool> wanted(static_cast<std::size_t>(total_buckets), false);
  for (int bucket : buckets) wanted[static_cast<std::size_t>(bucket)] = true;
  it->second->ForEach([&](const Key& key, const storage::Row& row) {
    const std::size_t bucket =
        Hash64(key) % static_cast<std::uint64_t>(total_buckets);
    if (!wanted[bucket]) return;
    const auto& replicas = ReplicasOf(table, key);
    const bool shared =
        std::find(replicas.begin(), replicas.end(), id_) != replicas.end() &&
        std::find(replicas.begin(), replicas.end(), peer) != replicas.end();
    if (shared) rows.push_back(storage::KeyedRow{key, row});
  });
  return rows;
}

void Server::SyncTableWithPeer(const std::string& table, ServerId peer) {
  const int buckets = config_->anti_entropy_buckets;
  const std::vector<std::uint64_t> mine =
      ComputeSyncDigests(table, peer, buckets);
  metrics_->anti_entropy_digest_exchanges++;
  const ServerId self_id = id_;
  // Phase 1: the peer compares digests and answers with mismatched buckets.
  CallPeer<std::vector<int>>(
      peer, config_->perf.read_local,
      [table, self_id, buckets, mine](Server& s) {
        const std::vector<std::uint64_t> theirs =
            s.ComputeSyncDigests(table, self_id, buckets);
        std::vector<int> mismatched;
        for (int b = 0; b < buckets; ++b) {
          if (mine[static_cast<std::size_t>(b)] !=
              theirs[static_cast<std::size_t>(b)]) {
            mismatched.push_back(b);
          }
        }
        return mismatched;
      },
      [this, table, peer, buckets](std::vector<int> mismatched) {
        if (mismatched.empty()) return;
        metrics_->anti_entropy_buckets_synced += mismatched.size();
        // Phase 2: ship our rows of the mismatched buckets; the peer applies
        // them and answers with ITS rows of the same buckets (bidirectional).
        std::vector<storage::KeyedRow> ours =
            CollectBucketRows(table, peer, mismatched, buckets);
        metrics_->anti_entropy_rows_pushed += ours.size();
        const ServerId self_id2 = id_;
        const SimTime service =
            config_->perf.write_local *
            static_cast<SimTime>(ours.size() + 1);
        CallPeer<std::vector<storage::KeyedRow>>(
            peer, service,
            [table, self_id2, mismatched, buckets,
             ours = std::move(ours)](Server& s) {
              for (const auto& kr : ours) s.LocalApply(table, kr.key, kr.row);
              return s.CollectBucketRows(table, self_id2, mismatched, buckets);
            },
            [this, table](std::vector<storage::KeyedRow> theirs) {
              metrics_->anti_entropy_rows_pushed += theirs.size();
              for (const auto& kr : theirs) LocalApply(table, kr.key, kr.row);
            });
      });
}

void Server::RunAntiEntropyRound() {
  // Each round is its own root trace: background repair has no client
  // operation to hang off, but its fan-out is still worth reconstructing.
  TraceContext round;
  if (tracer_ != nullptr) {
    round = tracer_->StartTrace("anti_entropy.round", static_cast<int>(id_),
                                sim_->Now());
  }
  Tracer::Scope scope(tracer_, round);
  for (ServerId peer : ring_->members()) {
    if (peer == id_) continue;
    for (const auto& [table, engine] : engines_) {
      SyncTableWithPeer(table, peer);
    }
  }
  if (round) tracer_->EndSpan(round, sim_->Now());
}

// ---------------------------------------------------------------------------
// Crash-stop fault model.
// ---------------------------------------------------------------------------

std::uint64_t Server::RegisterInflightOp(
    std::function<void()> abort, std::function<void(ServerId)> retarget) {
  const std::uint64_t op_id = ++next_op_id_;
  inflight_aborts_.emplace(op_id, std::move(abort));
  if (retarget) inflight_retargets_.emplace(op_id, std::move(retarget));
  return op_id;
}

void Server::DeregisterInflightOp(std::uint64_t op_id) {
  inflight_aborts_.erase(op_id);
  inflight_retargets_.erase(op_id);
}

void Server::Crash() {
  MVSTORE_CHECK(!crashed_) << "server " << id_ << " crashed while down";
  crashed_ = true;
  metrics_->server_crashes++;

  // 1. The view engine loses this server's share of its volatile state
  //    (propagation tasks, session bookkeeping, propagator queues) FIRST, so
  //    the abort callbacks below cannot resurrect work on a dead process.
  if (view_hook_ != nullptr) view_hook_->OnServerCrash(this);

  // 2. Abort every in-flight coordinator operation. Internal callers (the
  //    propagation machines) get their error callbacks synchronously; client
  //    replies travel through WrapReply -> Enqueue, which is guarded by the
  //    incarnation bump below, so clients learn of the crash only through
  //    their own request timeouts — exactly like a real silent crash.
  auto aborts = std::move(inflight_aborts_);
  inflight_aborts_.clear();
  inflight_retargets_.clear();
  for (auto& [op_id, abort] : aborts) abort();
  metrics_->inflight_ops_aborted += aborts.size();

  // 3. Volatile state dies with the process: memtables (the commit logs and
  //    flushed runs are durable), stored hints, parked replica-write
  //    batches, and the run-queue backlog.
  for (auto& [table, engine] : engines_) engine->LoseVolatileState();
  hints_.clear();
  write_lanes_.clear();
  freshness_cache_.by_view.clear();
  queue_.Reset();
  // Membership stream progress is volatile too; Restart rebuilds the task
  // list from the (durable) join/decommission plan and streams from scratch.
  stream_tasks_.clear();
  stream_pull_pending_ = false;

  // 4. Disappear from the network. Bumping the incarnation (a) drops every
  //    in-flight message to/from the dead process at delivery time and
  //    (b) invalidates every closure the old incarnation enqueued.
  ++incarnation_;
  network_->BumpIncarnation(id_);
  network_->SetEndpointDown(id_, true);
}

void Server::Restart() {
  MVSTORE_CHECK(crashed_) << "restart of live server " << id_;
  crashed_ = false;
  metrics_->server_restarts++;

  // Rejoin the ring: the endpoint comes back up under the incarnation
  // Crash() already bumped.
  network_->SetEndpointDown(id_, false);

  // Recovery: replay each table's commit log into the fresh memtable
  // (idempotent under LWW; the log was truncated at the last flush).
  for (auto& [table, engine] : engines_) {
    metrics_->wal_cells_replayed += engine->RecoverFromLog();
  }

  // Catch up with the writes this replica missed while down: re-arm the
  // periodic ticks and run one anti-entropy round right away.
  ScheduleBackgroundTicks();
  RunAntiEntropyRound();

  // Let the view engine re-scrub the ranges this server owns, adopting
  // propagations orphaned by the crash.
  if (view_hook_ != nullptr) view_hook_->OnServerRestart(this);

  // A membership transition interrupted by the crash resumes: the plans are
  // durable intent records, only the stream cursors died with the process.
  if (membership_ == MembershipState::kJoining) {
    BuildStreamTasks(join_plan_);
    stream_min_ts_ = 0;
    PumpStream();
  } else if (membership_ == MembershipState::kDraining) {
    decommission_phase_ = 1;
    stream_min_ts_ = 0;
    BuildStreamTasks(decommission_plan_);
    PumpStream();
  }
}

// ---------------------------------------------------------------------------
// Hinted handoff.
// ---------------------------------------------------------------------------

void Server::StoreHint(ServerId target, const std::string& table,
                       const Key& key, const storage::Row& cells) {
  // A write owed to a server on its way out of the ring (or already gone)
  // must not park behind it — the target will never come back for it.
  // Re-coordinate straight to the key's current replicas instead.
  if (peers_ != nullptr) {
    const MembershipState target_state = (*peers_)[target]->membership();
    if (target_state == MembershipState::kDraining ||
        target_state == MembershipState::kLeft) {
      metrics_->member_hints_rerouted++;
      RerouteWriteToCurrentReplicas(table, key, cells);
      return;
    }
  }
  std::deque<Hint>& queue = hints_[target];
  if (queue.size() >= config_->max_hints_per_target) {
    queue.pop_front();  // oldest first; anti-entropy is the backstop
    metrics_->hints_dropped++;
  }
  Hint hint{table, key, cells, {}};
  if (tracer_ != nullptr) {
    hint.trace = tracer_->current();
    if (hint.trace) {
      TraceContext span = tracer_->StartSpan(
          hint.trace, "hint.stored", static_cast<int>(id_), sim_->Now());
      tracer_->Annotate(span, "target=" + std::to_string(target));
      tracer_->EndSpan(span, sim_->Now());
    }
  }
  queue.push_back(std::move(hint));
  metrics_->hints_stored++;
}

std::size_t Server::pending_hints(ServerId target) const {
  auto it = hints_.find(target);
  return it == hints_.end() ? 0 : it->second.size();
}

void Server::HintReplayTick() {
  if (crashed_ || membership_ == MembershipState::kLeft) return;
  ReplayHints();
  const std::uint64_t incarnation = incarnation_;
  sim_->After(config_->hint_replay_interval, [this, incarnation] {
    if (incarnation == incarnation_) HintReplayTick();
  });
}

void Server::ReplayHints() {
  for (auto& [target, queue] : hints_) {
    if (queue.empty()) continue;
    // The target left the ring since these queued: replaying at it is
    // pointless, move the writes to the keys' current replicas.
    if (peers_ != nullptr && !(*peers_)[target]->is_member()) {
      RerouteHintsFor(target);
      continue;
    }
    // Ship the whole queue; drop it only when the target acknowledges.
    // (Re-delivery after a lost ack is harmless: LWW applies are
    // idempotent.)
    auto batch =
        std::make_shared<std::vector<Hint>>(queue.begin(), queue.end());
    const std::size_t count = batch->size();
    if (tracer_ != nullptr) {
      // Instant markers tie each originating write's trace to the replay
      // attempt that finally delivers it.
      for (const Hint& hint : *batch) {
        if (!hint.trace) continue;
        TraceContext span = tracer_->StartSpan(
            hint.trace, "hint.replay", static_cast<int>(id_), sim_->Now());
        tracer_->Annotate(span, "target=" + std::to_string(target));
        tracer_->EndSpan(span, sim_->Now());
      }
    }
    // The replay is a single-target QuorumOp: it inherits the framework's
    // silence retry, crash abort, and uniform tracing for free.
    const ServerId target_id = target;
    using Op = QuorumOp<bool>;
    Op::Spec spec;
    spec.name = "hint_replay";
    spec.targets = {target_id};
    spec.quorum = 1;
    spec.service = config_->perf.write_local * static_cast<SimTime>(count);
    spec.request = [batch](Server& s) {
      for (const Hint& hint : *batch) {
        s.LocalApply(hint.table, hint.key, hint.cells);
      }
      return true;
    };
    spec.quorum_error = "hint replay unacknowledged";
    spec.on_quorum = [this, target_id, count](Op&) {
      // Acked: retire the replayed prefix (new hints may have queued
      // behind it meanwhile).
      std::deque<Hint>& q = hints_[target_id];
      const std::size_t drop = std::min(count, q.size());
      q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(drop));
      metrics_->hints_replayed += drop;
    };
    spec.on_error = [](Op&, const Status&) {
      // Target still unreachable: the queue stays put for the next tick.
    };
    Op::Start(this, std::move(spec));
  }
}

// ---------------------------------------------------------------------------
// Elastic membership: join bootstrap, decommission handoff, hint/op fixups.
// ---------------------------------------------------------------------------

void Server::MarkNeverJoined() {
  membership_ = MembershipState::kLeft;
  network_->SetEndpointDown(id_, true);
}

void Server::ActivateForJoin() {
  MVSTORE_CHECK(membership_ == MembershipState::kLeft)
      << "server " << id_ << " cannot join twice";
  MVSTORE_CHECK(!crashed_) << "crashed server " << id_ << " cannot join";
  // Fresh process generation: stale messages addressed to a previous life of
  // this slot (a decommissioned-then-rejoined server) must not deliver.
  ++incarnation_;
  network_->BumpIncarnation(id_);
  network_->SetEndpointDown(id_, false);
  membership_ = MembershipState::kJoining;
  metrics_->member_joins_started++;
  if (tracer_ != nullptr) {
    member_trace_ =
        tracer_->StartTrace("member.join", static_cast<int>(id_), sim_->Now());
  }
  ScheduleBackgroundTicks();
}

void Server::BeginJoinStream(std::vector<Ring::RangeTransfer> plan) {
  MVSTORE_CHECK(membership_ == MembershipState::kJoining);
  join_plan_ = std::move(plan);
  stream_min_ts_ = 0;
  BuildStreamTasks(join_plan_);
  PumpStream();
}

void Server::BeginDecommission(std::vector<Ring::RangeTransfer> plan) {
  MVSTORE_CHECK(membership_ == MembershipState::kServing)
      << "server " << id_ << " is not serving";
  MVSTORE_CHECK(!crashed_);
  membership_ = MembershipState::kDraining;
  decommission_plan_ = std::move(plan);
  metrics_->member_leaves_started++;
  if (tracer_ != nullptr) {
    member_trace_ = tracer_->StartTrace("member.drain", static_cast<int>(id_),
                                        sim_->Now());
  }
  drain_deadline_ = sim_->Now() + config_->decommission_drain_timeout;
  // Writes coordinated while the ring change raced this call may still land
  // here; the tail sweep (phase 2) re-ships anything stamped since shortly
  // before the full sweep began. Client timestamps are epoch + client time.
  tail_cutoff_ = kClientTimestampEpoch +
                 (sim_->Now() > Seconds(1) ? sim_->Now() - Seconds(1) : 0);
  decommission_phase_ = 1;
  stream_min_ts_ = 0;
  BuildStreamTasks(decommission_plan_);
  PumpStream();
}

void Server::BuildStreamTasks(const std::vector<Ring::RangeTransfer>& plan) {
  stream_tasks_.clear();
  stream_pull_pending_ = false;
  for (const Ring::RangeTransfer& transfer : plan) {
    // No peers: the remaining members already replicate the range (leave at
    // low replication pressure) — nothing to move.
    if (transfer.peers.empty()) continue;
    for (const std::string& table : schema_->TableNames()) {
      if (membership_ == MembershipState::kDraining) {
        // Push: one task per NEW owner — each must receive its own copy.
        for (ServerId owner : transfer.peers) {
          stream_tasks_.push_back(
              StreamTask{table, transfer.range, {owner}, Key{}, 0, 0});
        }
      } else {
        // Pull: one task per range, rotating through the sources on retry.
        stream_tasks_.push_back(
            StreamTask{table, transfer.range, transfer.peers, Key{}, 0, 0});
      }
    }
  }
}

void Server::PumpStream() {
  if (crashed_ || stream_pull_pending_) return;
  if (membership_ != MembershipState::kJoining &&
      membership_ != MembershipState::kDraining) {
    return;
  }
  if (stream_tasks_.empty()) {
    if (membership_ == MembershipState::kJoining) {
      FinishJoin();
    } else {
      ContinueDecommission();
    }
    return;
  }

  StreamTask& task = stream_tasks_.front();
  const std::uint64_t seq = ++stream_seq_;
  stream_pull_pending_ = true;
  const int limit = std::max(1, config_->join_stream_batch);
  const std::string table = task.table;
  const Ring::TokenRange range = task.range;
  const Key from = task.cursor;
  const Timestamp min_ts = stream_min_ts_;
  const int attempt = task.attempt;

  if (membership_ == MembershipState::kJoining) {
    // Pull the next slice from a source replica.
    const ServerId source =
        task.peers[static_cast<std::size_t>(attempt) % task.peers.size()];
    CallPeer<RangeSlice>(
        source, config_->perf.view_scan_local,
        [table, range, from, limit, min_ts](Server& s) {
          return s.CollectRangeRows(table, range, from, limit, min_ts);
        },
        [this, seq, table](RangeSlice slice) {
          if (seq != stream_seq_) return;  // superseded by a retry
          // Applying the slice is real replica work: charge it through the
          // service queue before acknowledging progress.
          const SimTime service =
              config_->perf.write_local *
              static_cast<SimTime>(slice.rows.size() + 1);
          Enqueue(service, [this, seq, table,
                            slice = std::move(slice)]() mutable {
            if (seq != stream_seq_) return;
            for (const auto& kr : slice.rows) {
              LocalApply(table, kr.key, kr.row);
            }
            StreamSliceSettled(seq, true, slice.rows.size(), slice.resume,
                               slice.done);
          });
        });
  } else {
    // Decommission push: collect locally (scan demand on our own cores),
    // then ship the slice to the single new owner of this task.
    const ServerId target = task.peers.front();
    Enqueue(config_->perf.view_scan_local, [this, seq, table, range, from,
                                            limit, min_ts, target] {
      if (seq != stream_seq_) return;
      RangeSlice slice = CollectRangeRows(table, range, from, limit, min_ts);
      const std::size_t n = slice.rows.size();
      const Key resume = slice.resume;
      const bool done = slice.done;
      if (n == 0) {  // nothing (left) in this slice: just advance the cursor
        StreamSliceSettled(seq, true, 0, resume, done);
        return;
      }
      const SimTime service =
          config_->perf.write_local * static_cast<SimTime>(n + 1);
      auto rows =
          std::make_shared<std::vector<storage::KeyedRow>>(
              std::move(slice.rows));
      CallPeer<bool>(
          target, service,
          [table, rows](Server& s) {
            for (const auto& kr : *rows) s.LocalApply(table, kr.key, kr.row);
            return true;
          },
          [this, seq, n, resume, done](bool) {
            StreamSliceSettled(seq, true, n, resume, done);
          });
    });
  }

  // Arm the silence probe: an unacknowledged slice is re-requested from the
  // last acked cursor after a linearly growing backoff, rotating to the next
  // candidate source. Idempotent on the receiving side (LWW applies).
  const std::uint64_t incarnation = incarnation_;
  sim_->After(config_->rpc_timeout, [this, incarnation, seq] {
    if (incarnation != incarnation_ || seq != stream_seq_ ||
        !stream_pull_pending_) {
      return;
    }
    stream_pull_pending_ = false;
    metrics_->member_stream_retries++;
    // A draining server cannot wait forever on an unreachable new owner:
    // past the drain deadline the remaining slices for that range are
    // abandoned (counted as a forced drain) and the surviving replicas'
    // anti-entropy covers the gap once the owner returns. A joiner has no
    // such deadline — it keeps rotating sources until one answers.
    if (membership_ == MembershipState::kDraining &&
        sim_->Now() >= drain_deadline_ && !stream_tasks_.empty()) {
      metrics_->member_drains_forced++;
      FinishStreamTask();
      PumpStream();
      return;
    }
    int next_attempt = 1;
    if (!stream_tasks_.empty()) {
      next_attempt = ++stream_tasks_.front().attempt;
    }
    const SimTime backoff =
        config_->join_stream_retry_backoff *
        static_cast<SimTime>(std::min(next_attempt, 8));
    sim_->After(backoff, [this, incarnation] {
      if (incarnation == incarnation_) PumpStream();
    });
  });
}

void Server::StreamSliceSettled(std::uint64_t seq, bool ok,
                                std::size_t rows_acked, Key resume,
                                bool done) {
  if (seq != stream_seq_) return;  // a retry superseded this slice
  stream_pull_pending_ = false;
  if (stream_tasks_.empty()) return;
  StreamTask& task = stream_tasks_.front();
  if (ok) {
    task.cursor = std::move(resume);
    task.attempt = 0;
    task.rows_streamed += rows_acked;
    metrics_->member_rows_streamed += rows_acked;
    if (done) FinishStreamTask();
  }
  PumpStream();
}

void Server::FinishStreamTask() {
  const StreamTask& task = stream_tasks_.front();
  metrics_->member_ranges_streamed++;
  EmitMemberSpan("member.stream_range",
                 task.table + " rows=" + std::to_string(task.rows_streamed) +
                     " peer=" + std::to_string(task.peers.front()));
  stream_tasks_.pop_front();
}

void Server::FinishJoin() {
  membership_ = MembershipState::kServing;
  join_plan_.clear();
  metrics_->member_joins_completed++;
  if (tracer_ != nullptr && member_trace_) {
    tracer_->EndSpan(member_trace_, sim_->Now());
    member_trace_ = {};
  }
  // The streams carried a snapshot; one immediate anti-entropy round closes
  // any gap with writes replicated while the bootstrap was in flight.
  RunAntiEntropyRound();
  if (view_hook_ != nullptr) view_hook_->OnServerJoin(this);
}

void Server::ContinueDecommission() {
  if (decommission_phase_ == 1) {
    // Full sweep done. Tail sweep: only rows stamped since shortly before
    // the full sweep began (straggler writes in flight at the ring change).
    decommission_phase_ = 2;
    stream_min_ts_ = tail_cutoff_;
    BuildStreamTasks(decommission_plan_);
    PumpStream();
  } else if (decommission_phase_ == 2) {
    decommission_phase_ = 3;
    DrainHintsThenLeave();
  }
}

void Server::DrainHintsThenLeave() {
  if (crashed_ || membership_ != MembershipState::kDraining) return;
  if (hints_outstanding() == 0) {
    FinishLeave(/*forced=*/false);
    return;
  }
  if (sim_->Now() >= drain_deadline_) {
    // The deadline expired with hints still owed: the data must not leave
    // with this server, so re-send every queued write to the keys' current
    // replicas and go.
    ForceRerouteOwnHints();
    FinishLeave(/*forced=*/true);
    return;
  }
  ReplayHints();
  const std::uint64_t incarnation = incarnation_;
  sim_->After(Millis(100), [this, incarnation] {
    if (incarnation == incarnation_) DrainHintsThenLeave();
  });
}

void Server::ForceRerouteOwnHints() {
  metrics_->member_drains_forced++;
  for (auto& [target, queue] : hints_) {
    std::deque<Hint> moved;
    moved.swap(queue);
    for (const Hint& hint : moved) {
      metrics_->member_hints_rerouted++;
      RerouteWriteToCurrentReplicas(hint.table, hint.key, hint.cells);
    }
  }
}

void Server::FinishLeave(bool forced) {
  MVSTORE_CHECK(membership_ == MembershipState::kDraining);
  EmitMemberSpan("member.leave",
                 forced ? std::string("forced") : std::string("drained"));

  // Same shutdown order as Crash: the view engine sheds this server's share
  // of volatile maintenance state first, then in-flight coordinator ops
  // (internal ones — hint replays, view maintenance — may still be open;
  // drain already rejected new client coordination) get their error
  // callbacks.
  if (view_hook_ != nullptr) view_hook_->OnServerLeave(this);
  auto aborts = std::move(inflight_aborts_);
  inflight_aborts_.clear();
  inflight_retargets_.clear();
  for (auto& [op_id, abort] : aborts) abort();
  metrics_->inflight_ops_aborted += aborts.size();

  if (!forced) {
    MVSTORE_CHECK_EQ(hints_outstanding(), std::size_t{0})
        << "server " << id_ << " left with hints still owed";
  }
  hints_.clear();
  write_lanes_.clear();
  queue_.Reset();
  stream_tasks_.clear();
  stream_pull_pending_ = false;
  decommission_plan_.clear();
  decommission_phase_ = 0;
  membership_ = MembershipState::kLeft;
  metrics_->member_leaves_completed++;
  if (tracer_ != nullptr && member_trace_) {
    tracer_->EndSpan(member_trace_, sim_->Now());
    member_trace_ = {};
  }
  // Gone: stale in-flight messages to/from this life drop at delivery.
  ++incarnation_;
  network_->BumpIncarnation(id_);
  network_->SetEndpointDown(id_, true);
}

void Server::RerouteWriteToCurrentReplicas(const std::string& table,
                                           const Key& key,
                                           const storage::Row& cells) {
  for (ServerId replica : ReplicasOf(table, key)) {
    if (replica == id_) {
      Enqueue(WriteServiceFor(table, cells),
              [this, table, key, cells] { LocalApply(table, key, cells); });
      continue;
    }
    SendReplicaWrite(replica, table, key, cells, WriteServiceFor(table, cells),
                     [this, replica, table, key, cells](bool acked) {
                       if (!acked) StoreHint(replica, table, key, cells);
                     });
  }
}

void Server::RerouteHintsFor(ServerId departed) {
  auto it = hints_.find(departed);
  if (it == hints_.end() || it->second.empty()) return;
  std::deque<Hint> moved;
  moved.swap(it->second);
  for (const Hint& hint : moved) {
    metrics_->member_hints_rerouted++;
    if (tracer_ != nullptr && hint.trace) {
      TraceContext span = tracer_->StartSpan(
          hint.trace, "hint.rerouted", static_cast<int>(id_), sim_->Now());
      tracer_->Annotate(span, "departed=" + std::to_string(departed));
      tracer_->EndSpan(span, sim_->Now());
    }
    RerouteWriteToCurrentReplicas(hint.table, hint.key, hint.cells);
  }
}

void Server::RetargetInflightOps(ServerId departed) {
  // Snapshot first: a retargeted op may complete synchronously and
  // deregister itself, mutating the map under iteration.
  std::vector<std::function<void(ServerId)>> retargets;
  retargets.reserve(inflight_retargets_.size());
  for (const auto& [op_id, fn] : inflight_retargets_) {
    retargets.push_back(fn);
  }
  for (auto& fn : retargets) fn(departed);
}

std::size_t Server::hints_outstanding() const {
  std::size_t total = 0;
  for (const auto& [target, queue] : hints_) total += queue.size();
  return total;
}

Server::RangeSlice Server::CollectRangeRows(const std::string& table,
                                            Ring::TokenRange range,
                                            const Key& from, int limit,
                                            Timestamp min_ts) const {
  RangeSlice slice;
  auto it = engines_.find(table);
  if (it == engines_.end()) return slice;  // nothing stored: done
  // Bounded window of keys in the range past the cursor (cheap: no row
  // merges), then point lookups for just those rows. The cursor advances
  // over EXAMINED keys, so a min_ts tail sweep that filters everything out
  // still makes progress.
  bool more = false;
  const std::vector<Key> keys = it->second->CollectKeysAfter(
      from, limit,
      [&](const Key& key) {
        return range.Covers(Ring::TokenOf(PartitionViewFor(table, key)));
      },
      &more);
  slice.done = !more;
  if (keys.empty()) return slice;
  slice.resume = keys.back();
  for (const Key& key : keys) {
    auto row = it->second->GetRow(key);
    if (!row.has_value()) continue;
    if (min_ts > 0) {
      bool fresh = false;
      for (const auto& [col, cell] : row->cells()) {
        if (cell.ts >= min_ts) {
          fresh = true;
          break;
        }
      }
      if (!fresh) continue;
    }
    slice.rows.push_back(storage::KeyedRow{key, *std::move(row)});
  }
  return slice;
}

void Server::EmitMemberSpan(const char* name, const std::string& note) {
  if (tracer_ == nullptr || !member_trace_) return;
  TraceContext span = tracer_->StartSpan(member_trace_, name,
                                         static_cast<int>(id_), sim_->Now());
  if (!note.empty()) tracer_->Annotate(span, note);
  tracer_->EndSpan(span, sim_->Now());
}

}  // namespace mvstore::store

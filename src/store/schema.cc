#include "store/schema.h"

#include <algorithm>
#include <utility>

#include "store/codec.h"

namespace mvstore::store {

namespace {

bool IsReservedColumn(const ColumnName& col) {
  return col.rfind("__", 0) == 0;
}

}  // namespace

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kNone:
      return "none";
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
  }
  return "?";
}

ColumnName ViewDef::AggregateOutputColumn() const {
  if (!IsAggregate()) return ColumnName();
  std::string out = AggregateFnName(aggregate);
  out.push_back('(');
  out += aggregate == AggregateFn::kCount ? "*" : aggregate_column;
  out.push_back(')');
  return out;
}

bool ViewDef::Affects(const ColumnName& column) const {
  return column == view_key_column || IsMaterialized(column);
}

bool ViewDef::IsMaterialized(const ColumnName& column) const {
  return std::find(materialized_columns.begin(), materialized_columns.end(),
                   column) != materialized_columns.end();
}

ViewDefBuilder::ViewDefBuilder(std::string name) {
  def_.name = std::move(name);
}

ViewDefBuilder& ViewDefBuilder::Base(std::string base_table) {
  def_.base_table = std::move(base_table);
  return *this;
}

ViewDefBuilder& ViewDefBuilder::Key(ColumnName view_key_column) {
  def_.view_key_column = std::move(view_key_column);
  return *this;
}

ViewDefBuilder& ViewDefBuilder::Materialize(ColumnName column) {
  def_.materialized_columns.push_back(std::move(column));
  return *this;
}

ViewDefBuilder& ViewDefBuilder::Materialize(std::vector<ColumnName> columns) {
  for (ColumnName& col : columns) {
    def_.materialized_columns.push_back(std::move(col));
  }
  return *this;
}

ViewDefBuilder& ViewDefBuilder::Select(ColumnName column, Value equals) {
  def_.selection = SelectionDef{std::move(column), std::move(equals)};
  return *this;
}

ViewDefBuilder& ViewDefBuilder::Shards(int shard_count) {
  def_.shard_count = shard_count;
  return *this;
}

ViewDefBuilder& ViewDefBuilder::Aggregate(AggregateFn fn, ColumnName column) {
  def_.aggregate = fn;
  def_.aggregate_column = std::move(column);
  return *this;
}

StatusOr<ViewDef> ViewDefBuilder::Build() const {
  if (def_.name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  if (def_.base_table.empty()) {
    return Status::InvalidArgument("view must name a base table");
  }
  if (def_.view_key_column.empty()) {
    return Status::InvalidArgument("view must name a view-key column");
  }
  if (IsReservedColumn(def_.view_key_column)) {
    return Status::InvalidArgument("column names starting with __ are reserved");
  }
  for (const ColumnName& col : def_.materialized_columns) {
    if (IsReservedColumn(col)) {
      return Status::InvalidArgument(
          "column names starting with __ are reserved");
    }
  }
  if (def_.shard_count < 1) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (def_.shard_count > kMaxViewShards) {
    return Status::InvalidArgument("shard_count exceeds kMaxViewShards");
  }
  ViewDef def = def_;
  if (def.IsAggregate()) {
    // The aggregate column is the view's ONLY materialized column (Build
    // adds it below): extra projected columns would make the folded record
    // ambiguous, and the fold is the only read surface an aggregate view
    // exposes.
    if (!def.materialized_columns.empty()) {
      return Status::InvalidArgument(
          "aggregate views take no Materialize() columns (the aggregate "
          "column is materialized implicitly)");
    }
    if (def.aggregate == AggregateFn::kCount) {
      if (!def.aggregate_column.empty()) {
        return Status::InvalidArgument("count(*) takes no aggregate column");
      }
    } else {
      if (def.aggregate_column.empty()) {
        return Status::InvalidArgument(
            "sum/min/max aggregates must name the aggregated column");
      }
      if (IsReservedColumn(def.aggregate_column)) {
        return Status::InvalidArgument(
            "column names starting with __ are reserved");
      }
      if (def.aggregate_column == def.view_key_column) {
        return Status::InvalidArgument(
            "cannot aggregate the view-key column itself");
      }
      def.materialized_columns.push_back(def.aggregate_column);
    }
  }
  return def;
}

Status Schema::CreateTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must not be empty");
  }
  if (tables_.count(def.name) != 0) {
    return Status::AlreadyExists("table '" + def.name + "' already exists");
  }
  tables_.emplace(def.name, std::move(def));
  return Status::OK();
}

Status Schema::CreateIndex(IndexDef def) {
  const TableDef* table = GetTable(def.table);
  if (table == nullptr) {
    return Status::NotFound("no table '" + def.table + "' to index");
  }
  if (table->is_view_backing) {
    return Status::InvalidArgument("cannot index a view");
  }
  if (FindIndex(def.table, def.column) != nullptr) {
    return Status::AlreadyExists("index on " + def.table + "." + def.column +
                                 " already exists");
  }
  indexes_.push_back(std::move(def));
  return Status::OK();
}

Status Schema::CreateView(ViewDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  const TableDef* base = GetTable(def.base_table);
  if (base == nullptr) {
    return Status::NotFound("no base table '" + def.base_table + "'");
  }
  if (base->is_view_backing) {
    return Status::InvalidArgument("views on views are not supported");
  }
  if (auto it = views_.find(def.name); it != views_.end()) {
    // Re-sharding an existing view would need a backing-table rewrite the
    // store does not implement; name the refusal so callers can tell it
    // apart from an accidental duplicate definition.
    if (it->second.shard_count != def.shard_count) {
      return Status::InvalidArgument(
          "cannot change shard_count of existing view '" + def.name + "'");
    }
    return Status::AlreadyExists("name '" + def.name + "' already in use");
  }
  if (tables_.count(def.name) != 0) {
    return Status::AlreadyExists("name '" + def.name + "' already in use");
  }
  if (def.view_key_column.empty()) {
    return Status::InvalidArgument("view must name a view-key column");
  }
  auto reserved = [](const ColumnName& col) {
    return col.rfind("__", 0) == 0;
  };
  if (reserved(def.view_key_column)) {
    return Status::InvalidArgument("column names starting with __ are reserved");
  }
  for (const ColumnName& col : def.materialized_columns) {
    if (reserved(col)) {
      return Status::InvalidArgument(
          "column names starting with __ are reserved");
    }
  }
  if (def.shard_count < 1) {
    return Status::InvalidArgument("shard_count must be >= 1");
  }
  if (def.shard_count > kMaxViewShards) {
    return Status::InvalidArgument("shard_count exceeds kMaxViewShards");
  }
  if (def.IsMaterialized(def.view_key_column)) {
    return Status::InvalidArgument(
        "the view-key column is implicit; do not also materialize it");
  }
  if (def.IsAggregate()) {
    // Re-validate the aggregate shape for hand-constructed defs (builder
    // output always satisfies this; see ViewDefBuilder::Build).
    if (def.aggregate == AggregateFn::kCount) {
      if (!def.aggregate_column.empty() || !def.materialized_columns.empty()) {
        return Status::InvalidArgument(
            "count(*) views carry no aggregate or materialized columns");
      }
    } else if (def.aggregate_column.empty() ||
               def.materialized_columns !=
                   std::vector<ColumnName>{def.aggregate_column}) {
      return Status::InvalidArgument(
          "sum/min/max views must materialize exactly the aggregate column");
    }
  }
  if (def.selection.has_value() && !def.Affects(def.selection->column)) {
    return Status::InvalidArgument(
        "selection column must be the view key or a materialized column");
  }
  // The backing table that stores the (versioned) view rows.
  TableDef backing;
  backing.name = def.name;
  backing.composite_keys = true;
  backing.is_view_backing = true;
  tables_.emplace(backing.name, std::move(backing));
  views_.emplace(def.name, std::move(def));
  return Status::OK();
}

const TableDef* Schema::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const ViewDef* Schema::GetView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<IndexDef> Schema::IndexesOn(const std::string& table) const {
  std::vector<IndexDef> result;
  for (const auto& index : indexes_) {
    if (index.table == table) result.push_back(index);
  }
  return result;
}

const IndexDef* Schema::FindIndex(const std::string& table,
                                  const ColumnName& column) const {
  for (const auto& index : indexes_) {
    if (index.table == table && index.column == column) return &index;
  }
  return nullptr;
}

std::vector<const ViewDef*> Schema::ViewsOn(const std::string& table) const {
  std::vector<const ViewDef*> result;
  for (const auto& [name, view] : views_) {
    if (view.base_table == table) result.push_back(&view);
  }
  return result;
}

std::vector<std::string> Schema::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

}  // namespace mvstore::store

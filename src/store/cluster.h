// Cluster assembly: wires the simulation, network, ring, and servers
// together, and owns the cluster-wide schema, config, and metrics.
//
// Typical usage (see examples/quickstart.cc):
//
//   store::Schema schema;
//   schema.CreateTable({.name = "ticket"});
//   schema.CreateView({.name = "assigned_to", .base_table = "ticket",
//                      .view_key_column = "assignee",
//                      .materialized_columns = {"status"}});
//   store::Cluster cluster(config, std::move(schema));
//   view::MaintenanceEngine views(&cluster);   // installs itself as the hook
//   cluster.Start();
//   auto client = cluster.NewClient();
//   ...

#ifndef MVSTORE_STORE_CLUSTER_H_
#define MVSTORE_STORE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "sim/network.h"
#include "sim/simulation.h"
#include "store/config.h"
#include "store/freshness.h"
#include "store/hooks.h"
#include "store/metrics.h"
#include "store/ring.h"
#include "store/schema.h"
#include "store/server.h"

namespace mvstore::store {

class Client;

class Cluster {
 public:
  /// The schema must be complete before construction (views and indexes are
  /// cluster metadata, not online DDL).
  Cluster(ClusterConfig config, Schema schema);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulation& simulation() { return sim_; }
  sim::Network& network() { return *network_; }
  const Schema& schema() const { return schema_; }
  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  /// Cluster-wide freshness tracker (ISSUE 7): per-(view, partition) intents
  /// from in-flight propagations, applied high-water marks, and the per-view
  /// propagation-lag estimate the bounded-read router consults.
  FreshnessTracker& freshness() { return freshness_; }
  /// Cluster-wide causal-trace recorder (disabled when trace_capacity == 0).
  Tracer& tracer() { return tracer_; }
  const Ring& ring() const { return ring_; }

  /// Provisioned server SLOTS (max(max_servers, num_servers)): the size of
  /// every per-server array. Slots above `num_servers` start outside the
  /// ring (kLeft) until JoinServer activates them. Use num_members() for the
  /// current ring population.
  int num_servers() const { return static_cast<int>(servers_.size()); }
  /// Servers currently in the ring (serving or joining).
  int num_members() const { return ring_.num_servers(); }
  Server& server(ServerId id) { return *servers_[id]; }
  const std::vector<std::unique_ptr<Server>>& servers() const {
    return servers_;
  }

  /// Endpoint ids beyond the server slots.
  sim::EndpointId client_endpoint() const {
    return static_cast<sim::EndpointId>(servers_.size());
  }
  sim::EndpointId lock_service_endpoint() const {
    return static_cast<sim::EndpointId>(servers_.size() + 1);
  }

  /// Installs the view-maintenance engine on every server.
  void set_view_hook(ViewMaintenanceHook* hook);

  /// Starts background tasks (anti-entropy, if configured).
  void Start();

  /// Crash-stops / restarts one server (nemesis entry points; see
  /// Server::Crash / Server::Restart for the exact semantics). Returns
  /// false — without acting — when the transition does not apply (already
  /// crashed / not crashed / outside the ring), so a nemesis schedule can
  /// race membership churn safely.
  bool CrashServer(ServerId id);
  bool RestartServer(ServerId id);

  // ---------------------------------------------------------------------
  // Elastic membership (ISSUE 6).
  // ---------------------------------------------------------------------

  /// Brings the next never-joined (or previously decommissioned) capacity
  /// slot into the ring: assigns its tokens, computes the ranges it must
  /// bootstrap, and starts the background range streams. The server serves
  /// replica traffic immediately (it is a ring member from this instant)
  /// and flips to kServing when the last range lands. Returns the joined
  /// id, or nullopt when every slot is already in use.
  std::optional<ServerId> JoinServer();

  /// Gracefully removes `id` from the ring: tokens withdrawn, owned ranges
  /// streamed to their new owners, every other member's hints and in-flight
  /// ops re-pointed, hinted handoffs drained, then the endpoint goes down.
  /// Returns false — without acting — when `id` is not a serving,
  /// non-crashed member or when leaving would drop the ring below the
  /// replication factor.
  bool DecommissionServer(ServerId id);

  /// The serving coordinator at or after `hint` (circular scan over the
  /// slots). Falls back to `hint` itself when nothing serves — the caller's
  /// requests then fail loudly instead of silently redirecting.
  ServerId PickServingServer(ServerId hint) const;

  /// Creates a client attached to the given coordinator (round-robin by
  /// client id when omitted).
  std::unique_ptr<Client> NewClient();
  std::unique_ptr<Client> NewClient(ServerId coordinator);

  /// Allocates a session id (Section V).
  SessionId NewSession() { return ++next_session_; }

  /// Loads a row directly into every replica — and, per Definition 1, into
  /// every view and index — in zero simulated time. This builds the initial
  /// states B0/V0 the paper's experiments start from; it must only be used
  /// before the workload runs, and at most once per key.
  void BootstrapLoadRow(const std::string& table, const Key& key,
                        const Mutation& mutation, Timestamp ts);

  /// Convenience: run the simulation.
  void RunFor(SimTime dt) { sim_.RunFor(dt); }
  SimTime Now() const { return sim_.Now(); }

  /// Deterministic per-purpose RNG streams derived from the config seed.
  Rng ForkRng() { return rng_.Fork(); }

 private:
  void MetricsSampleTick();

  ClusterConfig config_;
  Schema schema_;
  Metrics metrics_;
  FreshnessTracker freshness_{&metrics_};
  Tracer tracer_;
  sim::Simulation sim_;
  Rng rng_;
  std::unique_ptr<sim::Network> network_;
  Ring ring_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<Server*> server_ptrs_;
  SessionId next_session_ = 0;
  std::uint64_t next_client_ = 0;
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CLUSTER_H_

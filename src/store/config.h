// Cluster-wide configuration.
//
// The defaults model the paper's testbed: 4 servers, dual-core, 1 GbE,
// replication factor N = 3, and Cassandra's default consistency level of ONE
// for both reads and writes (the paper varies only what the experiments
// require). The PerfModel service times are the calibration knobs described
// in DESIGN.md section 4: they set absolute magnitudes; the figures' shapes
// come from how many servers and round trips each access path consumes.

#ifndef MVSTORE_STORE_CONFIG_H_
#define MVSTORE_STORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "sim/network.h"
#include "storage/engine.h"

namespace mvstore::store {

/// Client (wall-clock) timestamps start here so they always exceed the
/// bootstrap timestamps used when preloading data. Clock-driven background
/// work (tombstone GC) converts sim time into this domain the same way the
/// client library does: kClientTimestampEpoch + Now().
inline constexpr Timestamp kClientTimestampEpoch = Seconds(1000);

/// How update propagations to the same base row are kept from interfering.
/// Section IV-F proposes the lock service and the dedicated propagators;
/// the paper's measured prototype used neither (its Figure 8 throughput
/// collapse under skew comes precisely from concurrent conflicting
/// propagations retrying against each other).
enum class PropagationMode {
  /// Update coordinators propagate their own updates, serialized per base
  /// row by a lock service (exclusive for view-key updates, shared for
  /// view-materialized updates).
  kLockService,
  /// Responsibility is transferred to a dedicated propagator per base row,
  /// chosen by consistent hashing of the base key.
  kDedicatedPropagators,
  /// Paper-prototype behaviour: coordinators propagate concurrently with no
  /// synchronization. Fast when conflicts are rare; under concurrent
  /// view-key updates to one row it can strand rival live rows (the anomaly
  /// Section IV-F describes — view::RepairView recovers).
  kUnsynchronized,
};

struct PerfModel {
  // --- per-operation service demand on a server core (microseconds) ---
  SimTime read_local = Micros(45);       ///< point read of a local replica
  SimTime write_local = Micros(40);      ///< apply cells to a local replica
  SimTime index_update_local = Micros(18);  ///< adjust one local index posting
  SimTime index_scan_local = Micros(600);   ///< probe the local index fragment
  SimTime view_scan_local = Micros(60);  ///< prefix-scan one view partition
  /// Additional view-scan service per row in the scanned partition. The
  /// default 0 keeps the flat `view_scan_local` model (the paper's workload
  /// has one row per view key, so per-row cost is unobservable there). Set
  /// it (bench/fig9_view_skew does) to model hot view keys whose partitions
  /// grow large — the cost that sub-sharding (ViewDef::shard_count) divides.
  SimTime view_scan_per_row = 0;
  SimTime coordinator_op = Micros(12);   ///< coordinator bookkeeping/merge
  /// Point read answered from the replica-local row cache: no memtable/run
  /// merge, just the cache probe and a copy. Used instead of `read_local`
  /// when the row cache holds the key at dispatch time.
  SimTime read_cached_local = Micros(8);
  /// One clock-driven compaction round over a server's engines (merge +
  /// tombstone GC), charged per run merged.
  SimTime compaction_service = Micros(250);
  /// Full local match-scan over a base table (the bounded-read router's
  /// last-resort fallback when no secondary index covers the view key):
  /// every row is visited and filtered, so it costs far more than an index
  /// probe — the cost asymmetry the router weighs.
  SimTime base_scan_local = Micros(2400);
  /// Fixed receive overhead charged once per delivered peer message
  /// (deserialization, dispatch). This is what replica-write batching saves:
  /// a batch of k mutations costs one message_process instead of k.
  SimTime message_process = Micros(8);

  // --- asynchronous view-maintenance executor (DESIGN.md substitution 2) ---
  // Delay between a base Put finishing its replica collection and the
  // propagation actually being dispatched. Lognormal: median ~5 ms with a
  // heavy tail, calibrated against Figure 7 — mean blocking of a
  // session-guaranteed Get is a few ms at short Put-Get gaps, yet the
  // completion-time tail reaches ~640 ms ("almost all update propagations
  // completed in less time than that").
  double propagation_dispatch_mu = 8.52;     ///< ln(microseconds); e^8.52~5ms
  double propagation_dispatch_sigma = 1.55;
  SimTime propagation_dispatch_min = Millis(1);
  /// Cap on the sampled dispatch delay. Figure 7 levels off at ~640 ms,
  /// i.e. "almost all update propagations completed in less time than that".
  SimTime propagation_dispatch_max = Millis(700);

  /// Base pause before re-attempting a failed PropagateUpdate (view-key
  /// guess not yet in the view). Grows linearly with the attempt count, up
  /// to propagation_retry_delay_max, so a task blocked behind a slow
  /// dependency backs off instead of burning its retry budget.
  SimTime propagation_retry_delay = Millis(5);
  SimTime propagation_retry_delay_max = Millis(100);
};

struct ClusterConfig {
  int num_servers = 4;
  int replication_factor = 3;  ///< N: copies of each record
  int cores_per_server = 2;
  int default_read_quorum = 1;   ///< R
  int default_write_quorum = 1;  ///< W
  int vnodes_per_server = 32;    ///< virtual nodes on the hash ring
  std::uint64_t seed = 42;

  sim::NetworkConfig network;
  PerfModel perf;
  storage::EngineOptions engine;

  /// Coordinator gives up on replicas that have not answered by then.
  SimTime rpc_timeout = Millis(250);

  /// Per-replica silence handling inside a coordinator operation: a target
  /// that has not answered within `replica_retry_timeout` is re-sent the
  /// request (idempotent; slot dedupe absorbs duplicate replies), up to
  /// `replica_retry_max` times, each probe backed off by another
  /// `replica_retry_backoff`. 0 retries (or a 0 timeout) disables.
  int replica_retry_max = 1;
  SimTime replica_retry_timeout = Millis(100);
  SimTime replica_retry_backoff = Millis(50);

  /// Replica-write batching at the coordinator (Nagle-style, per
  /// destination): a mutation ships immediately while its lane is idle;
  /// while a batch is in flight, later same-destination mutations park and
  /// flush as one network message when the batch acks, at `write_batch_max`
  /// items, or after `write_batch_delay` at the latest (the lost-ack cap).
  /// <= 1 disables (every mutation ships as its own message).
  int write_batch_max = 1;
  SimTime write_batch_delay = Micros(400);

  /// Coalesce pending propagation tasks that target the same view row
  /// family (same view + base key, same origin coordinator): the updates
  /// merge by LWW into the earlier task and propagate in one locked
  /// maintenance round instead of several conflicting ones.
  bool propagation_coalescing = true;

  /// Period of the background replica-synchronization task; 0 disables it.
  /// Off by default: quorum paths plus read repair carry the experiments;
  /// tests enable it to demonstrate convergence under message loss.
  /// Each round is Merkle-style: per-peer bucket digests are exchanged
  /// first and only mismatched buckets ship rows.
  SimTime anti_entropy_interval = 0;
  /// Digest buckets per (table, peer) comparison.
  int anti_entropy_buckets = 64;

  /// Hinted handoff: when a write's replica fails to acknowledge before the
  /// rpc timeout, the coordinator stores a hint and replays it periodically
  /// until the replica acks. 0 disables.
  SimTime hint_replay_interval = Seconds(2);
  /// Cap on stored hints per target server (oldest dropped beyond this;
  /// anti-entropy remains the backstop).
  std::size_t max_hints_per_target = 4096;

  /// Capacity (rows) of each server's replica-local row cache shared across
  /// its engines; 0 disables caching entirely — the cache is then never
  /// constructed and every read takes the exact pre-cache code path, so
  /// same-seed runs are bit-identical to a build without the feature.
  std::size_t row_cache_entries = 0;

  /// Period of each server's clock-driven compaction round (flush + merge +
  /// tombstone GC on every engine, scheduled through the service queue at
  /// `perf.compaction_service` per run); 0 disables (the default — engines
  /// still size-tier inline when the run count exceeds engine.max_runs, but
  /// never purge tombstones). The GC clock is kClientTimestampEpoch + Now(),
  /// and the purge threshold is additionally floored at the server's oldest
  /// pending-hint timestamp so unacknowledged deletes survive until every
  /// replica has seen them.
  SimTime compaction_interval = 0;

  /// When true, the base-table Put and the pre-update read of the view key
  /// travel as ONE message per replica (the optimization Section IV-C says
  /// is possible; the paper's prototype did not implement it — Fig 5's MV
  /// write latency penalty comes from leaving this false).
  bool combined_get_then_put = false;

  PropagationMode propagation_mode = PropagationMode::kLockService;

  /// Lease TTL on view-propagation locks: a hold not released within this
  /// window (its coordinator crashed between acquire and release) is
  /// reclaimed by the lock service, so the base row's future propagations
  /// are not wedged forever behind a dead lock holder. 0 disables expiry
  /// (pre-crash-model behaviour).
  SimTime lock_lease_ttl = Seconds(5);

  /// Period of each server's background view scrub over the base-key ranges
  /// it primarily owns; 0 disables (the default — quorum propagation plus
  /// read repair suffice without crashes). Under the crash fault model this
  /// is the backstop that re-derives view rows for propagations orphaned by
  /// a coordinator crash: every base key has exactly one primary owner, so
  /// every orphan is recovered within one scrub period of its owner being up.
  SimTime view_scrub_interval = 0;

  /// Default ViewDef::shard_count applied by harnesses that build their
  /// views from the cluster config (benches honour MV_BENCH_VIEW_SHARDS
  /// through this). 1 = classic one-partition-per-view-key layout,
  /// byte-identical to the pre-sharding encoding; > 1 spreads each view key
  /// over that many ring partitions and serves ViewGets by scatter-gather
  /// (see DESIGN.md §12).
  int view_shard_count = 1;

  /// Enforce Definition 4 (session guarantee) for view reads issued within a
  /// session.
  bool session_guarantees = true;

  // --- freshness contract (ISSUE 7): bounded-staleness reads ---

  /// Bound applied to a kBoundedStaleness read whose ReadOptions left
  /// `max_staleness` at 0.
  SimTime max_staleness_default = Millis(500);
  /// How long a bounded read may stay parked waiting for in-flight
  /// propagations before the router gives up on the view and falls back to
  /// the SI/base-table path.
  SimTime freshness_wait_max = Millis(100);
  /// EWMA smoothing factor for the per-view propagation-lag estimate that
  /// feeds the router's cost model.
  double freshness_lag_alpha = 0.2;
  /// Adaptive MV/SI routing: when the observed propagation lag for a view
  /// exceeds a read's staleness bound, route to the SI/base path at once
  /// instead of burning the whole wait budget first. Off = always wait out
  /// `freshness_wait_max` before falling back.
  bool freshness_router = true;

  // --- elastic membership (ISSUE 6) ---

  /// Server slots the cluster is provisioned for (servers beyond
  /// `num_servers` start outside the ring and can join at runtime via
  /// Cluster::JoinServer). 0 means no headroom: capacity == num_servers,
  /// which keeps endpoint numbering identical to the fixed-membership
  /// layout.
  int max_servers = 0;

  /// Rows per message in a membership range stream (join bootstrap and
  /// decommission handoff).
  int join_stream_batch = 128;

  /// Base backoff before re-pulling a range slice that timed out (grows
  /// linearly with the attempt count, capped at 8x). The puller also
  /// rotates to the next candidate source on each retry.
  SimTime join_stream_retry_backoff = Millis(50);

  /// How long a decommissioning server keeps waiting for its own hinted
  /// handoffs to drain before it force-reroutes them to the keys' current
  /// replicas and leaves anyway.
  SimTime decommission_drain_timeout = Seconds(30);

  // --- observability (ISSUE 2) ---

  /// Capacity of the cluster's causal-trace event ring buffer (spans);
  /// 0 disables tracing entirely.
  std::size_t trace_capacity = 65536;
  /// Mint a root trace for every client operation. When false, only
  /// operations given an explicit TraceContext (ReadOptions/WriteOptions)
  /// are traced.
  bool trace_client_ops = true;
  /// Period of the cluster's metrics time-series sampler (per-interval
  /// registry deltas into Metrics::time_series); 0 disables (the default).
  SimTime metrics_sample_interval = 0;
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CONFIG_H_

// Composite key encoding for view tables.
//
// A view row is identified by (view key, base key) — Definition 1 allows
// several view rows per view key, distinguished by the base key. The backing
// table stores each view row under one flat key:
//
//   Compose(kv, kB) = Escape(kv) + SEP + Escape(kB)
//
// with SEP escaped inside components, so that
//   * encoding is injective,
//   * lexicographic order groups all rows of one view key contiguously, and
//   * PartitionPrefix(kv) = Escape(kv) + SEP is a scan prefix that matches
//     exactly the rows with that view key (no accidental prefix collisions).
//
// Record placement for composite-key tables hashes only the partition prefix,
// so every row of a view key lands on the same replica set — a view read is
// a single-partition operation, which is the entire point of materialized
// views (Section I).

#ifndef MVSTORE_STORE_CODEC_H_
#define MVSTORE_STORE_CODEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/interner.h"
#include "common/types.h"

namespace mvstore::store {

/// Separator and escape bytes (chosen to be rare in textual keys; arbitrary
/// binary keys are still handled correctly by escaping).
inline constexpr char kComponentSeparator = '\x01';
inline constexpr char kEscape = '\x02';

/// Reserved first byte of *deleted-row sentinel* view keys. When a base
/// row's view key is deleted, the deletion propagates as a view-key change
/// to the sentinel key for that base row: the versioned view keeps a hidden
/// live row there, so stale chains stay intact and a later re-assignment can
/// still find — and copy data from — the row. User view-key values must not
/// start with this byte (writes are rejected).
inline constexpr char kSentinelPrefix = '\x03';

/// Reserved first byte of *sharded* composed view-row keys. A view with
/// shard_count > 1 splits each view-key partition into sub-shards spread
/// over the ring: its composed keys carry a two-byte header
///
///   kShardHeaderPrefix + char(kShardByteBase + shard)
///
/// ahead of the usual Escape(kv) + SEP + Escape(kB). The header is part of
/// the partition prefix (PartitionPrefixViewOf stops at the first unescaped
/// separator, and neither header byte is SEP or the escape byte), so record
/// placement, anti-entropy, and membership streaming see each sub-shard as
/// an ordinary distinct partition with zero special-casing. Views with
/// shard_count <= 1 never emit the header — their layout is byte-identical
/// to the unsharded encoding.
inline constexpr char kShardHeaderPrefix = '\x04';

/// Offset added to the shard id inside the header byte, keeping it clear of
/// kComponentSeparator and kEscape for every legal shard id.
inline constexpr char kShardByteBase = '\x10';

/// Upper bound on ViewDef::shard_count (keeps the shard header a single
/// byte with room to spare; far beyond any sensible ring size).
inline constexpr int kMaxViewShards = 128;

/// The sub-shard owning `base_key`'s row family. Stable hash, so the live
/// row, its stale chain, and the sentinel anchor of one base key always land
/// in the same sub-shard. Returns 0 when shard_count <= 1.
int ShardOfBaseKey(std::string_view base_key, int shard_count);

/// The sentinel view key for `base_key` (unique per base row, so sentinel
/// rows spread over the ring like any other partition).
Key DeletedSentinelViewKey(std::string_view base_key);

/// True for sentinel view keys (hidden from all reads).
bool IsSentinelViewKey(std::string_view view_key);

/// Escapes one key component.
std::string EscapeComponent(std::string_view component);

/// Appends the escaped form of `component` to `out` — the allocation-free
/// building block: loops that compose many keys reuse one scratch buffer.
void AppendEscapedComponent(std::string_view component, std::string& out);

/// Inverse of EscapeComponent; nullopt on malformed input.
std::optional<std::string> UnescapeComponent(std::string_view escaped);

/// Flat storage key for the view row (view_key, base_key).
Key ComposeViewRowKey(std::string_view view_key, std::string_view base_key);

/// Appends Compose(view_key, base_key) to `out` without allocating a fresh
/// string (when `out`'s capacity suffices).
void ComposeViewRowKeyTo(std::string_view view_key, std::string_view base_key,
                         std::string& out);

/// Scan prefix matching exactly the rows with this view key.
Key ViewPartitionPrefix(std::string_view view_key);

/// Sharded flat storage key: Compose(view_key, base_key) prefixed with the
/// shard header when shard_count > 1; byte-identical to ComposeViewRowKey
/// when shard_count <= 1. `shard` must be in [0, shard_count).
Key ShardedViewRowKey(std::string_view view_key, std::string_view base_key,
                      int shard, int shard_count);

/// Appending form of ShardedViewRowKey (the propagation hot path re-encodes
/// into one scratch buffer per chain hop).
void ShardedViewRowKeyTo(std::string_view view_key, std::string_view base_key,
                         int shard, int shard_count, std::string& out);

/// Scan prefix matching exactly sub-shard `shard` of this view key.
/// Byte-identical to ViewPartitionPrefix when shard_count <= 1.
Key ShardedViewPartitionPrefix(std::string_view view_key, int shard,
                               int shard_count);

/// Splits a (possibly sharded) composed key back into (view_key, base_key),
/// stripping the shard header when shard_count > 1; nullopt if `key` is not
/// a well-formed composite for that shard_count. Equivalent to
/// SplitViewRowKey when shard_count <= 1.
std::optional<std::pair<Key, Key>> SplitShardedViewRowKey(std::string_view key,
                                                          int shard_count);

/// The shard id encoded in a composed key of a view with this shard_count;
/// nullopt when the header is missing or out of range. Always 0 when
/// shard_count <= 1.
std::optional<int> ShardOfComposedKey(std::string_view key, int shard_count);

/// Splits a composed key back into (view_key, base_key); nullopt if `key` is
/// not a well-formed composite.
std::optional<std::pair<Key, Key>> SplitViewRowKey(std::string_view key);

/// Zero-copy split: points `escaped_view` / `escaped_base` at the
/// still-escaped component slices of `key` (valid while `key`'s bytes live).
/// Returns false when `key` has no separator. Callers that only route or
/// compare avoid the two unescape allocations of SplitViewRowKey.
bool SplitViewRowKeyViews(std::string_view key, std::string_view* escaped_view,
                          std::string_view* escaped_base);

/// Interned encode: composes (view_key, base_key) into `scratch` and interns
/// the result. The returned handle's bytes live in the interner's arena —
/// decode with interner.View(ref) (feed that to SplitViewRowKey), compare
/// and hash by the fixed-size KeyRef. Repeated encodes of the same view row
/// cost one escape pass into the reused scratch plus one table probe.
KeyRef InternViewRowKey(KeyInterner& interner, std::string_view view_key,
                        std::string_view base_key, std::string& scratch);

/// The partition component of a key in a composite-key table (everything up
/// to and including the separator). For non-composite tables callers use the
/// whole key.
Key PartitionPrefixOf(const Key& composed_key);

/// Zero-copy form of PartitionPrefixOf: a view into `composed_key` (valid
/// while the key outlives it). The routing hot path hashes this slice
/// directly instead of materializing a substring per placement decision.
std::string_view PartitionPrefixViewOf(std::string_view composed_key);

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CODEC_H_

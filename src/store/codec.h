// Composite key encoding for view tables.
//
// A view row is identified by (view key, base key) — Definition 1 allows
// several view rows per view key, distinguished by the base key. The backing
// table stores each view row under one flat key:
//
//   Compose(kv, kB) = Escape(kv) + SEP + Escape(kB)
//
// with SEP escaped inside components, so that
//   * encoding is injective,
//   * lexicographic order groups all rows of one view key contiguously, and
//   * PartitionPrefix(kv) = Escape(kv) + SEP is a scan prefix that matches
//     exactly the rows with that view key (no accidental prefix collisions).
//
// Record placement for composite-key tables hashes only the partition prefix,
// so every row of a view key lands on the same replica set — a view read is
// a single-partition operation, which is the entire point of materialized
// views (Section I).

#ifndef MVSTORE_STORE_CODEC_H_
#define MVSTORE_STORE_CODEC_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/interner.h"
#include "common/types.h"

namespace mvstore::store {

/// Separator and escape bytes (chosen to be rare in textual keys; arbitrary
/// binary keys are still handled correctly by escaping).
inline constexpr char kComponentSeparator = '\x01';
inline constexpr char kEscape = '\x02';

/// Reserved first byte of *deleted-row sentinel* view keys. When a base
/// row's view key is deleted, the deletion propagates as a view-key change
/// to the sentinel key for that base row: the versioned view keeps a hidden
/// live row there, so stale chains stay intact and a later re-assignment can
/// still find — and copy data from — the row. User view-key values must not
/// start with this byte (writes are rejected).
inline constexpr char kSentinelPrefix = '\x03';

/// The sentinel view key for `base_key` (unique per base row, so sentinel
/// rows spread over the ring like any other partition).
Key DeletedSentinelViewKey(std::string_view base_key);

/// True for sentinel view keys (hidden from all reads).
bool IsSentinelViewKey(std::string_view view_key);

/// Escapes one key component.
std::string EscapeComponent(std::string_view component);

/// Appends the escaped form of `component` to `out` — the allocation-free
/// building block: loops that compose many keys reuse one scratch buffer.
void AppendEscapedComponent(std::string_view component, std::string& out);

/// Inverse of EscapeComponent; nullopt on malformed input.
std::optional<std::string> UnescapeComponent(std::string_view escaped);

/// Flat storage key for the view row (view_key, base_key).
Key ComposeViewRowKey(std::string_view view_key, std::string_view base_key);

/// Appends Compose(view_key, base_key) to `out` without allocating a fresh
/// string (when `out`'s capacity suffices).
void ComposeViewRowKeyTo(std::string_view view_key, std::string_view base_key,
                         std::string& out);

/// Scan prefix matching exactly the rows with this view key.
Key ViewPartitionPrefix(std::string_view view_key);

/// Splits a composed key back into (view_key, base_key); nullopt if `key` is
/// not a well-formed composite.
std::optional<std::pair<Key, Key>> SplitViewRowKey(std::string_view key);

/// Zero-copy split: points `escaped_view` / `escaped_base` at the
/// still-escaped component slices of `key` (valid while `key`'s bytes live).
/// Returns false when `key` has no separator. Callers that only route or
/// compare avoid the two unescape allocations of SplitViewRowKey.
bool SplitViewRowKeyViews(std::string_view key, std::string_view* escaped_view,
                          std::string_view* escaped_base);

/// Interned encode: composes (view_key, base_key) into `scratch` and interns
/// the result. The returned handle's bytes live in the interner's arena —
/// decode with interner.View(ref) (feed that to SplitViewRowKey), compare
/// and hash by the fixed-size KeyRef. Repeated encodes of the same view row
/// cost one escape pass into the reused scratch plus one table probe.
KeyRef InternViewRowKey(KeyInterner& interner, std::string_view view_key,
                        std::string_view base_key, std::string& scratch);

/// The partition component of a key in a composite-key table (everything up
/// to and including the separator). For non-composite tables callers use the
/// whole key.
Key PartitionPrefixOf(const Key& composed_key);

/// Zero-copy form of PartitionPrefixOf: a view into `composed_key` (valid
/// while the key outlives it). The routing hot path hashes this slice
/// directly instead of materializing a substring per placement decision.
std::string_view PartitionPrefixViewOf(std::string_view composed_key);

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CODEC_H_

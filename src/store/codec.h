// Composite key encoding for view tables.
//
// A view row is identified by (view key, base key) — Definition 1 allows
// several view rows per view key, distinguished by the base key. The backing
// table stores each view row under one flat key:
//
//   Compose(kv, kB) = Escape(kv) + SEP + Escape(kB)
//
// with SEP escaped inside components, so that
//   * encoding is injective,
//   * lexicographic order groups all rows of one view key contiguously, and
//   * PartitionPrefix(kv) = Escape(kv) + SEP is a scan prefix that matches
//     exactly the rows with that view key (no accidental prefix collisions).
//
// Record placement for composite-key tables hashes only the partition prefix,
// so every row of a view key lands on the same replica set — a view read is
// a single-partition operation, which is the entire point of materialized
// views (Section I).

#ifndef MVSTORE_STORE_CODEC_H_
#define MVSTORE_STORE_CODEC_H_

#include <optional>
#include <string>
#include <utility>

#include "common/types.h"

namespace mvstore::store {

/// Separator and escape bytes (chosen to be rare in textual keys; arbitrary
/// binary keys are still handled correctly by escaping).
inline constexpr char kComponentSeparator = '\x01';
inline constexpr char kEscape = '\x02';

/// Reserved first byte of *deleted-row sentinel* view keys. When a base
/// row's view key is deleted, the deletion propagates as a view-key change
/// to the sentinel key for that base row: the versioned view keeps a hidden
/// live row there, so stale chains stay intact and a later re-assignment can
/// still find — and copy data from — the row. User view-key values must not
/// start with this byte (writes are rejected).
inline constexpr char kSentinelPrefix = '\x03';

/// The sentinel view key for `base_key` (unique per base row, so sentinel
/// rows spread over the ring like any other partition).
Key DeletedSentinelViewKey(const Key& base_key);

/// True for sentinel view keys (hidden from all reads).
bool IsSentinelViewKey(const Key& view_key);

/// Escapes one key component.
std::string EscapeComponent(const std::string& component);

/// Inverse of EscapeComponent; nullopt on malformed input.
std::optional<std::string> UnescapeComponent(const std::string& escaped);

/// Flat storage key for the view row (view_key, base_key).
Key ComposeViewRowKey(const Key& view_key, const Key& base_key);

/// Scan prefix matching exactly the rows with this view key.
Key ViewPartitionPrefix(const Key& view_key);

/// Splits a composed key back into (view_key, base_key); nullopt if `key` is
/// not a well-formed composite.
std::optional<std::pair<Key, Key>> SplitViewRowKey(const Key& key);

/// The partition component of a key in a composite-key table (everything up
/// to and including the separator). For non-composite tables callers use the
/// whole key.
Key PartitionPrefixOf(const Key& composed_key);

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CODEC_H_

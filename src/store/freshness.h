// The freshness contract: cluster-wide tracking of how stale every view
// partition can be, and the vocabulary the read surface uses to talk about
// it (ISSUE 7).
//
// The paper measures view staleness after the fact (figs 7/8); here it
// becomes a promise. Every base Put that affects a view registers an
// *intent* — "a write at timestamp T is on its way into view V" — before
// the Put is even acknowledged, and the intent settles when the propagation
// applies (MarkApplied), turns out to be a no-op (Discard), or dies with a
// crash / retry-budget exhaustion (MarkWounded). A bounded-staleness read
// at bound B then has an exact question to ask: is there an unsettled
// intent older than now - B that could reach my partition? If not, the
// view is provably fresh enough; if so, the coordinator waits, repairs, or
// routes around the view (view/maintenance_engine.cc's policy ladder).
//
// The tracker is engine-central, modeling the per-partition tracker shards
// a real cluster would colocate with the view partition replicas: intent
// registration rides the Put's coordinator work, settlement rides the
// propagation's own quorum traffic (plus one network hop in dedicated-
// propagator mode, exactly like the session completion notice it
// generalizes), and the advisory lag estimates ride piggyback on the
// propagation completion's replica traffic (FreshnessCache).
//
// Section V's per-coordinator session bookkeeping is subsumed: a session's
// "my own writes" set is the set of intents registered under (origin,
// session), so view::SessionManager is now a facade over the session layer
// here (one origin's slice of it).

#ifndef MVSTORE_STORE_FRESHNESS_H_
#define MVSTORE_STORE_FRESHNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.h"

namespace mvstore::store {

struct Metrics;

/// Identifies a client session (Section V). 0 = no session.
using SessionId = std::uint64_t;

/// The consistency contract of a read (ReadOptions::consistency).
enum class ReadConsistency {
  /// Serve whatever the read quorum holds (the paper's behaviour).
  kEventual,
  /// Never serve view state older than ReadOptions::max_staleness: the
  /// coordinator proves the bound from the freshness tracker, briefly waits
  /// for in-flight propagations, repairs wounded families, or routes to the
  /// SI/base-table path when the view cannot satisfy the bound in time.
  kBoundedStaleness,
  /// Definition 4: block until the session's own pending propagations for
  /// the view have completed. BeginSession() is sugar for this.
  kReadYourWrites,
};

/// Which access path actually served a read (ReadResult::served_by).
enum class ServedBy {
  kView,      ///< materialized-view partition scan (Algorithm 4)
  kSiPath,    ///< secondary-index broadcast probe
  kBaseScan,  ///< base-table read (point Get, or match-scan fallback)
};

/// Cluster-wide freshness bookkeeping. One instance per Cluster; see the
/// file comment for what each piece models.
class FreshnessTracker {
 public:
  /// `metrics` may be null (standalone SessionManager construction in unit
  /// tests); instrument updates are then skipped.
  explicit FreshnessTracker(Metrics* metrics = nullptr);

  FreshnessTracker(const FreshnessTracker&) = delete;
  FreshnessTracker& operator=(const FreshnessTracker&) = delete;

  // -------------------------------------------------------------------
  // Intent lifecycle (driven by the maintenance engine).
  // -------------------------------------------------------------------

  /// Registers a pending propagation of a write at `ts` to `view`,
  /// synchronously at Put issue — BEFORE the Put is acknowledged, so a
  /// bounded read issued right after the ack can never miss it. Until
  /// ResolvePartitions names the view-key partitions the write can land
  /// in, the intent conservatively blocks EVERY partition of the view.
  /// Also opens the (origin, session) bookkeeping (Section V).
  std::uint64_t RegisterIntent(const std::string& view, const Key& base_key,
                               Timestamp ts, SessionId session,
                               ServerId origin);

  /// Narrows `intent` to the named view-key partitions (the written view
  /// key plus every collected pre-image guess). An empty set leaves the
  /// intent blocking all partitions (nothing was collected — the paper's
  /// unreachable-replica window).
  void ResolvePartitions(std::uint64_t intent, std::set<Key> partitions);

  /// The Put turned out not to touch this view: the intent settles with no
  /// freshness effect. 0 is a no-op.
  void Discard(std::uint64_t intent);

  /// The propagation applied at its write quorum: the intent stops
  /// blocking, the per-partition applied high-water advances, and parked
  /// bounded reads are woken.
  void MarkApplied(std::uint64_t intent);

  /// The propagation died (coordinator crash, orphaning, retry budget):
  /// the write may or may not be in the view, so the intent KEEPS blocking
  /// bounded reads — only a family audit (owned-range scrub or a targeted
  /// repair) can prove the family converged and clear the wound.
  /// Idempotent; settles the session bookkeeping on first call.
  void MarkWounded(std::uint64_t intent);

  /// A scrub/repair audited the (view, base_key) family against
  /// Definition 1: every intent for that family — wounded blockers and
  /// dead bookkeeping whose completion notice was lost — is cleared.
  /// Returns the number of intents cleared.
  std::size_t FamilyAudited(const std::string& view, const Key& base_key);

  // -------------------------------------------------------------------
  // Queries (driven by the bounded-read path).
  // -------------------------------------------------------------------

  /// The freshness a read of (view, partition) at wall-clock `now_ts` may
  /// claim: just below the oldest unsettled intent that can reach the
  /// partition, or `now_ts` when none is pending.
  Timestamp FreshAsOf(const std::string& view, const Key& partition,
                      Timestamp now_ts) const;

  /// Per-sub-shard FreshAsOf for sharded views (ISSUE 9): like FreshAsOf
  /// but only intents whose base key hashes into `shard` (of `shard_count`)
  /// count — an intent routed to another sub-shard cannot affect this one.
  /// A scatter-gather read's freshness claim is the min of this over the
  /// shards it actually merged. Identical to FreshAsOf when shard_count<=1.
  Timestamp FreshAsOfShard(const std::string& view, const Key& partition,
                           int shard, int shard_count, Timestamp now_ts) const;

  struct BlockerSummary {
    int live = 0;     ///< propagations still in flight
    int wounded = 0;  ///< families needing an audit
    std::vector<Key> wounded_keys;  ///< base keys of the wounded families
  };
  /// The unsettled intents with ts <= `need` that can reach (view,
  /// partition) — exactly the writes a read requiring freshness `need`
  /// cannot yet prove are reflected.
  BlockerSummary BlockersBefore(const std::string& view, const Key& partition,
                                Timestamp need) const;

  /// Per-(view, partition) high-water timestamp of applied propagations
  /// (kNullTimestamp when none applied yet). Exposed for gossip.
  Timestamp AppliedHighWater(const std::string& view,
                             const Key& partition) const;

  /// One-shot callback fired the next time `view`'s freshness can have
  /// improved (an intent applied, discarded, or audited away). Parked
  /// bounded reads use this instead of polling.
  void NotifyOnImprovement(const std::string& view,
                           std::function<void()> callback);

  /// EWMA of observed propagation lag per view (`alpha` = smoothing
  /// factor), the router's cost-model input. LagEstimate returns -1 until
  /// the first sample.
  void RecordLag(const std::string& view, SimTime lag, double alpha);
  SimTime LagEstimate(const std::string& view) const;

  /// Unsettled intents (introspection for tests).
  std::size_t pending_intents() const { return intents_.size(); }

  // -------------------------------------------------------------------
  // Session layer (Section V, Definition 4) — per-origin slices, fronted
  // by view::SessionManager.
  // -------------------------------------------------------------------

  void SessionStarted(ServerId origin, SessionId session,
                      const std::string& view);
  void SessionFinished(ServerId origin, SessionId session,
                       const std::string& view);
  bool SessionMustDefer(ServerId origin, SessionId session,
                        const std::string& view) const;
  /// Callers check SessionMustDefer first.
  void SessionDefer(ServerId origin, SessionId session,
                    const std::string& view, std::function<void()> resume);
  /// Drops `origin`'s session bookkeeping and parked resumes (its
  /// coordinator crashed; deferred Gets are answered by the client's own
  /// request timeout).
  void ResetSessions(ServerId origin);
  std::uint64_t deferred_total(ServerId origin) const;

 private:
  struct Intent {
    std::string view;
    Key base_key;
    Timestamp ts = kNullTimestamp;
    SessionId session = 0;
    ServerId origin = 0;
    /// Partitions (view keys) the write can land in; empty = unresolved,
    /// blocking every partition of the view.
    std::set<Key> partitions;
    bool wounded = false;
    /// The (origin, session) bookkeeping settles exactly once even though
    /// a wounded intent can later be applied or audited.
    bool session_settled = false;
  };

  /// Whether `intent` can affect `partition`.
  static bool Covers(const Intent& intent, const Key& partition) {
    return intent.partitions.empty() ||
           intent.partitions.count(partition) != 0;
  }

  void SettleSession(Intent& intent);
  void EraseIntent(std::map<std::uint64_t, Intent>::iterator it);
  void FireImprovement(const std::string& view);

  using SessionKey = std::tuple<ServerId, SessionId, std::string>;

  Metrics* metrics_;
  std::uint64_t next_intent_ = 0;
  std::map<std::uint64_t, Intent> intents_;
  /// Intent ids per view (the read path's index).
  std::map<std::string, std::set<std::uint64_t>> by_view_;
  /// (view, partition) -> high-water timestamp of applied propagations.
  std::map<std::pair<std::string, Key>, Timestamp> applied_high_water_;
  std::map<std::string, std::vector<std::function<void()>>> improvement_;
  struct LagEwma {
    double value = 0.0;
    bool primed = false;
  };
  std::map<std::string, LagEwma> lag_;

  std::map<SessionKey, int> session_pending_;
  std::map<SessionKey, std::vector<std::function<void()>>> session_waiting_;
  std::map<ServerId, std::uint64_t> session_deferred_;
};

/// A server's advisory cache of per-view freshness facts, merged from the
/// gossip the maintenance engine piggybacks on propagation-completion
/// replica traffic. Volatile: dies with the process on crash. The bounded-
/// read router consults it first (a coordinator should not need a tracker
/// round trip to decide a fallback) and falls through to the tracker's own
/// estimate when cold.
struct FreshnessCache {
  struct Entry {
    Timestamp high_water = kNullTimestamp;
    double lag_ewma = 0.0;
    bool has_lag = false;
  };
  std::map<std::string, Entry> by_view;

  void Merge(const std::string& view, Timestamp high_water, SimTime lag,
             double alpha) {
    Entry& entry = by_view[view];
    if (high_water > entry.high_water) entry.high_water = high_water;
    if (!entry.has_lag) {
      entry.lag_ewma = static_cast<double>(lag);
      entry.has_lag = true;
    } else {
      entry.lag_ewma =
          alpha * static_cast<double>(lag) + (1.0 - alpha) * entry.lag_ewma;
    }
  }

  /// -1 when no sample has arrived yet.
  SimTime LagEstimate(const std::string& view) const {
    auto it = by_view.find(view);
    if (it == by_view.end() || !it->second.has_lag) return -1;
    return static_cast<SimTime>(it->second.lag_ewma);
  }
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_FRESHNESS_H_

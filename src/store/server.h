// A storage server: replica storage, local secondary-index fragments, and
// the coordinator role.
//
// Every server can coordinate any request (multi-master, Section II): the
// coordinator locates the N replicas via the ring, fans the request out, and
// acknowledges once the quorum (R or W) has answered. Late replica responses
// keep flowing into the finished operation, driving read repair and — on the
// write path — the collection of pre-update view-key versions that
// Algorithm 1 hands to the view-maintenance hook.

#ifndef MVSTORE_STORE_SERVER_H_
#define MVSTORE_STORE_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/statusor.h"
#include "common/unique_fn.h"
#include "common/trace.h"
#include "common/types.h"
#include "index/local_index.h"
#include "sim/network.h"
#include "sim/service_queue.h"
#include "sim/simulation.h"
#include "storage/engine.h"
#include "store/config.h"
#include "store/freshness.h"
#include "store/hooks.h"
#include "store/metrics.h"
#include "store/ring.h"
#include "store/schema.h"

namespace mvstore::store {

/// Write payload: column -> new value (nullopt = delete the cell).
using Mutation = std::map<ColumnName, std::optional<Value>>;

/// Heap-based k-way merge of sorted per-shard scan results into one sorted
/// stream. Sub-shard key spaces are disjoint by construction (distinct shard
/// header bytes), so duplicate keys only arise from overlapping prefixes —
/// they LWW-merge cell-by-cell (Row::MergeFrom). Exposed at namespace scope
/// so tests can fuzz it against a single-map oracle (ISSUE 10).
std::vector<storage::KeyedRow> MergeSortedShardScans(
    std::vector<std::vector<storage::KeyedRow>> shards);

/// What a scatter-gather view scan produced (ISSUE 10): the merged rows plus
/// how much of the partition they actually cover. `failed_shards` > 0 only
/// on the allow-partial path — the merged image is missing those sub-shards'
/// rows, so callers must degrade their freshness claim accordingly.
struct ScatterScanResult {
  std::vector<storage::KeyedRow> rows;
  int failed_shards = 0;
  int total_shards = 0;
};

/// A server's ring-membership lifecycle, orthogonal to the crash state (a
/// joining or draining server can crash and resume the transition after
/// Restart).
///
///   kLeft ──ActivateForJoin──▶ kJoining ──stream done──▶ kServing
///   kServing ──BeginDecommission──▶ kDraining ──streamed+drained──▶ kLeft
enum class MembershipState { kServing, kJoining, kDraining, kLeft };

class Server {
 public:
  Server(ServerId id, sim::Simulation* sim, sim::Network* network,
         const Schema* schema, const Ring* ring, const ClusterConfig* config,
         Metrics* metrics, Tracer* tracer = nullptr);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  ServerId id() const { return id_; }
  sim::Simulation* simulation() const { return sim_; }
  sim::Network* network() const { return network_; }
  const Schema& schema() const { return *schema_; }
  const Ring& ring() const { return *ring_; }
  const ClusterConfig& config() const { return *config_; }
  Metrics* metrics() const { return metrics_; }
  /// The cluster's trace recorder (null in bare standalone construction).
  Tracer* tracer() const { return tracer_; }

  /// Installed by the Cluster after construction; may be null (no views).
  void set_view_hook(ViewMaintenanceHook* hook) { view_hook_ = hook; }

  // ---------------------------------------------------------------------
  // Crash-stop fault model.
  // ---------------------------------------------------------------------

  /// Crash-stops this server: the view hook is told first (it orphans the
  /// server's propagation tasks and session state), every in-flight
  /// coordinator operation is aborted with an error callback, stored hints
  /// are dropped, the endpoint disappears from the network (in-flight
  /// messages to/from this incarnation are lost), and all volatile storage
  /// (memtables) is discarded. Durable commit logs and flushed runs survive.
  void Crash();

  /// Restarts a crashed server: replays the per-table commit logs into fresh
  /// memtables, rejoins the ring (endpoint back up, new incarnation already
  /// in effect), re-arms background tasks, kicks one anti-entropy round to
  /// catch up with peers, and lets the view hook re-scrub owned ranges.
  void Restart();

  bool crashed() const { return crashed_; }

  /// Monotonic process generation: bumped on every crash. Closures created
  /// by one incarnation refuse to run under a later one.
  std::uint64_t incarnation() const { return incarnation_; }

  // ---------------------------------------------------------------------
  // Elastic membership (ISSUE 6). The Cluster drives the transitions: it
  // owns the ring, so it performs the token (re)assignment and hands the
  // affected ranges down.
  // ---------------------------------------------------------------------

  MembershipState membership() const { return membership_; }
  /// Whether this server participates in replication (everything but
  /// kLeft). Draining servers still apply replica writes and answer reads;
  /// they only reject NEW client coordination.
  bool is_member() const { return membership_ != MembershipState::kLeft; }
  /// Whether this server accepts NEW client coordination: serving or still
  /// bootstrapping (a joiner is already in the ring and can fan out to
  /// replicas). Draining and left servers reject with Unavailable.
  bool AcceptsCoordination() const {
    return membership_ == MembershipState::kServing ||
           membership_ == MembershipState::kJoining;
  }

  /// Marks a capacity slot constructed above `num_servers` as never joined:
  /// outside the ring, endpoint down, no background ticks until a join.
  void MarkNeverJoined();

  /// Brings a kLeft slot up as a joiner: fresh incarnation, endpoint up,
  /// background ticks armed, `member.join` trace opened. The Cluster calls
  /// this BEFORE adding the server to the ring.
  void ActivateForJoin();

  /// Starts the streaming bootstrap: pulls every range in `plan` (one task
  /// per range and table, `join_stream_batch` rows per message, resumable
  /// cursor, per-range retry with linear backoff rotating through the
  /// sources). Flips to kServing when the last range lands.
  void BeginJoinStream(std::vector<Ring::RangeTransfer> plan);

  /// Starts the decommission. The Cluster has already removed this server
  /// from the ring; `plan` names the ranges it owned and their new owners.
  /// The server streams each range out (a full sweep, then a tail sweep
  /// that catches writes applied during the first), drains its hinted
  /// handoffs, then leaves: endpoint down, new coordination rejected from
  /// the moment this is called.
  void BeginDecommission(std::vector<Ring::RangeTransfer> plan);

  /// Re-coordinates every hint queued FOR `departed` to the hinted keys'
  /// current replicas (the departed server will never ack them).
  void RerouteHintsFor(ServerId departed);

  /// Moves the unanswered slots of in-flight quorum ops off `departed` and
  /// onto a current replica of the op's key, so acked writes are never
  /// stranded waiting on a server that left the ring.
  void RetargetInflightOps(ServerId departed);

  /// Total hints queued across all targets (the decommission drain gate).
  std::size_t hints_outstanding() const;

  /// One batch of a membership range stream: rows of `table` whose
  /// partition key falls in `range`, with keys strictly greater than
  /// `from`, holding at least one cell with ts >= `min_ts`; at most `limit`
  /// rows per call (in key order). `resume` is the cursor for the next
  /// call; `done` signals the range is exhausted. Runs on the source server
  /// (join pulls) or locally (decommission pushes).
  struct RangeSlice {
    std::vector<storage::KeyedRow> rows;
    Key resume;
    bool done = true;
  };
  RangeSlice CollectRangeRows(const std::string& table,
                              Ring::TokenRange range, const Key& from,
                              int limit, Timestamp min_ts) const;

  /// All servers of the cluster, indexed by ServerId (set by the Cluster;
  /// used to address peers).
  void set_peers(const std::vector<Server*>* peers) { peers_ = peers; }

  // ---------------------------------------------------------------------
  // Client-facing entry points (invoked on the coordinator, typically via
  // store::Client which models the client<->coordinator network hop).
  // ---------------------------------------------------------------------

  /// Get on a base table (paper Get): merged cells of the first R replica
  /// responses. `columns` empty = whole row.
  void HandleClientGet(const std::string& table, const Key& key,
                       std::vector<ColumnName> columns, int read_quorum,
                       std::function<void(StatusOr<storage::Row>)> callback);

  /// Put on a base table (paper Put), with Algorithm 1's view-key
  /// collection and asynchronous view maintenance when views are affected.
  void HandleClientPut(const std::string& table, const Key& key,
                       const Mutation& mutation, Timestamp ts,
                       int write_quorum, SessionId session,
                       std::function<void(Status)> callback);

  /// Get on a view by view key (Algorithm 4; set of live records), under
  /// the consistency contract in `consistency` / `max_staleness` (ISSUE 7).
  void HandleClientViewGet(
      const std::string& view, const Key& view_key,
      std::vector<ColumnName> columns, int read_quorum, SessionId session,
      ReadConsistency consistency, SimTime max_staleness,
      std::function<void(StatusOr<ViewReadOutcome>)> callback);

  /// Lookup by secondary key through the native secondary index: broadcast
  /// to every server, probe local fragments, merge.
  void HandleClientIndexGet(
      const std::string& table, const ColumnName& column, const Value& value,
      std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback);

  // ---------------------------------------------------------------------
  // Coordinator primitives (used internally and by the view-maintenance
  // engine, which issues quorum reads/writes on view tables).
  // ---------------------------------------------------------------------

  /// Fires once with the merge of the first `read_quorum` responses (or
  /// Unavailable on timeout). If `collect_all` is provided it fires once
  /// more, after every replica answered or the timeout expired, with each
  /// reachable replica's raw response; read repair happens at that point.
  void CoordinateRead(
      const std::string& table, const Key& key,
      std::vector<ColumnName> columns, int read_quorum,
      std::function<void(StatusOr<storage::Row>)> callback,
      std::function<void(std::vector<storage::Row>)> collect_all = nullptr);

  /// Applies `cells` (already timestamped) at the key's replicas; fires at
  /// `write_quorum` acks or Unavailable at timeout.
  void CoordinateWrite(const std::string& table, const Key& key,
                       const storage::Row& cells, int write_quorum,
                       std::function<void(Status)> callback);

  /// Combined Get-then-Put (Section IV-C): one message per replica that
  /// returns the pre-update `read_columns` and then applies `cells`.
  /// `callback` fires at the write quorum; `collect_pre_images` fires when
  /// all replicas answered or the timeout expired.
  void CoordinateReadThenWrite(
      const std::string& table, const Key& key,
      std::vector<ColumnName> read_columns, const storage::Row& cells,
      int write_quorum, std::function<void(Status)> callback,
      std::function<void(std::vector<storage::Row>)> collect_pre_images);

  /// Merged prefix scan over the key's partition (composite-key tables):
  /// merge of the first `read_quorum` replica scans.
  void CoordinateScan(
      const std::string& table, const Key& partition_prefix, int read_quorum,
      std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback);

  /// Scatter-gather scan over a sharded view partition (ISSUE 9): one
  /// CoordinateScan QuorumOp per sub-shard prefix, answered with a streaming
  /// k-way merge of the per-shard sorted results (duplicate keys LWW-merge;
  /// by construction sub-shard key spaces are disjoint). A single prefix
  /// degenerates to CoordinateScan verbatim, so unsharded views pay nothing.
  ///
  /// With `allow_partial` false, fails with the first sub-scan error: a
  /// partition's answer must cover every shard or rows silently vanish from
  /// the merged image. With `allow_partial` true (eventual-consistency
  /// reads, ISSUE 10), one quorum-dead shard no longer fails the whole
  /// query: the reachable shards' merge is served with `failed_shards` set,
  /// and only all-shards-failed surfaces the error.
  void CoordinateViewScatterScan(
      const std::string& table, std::vector<Key> shard_prefixes,
      int read_quorum, bool allow_partial,
      std::function<void(StatusOr<ScatterScanResult>)> callback);

  /// Secondary-index probe as a coordinator primitive: broadcast to every
  /// ring member, probe local index fragments, merge, re-filter. The inner
  /// machinery of HandleClientIndexGet, exposed so the bounded-read router
  /// can fall back to the SI path (ISSUE 7).
  void CoordinateIndexScan(
      const std::string& table, const ColumnName& column, const Value& value,
      std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback);

  /// Last-resort fallback when no secondary index covers the routed column:
  /// broadcast a full local match-scan of `table` (every row visited, at
  /// `perf.base_scan_local` per server) and merge. Deliberately expensive —
  /// the router only picks it when the view cannot satisfy a bound and no
  /// SI exists.
  void CoordinateBaseMatchScan(
      const std::string& table, const ColumnName& column, const Value& value,
      std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback);

  // ---------------------------------------------------------------------
  // Local replica handlers (run on THIS server under its service queue;
  // invoked via peer messages).
  // ---------------------------------------------------------------------

  /// Local read of requested columns (all columns when empty). Returns an
  /// empty row when the key is absent.
  storage::Row LocalRead(const std::string& table, const Key& key,
                         const std::vector<ColumnName>& columns);

  /// Local LWW apply + synchronous maintenance of local index fragments.
  void LocalApply(const std::string& table, const Key& key,
                  const storage::Row& cells);

  /// LocalRead of `read_columns` followed atomically by LocalApply.
  storage::Row LocalReadThenApply(const std::string& table, const Key& key,
                                  const std::vector<ColumnName>& read_columns,
                                  const storage::Row& cells);

  /// Local merged prefix scan.
  std::vector<storage::KeyedRow> LocalScanPrefix(const std::string& table,
                                                 const Key& prefix);

  /// Probe this server's index fragment; returns matching local rows.
  std::vector<storage::KeyedRow> LocalIndexProbe(const std::string& table,
                                                 const ColumnName& column,
                                                 const Value& value);

  /// Full local scan of `table` for rows whose `column` equals `value`
  /// (no index consulted).
  std::vector<storage::KeyedRow> LocalMatchScan(const std::string& table,
                                                const ColumnName& column,
                                                const Value& value);

  /// Sends `handler` to run on peer `to` under its service queue (service
  /// time `remote_service`, plus the fixed per-message receive overhead);
  /// the returned value travels back and `on_reply` runs here. Either leg
  /// may be dropped by the network. `payloads` is the logical request count
  /// the message carries (> 1 for a batched replica-write flush). Both
  /// closures are move-only, so a request may own its payload vector
  /// outright (no shared_ptr indirection); callers that must re-send — the
  /// quorum retry path — keep a copyable std::function and pay one copy per
  /// send.
  template <typename Response>
  void CallPeer(ServerId to, SimTime remote_service,
                UniqueFn<Response(Server&)> handler,
                UniqueFn<void(Response)> on_reply,
                std::uint64_t payloads = 1);

  /// CallPeer variant whose service demand is resolved ON THE PEER when the
  /// message is delivered: `remote_service(*peer)` runs just before the
  /// handler is queued, so the demand can depend on replica-local state the
  /// sender cannot know (is the row cached there?).
  template <typename Response>
  void CallPeerDynamic(ServerId to,
                       UniqueFn<SimTime(Server&)> remote_service,
                       UniqueFn<Response(Server&)> handler,
                       UniqueFn<void(Response)> on_reply,
                       std::uint64_t payloads = 1);

  /// Service demand of a local point read of (table, key): the cached rate
  /// when this server's row cache holds the key, the full rate otherwise.
  SimTime ReadServiceFor(const std::string& table, const Key& key) const;

  /// This server's row cache; null when `row_cache_entries` == 0.
  storage::RowCache* row_cache() const { return row_cache_.get(); }

  /// This server's advisory freshness cache (ISSUE 7), merged from gossip
  /// the maintenance engine piggybacks on propagation-completion traffic.
  /// Volatile: cleared on crash.
  FreshnessCache& freshness_cache() { return freshness_cache_; }

  /// Populates the row cache for a bootstrap-loaded key (loading applies
  /// rows, and applies invalidate — warming restores the "hot replica"
  /// steady state the benches measure from). No-op without a cache.
  void WarmRowCache(const std::string& table, const Key& key);

  /// The oldest write timestamp among this server's stored hints, or
  /// Timestamp max when none are pending. Used as the tombstone purge floor:
  /// a tombstone at/after this instant may still be owed to some replica.
  Timestamp OldestHintTimestamp() const;

  /// One clock-driven compaction round: flush + merge + tombstone GC on
  /// every engine, charged through the service queue. Exposed for tests;
  /// also runs periodically when `compaction_interval` > 0.
  void RunCompactionRound();

  /// Runs `fn` on this server after (queueing +) `service` time — unless the
  /// server has crashed (or crashed and restarted) in between: work queued
  /// by one process incarnation dies with it.
  void Enqueue(SimTime service, UniqueFn<void()> fn) {
    queue_.Submit(service, [this, incarnation = incarnation_,
                            fn = std::move(fn)]() mutable {
      if (incarnation != incarnation_ || crashed_) return;
      fn();
    });
  }

  /// Replicas of `key` in `table` (partition prefix for composite keys).
  /// Served from a per-server placement cache keyed by the interned
  /// partition key and the ring version, so repeated routing of the same
  /// partition (every write, every anti-entropy row) costs one hash and one
  /// probe instead of a ring walk and a fresh allocation. The reference is
  /// stable until the ring membership changes.
  const std::vector<ServerId>& ReplicasOf(const std::string& table,
                                          const Key& key) const;

  /// Majority quorum for the replication factor (view maintenance ops).
  int MajorityQuorum() const { return config_->replication_factor / 2 + 1; }

  /// Direct access to the local storage engine (bootstrap loading, scrub,
  /// tests). Creates the engine on first use.
  storage::Engine& EngineFor(const std::string& table);

  /// Starts background tasks (anti-entropy, hint replay) if configured.
  void Start();

  /// One anti-entropy round: Merkle-style synchronization with every peer.
  /// For each (table, peer) the servers first exchange per-bucket digests
  /// over the keys they both replicate, then ship rows only for mismatched
  /// buckets (bidirectionally). Exposed for tests; also runs periodically
  /// when `anti_entropy_interval` > 0.
  void RunAntiEntropyRound();

  // --- hinted handoff ---

  /// A write a replica failed to acknowledge in time, kept for replay.
  struct Hint {
    std::string table;
    Key key;
    storage::Row cells;
    /// Context of the write that spawned the hint; replay records a marker
    /// span under it, so a trace shows how a missed write eventually landed.
    TraceContext trace;
  };

  /// Hints currently queued for `target` (introspection for tests).
  std::size_t pending_hints(ServerId target) const;

  /// One replay pass: re-sends queued hints; a hint is dropped only when its
  /// target acknowledges. Runs periodically when `hint_replay_interval` > 0.
  void ReplayHints();

  // --- anti-entropy internals (public: invoked on peers via messages) ---

  /// Digest of this server's rows of `table` that are co-replicated with
  /// `peer`, bucketed by key hash. Per bucket: sum (mod 2^64) of salted entry
  /// hashes folded with the row count — commutative (order-insensitive) but,
  /// unlike an XOR fold, not a GF(2) linear map that dependent entry sets can
  /// cancel to a false match.
  std::vector<std::uint64_t> ComputeSyncDigests(const std::string& table,
                                                ServerId peer,
                                                int buckets) const;

  /// This server's rows of `table` (co-replicated with `peer`) falling into
  /// `buckets`.
  std::vector<storage::KeyedRow> CollectBucketRows(
      const std::string& table, ServerId peer,
      const std::vector<int>& buckets, int total_buckets) const;

  /// Ships one replica mutation to `to` and acks through `on_ack`. With
  /// `write_batch_max` > 1, batching is Nagle-style per destination: a
  /// mutation ships immediately while the lane is idle (no added latency at
  /// low concurrency), and parks while a batch is in flight. Parked
  /// mutations flush as ONE network message when the in-flight batch acks,
  /// when `write_batch_max` accumulated, or after `write_batch_delay` at
  /// the latest. With batching off every mutation is its own message.
  /// `service` is the per-mutation replica-side demand (batching saves the
  /// per-message receive overhead, not the apply work).
  void SendReplicaWrite(ServerId to, const std::string& table, const Key& key,
                        const storage::Row& cells, SimTime service,
                        UniqueFn<void(bool)> on_ack);

 private:
  friend class Cluster;
  /// The generic coordinator state machine drives fan-out/hints/abort via
  /// the private registration and hint primitives below.
  template <typename Response>
  friend class QuorumOp;

  /// Wraps a reply callback so that assembling the reply charges coordinator
  /// service time (reply processing contributes to saturation under load).
  template <typename ResultT>
  std::function<void(ResultT)> WrapReply(
      std::function<void(ResultT)> callback);

  void AntiEntropyTick();
  void HintReplayTick();
  void CompactionTick();
  void SyncTableWithPeer(const std::string& table, ServerId peer);

  /// (Re-)arms the periodic background ticks for the current incarnation.
  void ScheduleBackgroundTicks();

  /// Registers an abort closure for an in-flight coordinator operation;
  /// Crash() invokes every registered closure. `retarget` (optional) is
  /// invoked with the id of a server that left the ring mid-operation so
  /// the op can move unanswered slots onto a live replica. Returns the
  /// registration id the op passes to DeregisterInflightOp when it
  /// finalizes normally.
  std::uint64_t RegisterInflightOp(std::function<void()> abort,
                                   std::function<void(ServerId)> retarget =
                                       nullptr);
  void DeregisterInflightOp(std::uint64_t op_id);

  /// Records a hint for a write `target` did not acknowledge.
  void StoreHint(ServerId target, const std::string& table, const Key& key,
                 const storage::Row& cells);

  /// Per-replica service demand of a write (base apply + synchronous local
  /// index maintenance for written indexed columns).
  SimTime WriteServiceFor(const std::string& table,
                          const storage::Row& cells) const;

  /// Resolves the partition key used for ring placement.
  Key PartitionKeyFor(const std::string& table, const Key& key) const;
  /// Zero-copy form: a slice of `key` (valid while `key` lives).
  std::string_view PartitionViewFor(const std::string& table,
                                    const Key& key) const;

  /// One parked replica mutation awaiting a batch flush. Move-only (the ack
  /// is a UniqueFn), so a flushed batch MOVES into the request closure —
  /// cells and keys ride to the replica without a copy or a shared_ptr.
  struct PendingReplicaWrite {
    std::string table;
    Key key;
    storage::Row cells;
    SimTime service;
    UniqueFn<void(bool)> on_ack;
    SimTime enqueued_at;
  };

  /// Per-destination batching lane: parked mutations plus the number of
  /// shipped-but-unacknowledged batches (the Nagle gate).
  struct ReplicaWriteLane {
    std::vector<PendingReplicaWrite> parked;
    int in_flight = 0;
  };

  /// Ships everything parked for `to` as one network message whose replica
  /// service demand is the sum of the batched mutations' demands.
  void FlushReplicaWrites(ServerId to);

  // --- elastic membership internals ---

  /// One (range, table) unit of a membership stream. Join tasks pull from
  /// `peers` (rotating on retry); decommission tasks push to the single
  /// server in `peers`. `cursor` makes the stream resumable: a timed-out
  /// slice re-requests from the last acknowledged key, not from scratch.
  struct StreamTask {
    std::string table;
    Ring::TokenRange range;
    std::vector<ServerId> peers;
    Key cursor;
    int attempt = 0;
    std::uint64_t rows_streamed = 0;
  };

  /// Expands a transfer plan into stream tasks (join: one per range+table;
  /// decommission: one per range+table+new owner).
  void BuildStreamTasks(const std::vector<Ring::RangeTransfer>& plan);
  /// Drives the front stream task: issues the next slice pull/push with a
  /// timeout, advances the cursor on ack, retries with backoff on silence.
  void PumpStream();
  void StreamSliceSettled(std::uint64_t seq, bool ok,
                          std::size_t rows_acked, Key resume, bool done);
  void FinishStreamTask();
  void FinishJoin();
  /// Advances the decommission phase machine once the current sweep's
  /// stream tasks have drained.
  void ContinueDecommission();
  /// Polls the hint queues; leaves when empty, force-reroutes at the drain
  /// deadline.
  void DrainHintsThenLeave();
  /// Sends every still-queued hint directly to its key's current replicas
  /// (drain deadline expired; the data must not leave with this server).
  void ForceRerouteOwnHints();
  /// Re-coordinates one write to the key's CURRENT ring replicas: local
  /// apply when this server is one, replica-write (hinting on silence)
  /// otherwise. The common leg of every hint-reroute path.
  void RerouteWriteToCurrentReplicas(const std::string& table, const Key& key,
                                     const storage::Row& cells);
  void FinishLeave(bool forced);
  void EmitMemberSpan(const char* name, const std::string& note);

  ServerId id_;
  sim::Simulation* sim_;
  sim::Network* network_;
  const Schema* schema_;
  const Ring* ring_;
  const ClusterConfig* config_;
  Metrics* metrics_;
  Tracer* tracer_ = nullptr;
  ViewMaintenanceHook* view_hook_ = nullptr;
  const std::vector<Server*>* peers_ = nullptr;

  sim::ServiceQueue queue_;
  /// Replica-local row cache shared by every engine of this server; null
  /// when `row_cache_entries` == 0 (caching compiled out of the read path).
  std::unique_ptr<storage::RowCache> row_cache_;
  std::map<std::string, std::unique_ptr<storage::Engine>> engines_;
  std::vector<std::unique_ptr<index::LocalIndex>> indexes_;
  std::map<ServerId, std::deque<Hint>> hints_;
  /// Per-destination replica-write lanes (write_batch_max > 1 only);
  /// cleared on crash — parked mutations die with the coordinator.
  std::map<ServerId, ReplicaWriteLane> write_lanes_;
  /// Advisory per-view freshness facts gossiped by the maintenance engine;
  /// volatile (cleared on crash).
  FreshnessCache freshness_cache_;

  bool crashed_ = false;
  std::uint64_t incarnation_ = 0;
  std::uint64_t next_op_id_ = 0;
  /// Abort closures of in-flight coordinator ops, by registration id
  /// (ordered map: Crash() aborts in deterministic id order).
  std::map<std::uint64_t, std::function<void()>> inflight_aborts_;
  /// Retarget closures of the same ops (same ids); invoked when a server
  /// departs the ring so unanswered slots move to a live replica.
  std::map<std::uint64_t, std::function<void(ServerId)>> inflight_retargets_;

  // --- placement cache ---
  /// Cached ring placements, one slot per interned partition key, revalidated
  /// against the ring version (a deque so entries never relocate — returned
  /// references survive cache growth).
  struct PlacementEntry {
    std::uint64_t ring_version = 0;
    bool valid = false;
    std::vector<ServerId> replicas;
  };
  mutable KeyInterner placement_keys_;
  mutable std::deque<PlacementEntry> placement_cache_;

  // --- elastic membership state ---
  MembershipState membership_ = MembershipState::kServing;
  std::deque<StreamTask> stream_tasks_;
  /// Matches slice replies and their timeout probes to the CURRENT pull;
  /// a stale reply (superseded by a retry) or a stale timeout is ignored.
  std::uint64_t stream_seq_ = 0;
  bool stream_pull_pending_ = false;
  /// The decommission plan outlives a crash (modeled as a durable
  /// decommission-intent record): a draining server that crashes resumes
  /// the handoff after Restart instead of stranding its ranges.
  std::vector<Ring::RangeTransfer> decommission_plan_;
  std::vector<Ring::RangeTransfer> join_plan_;
  /// 0 = idle, 1 = full sweep, 2 = tail sweep, 3 = hint drain.
  int decommission_phase_ = 0;
  /// Tail-sweep filter: only rows written since shortly before the full
  /// sweep began (straggler writes in flight when the ring changed).
  Timestamp stream_min_ts_ = 0;
  Timestamp tail_cutoff_ = 0;
  SimTime drain_deadline_ = 0;
  /// Root span of the in-progress join or drain ("member.join" /
  /// "member.drain"); child spans mark each streamed range.
  TraceContext member_trace_;
};

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

template <typename Response>
void Server::CallPeer(ServerId to, SimTime remote_service,
                      UniqueFn<Response(Server&)> handler,
                      UniqueFn<void(Response)> on_reply,
                      std::uint64_t payloads) {
  Server* self = this;
  Server* peer = (*peers_)[to];
  // Receiving a message costs a fixed deserialization/dispatch overhead on
  // top of the handler's own demand — charged per MESSAGE, which is what a
  // batched flush amortizes across its payloads.
  const SimTime service = config_->perf.message_process + remote_service;
  network_->Send(
      id_, to,
      [peer, self, service, handler = std::move(handler),
       on_reply = std::move(on_reply)]() mutable {
        // Enqueue (not a bare queue submit) so work delivered to an
        // incarnation that crashes before servicing it dies with that
        // incarnation.
        peer->Enqueue(
            service,
            [peer, self, handler = std::move(handler),
             on_reply = std::move(on_reply)]() mutable {
              Response response = handler(*peer);
              peer->network_->Send(
                  peer->id_, self->id_,
                  [on_reply = std::move(on_reply),
                   response = std::move(response)]() mutable {
                    on_reply(std::move(response));
                  });
            });
      },
      payloads);
}

template <typename Response>
void Server::CallPeerDynamic(ServerId to,
                             UniqueFn<SimTime(Server&)> remote_service,
                             UniqueFn<Response(Server&)> handler,
                             UniqueFn<void(Response)> on_reply,
                             std::uint64_t payloads) {
  Server* self = this;
  Server* peer = (*peers_)[to];
  network_->Send(
      id_, to,
      [peer, self, remote_service = std::move(remote_service),
       handler = std::move(handler),
       on_reply = std::move(on_reply)]() mutable {
        // Resolved at delivery, on the receiving replica: the demand can
        // consult peer-local state (row cache contents) that the sender and
        // send-time cannot.
        const SimTime service =
            peer->config_->perf.message_process + remote_service(*peer);
        peer->Enqueue(
            service,
            [peer, self, handler = std::move(handler),
             on_reply = std::move(on_reply)]() mutable {
              Response response = handler(*peer);
              peer->network_->Send(
                  peer->id_, self->id_,
                  [on_reply = std::move(on_reply),
                   response = std::move(response)]() mutable {
                    on_reply(std::move(response));
                  });
            });
      },
      payloads);
}

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_SERVER_H_

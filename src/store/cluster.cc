#include "store/cluster.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "store/client.h"
#include "store/codec.h"

namespace mvstore::store {

Cluster::Cluster(ClusterConfig config, Schema schema)
    : config_(config),
      schema_(std::move(schema)),
      tracer_(config.trace_capacity),
      rng_(HashCombine(config.seed, 0x434C5553 /*"CLUS"*/)),
      ring_(config.num_servers, config.vnodes_per_server, config.seed) {
  network_ =
      std::make_unique<sim::Network>(&sim_, rng_.Fork(), config_.network);
  network_->set_tracer(&tracer_);
  network_->set_latency_histogram(&metrics_.stage_network);
  // Provision every capacity slot up front (endpoint numbering is fixed at
  // construction); slots above num_servers start OUTSIDE the ring and wait
  // for JoinServer. With max_servers defaulted to 0 the capacity equals
  // num_servers and the layout is identical to the fixed-membership one.
  const int capacity = std::max(config_.max_servers, config_.num_servers);
  servers_.reserve(static_cast<std::size_t>(capacity));
  for (ServerId id = 0; id < static_cast<ServerId>(capacity); ++id) {
    servers_.push_back(std::make_unique<Server>(id, &sim_, network_.get(),
                                                &schema_, &ring_, &config_,
                                                &metrics_, &tracer_));
  }
  server_ptrs_.reserve(servers_.size());
  for (const auto& server : servers_) server_ptrs_.push_back(server.get());
  for (const auto& server : servers_) server->set_peers(&server_ptrs_);
  for (ServerId id = static_cast<ServerId>(config_.num_servers);
       id < static_cast<ServerId>(capacity); ++id) {
    servers_[id]->MarkNeverJoined();
  }
}

Cluster::~Cluster() = default;

void Cluster::set_view_hook(ViewMaintenanceHook* hook) {
  for (const auto& server : servers_) server->set_view_hook(hook);
}

void Cluster::Start() {
  for (const auto& server : servers_) server->Start();
  if (config_.metrics_sample_interval > 0) {
    // First sample establishes the baseline; each subsequent tick records
    // the per-interval registry delta into the time series.
    metrics_.time_series.Sample(sim_.Now(), metrics_.registry);
    sim_.After(config_.metrics_sample_interval, [this] { MetricsSampleTick(); });
  }
}

void Cluster::MetricsSampleTick() {
  metrics_.time_series.Sample(sim_.Now(), metrics_.registry);
  sim_.After(config_.metrics_sample_interval, [this] { MetricsSampleTick(); });
}

std::unique_ptr<Client> Cluster::NewClient() {
  // Round-robin over the slots, skipping servers that are not (or no
  // longer) serving coordinators.
  return NewClient(PickServingServer(
      static_cast<ServerId>(next_client_ % servers_.size())));
}

ServerId Cluster::PickServingServer(ServerId hint) const {
  const std::size_t n = servers_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const ServerId s =
        static_cast<ServerId>((static_cast<std::size_t>(hint) + i) % n);
    if (servers_[s]->membership() == MembershipState::kServing) return s;
  }
  return hint;
}

bool Cluster::CrashServer(ServerId id) {
  Server& server = *servers_[id];
  if (!server.is_member() || server.crashed()) return false;
  server.Crash();
  return true;
}

bool Cluster::RestartServer(ServerId id) {
  Server& server = *servers_[id];
  if (!server.is_member() || !server.crashed()) return false;
  server.Restart();
  return true;
}

std::optional<ServerId> Cluster::JoinServer() {
  // First kLeft, non-crashed slot (deterministic: lowest id wins).
  ServerId joiner = 0;
  bool found = false;
  for (ServerId id = 0; id < static_cast<ServerId>(servers_.size()); ++id) {
    if (servers_[id]->membership() == MembershipState::kLeft &&
        !servers_[id]->crashed()) {
      joiner = id;
      found = true;
      break;
    }
  }
  if (!found) return std::nullopt;

  // The server comes up first (endpoint live, ticks armed), THEN enters the
  // ring — from that instant it receives replica writes for its ranges — and
  // finally starts streaming the pre-join data behind them.
  servers_[joiner]->ActivateForJoin();
  std::vector<Ring::RangeTransfer> plan =
      ring_.AddServer(joiner, config_.replication_factor);
  servers_[joiner]->BeginJoinStream(std::move(plan));
  return joiner;
}

bool Cluster::DecommissionServer(ServerId id) {
  Server& leaver = *servers_[id];
  if (leaver.membership() != MembershipState::kServing || leaver.crashed()) {
    return false;
  }
  if (ring_.num_servers() - 1 < config_.replication_factor) return false;

  // Tokens go first so every reroute below already sees the shrunk ring.
  std::vector<Ring::RangeTransfer> plan =
      ring_.RemoveServer(id, config_.replication_factor);

  // No member may keep waiting on the leaver: queued hints re-coordinate to
  // the keys' current replicas, and in-flight quorum ops move their
  // unanswered slots off it.
  for (const auto& server : servers_) {
    if (server->id() == id || server->crashed() || !server->is_member()) {
      continue;
    }
    server->RerouteHintsFor(id);
    server->RetargetInflightOps(id);
  }

  leaver.BeginDecommission(std::move(plan));
  return true;
}

std::unique_ptr<Client> Cluster::NewClient(ServerId coordinator) {
  MVSTORE_CHECK_LT(coordinator, servers_.size());
  return std::unique_ptr<Client>(new Client(this, coordinator, ++next_client_));
}

void Cluster::BootstrapLoadRow(const std::string& table, const Key& key,
                               const Mutation& mutation, Timestamp ts) {
  const TableDef* def = schema_.GetTable(table);
  MVSTORE_CHECK(def != nullptr) << "bootstrap into unknown table " << table;
  MVSTORE_CHECK(!def->is_view_backing) << "bootstrap base tables only";
  MVSTORE_CHECK_LT(ts, kClientTimestampEpoch)
      << "bootstrap timestamps must stay below the client epoch";

  storage::Row cells;
  for (const auto& [col, value] : mutation) {
    cells.Apply(col, value ? storage::Cell::Live(*value, ts)
                           : storage::Cell::Tombstone(ts));
  }
  for (ServerId replica : servers_[0]->ReplicasOf(table, key)) {
    servers_[replica]->LocalApply(table, key, cells);
    // Applying invalidates the row cache; re-warm so benches start from the
    // hot-replica steady state instead of an artificially cold cache (a
    // no-op when caching is disabled).
    servers_[replica]->WarmRowCache(table, key);
  }

  // Populate each view per Definition 1, mirroring exactly what the
  // propagation engine would produce: a live row under the view-key value
  // when one exists (with a __ds hidden marker when the selection predicate
  // fails), or the hidden sentinel ANCHOR row when the row has no view key —
  // so that every bootstrapped row family is anchored and later update
  // propagations can always find it.
  for (const ViewDef* view : schema_.ViewsOn(table)) {
    auto view_key_cell = cells.Get(view->view_key_column);
    Key view_key;
    Timestamp ts_key;
    if (view_key_cell && !view_key_cell->tombstone) {
      MVSTORE_CHECK(view_key_cell->value.empty() ||
                    view_key_cell->value[0] != kSentinelPrefix)
          << "view key values must not start with the reserved 0x03 byte";
      view_key = view_key_cell->value;
      ts_key = view_key_cell->ts;
    } else {
      view_key = DeletedSentinelViewKey(key);
      ts_key = view_key_cell ? view_key_cell->ts : kNullTimestamp + 1;
    }
    const int shard = ShardOfBaseKey(key, view->shard_count);
    const Key row_key =
        ShardedViewRowKey(view_key, key, shard, view->shard_count);
    storage::Row view_cells;
    view_cells.Apply(kViewBaseKeyColumn, storage::Cell::Live(key, ts_key));
    view_cells.Apply(kViewNextColumn, storage::Cell::Live(view_key, ts_key));
    view_cells.Apply(kViewInitColumn, storage::Cell::Live("1", ts_key));
    for (const ColumnName& col : view->materialized_columns) {
      if (auto cell = cells.Get(col)) view_cells.Apply(col, *cell);
    }
    if (view->selection.has_value()) {
      auto selected = cells.Get(view->selection->column);
      const bool pass = selected && !selected->tombstone &&
                        selected->value == view->selection->equals;
      const Timestamp ts_sel = selected ? selected->ts : ts_key;
      view_cells.Apply(kViewSelectionColumn,
                       pass ? storage::Cell::Tombstone(ts_sel)
                            : storage::Cell::Live("1", ts_sel));
    }
    for (ServerId replica : servers_[0]->ReplicasOf(view->name, row_key)) {
      servers_[replica]->LocalApply(view->name, row_key, view_cells);
      servers_[replica]->WarmRowCache(view->name, row_key);
    }

    // Every row family's chain originates at the sentinel anchor — an
    // invariant the propagation engine relies on when all of an update's
    // collected pre-images were lost: chasing from the sentinel always
    // reaches the live row. When the view key exists, the anchor is a
    // STALE row pointing at the initial live key (created live above in
    // the key-less case).
    if (!IsSentinelViewKey(view_key)) {
      const Key anchor_key = DeletedSentinelViewKey(key);
      storage::Row anchor;
      anchor.Apply(kViewBaseKeyColumn,
                   storage::Cell::Live(key, kNullTimestamp + 1));
      anchor.Apply(kViewNextColumn,
                   storage::Cell::Live(view_key, kNullTimestamp + 1));
      const Key anchor_row =
          ShardedViewRowKey(anchor_key, key, shard, view->shard_count);
      for (ServerId replica :
           servers_[0]->ReplicasOf(view->name, anchor_row)) {
        servers_[replica]->LocalApply(view->name, anchor_row, anchor);
      }
    }
  }
}

}  // namespace mvstore::store

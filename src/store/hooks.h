// Interface between the record store and the view-maintenance engine.
//
// The store's coordinator (src/store/server.*) knows WHEN maintenance is
// needed — a base-table Put touched a view key or a view-materialized column
// — and collects the pre-update view-key versions from the base row's
// replicas (Algorithm 1, line 2). The maintenance engine (src/view/*) knows
// HOW to propagate (Algorithms 2 and 3). This interface is the seam.

#ifndef MVSTORE_STORE_HOOKS_H_
#define MVSTORE_STORE_HOOKS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/types.h"
#include "storage/cell.h"
#include "storage/row.h"
#include "store/schema.h"

namespace mvstore::store {

class Server;

/// Identifies a client session (Section V). 0 = no session.
using SessionId = std::uint64_t;

/// One record returned by a view Get: the base key that produced the view
/// row plus the requested materialized cells.
struct ViewRecord {
  Key base_key;
  storage::Row cells;
};

/// Pre-update view-key versions collected for one affected view.
struct CollectedViewKeys {
  const ViewDef* view;
  /// Distinct versions of the view-key column observed across the base
  /// row's replicas before the update applied. Null cells (replica had no
  /// value) appear as default-constructed Cells with kNullTimestamp.
  std::vector<storage::Cell> old_keys;
  /// True when every replica answered the collection (see
  /// PropagationTask::full_collection).
  bool full_collection = false;
};

class ViewMaintenanceHook {
 public:
  virtual ~ViewMaintenanceHook() = default;

  /// Called on the coordinating server after a base-table Put has been
  /// acknowledged to the client AND the pre-update view keys have been
  /// collected from all reachable replicas. `written` holds exactly the
  /// cells the Put applied (with their timestamps). The hook schedules the
  /// asynchronous propagation (Algorithm 1, lines 5-7).
  virtual void OnBasePutCommitted(Server* coordinator, const Key& base_key,
                                  const storage::Row& written,
                                  std::vector<CollectedViewKeys> views,
                                  SessionId session) = 0;

  /// Serves a client Get on a view (Algorithm 4), honoring the session
  /// guarantee (Definition 4) when `session` != 0.
  virtual void HandleViewGet(
      Server* coordinator, const ViewDef& view, const Key& view_key,
      std::vector<ColumnName> columns, int read_quorum, SessionId session,
      std::function<void(StatusOr<std::vector<ViewRecord>>)> callback) = 0;

  /// Called synchronously from Server::Crash, BEFORE in-flight coordinator
  /// ops are aborted: the engine must treat the server's share of its
  /// volatile state (propagation tasks, session bookkeeping, propagator
  /// queues) as lost.
  virtual void OnServerCrash(Server* server) {}

  /// Called from Server::Restart after commit-log replay: the engine may
  /// kick recovery work for the ranges the server owns (e.g. a view
  /// re-scrub that adopts propagations orphaned by the crash).
  virtual void OnServerRestart(Server* server) {}

  /// Called when `server` finished its join bootstrap (kServing): ownership
  /// of base-key ranges moved onto it, so the engine should re-derive view
  /// state for the ranges it now primarily owns (dedicated propagators
  /// re-home automatically — ExecutorOf follows the ring).
  virtual void OnServerJoin(Server* server) {}

  /// Called when `server` leaves the ring for good (decommission complete,
  /// just before its endpoint goes down): like a crash, the engine must
  /// orphan the server's propagation tasks and volatile state; unlike a
  /// crash, the server is never coming back for them.
  virtual void OnServerLeave(Server* server) {}
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_HOOKS_H_

// Interface between the record store and the view-maintenance engine.
//
// The store's coordinator (src/store/server.*) knows WHEN maintenance is
// needed — a base-table Put touched a view key or a view-materialized column
// — and collects the pre-update view-key versions from the base row's
// replicas (Algorithm 1, line 2). The maintenance engine (src/view/*) knows
// HOW to propagate (Algorithms 2 and 3). This interface is the seam.

#ifndef MVSTORE_STORE_HOOKS_H_
#define MVSTORE_STORE_HOOKS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "common/types.h"
#include "storage/cell.h"
#include "storage/row.h"
#include "store/freshness.h"
#include "store/schema.h"

namespace mvstore::store {

class Server;

// SessionId, ReadConsistency, and ServedBy live in store/freshness.h.

/// One record returned by a view Get: the base key that produced the view
/// row plus the requested materialized cells.
struct ViewRecord {
  Key base_key;
  storage::Row cells;
};

/// Pre-update view-key versions collected for one affected view.
struct CollectedViewKeys {
  const ViewDef* view;
  /// Distinct versions of the view-key column observed across the base
  /// row's replicas before the update applied. Null cells (replica had no
  /// value) appear as default-constructed Cells with kNullTimestamp.
  std::vector<storage::Cell> old_keys;
  /// True when every replica answered the collection (see
  /// PropagationTask::full_collection).
  bool full_collection = false;
};

/// Everything a view Get carries besides the view and its key: the
/// consistency contract (ISSUE 7) plus the classic quorum/column knobs.
struct ViewReadSpec {
  /// Columns to return; empty = all materialized columns.
  std::vector<ColumnName> columns;
  int read_quorum = 1;
  SessionId session = 0;
  ReadConsistency consistency = ReadConsistency::kEventual;
  /// kBoundedStaleness only: the staleness bound; 0 uses the cluster's
  /// `max_staleness_default`.
  SimTime max_staleness = 0;
};

/// A view Get's result: the records, plus the freshness contract's answer —
/// how fresh the serving state provably was and which path produced it.
struct ViewReadOutcome {
  std::vector<ViewRecord> records;
  /// The serving state provably reflects every write at ts <= freshness.
  Timestamp freshness = kNullTimestamp;
  ServedBy served_by = ServedBy::kView;
};

class ViewMaintenanceHook {
 public:
  virtual ~ViewMaintenanceHook() = default;

  /// Called synchronously on the coordinator while a base-table Put that
  /// affects `views` is being ISSUED — before any replica traffic, so the
  /// freshness intents it registers are visible to bounded reads from the
  /// instant the Put can be acknowledged. Returns an opaque group handle
  /// that the matching OnBasePutCommitted call passes back (0 = none).
  virtual std::uint64_t OnBasePutIssued(Server* coordinator, const Key& key,
                                        const std::vector<const ViewDef*>& views,
                                        Timestamp ts, SessionId session) {
    return 0;
  }

  /// Called on the coordinating server after a base-table Put has been
  /// acknowledged to the client AND the pre-update view keys have been
  /// collected from all reachable replicas. `written` holds exactly the
  /// cells the Put applied (with their timestamps); `put_group` is what the
  /// matching OnBasePutIssued returned. The hook schedules the asynchronous
  /// propagation (Algorithm 1, lines 5-7).
  virtual void OnBasePutCommitted(Server* coordinator, const Key& base_key,
                                  const storage::Row& written,
                                  std::vector<CollectedViewKeys> views,
                                  SessionId session,
                                  std::uint64_t put_group) = 0;

  /// Serves a client Get on a view (Algorithm 4) under `spec`'s consistency
  /// contract: kReadYourWrites defers on the session's own pending
  /// propagations (Definition 4), kBoundedStaleness proves the staleness
  /// bound against the freshness tracker (waiting, repairing, or routing to
  /// the SI/base path as needed), kEventual serves the quorum's state as is.
  virtual void HandleViewGet(
      Server* coordinator, const ViewDef& view, const Key& view_key,
      ViewReadSpec spec,
      std::function<void(StatusOr<ViewReadOutcome>)> callback) = 0;

  /// Called synchronously from Server::Crash, BEFORE in-flight coordinator
  /// ops are aborted: the engine must treat the server's share of its
  /// volatile state (propagation tasks, session bookkeeping, propagator
  /// queues) as lost.
  virtual void OnServerCrash(Server* server) {}

  /// Called from Server::Restart after commit-log replay: the engine may
  /// kick recovery work for the ranges the server owns (e.g. a view
  /// re-scrub that adopts propagations orphaned by the crash).
  virtual void OnServerRestart(Server* server) {}

  /// Called when `server` finished its join bootstrap (kServing): ownership
  /// of base-key ranges moved onto it, so the engine should re-derive view
  /// state for the ranges it now primarily owns (dedicated propagators
  /// re-home automatically — ExecutorOf follows the ring).
  virtual void OnServerJoin(Server* server) {}

  /// Called when `server` leaves the ring for good (decommission complete,
  /// just before its endpoint goes down): like a crash, the engine must
  /// orphan the server's propagation tasks and volatile state; unlike a
  /// crash, the server is never coming back for them.
  virtual void OnServerLeave(Server* server) {}
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_HOOKS_H_

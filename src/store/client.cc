#include "store/client.h"

#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "store/cluster.h"

namespace mvstore::store {

Client::Client(Cluster* cluster, ServerId coordinator, std::uint64_t id)
    : cluster_(cluster), coordinator_(coordinator), id_(id) {}

Timestamp Client::NextTimestamp() {
  const Timestamp now = kClientTimestampEpoch + cluster_->simulation().Now();
  last_ts_ = std::max(now, last_ts_ + 1);
  return last_ts_;
}

void Client::BeginSession() { session_ = cluster_->NewSession(); }

int Client::ReadQuorum(int requested) const {
  return requested > 0 ? requested : cluster_->config().default_read_quorum;
}

int Client::WriteQuorum(int requested) const {
  return requested > 0 ? requested : cluster_->config().default_write_quorum;
}

Timestamp Client::ResolveTimestamp(Timestamp ts) {
  return ts == kNullTimestamp ? NextTimestamp() : ts;
}

TraceContext Client::StartOpTrace(const std::string& name,
                                  const TraceContext& parent) {
  Tracer& tracer = cluster_->tracer();
  const int where = static_cast<int>(cluster_->client_endpoint());
  const SimTime now = cluster_->simulation().Now();
  if (parent) return tracer.StartSpan(parent, name, where, now);
  if (!cluster_->config().trace_client_ops) return {};
  return tracer.StartTrace(name, where, now);
}

void Client::SendToCoordinator(std::function<void(Server&)> fn) {
  Server* server = &cluster_->server(coordinator_);
  cluster_->network().Send(cluster_->client_endpoint(), coordinator_,
                           [server, fn = std::move(fn)] { fn(*server); });
}

namespace {

// The error delivered when a client-side request deadline expires.
template <typename ResultT>
ResultT TimeoutResult() {
  if constexpr (std::is_same_v<ResultT, Status>) {
    return Status::TimedOut("client request deadline expired");
  } else if constexpr (std::is_constructible_v<ResultT, Status>) {
    return ResultT(Status::TimedOut("client request deadline expired"));
  } else {
    ResultT result;
    result.status = Status::TimedOut("client request deadline expired");
    return result;
  }
}

// Stamps the operation's trace id into result types that carry one
// (ReadResult/WriteResult); no-op for the legacy Status/StatusOr shapes.
template <typename ResultT>
void SetResultTrace(ResultT& result, TraceId trace) {
  if constexpr (requires { result.trace = trace; }) {
    result.trace = trace;
  }
}

}  // namespace

template <typename ResultT>
std::function<void(ResultT)> Client::ReturnToClient(
    std::function<void(ResultT)> callback, Histogram* latency, TraceContext op,
    SimTime timeout_override) {
  const SimTime start = cluster_->simulation().Now();
  Cluster* cluster = cluster_;
  const ServerId coordinator = coordinator_;
  Tracer* tracer = &cluster_->tracer();

  // At most one of {reply, deadline} reaches the caller.
  auto delivered = std::make_shared<bool>(false);
  auto shared_callback =
      std::make_shared<std::function<void(ResultT)>>(std::move(callback));
  const SimTime timeout =
      timeout_override > 0 ? timeout_override : request_timeout_;
  if (timeout > 0) {
    cluster->simulation().After(
        timeout, [cluster, tracer, op, delivered, shared_callback] {
          if (*delivered) return;
          *delivered = true;
          if (op) {
            tracer->Annotate(op, "client deadline expired");
            tracer->EndSpan(op, cluster->simulation().Now());
          }
          ResultT result = TimeoutResult<ResultT>();
          SetResultTrace(result, op.trace);
          (*shared_callback)(std::move(result));
        });
  }
  return [cluster, tracer, coordinator, start, latency, op, delivered,
          shared_callback](ResultT result) mutable {
    cluster->network().Send(
        coordinator, cluster->client_endpoint(),
        [cluster, tracer, start, latency, op, delivered, shared_callback,
         result = std::move(result)]() mutable {
          if (*delivered) return;  // deadline already fired
          *delivered = true;
          if (latency != nullptr) {
            latency->Record(cluster->simulation().Now() - start);
          }
          if (op) tracer->EndSpan(op, cluster->simulation().Now());
          SetResultTrace(result, op.trace);
          (*shared_callback)(std::move(result));
        });
  };
}

// ---------------------------------------------------------------------------
// Canonical options-based operations.
// ---------------------------------------------------------------------------

void Client::Get(const std::string& table, const Key& key,
                 const ReadOptions& options, ReadCallback callback) {
  TraceContext op = StartOpTrace("client.get", options.trace);
  auto reply = ReturnToClient<ReadResult>(std::move(callback),
                                          &cluster_->metrics().get_latency, op,
                                          options.timeout);
  // Base-table reads are bounded by construction when the quorum spans
  // every replica: the scan then cannot miss an acked write, so the result
  // is fresh "as of now". kBoundedStaleness widens the quorum to get there.
  const int replication = cluster_->config().replication_factor;
  int quorum = ReadQuorum(options.quorum);
  if (options.consistency == ReadConsistency::kBoundedStaleness) {
    quorum = replication;
  }
  const bool full_quorum = quorum >= replication;
  Cluster* cluster = cluster_;
  // Adapt the coordinator's reply shape at the coordinator, so one result
  // object travels the return hop.
  auto adapted = [reply = std::move(reply), cluster,
                  full_quorum](StatusOr<storage::Row> row) {
    ReadResult result;
    if (row.ok()) {
      result.row = *std::move(row);
      result.payload = ReadPayload::kRow;
      result.served_by = ServedBy::kBaseScan;
      if (full_quorum) {
        result.freshness =
            kClientTimestampEpoch + cluster->simulation().Now();
      }
    } else {
      result.status = row.status();
    }
    reply(std::move(result));
  };
  Tracer::Scope scope(&cluster_->tracer(), op);
  SendToCoordinator([table, key, columns = options.columns, quorum,
                     adapted = std::move(adapted)](Server& server) mutable {
    server.HandleClientGet(table, key, std::move(columns), quorum,
                           std::move(adapted));
  });
}

void Client::Put(const std::string& table, const Key& key,
                 const Mutation& mutation, const WriteOptions& options,
                 WriteCallback callback) {
  TraceContext op = StartOpTrace("client.put", options.trace);
  auto reply = ReturnToClient<WriteResult>(std::move(callback),
                                           &cluster_->metrics().put_latency,
                                           op, options.timeout);
  const Timestamp resolved = ResolveTimestamp(options.ts);
  auto adapted = [reply = std::move(reply), resolved](Status status) {
    WriteResult result;
    result.status = std::move(status);
    result.ts = resolved;
    reply(std::move(result));
  };
  const int quorum = WriteQuorum(options.quorum);
  const SessionId session = session_;
  Tracer::Scope scope(&cluster_->tracer(), op);
  SendToCoordinator([table, key, mutation, resolved, quorum, session,
                     adapted = std::move(adapted)](Server& server) mutable {
    server.HandleClientPut(table, key, mutation, resolved, quorum, session,
                           std::move(adapted));
  });
}

void Client::Delete(const std::string& table, const Key& key,
                    std::vector<ColumnName> columns,
                    const WriteOptions& options, WriteCallback callback) {
  Mutation mutation;
  for (ColumnName& col : columns) {
    mutation.emplace(std::move(col), std::nullopt);
  }
  Put(table, key, mutation, options, std::move(callback));
}

void Client::Query(const QuerySpec& spec, const ReadOptions& options,
                   ReadCallback callback) {
  switch (spec.kind) {
    case QuerySpec::Kind::kView:
      QueryView(spec, options, std::move(callback));
      return;
    case QuerySpec::Kind::kIndex:
      QueryIndex(spec, options, std::move(callback));
      return;
    case QuerySpec::Kind::kJoin:
      QueryJoin(spec, options, std::move(callback));
      return;
  }
  ReadResult result;
  result.status = Status::InvalidArgument("unknown QuerySpec kind");
  callback(std::move(result));
}

void Client::QueryView(const QuerySpec& spec, const ReadOptions& options,
                       ReadCallback callback) {
  TraceContext op = StartOpTrace("client.view_get", options.trace);
  auto reply = ReturnToClient<ReadResult>(
      std::move(callback), &cluster_->metrics().view_get_latency, op,
      options.timeout);
  auto adapted =
      [reply = std::move(reply)](StatusOr<ViewReadOutcome> outcome) {
        ReadResult result;
        if (outcome.ok()) {
          ViewReadOutcome value = *std::move(outcome);
          result.records = std::move(value.records);
          result.payload = ReadPayload::kRecords;
          result.freshness = value.freshness;
          result.served_by = value.served_by;
        } else {
          result.status = outcome.status();
        }
        reply(std::move(result));
      };
  const int quorum = ReadQuorum(options.quorum);
  const SessionId session = session_;
  // BeginSession() is sugar for read-your-writes: a session-carrying view
  // Get at the default level upgrades to kReadYourWrites.
  ReadConsistency consistency = options.consistency;
  if (consistency == ReadConsistency::kEventual && session != 0) {
    consistency = ReadConsistency::kReadYourWrites;
  }
  const SimTime max_staleness = options.max_staleness;
  Tracer::Scope scope(&cluster_->tracer(), op);
  SendToCoordinator([view = spec.view, view_key = spec.view_key,
                     columns = options.columns, quorum, session, consistency,
                     max_staleness,
                     adapted = std::move(adapted)](Server& server) mutable {
    server.HandleClientViewGet(view, view_key, std::move(columns), quorum,
                               session, consistency, max_staleness,
                               std::move(adapted));
  });
}

void Client::QueryIndex(const QuerySpec& spec, const ReadOptions& options,
                        ReadCallback callback) {
  TraceContext op = StartOpTrace("client.index_get", options.trace);
  auto reply = ReturnToClient<ReadResult>(
      std::move(callback), &cluster_->metrics().index_get_latency, op,
      options.timeout);
  Cluster* cluster = cluster_;
  // The projection is applied HERE — at the coordinator, on the merged
  // broadcast image — never per replica, so the returned columns cannot
  // depend on which index fragments answered (QuerySpec's uniformity rule).
  auto adapted = [reply = std::move(reply), cluster,
                  columns = options.columns](
                     StatusOr<std::vector<storage::KeyedRow>> rows) {
    ReadResult result;
    if (rows.ok()) {
      result.rows = *std::move(rows);
      if (!columns.empty()) {
        for (storage::KeyedRow& kr : result.rows) {
          storage::Row projected;
          for (const ColumnName& col : columns) {
            if (auto cell = kr.row.Get(col); cell && !cell->tombstone) {
              projected.Apply(col, *cell);
            }
          }
          kr.row = std::move(projected);
        }
      }
      result.payload = ReadPayload::kRows;
      result.served_by = ServedBy::kSiPath;
      // The SI is written synchronously with each replica write and the
      // scan contacts every server, so the merged answer is current.
      result.freshness = kClientTimestampEpoch + cluster->simulation().Now();
    } else {
      result.status = rows.status();
    }
    reply(std::move(result));
  };
  Tracer::Scope scope(&cluster_->tracer(), op);
  SendToCoordinator([table = spec.table, column = spec.column,
                     value = spec.value,
                     adapted = std::move(adapted)](Server& server) mutable {
    server.HandleClientIndexGet(table, column, value, std::move(adapted));
  });
}

namespace {

/// Gathers the two sides of a join query and zips them (cross product of
/// the sides' live records, as the paper's join views expose it).
struct JoinQueryState {
  std::optional<ReadResult> left;
  std::optional<ReadResult> right;
  ReadCallback callback;

  void MaybeFinish() {
    if (!left.has_value() || !right.has_value()) return;
    ReadResult result;
    if (!left->ok()) {
      result.status = left->status;
      result.trace = left->trace;
    } else if (!right->ok()) {
      result.status = right->status;
      result.trace = right->trace;
    } else {
      result.joined.reserve(left->records.size() * right->records.size());
      for (const ViewRecord& l : left->records) {
        for (const ViewRecord& r : right->records) {
          result.joined.push_back(JoinedPair{l, r});
        }
      }
      result.payload = ReadPayload::kJoined;
      // A join is only as fresh as its staler side; both sides must have
      // come off the same path for the claim to name one.
      result.freshness = std::min(left->freshness, right->freshness);
      result.served_by = left->served_by;
      result.trace = left->trace;
    }
    callback(std::move(result));
  }
};

}  // namespace

void Client::QueryJoin(const QuerySpec& spec, const ReadOptions& options,
                       ReadCallback callback) {
  auto state = std::make_shared<JoinQueryState>();
  state->callback = std::move(callback);
  // Each side projects its own column set; ReadOptions::columns is ignored
  // for joins (the sides materialize different columns).
  ReadOptions left_options = options;
  left_options.columns = spec.left_columns;
  QueryView(QuerySpec::View(spec.view, spec.view_key), left_options,
            [state](ReadResult result) {
              state->left = std::move(result);
              state->MaybeFinish();
            });
  ReadOptions right_options = options;
  right_options.columns = spec.right_columns;
  QueryView(QuerySpec::View(spec.right_view, spec.view_key), right_options,
            [state](ReadResult result) {
              state->right = std::move(result);
              state->MaybeFinish();
            });
}

// ---------------------------------------------------------------------------
// Canonical synchronous wrappers.
// ---------------------------------------------------------------------------

namespace {

// Drives the simulation until the optional holds a value.
template <typename T>
T Await(sim::Simulation& sim, std::optional<T>& slot) {
  while (!slot.has_value() && sim.Step()) {
  }
  MVSTORE_CHECK(slot.has_value())
      << "simulation ran dry before the operation completed";
  return *std::move(slot);
}

}  // namespace

ReadResult Client::GetSync(const std::string& table, const Key& key,
                           const ReadOptions& options) {
  std::optional<ReadResult> slot;
  Get(table, key, options,
      [&slot](ReadResult result) { slot = std::move(result); });
  return Await(cluster_->simulation(), slot);
}

WriteResult Client::PutSync(const std::string& table, const Key& key,
                            const Mutation& mutation,
                            const WriteOptions& options) {
  std::optional<WriteResult> slot;
  Put(table, key, mutation, options,
      [&slot](WriteResult result) { slot = std::move(result); });
  return Await(cluster_->simulation(), slot);
}

WriteResult Client::DeleteSync(const std::string& table, const Key& key,
                               std::vector<ColumnName> columns,
                               const WriteOptions& options) {
  std::optional<WriteResult> slot;
  Delete(table, key, std::move(columns), options,
         [&slot](WriteResult result) { slot = std::move(result); });
  return Await(cluster_->simulation(), slot);
}

ReadResult Client::QuerySync(const QuerySpec& spec,
                             const ReadOptions& options) {
  std::optional<ReadResult> slot;
  Query(spec, options,
        [&slot](ReadResult result) { slot = std::move(result); });
  return Await(cluster_->simulation(), slot);
}

}  // namespace mvstore::store

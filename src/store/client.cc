#include "store/client.h"

#include <memory>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "store/cluster.h"

namespace mvstore::store {

Client::Client(Cluster* cluster, ServerId coordinator, std::uint64_t id)
    : cluster_(cluster), coordinator_(coordinator), id_(id) {}

Timestamp Client::NextTimestamp() {
  const Timestamp now = kClientTimestampEpoch + cluster_->simulation().Now();
  last_ts_ = std::max(now, last_ts_ + 1);
  return last_ts_;
}

void Client::BeginSession() { session_ = cluster_->NewSession(); }

int Client::ReadQuorum(int requested) const {
  return requested > 0 ? requested : cluster_->config().default_read_quorum;
}

int Client::WriteQuorum(int requested) const {
  return requested > 0 ? requested : cluster_->config().default_write_quorum;
}

Timestamp Client::ResolveTimestamp(Timestamp ts) {
  return ts == kNullTimestamp ? NextTimestamp() : ts;
}

void Client::SendToCoordinator(std::function<void(Server&)> fn) {
  Server* server = &cluster_->server(coordinator_);
  cluster_->network().Send(cluster_->client_endpoint(), coordinator_,
                           [server, fn = std::move(fn)] { fn(*server); });
}

namespace {

// The error delivered when a client-side request deadline expires.
template <typename ResultT>
ResultT TimeoutResult() {
  if constexpr (std::is_same_v<ResultT, Status>) {
    return Status::TimedOut("client request deadline expired");
  } else {
    return ResultT(Status::TimedOut("client request deadline expired"));
  }
}

}  // namespace

template <typename ResultT>
std::function<void(ResultT)> Client::ReturnToClient(
    std::function<void(ResultT)> callback, Histogram* latency) {
  const SimTime start = cluster_->simulation().Now();
  Cluster* cluster = cluster_;
  const ServerId coordinator = coordinator_;

  // At most one of {reply, deadline} reaches the caller.
  auto delivered = std::make_shared<bool>(false);
  auto shared_callback =
      std::make_shared<std::function<void(ResultT)>>(std::move(callback));
  if (request_timeout_ > 0) {
    cluster->simulation().After(
        request_timeout_, [delivered, shared_callback] {
          if (*delivered) return;
          *delivered = true;
          (*shared_callback)(TimeoutResult<ResultT>());
        });
  }
  return [cluster, coordinator, start, latency, delivered,
          shared_callback](ResultT result) mutable {
    cluster->network().Send(
        coordinator, cluster->client_endpoint(),
        [cluster, start, latency, delivered, shared_callback,
         result = std::move(result)]() mutable {
          if (*delivered) return;  // deadline already fired
          *delivered = true;
          if (latency != nullptr) {
            latency->Record(cluster->simulation().Now() - start);
          }
          (*shared_callback)(std::move(result));
        });
  };
}

void Client::Get(const std::string& table, const Key& key,
                 std::vector<ColumnName> columns,
                 std::function<void(StatusOr<storage::Row>)> callback,
                 int read_quorum) {
  auto reply = ReturnToClient<StatusOr<storage::Row>>(
      std::move(callback), &cluster_->metrics().get_latency);
  const int quorum = ReadQuorum(read_quorum);
  SendToCoordinator([table, key, columns = std::move(columns), quorum,
                     reply = std::move(reply)](Server& server) mutable {
    server.HandleClientGet(table, key, std::move(columns), quorum,
                           std::move(reply));
  });
}

void Client::Put(const std::string& table, const Key& key,
                 const Mutation& mutation, std::function<void(Status)> callback,
                 int write_quorum, Timestamp ts) {
  auto reply = ReturnToClient<Status>(std::move(callback),
                                      &cluster_->metrics().put_latency);
  const int quorum = WriteQuorum(write_quorum);
  const Timestamp resolved = ResolveTimestamp(ts);
  const SessionId session = session_;
  SendToCoordinator([table, key, mutation, resolved, quorum, session,
                     reply = std::move(reply)](Server& server) mutable {
    server.HandleClientPut(table, key, mutation, resolved, quorum, session,
                           std::move(reply));
  });
}

void Client::Delete(const std::string& table, const Key& key,
                    std::vector<ColumnName> columns,
                    std::function<void(Status)> callback, int write_quorum,
                    Timestamp ts) {
  Mutation mutation;
  for (ColumnName& col : columns) {
    mutation.emplace(std::move(col), std::nullopt);
  }
  Put(table, key, mutation, std::move(callback), write_quorum, ts);
}

void Client::ViewGet(
    const std::string& view, const Key& view_key,
    std::vector<ColumnName> columns,
    std::function<void(StatusOr<std::vector<ViewRecord>>)> callback,
    int read_quorum) {
  auto reply = ReturnToClient<StatusOr<std::vector<ViewRecord>>>(
      std::move(callback), &cluster_->metrics().view_get_latency);
  const int quorum = ReadQuorum(read_quorum);
  const SessionId session = session_;
  SendToCoordinator([view, view_key, columns = std::move(columns), quorum,
                     session, reply = std::move(reply)](Server& server) mutable {
    server.HandleClientViewGet(view, view_key, std::move(columns), quorum,
                               session, std::move(reply));
  });
}

void Client::IndexGet(
    const std::string& table, const ColumnName& column, const Value& value,
    std::function<void(StatusOr<std::vector<storage::KeyedRow>>)> callback) {
  auto reply = ReturnToClient<StatusOr<std::vector<storage::KeyedRow>>>(
      std::move(callback), &cluster_->metrics().index_get_latency);
  SendToCoordinator([table, column, value,
                     reply = std::move(reply)](Server& server) mutable {
    server.HandleClientIndexGet(table, column, value, std::move(reply));
  });
}

namespace {

// Drives the simulation until the optional holds a value.
template <typename T>
T Await(sim::Simulation& sim, std::optional<T>& slot) {
  while (!slot.has_value() && sim.Step()) {
  }
  MVSTORE_CHECK(slot.has_value())
      << "simulation ran dry before the operation completed";
  return *std::move(slot);
}

}  // namespace

StatusOr<storage::Row> Client::GetSync(const std::string& table,
                                       const Key& key,
                                       std::vector<ColumnName> columns,
                                       int read_quorum) {
  std::optional<StatusOr<storage::Row>> slot;
  Get(table, key, std::move(columns),
      [&slot](StatusOr<storage::Row> result) { slot = std::move(result); },
      read_quorum);
  return Await(cluster_->simulation(), slot);
}

Status Client::PutSync(const std::string& table, const Key& key,
                       const Mutation& mutation, int write_quorum,
                       Timestamp ts) {
  std::optional<Status> slot;
  Put(table, key, mutation, [&slot](Status status) { slot = status; },
      write_quorum, ts);
  return Await(cluster_->simulation(), slot);
}

Status Client::DeleteSync(const std::string& table, const Key& key,
                          std::vector<ColumnName> columns, int write_quorum,
                          Timestamp ts) {
  std::optional<Status> slot;
  Delete(table, key, std::move(columns),
         [&slot](Status status) { slot = status; }, write_quorum, ts);
  return Await(cluster_->simulation(), slot);
}

StatusOr<std::vector<ViewRecord>> Client::ViewGetSync(
    const std::string& view, const Key& view_key,
    std::vector<ColumnName> columns, int read_quorum) {
  std::optional<StatusOr<std::vector<ViewRecord>>> slot;
  ViewGet(view, view_key, std::move(columns),
          [&slot](StatusOr<std::vector<ViewRecord>> result) {
            slot = std::move(result);
          },
          read_quorum);
  return Await(cluster_->simulation(), slot);
}

StatusOr<std::vector<storage::KeyedRow>> Client::IndexGetSync(
    const std::string& table, const ColumnName& column, const Value& value) {
  std::optional<StatusOr<std::vector<storage::KeyedRow>>> slot;
  IndexGet(table, column, value,
           [&slot](StatusOr<std::vector<storage::KeyedRow>> result) {
             slot = std::move(result);
           });
  return Await(cluster_->simulation(), slot);
}

}  // namespace mvstore::store

// Catalog: tables, native secondary indexes, and view definitions.
//
// The schema is static cluster metadata shared by all servers (the paper
// does not study online DDL; views are "defined" before the workload runs).
// View *definitions* live here because the store's coordinator must know,
// for every base-table Put, which views are affected and which columns are
// view keys; the maintenance *algorithms* live in src/view/.

#ifndef MVSTORE_STORE_SCHEMA_H_
#define MVSTORE_STORE_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"

namespace mvstore::store {

// Bookkeeping columns of versioned-view rows (Definition 3 plus the
// concurrency additions of Section IV-F). Application columns never clash
// with these names because of the "__" prefix, which CreateView rejects in
// user column names.
inline constexpr char kViewBaseKeyColumn[] = "__B";  ///< Definition 3's B
inline constexpr char kViewNextColumn[] = "__next";  ///< stale-chain pointer
inline constexpr char kViewInitColumn[] = "__init";  ///< accessibility marker
inline constexpr char kViewSelectionColumn[] = "__ds";    ///< selection failed

struct TableDef {
  std::string name;
  /// Composite-key tables (view backing tables) are partitioned by the first
  /// key component instead of the whole key (see store/codec.h).
  bool composite_keys = false;
  /// True for view backing tables: client Puts are rejected (views are not
  /// updateable, Section III) and client Gets go through the view read path.
  bool is_view_backing = false;
};

struct IndexDef {
  std::string table;
  ColumnName column;
};

/// Optional relational selection on a view (the extension Section III calls
/// easy): a base row contributes to the view only while `column == equals`.
/// `column` must be the view-key column or a view-materialized column, so
/// that every propagated update carries enough information to decide
/// membership.
struct SelectionDef {
  ColumnName column;
  Value equals;
};

/// Aggregation function of an aggregate view (ISSUE 10). The view's rows
/// keep one per-base-key *sub-aggregate* cell each — the contribution of
/// that base row — merged LWW like any other materialized cell, so
/// duplicated or reordered propagation deltas converge without coordination
/// (the same row-count-fold idea that fixed the PR 4 anti-entropy digests:
/// store order-insensitive per-element state, fold at read time). The
/// coordinator folds the partition scan into the single aggregate record.
enum class AggregateFn {
  kNone,   ///< not an aggregate view (plain projection)
  kCount,  ///< COUNT(*): number of base rows under the view key
  kSum,    ///< SUM(column) over parseable integer cells
  kMin,    ///< MIN(column) over parseable integer cells
  kMax,    ///< MAX(column) over parseable integer cells
};

/// Printable name of the function ("count", "sum", ...).
const char* AggregateFnName(AggregateFn fn);

/// Definition 1: a view over `base_table`, keyed by the value of
/// `view_key_column`, carrying `materialized_columns` copies.
struct ViewDef {
  std::string name;  // also the backing table's name
  std::string base_table;
  ColumnName view_key_column;
  std::vector<ColumnName> materialized_columns;
  std::optional<SelectionDef> selection;

  /// Sub-shards per view-key partition (ISSUE 9). 1 = the classic layout:
  /// every row of a view key on one replica set, byte-identical keys. > 1
  /// splits each view-key partition into `shard_count` ring partitions
  /// (shard chosen by base-key hash, see store/codec.h) so hot view keys
  /// spread their read load; ViewGets then scatter-gather over the shards.
  int shard_count = 1;

  /// Aggregate views (ISSUE 10): kNone = plain projection. For kSum/kMin/
  /// kMax, `aggregate_column` names the aggregated base column and is the
  /// view's only materialized column (the per-base-key sub-aggregate cell);
  /// kCount needs no column — membership of the base key under the view key
  /// IS the sub-aggregate. Maintenance is byte-identical to projection
  /// views; only the read path folds.
  AggregateFn aggregate = AggregateFn::kNone;
  ColumnName aggregate_column;

  bool IsAggregate() const { return aggregate != AggregateFn::kNone; }
  /// The column name the folded aggregate record carries, e.g. "count(*)"
  /// or "sum(qty)". Empty for non-aggregate views.
  ColumnName AggregateOutputColumn() const;

  /// True if a Put touching `column` requires maintenance of this view.
  bool Affects(const ColumnName& column) const;
  bool IsMaterialized(const ColumnName& column) const;
};

/// Fluent construction for ViewDef — the supported way to define views
/// (positional aggregate initialization breaks every time ViewDef grows a
/// field). Build() validates what can be checked without the catalog;
/// Schema::CreateView re-validates against existing tables.
///
///   auto def = ViewDefBuilder("by_country")
///                  .Base("users").Key("country")
///                  .Materialize("name").Materialize("email")
///                  .Select("status", "active")
///                  .Shards(8)
///                  .Build();
///
/// Aggregate views name a fold instead of projected columns:
///
///   auto cnt = ViewDefBuilder("orders_per_cust")
///                  .Base("orders").Key("cust")
///                  .Aggregate(AggregateFn::kCount)
///                  .Build();
///   auto sum = ViewDefBuilder("qty_per_cust")
///                  .Base("orders").Key("cust")
///                  .Aggregate(AggregateFn::kSum, "qty")
///                  .Build();
class ViewDefBuilder {
 public:
  explicit ViewDefBuilder(std::string name);

  ViewDefBuilder& Base(std::string base_table);
  ViewDefBuilder& Key(ColumnName view_key_column);
  /// Appends one materialized column; call repeatedly.
  ViewDefBuilder& Materialize(ColumnName column);
  ViewDefBuilder& Materialize(std::vector<ColumnName> columns);
  ViewDefBuilder& Select(ColumnName column, Value equals);
  ViewDefBuilder& Shards(int shard_count);
  /// Declares the view an aggregate (ISSUE 10): kCount takes no column,
  /// kSum/kMin/kMax aggregate `column`. Mutually exclusive with explicit
  /// Materialize() calls — Build() materializes the aggregate column itself
  /// so the projection machinery (maintenance, bootstrap, scrub) carries the
  /// per-base-key sub-aggregate cells unchanged.
  ViewDefBuilder& Aggregate(AggregateFn fn, ColumnName column = ColumnName());

  /// Validates and returns the definition: non-empty name/base/key, no
  /// "__"-prefixed (reserved) columns, 1 <= shard_count <= kMaxViewShards,
  /// and the aggregate rules documented on Aggregate().
  StatusOr<ViewDef> Build() const;

 private:
  ViewDef def_;
};

class Schema {
 public:
  Status CreateTable(TableDef def);
  Status CreateIndex(IndexDef def);
  Status CreateView(ViewDef def);

  const TableDef* GetTable(const std::string& name) const;
  const ViewDef* GetView(const std::string& name) const;

  /// Indexes defined on `table` (native secondary indexes).
  std::vector<IndexDef> IndexesOn(const std::string& table) const;
  const IndexDef* FindIndex(const std::string& table,
                            const ColumnName& column) const;

  /// Views whose base table is `table`.
  std::vector<const ViewDef*> ViewsOn(const std::string& table) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableDef> tables_;
  std::vector<IndexDef> indexes_;
  std::map<std::string, ViewDef> views_;
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_SCHEMA_H_

// Consistent-hash ring for record placement.
//
// Each server contributes `vnodes_per_server` virtual nodes at pseudo-random
// tokens; a partition key hashes to a token and its N replicas are the next
// N DISTINCT servers clockwise. This is the Dynamo/Cassandra placement the
// paper assumes ("placement of a record's copies is determined by its key
// value"); the exact policy is orthogonal to view maintenance, but a real
// ring gives realistic per-server load spread for the throughput figures.
//
// Membership is dynamic: AddServer / RemoveServer re-assign tokens at
// runtime and report the key ranges whose replica sets changed, so the
// cluster can stream exactly the affected data. Each server draws its
// tokens from its own seed-derived stream, which makes the ring a pure
// function of (seed, member set): an incrementally grown ring is
// token-for-token identical to one built from scratch with the same
// members.

#ifndef MVSTORE_STORE_RING_H_
#define MVSTORE_STORE_RING_H_

#include <cstdint>
#include <set>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace mvstore::store {

class Ring {
 public:
  /// A half-open arc of the token circle: tokens t with
  /// begin < t <= end, wrapping through 0 when end <= begin. A range with
  /// begin == end covers the whole circle (single-vnode rings).
  struct TokenRange {
    std::uint64_t begin;
    std::uint64_t end;

    bool Covers(std::uint64_t token) const {
      if (begin < end) return token > begin && token <= end;
      return token > begin || token <= end;
    }
    bool operator==(const TokenRange& o) const {
      return begin == o.begin && end == o.end;
    }
  };

  /// One range whose replica set changed, plus the peers involved in moving
  /// it: for AddServer the existing replicas the joiner can stream from, for
  /// RemoveServer the servers that newly gained the range and must receive
  /// the leaver's copy.
  struct RangeTransfer {
    TokenRange range;
    std::vector<ServerId> peers;
  };

  /// Builds the ring deterministically from the seed with members
  /// {0, ..., num_servers-1}.
  Ring(int num_servers, int vnodes_per_server, std::uint64_t seed);

  /// Adds `server`'s vnodes to the ring. Returns the ranges the new server
  /// now replicates (at replication factor `n`), each with the other current
  /// replicas as streaming sources. Requires `server` not be a member.
  std::vector<RangeTransfer> AddServer(ServerId server, int n);

  /// Removes `server`'s vnodes. Returns the ranges `server` replicated
  /// before removal, each with the servers that newly gained the range (may
  /// be empty when the remaining members already covered it). Requires
  /// `server` be a member and at least one member remain.
  std::vector<RangeTransfer> RemoveServer(ServerId server, int n);

  /// The `n` distinct servers responsible for `partition_key`, in preference
  /// order. Requires n <= num_servers. Takes a view so callers routing on a
  /// slice of a composed key need not materialize it.
  std::vector<ServerId> ReplicasFor(std::string_view partition_key,
                                    int n) const;

  /// First replica (used to pick dedicated propagators).
  ServerId PrimaryFor(std::string_view partition_key) const;

  /// The ranges `server` replicates at replication factor `n` in the
  /// current ring (adjacent segments merged).
  std::vector<TokenRange> RangesReplicatedOn(ServerId server, int n) const;

  /// The token a partition key hashes to (for range membership checks).
  static std::uint64_t TokenOf(std::string_view partition_key);

  /// Monotone counter bumped by every membership change. Placement caches
  /// key their validity on it: same version, same ReplicasFor answers.
  std::uint64_t version() const { return version_; }

  bool IsMember(ServerId server) const {
    return members_.count(server) != 0;
  }
  const std::set<ServerId>& members() const { return members_; }

  /// Number of current members.
  int num_servers() const { return static_cast<int>(members_.size()); }

 private:
  struct VNode {
    std::uint64_t token;
    ServerId server;
  };

  /// The deterministic vnode tokens of `server` (independent of membership).
  std::vector<VNode> TokensFor(ServerId server) const;

  /// Distinct-server walk starting at vnode index `start`, i.e. the replica
  /// set of keys mapping to that vnode. With `exclude` >= 0 that server's
  /// vnodes are skipped, which reconstructs the walk of the ring as it was
  /// before `exclude` joined (per-server token streams make the two rings
  /// identical apart from those vnodes).
  std::vector<ServerId> WalkFrom(std::size_t start, int n,
                                 ServerId exclude = -1) const;

  /// Per-segment scan: invokes `fn(range, replicas)` for every arc between
  /// consecutive vnodes (segment i covers (token[i-1], token[i]]).
  template <typename Fn>
  void ForEachSegment(int n, Fn fn) const;

  int vnodes_per_server_;
  std::uint64_t seed_;
  std::uint64_t version_ = 0;
  std::set<ServerId> members_;
  std::vector<VNode> vnodes_;  // sorted by token
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_RING_H_

// Consistent-hash ring for record placement.
//
// Each server contributes `vnodes_per_server` virtual nodes at pseudo-random
// tokens; a partition key hashes to a token and its N replicas are the next
// N DISTINCT servers clockwise. This is the Dynamo/Cassandra placement the
// paper assumes ("placement of a record's copies is determined by its key
// value"); the exact policy is orthogonal to view maintenance, but a real
// ring gives realistic per-server load spread for the throughput figures.

#ifndef MVSTORE_STORE_RING_H_
#define MVSTORE_STORE_RING_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mvstore::store {

class Ring {
 public:
  /// Builds the ring deterministically from the seed.
  Ring(int num_servers, int vnodes_per_server, std::uint64_t seed);

  /// The `n` distinct servers responsible for `partition_key`, in preference
  /// order. Requires n <= num_servers.
  std::vector<ServerId> ReplicasFor(const Key& partition_key, int n) const;

  /// First replica (used to pick dedicated propagators).
  ServerId PrimaryFor(const Key& partition_key) const;

  int num_servers() const { return num_servers_; }

 private:
  struct VNode {
    std::uint64_t token;
    ServerId server;
  };

  int num_servers_;
  std::vector<VNode> vnodes_;  // sorted by token
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_RING_H_

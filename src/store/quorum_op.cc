#include "store/quorum_op.h"

#include <utility>

#include "common/logging.h"
#include "store/server.h"

namespace mvstore::store {

template <typename Response>
QuorumOp<Response>::QuorumOp(Server* coord, Spec spec)
    : coord_(coord), spec_(std::move(spec)) {
  responses_.resize(spec_.targets.size());
}

template <typename Response>
typename QuorumOp<Response>::Ptr QuorumOp<Response>::Start(Server* coord,
                                                           Spec spec) {
  MVSTORE_CHECK(spec.on_quorum && spec.on_error)
      << "quorum op '" << spec.name << "' missing a reply policy";
  MVSTORE_CHECK_LE(spec.quorum, static_cast<int>(spec.targets.size()));
  Ptr op(new QuorumOp<Response>(coord, std::move(spec)));
  op->Launch();
  return op;
}

template <typename Response>
void QuorumOp<Response>::Launch() {
  Tracer* tracer = coord_->tracer();
  if (tracer != nullptr && tracer->current()) {
    trace_ = tracer->StartSpan(tracer->current(), "quorum." + spec_.name,
                               static_cast<int>(coord_->id()),
                               coord_->simulation()->Now());
  }
  auto self = this->shared_from_this();
  op_id_ = coord_->RegisterInflightOp(
      [self] { self->Abort(); },
      [self](ServerId departed) { self->Retarget(departed); });
  // Fan out under the op's span so every request hop nests beneath it.
  Tracer::Scope scope(tracer, trace_);
  for (std::size_t i = 0; i < spec_.targets.size(); ++i) {
    SendTo(i);
    ArmReplicaRetry(i, /*attempt=*/1);
  }
  timeout_ = coord_->simulation()->AfterCancelable(
      coord_->config().rpc_timeout, [self] { self->Finalize(); });
}

template <typename Response>
void QuorumOp<Response>::SendTo(std::size_t slot) {
  auto self = this->shared_from_this();
  auto on_reply = [self, slot](Response response) {
    self->OnResponse(slot, std::move(response));
  };
  if (spec_.send) {
    spec_.send(*coord_, spec_.targets[slot], std::move(on_reply));
    return;
  }
  if (spec_.service_at) {
    coord_->CallPeerDynamic<Response>(spec_.targets[slot], spec_.service_at,
                                      spec_.request, std::move(on_reply));
    return;
  }
  coord_->CallPeer<Response>(spec_.targets[slot], spec_.service,
                             spec_.request, std::move(on_reply));
}

template <typename Response>
void QuorumOp<Response>::ArmReplicaRetry(std::size_t slot, int attempt) {
  const ClusterConfig& config = coord_->config();
  if (attempt > config.replica_retry_max || config.replica_retry_timeout <= 0) {
    return;
  }
  const SimTime silence =
      config.replica_retry_timeout +
      config.replica_retry_backoff * static_cast<SimTime>(attempt - 1);
  auto self = this->shared_from_this();
  coord_->simulation()->After(silence, [self, slot, attempt] {
    if (self->finalized_ || self->responses_[slot]) return;
    // The target has been silent past the retry window: re-send (the
    // request is idempotent — LWW applies absorb duplicates and the slot
    // dedupe below absorbs a duplicate reply) and back off the next probe.
    self->coord_->metrics()->coordinator_retries++;
    if (self->trace_) {
      self->coord_->tracer()->Annotate(
          self->trace_, "retry #" + std::to_string(attempt) + " -> " +
                            std::to_string(self->spec_.targets[slot]));
    }
    Tracer::Scope scope(self->coord_->tracer(), self->trace_);
    self->SendTo(slot);
    self->ArmReplicaRetry(slot, attempt + 1);
  });
}

template <typename Response>
void QuorumOp<Response>::OnResponse(std::size_t slot, Response response) {
  if (finalized_) return;
  if (responses_[slot]) return;  // duplicate reply for this slot
  responses_[slot] = std::move(response);
  ++num_responses_;
  if (!replied_ && num_responses_ >= spec_.quorum) {
    replied_ = true;
    spec_.on_quorum(*this);
  }
  if (num_responses_ == static_cast<int>(spec_.targets.size())) Finalize();
}

template <typename Response>
void QuorumOp<Response>::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  coord_->DeregisterInflightOp(op_id_);
  timeout_.Cancel();
  Tracer::Scope scope(coord_->tracer(), trace_);
  if (!replied_) {
    replied_ = true;
    coord_->metrics()->quorum_failures++;
    spec_.on_error(*this, Status::Unavailable(spec_.quorum_error));
  }
  Settle(/*aborted=*/false);
  if (trace_) {
    coord_->tracer()->EndSpan(trace_, coord_->simulation()->Now());
  }
}

template <typename Response>
void QuorumOp<Response>::Abort() {
  if (finalized_) return;
  finalized_ = true;
  timeout_.Cancel();
  Tracer::Scope scope(coord_->tracer(), trace_);
  if (!replied_) {
    replied_ = true;
    spec_.on_error(*this, Status::Unavailable("coordinator crashed"));
  }
  Settle(/*aborted=*/true);
  if (trace_) {
    coord_->tracer()->Annotate(trace_, "aborted by crash");
    coord_->tracer()->EndSpan(trace_, coord_->simulation()->Now());
  }
}

template <typename Response>
void QuorumOp<Response>::Retarget(ServerId departed) {
  if (finalized_) return;
  if (spec_.hint_table.empty()) return;
  for (std::size_t slot = 0; slot < spec_.targets.size(); ++slot) {
    if (spec_.targets[slot] != departed || responses_[slot]) continue;
    // Move the slot onto a current replica no other slot already covers.
    ServerId replacement = 0;
    bool found = false;
    for (ServerId r :
         coord_->ReplicasOf(spec_.hint_table, spec_.hint_key)) {
      bool taken = false;
      for (std::size_t j = 0; j < spec_.targets.size(); ++j) {
        if (j != slot && spec_.targets[j] == r) {
          taken = true;
          break;
        }
      }
      if (!taken) {
        replacement = r;
        found = true;
        break;
      }
    }
    if (!found) continue;  // every current replica already targeted
    spec_.targets[slot] = replacement;
    coord_->metrics()->member_ops_retargeted++;
    if (trace_) {
      coord_->tracer()->Annotate(
          trace_, "retarget " + std::to_string(departed) + " -> " +
                      std::to_string(replacement));
    }
    Tracer::Scope scope(coord_->tracer(), trace_);
    SendTo(slot);
  }
}

template <typename Response>
void QuorumOp<Response>::Settle(bool aborted) {
  // Hinted handoff: every target that never answered gets a hint at this
  // coordinator, replayed until it acks (the write may or may not have
  // landed; re-applying is idempotent under LWW). A crashed coordinator
  // stores none — its hints would die with the process anyway.
  if (!aborted && !spec_.hint_table.empty() &&
      coord_->config().hint_replay_interval > 0) {
    for (std::size_t i = 0; i < spec_.targets.size(); ++i) {
      if (!responses_[i]) {
        coord_->StoreHint(spec_.targets[i], spec_.hint_table, spec_.hint_key,
                          spec_.hint_cells);
      }
    }
  }
  if (spec_.on_settled) spec_.on_settled(*this, aborted);
}

template class QuorumOp<storage::Row>;
template class QuorumOp<bool>;
template class QuorumOp<std::vector<storage::KeyedRow>>;

}  // namespace mvstore::store

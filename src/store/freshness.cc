#include "store/freshness.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "store/codec.h"
#include "store/metrics.h"

namespace mvstore::store {

FreshnessTracker::FreshnessTracker(Metrics* metrics) : metrics_(metrics) {}

// ---------------------------------------------------------------------------
// Intent lifecycle.
// ---------------------------------------------------------------------------

std::uint64_t FreshnessTracker::RegisterIntent(const std::string& view,
                                               const Key& base_key,
                                               Timestamp ts, SessionId session,
                                               ServerId origin) {
  const std::uint64_t id = ++next_intent_;
  Intent intent;
  intent.view = view;
  intent.base_key = base_key;
  intent.ts = ts;
  intent.session = session;
  intent.origin = origin;
  intents_.emplace(id, std::move(intent));
  by_view_[view].insert(id);
  if (metrics_ != nullptr) metrics_->freshness_intents_registered++;
  SessionStarted(origin, session, view);
  return id;
}

void FreshnessTracker::ResolvePartitions(std::uint64_t intent,
                                         std::set<Key> partitions) {
  if (intent == 0 || partitions.empty()) return;
  auto it = intents_.find(intent);
  if (it == intents_.end()) return;
  it->second.partitions = std::move(partitions);
}

void FreshnessTracker::SettleSession(Intent& intent) {
  if (intent.session_settled) return;
  intent.session_settled = true;
  SessionFinished(intent.origin, intent.session, intent.view);
}

void FreshnessTracker::EraseIntent(
    std::map<std::uint64_t, Intent>::iterator it) {
  auto view_it = by_view_.find(it->second.view);
  if (view_it != by_view_.end()) {
    view_it->second.erase(it->first);
    if (view_it->second.empty()) by_view_.erase(view_it);
  }
  intents_.erase(it);
}

void FreshnessTracker::Discard(std::uint64_t intent) {
  if (intent == 0) return;
  auto it = intents_.find(intent);
  if (it == intents_.end()) return;
  SettleSession(it->second);
  const std::string view = it->second.view;
  EraseIntent(it);
  FireImprovement(view);
}

void FreshnessTracker::MarkApplied(std::uint64_t intent) {
  if (intent == 0) return;
  auto it = intents_.find(intent);
  if (it == intents_.end()) return;
  Intent& record = it->second;
  for (const Key& partition : record.partitions) {
    auto [hw, inserted] = applied_high_water_.try_emplace(
        std::make_pair(record.view, partition), record.ts);
    if (!inserted) hw->second = std::max(hw->second, record.ts);
  }
  SettleSession(record);
  const std::string view = record.view;
  EraseIntent(it);
  FireImprovement(view);
}

void FreshnessTracker::MarkWounded(std::uint64_t intent) {
  if (intent == 0) return;
  auto it = intents_.find(intent);
  if (it == intents_.end() || it->second.wounded) return;
  it->second.wounded = true;
  if (metrics_ != nullptr) metrics_->freshness_intents_wounded++;
  SettleSession(it->second);
}

std::size_t FreshnessTracker::FamilyAudited(const std::string& view,
                                            const Key& base_key) {
  auto view_it = by_view_.find(view);
  if (view_it == by_view_.end()) return 0;
  std::vector<std::uint64_t> matched;
  for (std::uint64_t id : view_it->second) {
    if (intents_.at(id).base_key == base_key) matched.push_back(id);
  }
  for (std::uint64_t id : matched) {
    auto it = intents_.find(id);
    if (it->second.wounded && metrics_ != nullptr) {
      metrics_->freshness_wounds_cleared++;
    }
    SettleSession(it->second);
    EraseIntent(it);
  }
  if (!matched.empty()) FireImprovement(view);
  return matched.size();
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

Timestamp FreshnessTracker::FreshAsOf(const std::string& view,
                                      const Key& partition,
                                      Timestamp now_ts) const {
  Timestamp fresh = now_ts;
  auto view_it = by_view_.find(view);
  if (view_it == by_view_.end()) return fresh;
  for (std::uint64_t id : view_it->second) {
    const Intent& intent = intents_.at(id);
    if (!Covers(intent, partition)) continue;
    fresh = std::min(fresh, intent.ts - 1);
  }
  return fresh;
}

Timestamp FreshnessTracker::FreshAsOfShard(const std::string& view,
                                           const Key& partition, int shard,
                                           int shard_count,
                                           Timestamp now_ts) const {
  if (shard_count <= 1) return FreshAsOf(view, partition, now_ts);
  Timestamp fresh = now_ts;
  auto view_it = by_view_.find(view);
  if (view_it == by_view_.end()) return fresh;
  for (std::uint64_t id : view_it->second) {
    const Intent& intent = intents_.at(id);
    if (!Covers(intent, partition)) continue;
    if (ShardOfBaseKey(intent.base_key, shard_count) != shard) continue;
    fresh = std::min(fresh, intent.ts - 1);
  }
  return fresh;
}

FreshnessTracker::BlockerSummary FreshnessTracker::BlockersBefore(
    const std::string& view, const Key& partition, Timestamp need) const {
  BlockerSummary summary;
  auto view_it = by_view_.find(view);
  if (view_it == by_view_.end()) return summary;
  for (std::uint64_t id : view_it->second) {
    const Intent& intent = intents_.at(id);
    if (!Covers(intent, partition)) continue;
    if (intent.ts > need) continue;  // within the allowed staleness window
    if (intent.wounded) {
      summary.wounded++;
      summary.wounded_keys.push_back(intent.base_key);
    } else {
      summary.live++;
    }
  }
  return summary;
}

Timestamp FreshnessTracker::AppliedHighWater(const std::string& view,
                                             const Key& partition) const {
  auto it = applied_high_water_.find({view, partition});
  return it == applied_high_water_.end() ? kNullTimestamp : it->second;
}

void FreshnessTracker::NotifyOnImprovement(const std::string& view,
                                           std::function<void()> callback) {
  improvement_[view].push_back(std::move(callback));
}

void FreshnessTracker::FireImprovement(const std::string& view) {
  auto it = improvement_.find(view);
  if (it == improvement_.end()) return;
  std::vector<std::function<void()>> callbacks = std::move(it->second);
  improvement_.erase(it);
  for (auto& callback : callbacks) callback();
}

void FreshnessTracker::RecordLag(const std::string& view, SimTime lag,
                                 double alpha) {
  LagEwma& ewma = lag_[view];
  if (!ewma.primed) {
    ewma.value = static_cast<double>(lag);
    ewma.primed = true;
    return;
  }
  ewma.value = alpha * static_cast<double>(lag) + (1.0 - alpha) * ewma.value;
}

SimTime FreshnessTracker::LagEstimate(const std::string& view) const {
  auto it = lag_.find(view);
  if (it == lag_.end() || !it->second.primed) return -1;
  return static_cast<SimTime>(it->second.value);
}

// ---------------------------------------------------------------------------
// Session layer (Section V).
// ---------------------------------------------------------------------------

void FreshnessTracker::SessionStarted(ServerId origin, SessionId session,
                                      const std::string& view) {
  if (session == 0) return;
  session_pending_[{origin, session, view}]++;
}

void FreshnessTracker::SessionFinished(ServerId origin, SessionId session,
                                       const std::string& view) {
  if (session == 0) return;
  const SessionKey key{origin, session, view};
  auto it = session_pending_.find(key);
  // A finish with no matching start is possible under the crash model: the
  // coordinator crashed (resetting its session bookkeeping) and a completion
  // notice for a pre-crash propagation arrived afterwards.
  if (it == session_pending_.end()) return;
  if (--it->second > 0) return;
  session_pending_.erase(it);
  auto waiting = session_waiting_.find(key);
  if (waiting == session_waiting_.end()) return;
  std::vector<std::function<void()>> resumes = std::move(waiting->second);
  session_waiting_.erase(waiting);
  for (auto& resume : resumes) resume();
}

bool FreshnessTracker::SessionMustDefer(ServerId origin, SessionId session,
                                        const std::string& view) const {
  if (session == 0) return false;
  return session_pending_.count({origin, session, view}) != 0;
}

void FreshnessTracker::SessionDefer(ServerId origin, SessionId session,
                                    const std::string& view,
                                    std::function<void()> resume) {
  MVSTORE_CHECK(SessionMustDefer(origin, session, view));
  ++session_deferred_[origin];
  session_waiting_[{origin, session, view}].push_back(std::move(resume));
}

void FreshnessTracker::ResetSessions(ServerId origin) {
  auto drop = [origin](auto& map) {
    for (auto it = map.begin(); it != map.end();) {
      if (std::get<0>(it->first) == origin) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
  };
  drop(session_pending_);
  drop(session_waiting_);
}

std::uint64_t FreshnessTracker::deferred_total(ServerId origin) const {
  auto it = session_deferred_.find(origin);
  return it == session_deferred_.end() ? 0 : it->second;
}

}  // namespace mvstore::store

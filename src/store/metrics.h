// Cluster-wide observability counters and latency recorders.
//
// One Metrics instance per Cluster; servers and the view-maintenance engine
// increment counters as they work. Benches and tests read them to verify
// behaviour ("propagation retried", "read repair fired") without poking at
// internals.
//
// Every instrument lives in the embedded MetricsRegistry under the name of
// the member that exposes it; the members are registry-owned references, so
// the historical `metrics.foo++` call sites and test reads keep compiling
// while Snapshot()/ToJson() see every instrument. Two same-seed runs export
// byte-identical JSON.

#ifndef MVSTORE_STORE_METRICS_H_
#define MVSTORE_STORE_METRICS_H_

#include "common/metrics_registry.h"

namespace mvstore::store {

struct Metrics {
  Metrics();
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Owns every instrument below (plus any registered by extensions).
  MetricsRegistry registry;
  /// Per-interval deltas, sampled by the Cluster when
  /// `metrics_sample_interval` > 0.
  MetricsTimeSeries time_series;

  // Client-visible operations.
  Counter& client_gets;
  Counter& client_puts;
  Counter& client_view_gets;
  Counter& client_index_gets;

  // Replication internals.
  Counter& replica_reads;
  Counter& replica_writes;
  Counter& read_repairs;
  Counter& quorum_failures;
  Counter& coordinator_retries;  ///< silent-replica re-sends inside an op
  Counter& replica_write_batches;  ///< batched replica-write flushes shipped
  Counter& anti_entropy_rows_pushed;
  Counter& anti_entropy_digest_exchanges;
  Counter& anti_entropy_buckets_synced;
  Counter& hints_stored;
  Counter& hints_replayed;
  Counter& hints_dropped;

  // Native secondary indexes.
  Counter& index_updates;
  Counter& index_fragment_probes;

  // View maintenance (Section IV).
  Counter& propagations_started;
  Counter& propagations_completed;
  Counter& propagation_failures;   ///< GetLiveKey miss -> new guess
  Counter& stale_rows_created;
  Counter& live_row_switches;
  Counter& chain_hops;             ///< Next-pointer follows
  Counter& lock_waits;
  Counter& propagations_abandoned; ///< retry budget exhausted
  Counter& prop_batched;           ///< tasks coalesced into an earlier round
  Counter& view_get_deferrals;     ///< session guarantee blocks
  Counter& view_get_spins;         ///< waits on initializing rows
  Counter& stale_rows_filtered;    ///< non-live rows skipped by reads
  Counter& view_scatter_scans;     ///< sharded ViewGets fanned out (ISSUE 9)
  Counter& view_scatter_partial;   ///< kEventual scatter reads served with
                                   ///< one or more sub-shards missing
  Counter& prop_multi_view_groups; ///< base updates fanning one maintenance
                                   ///< round to >1 dependent view (ISSUE 10)
  Counter& view_aggregate_folds;   ///< aggregate reads folded at coordinator
  Counter& view_aggregate_fold_skipped;  ///< records dropped by a fold
                                         ///< (missing/unparsable cells)

  // Read-path performance layer (ISSUE 5): row cache, pruning, and the
  // clock-driven tombstone GC.
  Counter& row_cache_hits;        ///< replica reads answered from the cache
  Counter& row_cache_misses;      ///< cache probed but row not present
  Counter& compactions_run;       ///< clock-driven compaction rounds executed
  Counter& tombstones_purged;     ///< tombstone cells dropped past grace
  Counter& tombstone_purge_deferred;  ///< kept past grace: a hint still owes
                                      ///< the delete to some replica

  // Crash-stop fault model (ISSUE 1): crashes, recovery, and the state the
  // cluster salvages afterwards.
  Counter& server_crashes;
  Counter& server_restarts;
  Counter& wal_cells_replayed;      ///< commit-log cells re-applied
  Counter& locks_expired;           ///< lease TTL reclaimed a hold
  Counter& inflight_ops_aborted;    ///< coordinator ops killed by crash
  Counter& propagations_orphaned;   ///< tasks lost with a coordinator
  Counter& orphaned_propagations_recovered;  ///< healed by re-scrub

  // Elastic membership (ISSUE 6): joins, decommissions, and the range
  // streams / fixups that move ownership without losing acked writes.
  Counter& member_joins_started;
  Counter& member_joins_completed;
  Counter& member_leaves_started;
  Counter& member_leaves_completed;
  Counter& member_ranges_streamed;   ///< (range, table) stream tasks finished
  Counter& member_rows_streamed;     ///< rows shipped by membership streams
  Counter& member_stream_retries;    ///< slice pulls that timed out and retried
  Counter& member_hints_rerouted;    ///< hints re-sent to a range's new owners
  Counter& member_ops_retargeted;    ///< in-flight quorum slots moved off a leaver
  Counter& member_drains_forced;     ///< drain timeouts that force-rerouted hints

  // Freshness contract (ISSUE 7): intent tracking, bound enforcement, and
  // the adaptive MV/SI router.
  Counter& freshness_intents_registered;  ///< propagation intents opened
  Counter& freshness_intents_wounded;     ///< intents left blocking by a death
  Counter& freshness_bound_misses;        ///< bounded reads that found blockers
  Counter& freshness_bound_waits;         ///< bounded reads parked on progress
  Counter& freshness_targeted_repairs;    ///< partition repairs fired by reads
  Counter& freshness_fallback_si;         ///< bounded reads routed to the SI
  Counter& freshness_fallback_base;       ///< bounded reads routed to base scan
  Counter& freshness_gossip_updates;      ///< advisory cache merges shipped
  Counter& freshness_wounds_cleared;      ///< wounded intents audited away

  // End-to-end latency recorders (simulated microseconds).
  Histogram& get_latency;
  Histogram& put_latency;
  Histogram& view_get_latency;
  Histogram& index_get_latency;
  Histogram& propagation_delay;  ///< base Put ack -> propagation complete

  // Per-stage breakdowns: where an operation's time goes. Queue wait and
  // service come from every server's CPU queue, network from every sampled
  // message latency; propagation_delay above is the propagation-lag stage.
  Histogram& stage_queue_wait;
  Histogram& stage_service;
  Histogram& stage_network;
  Histogram& stage_batch_flush;  ///< wait inside a replica-write batch
  Histogram& stage_compaction;   ///< service time of each compaction round
  Histogram& view_staleness;     ///< claimed staleness of each view read
  Histogram& freshness_wait;     ///< time bounded reads spent parked

  MetricsSnapshot Snapshot() const { return registry.Snapshot(); }
  std::string ToJson() const { return registry.ToJson(); }
  void Reset() { registry.Reset(); }
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_METRICS_H_

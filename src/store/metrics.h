// Cluster-wide observability counters and latency recorders.
//
// One Metrics instance per Cluster; servers and the view-maintenance engine
// increment counters as they work. Benches and tests read them to verify
// behaviour ("propagation retried", "read repair fired") without poking at
// internals.

#ifndef MVSTORE_STORE_METRICS_H_
#define MVSTORE_STORE_METRICS_H_

#include <cstdint>

#include "common/histogram.h"

namespace mvstore::store {

struct Metrics {
  // Client-visible operations.
  std::uint64_t client_gets = 0;
  std::uint64_t client_puts = 0;
  std::uint64_t client_view_gets = 0;
  std::uint64_t client_index_gets = 0;

  // Replication internals.
  std::uint64_t replica_reads = 0;
  std::uint64_t replica_writes = 0;
  std::uint64_t read_repairs = 0;
  std::uint64_t quorum_failures = 0;
  std::uint64_t anti_entropy_rows_pushed = 0;
  std::uint64_t anti_entropy_digest_exchanges = 0;
  std::uint64_t anti_entropy_buckets_synced = 0;
  std::uint64_t hints_stored = 0;
  std::uint64_t hints_replayed = 0;
  std::uint64_t hints_dropped = 0;

  // Native secondary indexes.
  std::uint64_t index_updates = 0;
  std::uint64_t index_fragment_probes = 0;

  // View maintenance (Section IV).
  std::uint64_t propagations_started = 0;
  std::uint64_t propagations_completed = 0;
  std::uint64_t propagation_failures = 0;   ///< GetLiveKey miss -> new guess
  std::uint64_t stale_rows_created = 0;
  std::uint64_t live_row_switches = 0;
  std::uint64_t chain_hops = 0;             ///< Next-pointer follows
  std::uint64_t lock_waits = 0;
  std::uint64_t propagations_abandoned = 0; ///< retry budget exhausted
  std::uint64_t view_get_deferrals = 0;     ///< session guarantee blocks
  std::uint64_t view_get_spins = 0;         ///< waits on initializing rows
  std::uint64_t stale_rows_filtered = 0;    ///< non-live rows skipped by reads

  // Crash-stop fault model (ISSUE 1): crashes, recovery, and the state the
  // cluster salvages afterwards.
  std::uint64_t server_crashes = 0;
  std::uint64_t server_restarts = 0;
  std::uint64_t wal_cells_replayed = 0;      ///< commit-log cells re-applied
  std::uint64_t locks_expired = 0;           ///< lease TTL reclaimed a hold
  std::uint64_t inflight_ops_aborted = 0;    ///< coordinator ops killed by crash
  std::uint64_t propagations_orphaned = 0;   ///< tasks lost with a coordinator
  std::uint64_t orphaned_propagations_recovered = 0;  ///< healed by re-scrub

  // Latency recorders (simulated microseconds).
  Histogram get_latency;
  Histogram put_latency;
  Histogram view_get_latency;
  Histogram index_get_latency;
  Histogram propagation_delay;  ///< base Put ack -> propagation complete

  void Reset() { *this = Metrics(); }
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_METRICS_H_

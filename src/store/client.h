// Application client handle.
//
// A Client models an application process on the (simulated) client host: it
// talks to one coordinator server over the network, exactly as in the
// paper's experiments ("an application client connects to any server in the
// system; that server acts as the coordinator"). Operations are
// asynchronous; *Sync convenience wrappers drive the simulation until the
// operation completes (tests and examples only — workloads use the async
// API so many clients can run concurrently).
//
// The canonical read surface is Get plus the unified Query entry point
// (QuerySpec names a view, index, or join query), each taking a ReadOptions
// and delivering one ReadResult; writes take a WriteOptions and deliver a
// WriteResult. (The pre-ISSUE-9 ViewGet/IndexGet forwarders are gone; spell
// reads as Query(QuerySpec::View/Index(...), ...).)
// Both options structs carry an optional parent TraceContext;
// when none is given (and the cluster's `trace_client_ops` is on) the client
// mints a fresh root trace per operation, whose id comes back in the result
// so callers can dump the causal timeline (Tracer::DumpJson).
//
// ## The freshness contract
//
// Every read names a consistency level (ReadOptions::consistency) and gets
// back a freshness claim (ReadResult::freshness) plus the path that served
// it (ReadResult::served_by):
//
//  * kEventual — the default. The read observes whatever the contacted
//    quorum holds; a ViewGet may miss updates still propagating. `freshness`
//    is the store's best lower bound on how fresh the answer is (for a view,
//    the tracker's FreshAsOf for the partition): every base write with a
//    timestamp <= freshness is reflected, later writes may or may not be.
//
//  * kBoundedStaleness — ViewGet only (Get/IndexGet read the base table
//    directly and are bounded by construction). The returned rows are
//    guaranteed to reflect every base write older than
//    `max_staleness` (0 = the cluster's `max_staleness_default`). The
//    coordinator proves the bound from the cluster-wide FreshnessTracker;
//    when it cannot, it briefly parks the read (up to `freshness_wait_max`),
//    fires a targeted repair of wounded view families, or — when the
//    tracker's propagation-lag estimate says the view cannot catch up in
//    time — routes the read to the secondary index or a base-table scan
//    (`served_by` = kSiPath / kBaseScan), which trade freshness-by-
//    construction for a costlier scan.
//
//  * kReadYourWrites — the Section V session guarantee. Within a session
//    (BeginSession), a view Get blocks until the session's own earlier
//    updates are reflected. BeginSession() remains the sugar for this
//    level: a session-carrying ViewGet at kEventual is upgraded to
//    kReadYourWrites automatically.
//
// `freshness` is a Timestamp in the client-timestamp domain
// (kClientTimestampEpoch + simulated time); staleness of a result at time T
// is (kClientTimestampEpoch + T) - freshness.

#ifndef MVSTORE_STORE_CLIENT_H_
#define MVSTORE_STORE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/statusor.h"
#include "common/trace.h"
#include "common/types.h"
#include "storage/row.h"
#include "store/hooks.h"
#include "store/server.h"

namespace mvstore::store {

class Cluster;

// kClientTimestampEpoch (the floor of client-generated timestamps) lives in
// store/config.h so clock-driven server tasks can share it.

/// Options shared by every read-shaped operation (Get, Query).
struct ReadOptions {
  /// Read quorum R; < 0 uses the config default. (Index queries broadcast
  /// to every server and ignore it.)
  int quorum = -1;
  /// Columns to return; empty = all. Applied uniformly by the coordinator
  /// on the merged image for every query kind (see QuerySpec for the
  /// per-kind semantics) — replicas never project individually, so the
  /// answer cannot depend on which replicas happened to respond.
  std::vector<ColumnName> columns;
  /// Per-request client deadline; 0 falls back to request_timeout().
  SimTime timeout = 0;
  /// Explicit parent span: the operation's span becomes its child, letting
  /// callers stitch several operations into one causal trace. Null = mint a
  /// root trace (when the cluster's `trace_client_ops` is enabled).
  TraceContext trace;
  /// Consistency level (see the freshness-contract comment above).
  ReadConsistency consistency = ReadConsistency::kEventual;
  /// kBoundedStaleness only: the staleness bound, in simulated time units.
  /// 0 uses the cluster's `max_staleness_default`.
  SimTime max_staleness = 0;
};

/// Options shared by every write-shaped operation (Put, Delete).
struct WriteOptions {
  /// Write quorum W; < 0 uses the config default.
  int quorum = -1;
  /// Write timestamp; kNullTimestamp draws the client's next timestamp.
  Timestamp ts = kNullTimestamp;
  /// Per-request client deadline; 0 falls back to request_timeout().
  SimTime timeout = 0;
  /// Explicit parent span (see ReadOptions::trace).
  TraceContext trace;
};

/// One result pair of a join query: the matched left- and right-side view
/// records (each side's base key + projected cells).
struct JoinedPair {
  ViewRecord left;
  ViewRecord right;
};

/// Which of ReadResult's payload fields the operation populated.
enum class ReadPayload {
  kNone,     ///< failed read (or a Get that found nothing)
  kRow,      ///< Get: `row`
  kRecords,  ///< view query: `records`
  kRows,     ///< index query: `rows`
  kJoined,   ///< join query: `joined`
};

/// The one result shape every read-shaped operation delivers. Exactly one
/// payload field is populated, matching the operation: `row` for Get,
/// `records` for a view query, `rows` for an index query, `joined` for a
/// join query; `payload_kind()` says which.
struct ReadResult {
  Status status = Status::OK();
  storage::Row row;
  std::vector<ViewRecord> records;
  std::vector<storage::KeyedRow> rows;
  std::vector<JoinedPair> joined;
  /// Freshness claim (see the contract comment above): every base write
  /// with ts <= freshness is reflected in the payload. kNullTimestamp when
  /// the operation failed.
  Timestamp freshness = kNullTimestamp;
  /// The path that served the read: the materialized view, the secondary
  /// index, or a base-table read/scan.
  ServedBy served_by = ServedBy::kBaseScan;
  /// Trace id of the operation (0 when untraced).
  TraceId trace = 0;
  bool ok() const { return status.ok(); }

  /// The populated payload field. Debug builds verify that the fields not
  /// named by `payload` really are empty (the exactly-one invariant).
  ReadPayload payload_kind() const {
#ifndef NDEBUG
    MVSTORE_CHECK((payload == ReadPayload::kRow || row.empty()) &&
                  (payload == ReadPayload::kRecords || records.empty()) &&
                  (payload == ReadPayload::kRows || rows.empty()) &&
                  (payload == ReadPayload::kJoined || joined.empty()))
        << "ReadResult populated a payload field its kind does not name";
#endif
    return payload;
  }

  /// Set by the client adapters; read through payload_kind().
  ReadPayload payload = ReadPayload::kNone;
};

struct WriteResult {
  Status status = Status::OK();
  /// The timestamp the write was issued at (resolved from WriteOptions::ts).
  Timestamp ts = kNullTimestamp;
  /// Trace id of the operation (0 when untraced).
  TraceId trace = 0;
  bool ok() const { return status.ok(); }
};

/// The one read-routing description (ISSUE 9): every non-Get read — view,
/// index, or join — goes through Client::Query with one of these. The tag
/// says which describing fields are meaningful; build specs with the static
/// factories, not by hand.
///
/// ## Projection semantics (uniform across kinds)
///
/// ReadOptions::columns is applied by the COORDINATOR on the merged image,
/// never per replica, so the projection cannot vary with which replicas
/// answered:
///  * kView — projects the view's materialized columns (empty = all of
///    them; bookkeeping columns are never returned).
///  * kIndex — projects the merged whole-row broadcast result (empty = the
///    full rows).
///  * kJoin — each side projects to its own `left_columns`/`right_columns`
///    from the spec; ReadOptions::columns is ignored (the two sides
///    materialize different column sets).
struct QuerySpec {
  enum class Kind {
    kView,   ///< records of one view key (scatter-gathered when sharded)
    kIndex,  ///< secondary-index probe: rows where `column == value`
    kJoin,   ///< zip of two per-side views sharing a join key
  };

  Kind kind = Kind::kView;

  /// kView: the view to read and the view-key value to look up.
  std::string view;
  Key view_key;

  /// kIndex: the indexed base table, column, and match value.
  std::string table;
  ColumnName column;
  Value value;

  /// kJoin: the two per-side views (as declared by DeclareJoinView) read
  /// at `view_key`, and each side's projection.
  std::string right_view;  // the left view rides in `view`
  std::vector<ColumnName> left_columns;
  std::vector<ColumnName> right_columns;

  static QuerySpec View(std::string view, Key view_key) {
    QuerySpec spec;
    spec.kind = Kind::kView;
    spec.view = std::move(view);
    spec.view_key = std::move(view_key);
    return spec;
  }

  static QuerySpec Index(std::string table, ColumnName column, Value value) {
    QuerySpec spec;
    spec.kind = Kind::kIndex;
    spec.table = std::move(table);
    spec.column = std::move(column);
    spec.value = std::move(value);
    return spec;
  }

  static QuerySpec Join(std::string left_view, std::string right_view,
                        Key join_key, std::vector<ColumnName> left_columns,
                        std::vector<ColumnName> right_columns) {
    QuerySpec spec;
    spec.kind = Kind::kJoin;
    spec.view = std::move(left_view);
    spec.right_view = std::move(right_view);
    spec.view_key = std::move(join_key);
    spec.left_columns = std::move(left_columns);
    spec.right_columns = std::move(right_columns);
    return spec;
  }
};

using ReadCallback = std::function<void(ReadResult)>;
using WriteCallback = std::function<void(WriteResult)>;

class Client {
 public:
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  ServerId coordinator() const { return coordinator_; }

  /// Monotonically increasing per-client timestamp: epoch + simulated
  /// microsecond clock, bumped to stay strictly increasing. Distinct clients
  /// can collide — the store's LWW tie-break handles that, as in the modeled
  /// systems.
  Timestamp NextTimestamp();

  /// Starts a session (Section V). Subsequent Puts and view Gets carry the
  /// session until EndSession; with `session_guarantees` enabled, view Gets
  /// then block until the session's own updates have propagated.
  void BeginSession();
  void EndSession() { session_ = 0; }
  SessionId session() const { return session_; }

  /// Client-side request deadline: if no reply arrives in time (e.g. the
  /// coordinator is down), the callback fires with kTimedOut. 0 disables
  /// (the default — a request into a dead coordinator then hangs forever,
  /// as in the modeled system's raw transport). ReadOptions/WriteOptions
  /// `timeout` overrides this per request.
  void set_request_timeout(SimTime timeout) { request_timeout_ = timeout; }
  SimTime request_timeout() const { return request_timeout_; }

  // --- canonical asynchronous operations ---

  void Get(const std::string& table, const Key& key,
           const ReadOptions& options, ReadCallback callback);

  void Put(const std::string& table, const Key& key, const Mutation& mutation,
           const WriteOptions& options, WriteCallback callback);

  /// Deletes cells (Put of NULLs, stored as tombstones).
  void Delete(const std::string& table, const Key& key,
              std::vector<ColumnName> columns, const WriteOptions& options,
              WriteCallback callback);

  /// The single non-Get read entry point: routes a view, index, or join
  /// query (see QuerySpec). The scatter-gather path for sharded views hangs
  /// off the kView route, so every read surface gains it at once.
  void Query(const QuerySpec& spec, const ReadOptions& options,
             ReadCallback callback);

  // --- canonical synchronous wrappers (drive the simulation) ---

  ReadResult GetSync(const std::string& table, const Key& key,
                     const ReadOptions& options);
  WriteResult PutSync(const std::string& table, const Key& key,
                      const Mutation& mutation, const WriteOptions& options);
  WriteResult DeleteSync(const std::string& table, const Key& key,
                         std::vector<ColumnName> columns,
                         const WriteOptions& options);
  ReadResult QuerySync(const QuerySpec& spec, const ReadOptions& options);

 private:
  friend class Cluster;
  Client(Cluster* cluster, ServerId coordinator, std::uint64_t id);

  int ReadQuorum(int requested) const;
  int WriteQuorum(int requested) const;
  Timestamp ResolveTimestamp(Timestamp ts);

  // Per-kind Query routes (the old ViewGet/IndexGet guts plus the join zip).
  void QueryView(const QuerySpec& spec, const ReadOptions& options,
                 ReadCallback callback);
  void QueryIndex(const QuerySpec& spec, const ReadOptions& options,
                  ReadCallback callback);
  void QueryJoin(const QuerySpec& spec, const ReadOptions& options,
                 ReadCallback callback);

  /// The operation's span: a child of `parent` when given, else a fresh root
  /// trace (when config().trace_client_ops allows), else null.
  TraceContext StartOpTrace(const std::string& name,
                            const TraceContext& parent);

  /// Ships `fn` to the coordinator over the network; `fn` runs there.
  void SendToCoordinator(std::function<void(Server&)> fn);

  /// Wraps a result callback so it is delivered back at the client host
  /// (adds the return network hop), records latency into `latency`, closes
  /// the operation span `op`, and stamps the trace id into the result.
  template <typename ResultT>
  std::function<void(ResultT)> ReturnToClient(
      std::function<void(ResultT)> callback, Histogram* latency,
      TraceContext op, SimTime timeout_override);

  Cluster* cluster_;
  ServerId coordinator_;
  std::uint64_t id_;
  SessionId session_ = 0;
  Timestamp last_ts_ = 0;
  SimTime request_timeout_ = 0;
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CLIENT_H_

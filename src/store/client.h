// Application client handle.
//
// A Client models an application process on the (simulated) client host: it
// talks to one coordinator server over the network, exactly as in the
// paper's experiments ("an application client connects to any server in the
// system; that server acts as the coordinator"). Operations are
// asynchronous; *Sync convenience wrappers drive the simulation until the
// operation completes (tests and examples only — workloads use the async
// API so many clients can run concurrently).
//
// The canonical read surface is Get/ViewGet/IndexGet taking a ReadOptions
// and delivering one ReadResult; writes take a WriteOptions and deliver a
// WriteResult. Both options structs carry an optional parent TraceContext;
// when none is given (and the cluster's `trace_client_ops` is on) the client
// mints a fresh root trace per operation, whose id comes back in the result
// so callers can dump the causal timeline (Tracer::DumpJson).

#ifndef MVSTORE_STORE_CLIENT_H_
#define MVSTORE_STORE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/statusor.h"
#include "common/trace.h"
#include "common/types.h"
#include "storage/row.h"
#include "store/hooks.h"
#include "store/server.h"

namespace mvstore::store {

class Cluster;

// kClientTimestampEpoch (the floor of client-generated timestamps) lives in
// store/config.h so clock-driven server tasks can share it.

/// Options shared by every read-shaped operation (Get, ViewGet, IndexGet).
struct ReadOptions {
  /// Read quorum R; < 0 uses the config default. (IndexGet broadcasts to
  /// every server and ignores it.)
  int quorum = -1;
  /// Columns to return; empty = all. (IndexGet always returns whole rows.)
  std::vector<ColumnName> columns;
  /// Per-request client deadline; 0 falls back to request_timeout().
  SimTime timeout = 0;
  /// Explicit parent span: the operation's span becomes its child, letting
  /// callers stitch several operations into one causal trace. Null = mint a
  /// root trace (when the cluster's `trace_client_ops` is enabled).
  TraceContext trace;
};

/// Options shared by every write-shaped operation (Put, Delete).
struct WriteOptions {
  /// Write quorum W; < 0 uses the config default.
  int quorum = -1;
  /// Write timestamp; kNullTimestamp draws the client's next timestamp.
  Timestamp ts = kNullTimestamp;
  /// Per-request client deadline; 0 falls back to request_timeout().
  SimTime timeout = 0;
  /// Explicit parent span (see ReadOptions::trace).
  TraceContext trace;
};

/// The one result shape every read-shaped operation delivers. Exactly one
/// payload field is populated, matching the operation: `row` for Get,
/// `records` for ViewGet, `rows` for IndexGet.
struct ReadResult {
  Status status = Status::OK();
  storage::Row row;
  std::vector<ViewRecord> records;
  std::vector<storage::KeyedRow> rows;
  /// Trace id of the operation (0 when untraced).
  TraceId trace = 0;
  bool ok() const { return status.ok(); }
};

struct WriteResult {
  Status status = Status::OK();
  /// The timestamp the write was issued at (resolved from WriteOptions::ts).
  Timestamp ts = kNullTimestamp;
  /// Trace id of the operation (0 when untraced).
  TraceId trace = 0;
  bool ok() const { return status.ok(); }
};

using ReadCallback = std::function<void(ReadResult)>;
using WriteCallback = std::function<void(WriteResult)>;

class Client {
 public:
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  ServerId coordinator() const { return coordinator_; }

  /// Monotonically increasing per-client timestamp: epoch + simulated
  /// microsecond clock, bumped to stay strictly increasing. Distinct clients
  /// can collide — the store's LWW tie-break handles that, as in the modeled
  /// systems.
  Timestamp NextTimestamp();

  /// Starts a session (Section V). Subsequent Puts and view Gets carry the
  /// session until EndSession; with `session_guarantees` enabled, view Gets
  /// then block until the session's own updates have propagated.
  void BeginSession();
  void EndSession() { session_ = 0; }
  SessionId session() const { return session_; }

  /// Client-side request deadline: if no reply arrives in time (e.g. the
  /// coordinator is down), the callback fires with kTimedOut. 0 disables
  /// (the default — a request into a dead coordinator then hangs forever,
  /// as in the modeled system's raw transport). ReadOptions/WriteOptions
  /// `timeout` overrides this per request.
  void set_request_timeout(SimTime timeout) { request_timeout_ = timeout; }
  SimTime request_timeout() const { return request_timeout_; }

  // --- canonical asynchronous operations ---

  void Get(const std::string& table, const Key& key,
           const ReadOptions& options, ReadCallback callback);

  void Put(const std::string& table, const Key& key, const Mutation& mutation,
           const WriteOptions& options, WriteCallback callback);

  /// Deletes cells (Put of NULLs, stored as tombstones).
  void Delete(const std::string& table, const Key& key,
              std::vector<ColumnName> columns, const WriteOptions& options,
              WriteCallback callback);

  void ViewGet(const std::string& view, const Key& view_key,
               const ReadOptions& options, ReadCallback callback);

  void IndexGet(const std::string& table, const ColumnName& column,
                const Value& value, const ReadOptions& options,
                ReadCallback callback);

  // --- canonical synchronous wrappers (drive the simulation) ---

  ReadResult GetSync(const std::string& table, const Key& key,
                     const ReadOptions& options);
  WriteResult PutSync(const std::string& table, const Key& key,
                      const Mutation& mutation, const WriteOptions& options);
  WriteResult DeleteSync(const std::string& table, const Key& key,
                         std::vector<ColumnName> columns,
                         const WriteOptions& options);
  ReadResult ViewGetSync(const std::string& view, const Key& view_key,
                         const ReadOptions& options);
  ReadResult IndexGetSync(const std::string& table, const ColumnName& column,
                          const Value& value, const ReadOptions& options);

 private:
  friend class Cluster;
  Client(Cluster* cluster, ServerId coordinator, std::uint64_t id);

  int ReadQuorum(int requested) const;
  int WriteQuorum(int requested) const;
  Timestamp ResolveTimestamp(Timestamp ts);

  /// The operation's span: a child of `parent` when given, else a fresh root
  /// trace (when config().trace_client_ops allows), else null.
  TraceContext StartOpTrace(const std::string& name,
                            const TraceContext& parent);

  /// Ships `fn` to the coordinator over the network; `fn` runs there.
  void SendToCoordinator(std::function<void(Server&)> fn);

  /// Wraps a result callback so it is delivered back at the client host
  /// (adds the return network hop), records latency into `latency`, closes
  /// the operation span `op`, and stamps the trace id into the result.
  template <typename ResultT>
  std::function<void(ResultT)> ReturnToClient(
      std::function<void(ResultT)> callback, Histogram* latency,
      TraceContext op, SimTime timeout_override);

  Cluster* cluster_;
  ServerId coordinator_;
  std::uint64_t id_;
  SessionId session_ = 0;
  Timestamp last_ts_ = 0;
  SimTime request_timeout_ = 0;
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_CLIENT_H_

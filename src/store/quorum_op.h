// The generic coordinator state machine (ISSUE 3).
//
// Every coordinator operation in the store is the same pattern — fan a
// request out to a set of replica targets, track responses by slot, reply
// to the caller once a quorum has answered, and settle the stragglers when
// everyone answered or the rpc timeout expired. QuorumOp owns that pattern
// once: slot-deduplicated response tracking (a replayed ack can never
// satisfy a quorum twice), reply-once semantics, the overall timeout, the
// per-replica silence timeout with bounded retry/backoff, crash-abort via
// the coordinator's in-flight registry, hint scheduling for unresponsive
// write targets, and uniform metrics/trace emission.
//
// The five concrete operations (read, write, get-then-put, scan, index
// scan) and the hinted-handoff replay are thin policies on top: a request
// closure that runs on each target, a merge/finalize pair expressed through
// three callbacks, and a distinct quorum-failure message.
//
//   on_quorum(op)            exactly once, when the quorum-th response
//                            lands: deliver the success reply.
//   on_error(op, status)     exactly once INSTEAD of on_quorum, when the
//                            op finalizes (timeout) or aborts (coordinator
//                            crash) before the quorum was met.
//   on_settled(op, aborted)  exactly once, after every target answered or
//                            the timeout/abort ended the op: side effects
//                            that want the full response set (read repair,
//                            pre-image collection). On abort the policy
//                            must not perform repairs — a dead process
//                            cannot push writes.

#ifndef MVSTORE_STORE_QUORUM_OP_H_
#define MVSTORE_STORE_QUORUM_OP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "sim/simulation.h"
#include "storage/row.h"

namespace mvstore::store {

class Server;

template <typename Response>
class QuorumOp : public std::enable_shared_from_this<QuorumOp<Response>> {
 public:
  using Ptr = std::shared_ptr<QuorumOp<Response>>;

  struct Spec {
    /// Short label ("read", "write", ...) naming the op's trace span.
    std::string name;
    std::vector<ServerId> targets;
    int quorum = 1;
    /// Per-target service demand of executing `request` remotely.
    SimTime service = 0;
    /// Optional per-target service override, evaluated ON THE TARGET when
    /// the request is dequeued there (not at send time): lets the demand
    /// depend on replica-local state the coordinator cannot see — a read
    /// answered from the target's row cache costs `read_cached_local`
    /// instead of `read_local`. Unset = the flat `service` above.
    std::function<SimTime(Server&)> service_at;
    /// Runs on each target under its service queue; the returned value
    /// travels back to the coordinator.
    std::function<Response(Server&)> request;
    /// Optional transport override (the batched replica-write path). When
    /// set, it must eventually invoke the reply callback with the target's
    /// response; the default ships `request` via Server::CallPeer.
    std::function<void(Server&, ServerId, std::function<void(Response)>)>
        send;
    /// Per-op-kind quorum-failure message (each op reports its own).
    std::string quorum_error = "quorum not reached";
    /// When non-empty, finalization stores a hint per unresponsive target
    /// (hinted handoff; skipped on abort and when replay is disabled).
    std::string hint_table;
    Key hint_key;
    storage::Row hint_cells;
    std::function<void(QuorumOp&)> on_quorum;
    std::function<void(QuorumOp&, const Status&)> on_error;
    std::function<void(QuorumOp&, bool /*aborted*/)> on_settled;
  };

  /// Fans the op out and arms its timeouts. The returned handle is shared
  /// with every in-flight closure; callers normally drop it.
  static Ptr Start(Server* coord, Spec spec);

  QuorumOp(const QuorumOp&) = delete;
  QuorumOp& operator=(const QuorumOp&) = delete;

  // --- policy-facing state accessors ---

  const std::vector<ServerId>& targets() const { return spec_.targets; }
  /// Responses by target slot; unanswered slots are nullopt.
  const std::vector<std::optional<Response>>& responses() const {
    return responses_;
  }
  int num_responses() const { return num_responses_; }
  bool replied() const { return replied_; }
  Server& coordinator() const { return *coord_; }

 private:
  QuorumOp(Server* coord, Spec spec);

  void Launch();
  void SendTo(std::size_t slot);
  /// Arms the per-replica silence timeout that re-sends to a quiet target
  /// (bounded by `replica_retry_max`, backed off per attempt).
  void ArmReplicaRetry(std::size_t slot, int attempt);
  void OnResponse(std::size_t slot, Response response);
  void Finalize();
  /// Crash-stop: the coordinator died mid-operation. Outstanding callbacks
  /// fire with errors/partials but no side effects are performed.
  void Abort();
  /// `departed` left the ring mid-operation: unanswered slots targeting it
  /// re-point to a current replica of the op's key and re-send, so an acked
  /// write is never stranded waiting on a server that will not answer. Only
  /// hint-keyed (write-shaped) ops know their key; others run out their
  /// timeout as before.
  void Retarget(ServerId departed);
  void Settle(bool aborted);

  Server* coord_;
  Spec spec_;
  std::vector<std::optional<Response>> responses_;
  int num_responses_ = 0;
  bool replied_ = false;
  bool finalized_ = false;
  sim::EventHandle timeout_;
  std::uint64_t op_id_ = 0;
  /// The op's own span (child of the ambient context at creation);
  /// finalization re-enters it so read repair, hints, and collection
  /// continuations stay on the op's trace even when triggered by the
  /// (context-free) rpc timeout.
  TraceContext trace_;
};

}  // namespace mvstore::store

#endif  // MVSTORE_STORE_QUORUM_OP_H_

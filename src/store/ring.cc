#include "store/ring.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"

namespace mvstore::store {

Ring::Ring(int num_servers, int vnodes_per_server, std::uint64_t seed)
    : num_servers_(num_servers) {
  MVSTORE_CHECK_GT(num_servers, 0);
  MVSTORE_CHECK_GT(vnodes_per_server, 0);
  Rng rng(HashCombine(seed, 0x52494E47 /*"RING"*/));
  vnodes_.reserve(static_cast<std::size_t>(num_servers) * vnodes_per_server);
  for (ServerId s = 0; s < static_cast<ServerId>(num_servers); ++s) {
    for (int v = 0; v < vnodes_per_server; ++v) {
      vnodes_.push_back(VNode{rng.Next(), s});
    }
  }
  std::sort(vnodes_.begin(), vnodes_.end(),
            [](const VNode& a, const VNode& b) {
              if (a.token != b.token) return a.token < b.token;
              return a.server < b.server;
            });
}

std::vector<ServerId> Ring::ReplicasFor(const Key& partition_key,
                                        int n) const {
  MVSTORE_CHECK_LE(n, num_servers_);
  const std::uint64_t token = Hash64(partition_key);
  auto it = std::lower_bound(
      vnodes_.begin(), vnodes_.end(), token,
      [](const VNode& v, std::uint64_t t) { return v.token < t; });
  std::vector<ServerId> replicas;
  replicas.reserve(static_cast<std::size_t>(n));
  std::vector<bool> used(static_cast<std::size_t>(num_servers_), false);
  for (std::size_t walked = 0;
       walked < vnodes_.size() && replicas.size() < static_cast<std::size_t>(n);
       ++walked) {
    if (it == vnodes_.end()) it = vnodes_.begin();
    if (!used[it->server]) {
      used[it->server] = true;
      replicas.push_back(it->server);
    }
    ++it;
  }
  MVSTORE_CHECK_EQ(replicas.size(), static_cast<std::size_t>(n));
  return replicas;
}

ServerId Ring::PrimaryFor(const Key& partition_key) const {
  return ReplicasFor(partition_key, 1)[0];
}

}  // namespace mvstore::store

#include "store/ring.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"

namespace mvstore::store {

namespace {

bool Contains(const std::vector<ServerId>& servers, ServerId s) {
  return std::find(servers.begin(), servers.end(), s) != servers.end();
}

bool SortByToken(const Ring::RangeTransfer& a, const Ring::RangeTransfer& b) {
  return a.range.begin < b.range.begin;
}

}  // namespace

Ring::Ring(int num_servers, int vnodes_per_server, std::uint64_t seed)
    : vnodes_per_server_(vnodes_per_server), seed_(seed) {
  MVSTORE_CHECK_GT(num_servers, 0);
  MVSTORE_CHECK_GT(vnodes_per_server, 0);
  vnodes_.reserve(static_cast<std::size_t>(num_servers) * vnodes_per_server);
  for (ServerId s = 0; s < static_cast<ServerId>(num_servers); ++s) {
    members_.insert(s);
    auto tokens = TokensFor(s);
    vnodes_.insert(vnodes_.end(), tokens.begin(), tokens.end());
  }
  std::sort(vnodes_.begin(), vnodes_.end(),
            [](const VNode& a, const VNode& b) {
              if (a.token != b.token) return a.token < b.token;
              return a.server < b.server;
            });
}

std::vector<Ring::VNode> Ring::TokensFor(ServerId server) const {
  // Each server draws from its own stream so the tokens it lands on do not
  // depend on which other servers exist or the order they joined.
  Rng rng(HashCombine(HashCombine(seed_, 0x52494E47 /*"RING"*/),
                      static_cast<std::uint64_t>(server) + 1));
  std::vector<VNode> tokens;
  tokens.reserve(static_cast<std::size_t>(vnodes_per_server_));
  for (int v = 0; v < vnodes_per_server_; ++v) {
    tokens.push_back(VNode{rng.Next(), server});
  }
  return tokens;
}

std::vector<ServerId> Ring::WalkFrom(std::size_t start, int n,
                                     ServerId exclude) const {
  std::vector<ServerId> replicas;
  replicas.reserve(static_cast<std::size_t>(n));
  for (std::size_t walked = 0;
       walked < vnodes_.size() &&
       replicas.size() < static_cast<std::size_t>(n);
       ++walked) {
    const VNode& v = vnodes_[(start + walked) % vnodes_.size()];
    if (v.server == exclude) continue;
    if (!Contains(replicas, v.server)) replicas.push_back(v.server);
  }
  MVSTORE_CHECK_EQ(replicas.size(), static_cast<std::size_t>(n));
  return replicas;
}

template <typename Fn>
void Ring::ForEachSegment(int n, Fn fn) const {
  const std::size_t count = vnodes_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t prev = vnodes_[(i + count - 1) % count].token;
    const std::uint64_t cur = vnodes_[i].token;
    // Duplicate tokens leave an empty arc between them (a single-vnode ring
    // is the exception: its one "segment" is the full circle).
    if (count > 1 && prev == cur) continue;
    fn(TokenRange{prev, cur}, WalkFrom(i, n));
  }
}

std::vector<ServerId> Ring::ReplicasFor(std::string_view partition_key,
                                        int n) const {
  MVSTORE_CHECK_LE(n, num_servers());
  const std::uint64_t token = TokenOf(partition_key);
  auto it = std::lower_bound(
      vnodes_.begin(), vnodes_.end(), token,
      [](const VNode& v, std::uint64_t t) { return v.token < t; });
  const std::size_t start =
      it == vnodes_.end() ? 0 : static_cast<std::size_t>(it - vnodes_.begin());
  return WalkFrom(start, n);
}

ServerId Ring::PrimaryFor(std::string_view partition_key) const {
  return ReplicasFor(partition_key, 1)[0];
}

std::uint64_t Ring::TokenOf(std::string_view partition_key) {
  return Hash64(partition_key);
}

std::vector<Ring::TokenRange> Ring::RangesReplicatedOn(ServerId server,
                                                       int n) const {
  std::vector<TokenRange> ranges;
  ForEachSegment(n, [&](TokenRange range, const std::vector<ServerId>& reps) {
    if (!Contains(reps, server)) return;
    if (!ranges.empty() && ranges.back().end == range.begin) {
      ranges.back().end = range.end;
    } else {
      ranges.push_back(range);
    }
  });
  return ranges;
}

std::vector<Ring::RangeTransfer> Ring::AddServer(ServerId server, int n) {
  MVSTORE_CHECK(!IsMember(server));
  ++version_;
  members_.insert(server);
  auto tokens = TokensFor(server);
  vnodes_.insert(vnodes_.end(), tokens.begin(), tokens.end());
  std::sort(vnodes_.begin(), vnodes_.end(),
            [](const VNode& a, const VNode& b) {
              if (a.token != b.token) return a.token < b.token;
              return a.server < b.server;
            });

  // In the grown ring, every range the joiner replicates must be streamed
  // in. The sources are the range's PRE-JOIN replicas — the walk that skips
  // the joiner's vnodes — which is a superset of "new replicas minus the
  // joiner" (it also includes the displaced old replica), and, unlike it,
  // stays non-empty at replication factor 1.
  const int effective_n = std::min(n, num_servers());
  const int source_n = std::min(n, num_servers() - 1);
  std::vector<RangeTransfer> transfers;
  ForEachSegment(effective_n,
                 [&](TokenRange range, const std::vector<ServerId>& reps) {
    if (!Contains(reps, server)) return;
    auto it = std::lower_bound(
        vnodes_.begin(), vnodes_.end(), range.end,
        [](const VNode& v, std::uint64_t t) { return v.token < t; });
    const std::size_t start = it == vnodes_.end()
                                  ? 0
                                  : static_cast<std::size_t>(
                                        it - vnodes_.begin());
    std::vector<ServerId> sources = WalkFrom(start, source_n, server);
    if (!transfers.empty() && transfers.back().range.end == range.begin &&
        transfers.back().peers == sources) {
      transfers.back().range.end = range.end;
    } else {
      transfers.push_back(RangeTransfer{range, std::move(sources)});
    }
  });
  std::sort(transfers.begin(), transfers.end(), SortByToken);
  return transfers;
}

std::vector<Ring::RangeTransfer> Ring::RemoveServer(ServerId server, int n) {
  MVSTORE_CHECK(IsMember(server));
  MVSTORE_CHECK_GT(num_servers(), 1);
  ++version_;

  // Snapshot, before removal, every range the leaver replicates together
  // with its old replica set.
  struct OldSegment {
    TokenRange range;
    std::vector<ServerId> replicas;
  };
  const int old_n = std::min(n, num_servers());
  std::vector<OldSegment> owned;
  ForEachSegment(old_n,
                 [&](TokenRange range, const std::vector<ServerId>& reps) {
    if (Contains(reps, server)) owned.push_back(OldSegment{range, reps});
  });

  members_.erase(server);
  vnodes_.erase(std::remove_if(vnodes_.begin(), vnodes_.end(),
                               [server](const VNode& v) {
                                 return v.server == server;
                               }),
                vnodes_.end());

  // Removing vnodes only merges segments, so each old segment maps to a
  // single new replica set; the servers in it that were not replicas before
  // must receive the leaver's copy.
  const int new_n = std::min(n, num_servers());
  std::vector<RangeTransfer> transfers;
  for (const OldSegment& seg : owned) {
    auto it = std::lower_bound(
        vnodes_.begin(), vnodes_.end(), seg.range.end,
        [](const VNode& v, std::uint64_t t) { return v.token < t; });
    const std::size_t start = it == vnodes_.end()
                                  ? 0
                                  : static_cast<std::size_t>(
                                        it - vnodes_.begin());
    std::vector<ServerId> gained;
    for (ServerId r : WalkFrom(start, new_n)) {
      if (!Contains(seg.replicas, r)) gained.push_back(r);
    }
    if (!transfers.empty() && transfers.back().range.end == seg.range.begin &&
        transfers.back().peers == gained) {
      transfers.back().range.end = seg.range.end;
    } else {
      transfers.push_back(RangeTransfer{seg.range, std::move(gained)});
    }
  }
  std::sort(transfers.begin(), transfers.end(), SortByToken);
  return transfers;
}

}  // namespace mvstore::store

#include "store/codec.h"

#include "common/hash.h"
#include "common/logging.h"

namespace mvstore::store {

namespace {

/// Appends the two-byte shard header when the view is actually sharded.
void AppendShardHeader(int shard, int shard_count, std::string& out) {
  if (shard_count <= 1) return;
  MVSTORE_CHECK(shard >= 0 && shard < shard_count)
      << "shard " << shard << " out of range for shard_count " << shard_count;
  out.push_back(kShardHeaderPrefix);
  out.push_back(static_cast<char>(kShardByteBase + shard));
}

}  // namespace

int ShardOfBaseKey(std::string_view base_key, int shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<int>(Hash64(base_key) %
                          static_cast<std::uint64_t>(shard_count));
}

void AppendEscapedComponent(std::string_view component, std::string& out) {
  for (char c : component) {
    if (c == kComponentSeparator) {
      out.push_back(kEscape);
      out.push_back('s');
    } else if (c == kEscape) {
      out.push_back(kEscape);
      out.push_back('e');
    } else {
      out.push_back(c);
    }
  }
}

std::string EscapeComponent(std::string_view component) {
  std::string out;
  out.reserve(component.size());
  AppendEscapedComponent(component, out);
  return out;
}

Key DeletedSentinelViewKey(std::string_view base_key) {
  Key out;
  out.reserve(base_key.size() + 1);
  out.push_back(kSentinelPrefix);
  out += base_key;
  return out;
}

bool IsSentinelViewKey(std::string_view view_key) {
  return !view_key.empty() && view_key[0] == kSentinelPrefix;
}

std::optional<std::string> UnescapeComponent(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c == kComponentSeparator) return std::nullopt;
    if (c == kEscape) {
      if (i + 1 >= escaped.size()) return std::nullopt;
      const char next = escaped[++i];
      if (next == 's') {
        out.push_back(kComponentSeparator);
      } else if (next == 'e') {
        out.push_back(kEscape);
      } else {
        return std::nullopt;
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void ComposeViewRowKeyTo(std::string_view view_key, std::string_view base_key,
                         std::string& out) {
  AppendEscapedComponent(view_key, out);
  out.push_back(kComponentSeparator);
  AppendEscapedComponent(base_key, out);
}

Key ComposeViewRowKey(std::string_view view_key, std::string_view base_key) {
  Key out;
  out.reserve(view_key.size() + base_key.size() + 1);
  ComposeViewRowKeyTo(view_key, base_key, out);
  return out;
}

Key ViewPartitionPrefix(std::string_view view_key) {
  Key out;
  out.reserve(view_key.size() + 1);
  AppendEscapedComponent(view_key, out);
  out.push_back(kComponentSeparator);
  return out;
}

void ShardedViewRowKeyTo(std::string_view view_key, std::string_view base_key,
                         int shard, int shard_count, std::string& out) {
  AppendShardHeader(shard, shard_count, out);
  ComposeViewRowKeyTo(view_key, base_key, out);
}

Key ShardedViewRowKey(std::string_view view_key, std::string_view base_key,
                      int shard, int shard_count) {
  Key out;
  out.reserve(view_key.size() + base_key.size() + 3);
  ShardedViewRowKeyTo(view_key, base_key, shard, shard_count, out);
  return out;
}

Key ShardedViewPartitionPrefix(std::string_view view_key, int shard,
                               int shard_count) {
  Key out;
  out.reserve(view_key.size() + 3);
  AppendShardHeader(shard, shard_count, out);
  AppendEscapedComponent(view_key, out);
  out.push_back(kComponentSeparator);
  return out;
}

std::optional<int> ShardOfComposedKey(std::string_view key, int shard_count) {
  if (shard_count <= 1) return 0;
  if (key.size() < 2 || key[0] != kShardHeaderPrefix) return std::nullopt;
  const int shard = static_cast<unsigned char>(key[1]) -
                    static_cast<unsigned char>(kShardByteBase);
  if (shard < 0 || shard >= shard_count) return std::nullopt;
  return shard;
}

std::optional<std::pair<Key, Key>> SplitShardedViewRowKey(std::string_view key,
                                                          int shard_count) {
  if (shard_count <= 1) return SplitViewRowKey(key);
  if (!ShardOfComposedKey(key, shard_count).has_value()) return std::nullopt;
  return SplitViewRowKey(key.substr(2));
}

bool SplitViewRowKeyViews(std::string_view key, std::string_view* escaped_view,
                          std::string_view* escaped_base) {
  // Find the (only unescaped) separator.
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (key[i] == kEscape) {
      ++i;  // skip escaped byte
    } else if (key[i] == kComponentSeparator) {
      *escaped_view = key.substr(0, i);
      *escaped_base = key.substr(i + 1);
      return true;
    }
  }
  return false;
}

std::optional<std::pair<Key, Key>> SplitViewRowKey(std::string_view key) {
  std::string_view escaped_view;
  std::string_view escaped_base;
  if (!SplitViewRowKeyViews(key, &escaped_view, &escaped_base)) {
    return std::nullopt;
  }
  auto view_key = UnescapeComponent(escaped_view);
  auto base_key = UnescapeComponent(escaped_base);
  if (!view_key || !base_key) return std::nullopt;
  return std::make_pair(std::move(*view_key), std::move(*base_key));
}

KeyRef InternViewRowKey(KeyInterner& interner, std::string_view view_key,
                        std::string_view base_key, std::string& scratch) {
  scratch.clear();
  ComposeViewRowKeyTo(view_key, base_key, scratch);
  return interner.Intern(scratch);
}

std::string_view PartitionPrefixViewOf(std::string_view composed_key) {
  for (std::size_t i = 0; i < composed_key.size(); ++i) {
    if (composed_key[i] == kEscape) {
      ++i;
    } else if (composed_key[i] == kComponentSeparator) {
      return composed_key.substr(0, i + 1);
    }
  }
  return composed_key;
}

Key PartitionPrefixOf(const Key& composed_key) {
  return Key(PartitionPrefixViewOf(composed_key));
}

}  // namespace mvstore::store

#include "store/codec.h"

namespace mvstore::store {

std::string EscapeComponent(const std::string& component) {
  std::string out;
  out.reserve(component.size());
  for (char c : component) {
    if (c == kComponentSeparator) {
      out.push_back(kEscape);
      out.push_back('s');
    } else if (c == kEscape) {
      out.push_back(kEscape);
      out.push_back('e');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Key DeletedSentinelViewKey(const Key& base_key) {
  Key out;
  out.push_back(kSentinelPrefix);
  out += base_key;
  return out;
}

bool IsSentinelViewKey(const Key& view_key) {
  return !view_key.empty() && view_key[0] == kSentinelPrefix;
}

std::optional<std::string> UnescapeComponent(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c == kComponentSeparator) return std::nullopt;
    if (c == kEscape) {
      if (i + 1 >= escaped.size()) return std::nullopt;
      const char next = escaped[++i];
      if (next == 's') {
        out.push_back(kComponentSeparator);
      } else if (next == 'e') {
        out.push_back(kEscape);
      } else {
        return std::nullopt;
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Key ComposeViewRowKey(const Key& view_key, const Key& base_key) {
  Key out = EscapeComponent(view_key);
  out.push_back(kComponentSeparator);
  out += EscapeComponent(base_key);
  return out;
}

Key ViewPartitionPrefix(const Key& view_key) {
  Key out = EscapeComponent(view_key);
  out.push_back(kComponentSeparator);
  return out;
}

std::optional<std::pair<Key, Key>> SplitViewRowKey(const Key& key) {
  // Find the (only unescaped) separator.
  std::size_t sep = std::string::npos;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (key[i] == kEscape) {
      ++i;  // skip escaped byte
    } else if (key[i] == kComponentSeparator) {
      sep = i;
      break;
    }
  }
  if (sep == std::string::npos) return std::nullopt;
  auto view_key = UnescapeComponent(key.substr(0, sep));
  auto base_key = UnescapeComponent(key.substr(sep + 1));
  if (!view_key || !base_key) return std::nullopt;
  return std::make_pair(std::move(*view_key), std::move(*base_key));
}

Key PartitionPrefixOf(const Key& composed_key) {
  for (std::size_t i = 0; i < composed_key.size(); ++i) {
    if (composed_key[i] == kEscape) {
      ++i;
    } else if (composed_key[i] == kComponentSeparator) {
      return composed_key.substr(0, i + 1);
    }
  }
  return composed_key;
}

}  // namespace mvstore::store

#include "view/view_row.h"

#include "store/codec.h"
#include "store/schema.h"

namespace mvstore::view {

RowStatus ClassifyViewRow(const storage::Row& row, const Key& view_key) {
  RowStatus status;
  auto next = row.Get(store::kViewNextColumn);
  if (!next || next->tombstone) return status;  // not a versioned-view row
  status.exists = true;
  status.next = next->value;
  status.next_ts = next->ts;
  status.live = (next->value == view_key);

  if (auto init = row.Get(store::kViewInitColumn);
      init && !init->tombstone) {
    status.initialized = true;
  }
  if (store::IsSentinelViewKey(view_key)) {
    status.hidden = true;  // deleted-row sentinel: never exposed
  }
  if (auto ds = row.Get(store::kViewSelectionColumn); ds && !ds->tombstone) {
    status.hidden = true;
  }
  return status;
}

}  // namespace mvstore::view

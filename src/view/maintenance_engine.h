// The view-maintenance engine: Algorithm 1's asynchronous propagation driver,
// Algorithm 4's view reads, session guarantees, and both Section IV-F
// concurrency-control designs.
//
// One engine serves the whole cluster. It installs itself as every server's
// ViewMaintenanceHook. Per-coordinator state (session managers, in the
// dedicated mode per-propagator row queues) is kept per server id.

#ifndef MVSTORE_VIEW_MAINTENANCE_ENGINE_H_
#define MVSTORE_VIEW_MAINTENANCE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "store/cluster.h"
#include "store/hooks.h"
#include "view/lock_service.h"
#include "view/propagation.h"
#include "view/session_manager.h"

namespace mvstore::view {

class MaintenanceEngine : public store::ViewMaintenanceHook {
 public:
  /// Creates the engine and installs it on every server of `cluster`.
  explicit MaintenanceEngine(store::Cluster* cluster);

  MaintenanceEngine(const MaintenanceEngine&) = delete;
  MaintenanceEngine& operator=(const MaintenanceEngine&) = delete;

  // --- store::ViewMaintenanceHook ---
  std::uint64_t OnBasePutIssued(store::Server* coordinator, const Key& key,
                                const std::vector<const store::ViewDef*>& views,
                                Timestamp ts,
                                store::SessionId session) override;
  void OnBasePutCommitted(store::Server* coordinator, const Key& base_key,
                          const storage::Row& written,
                          std::vector<store::CollectedViewKeys> views,
                          store::SessionId session,
                          std::uint64_t put_group) override;
  void HandleViewGet(
      store::Server* coordinator, const store::ViewDef& view,
      const Key& view_key, store::ViewReadSpec spec,
      std::function<void(StatusOr<store::ViewReadOutcome>)> callback) override;
  void OnServerCrash(store::Server* server) override;
  void OnServerRestart(store::Server* server) override;
  void OnServerJoin(store::Server* server) override;
  void OnServerLeave(store::Server* server) override;

  /// Number of propagations registered but not yet completed or abandoned.
  std::uint64_t active_propagations() const { return active_; }

  /// Drives the simulation until every registered propagation has completed
  /// (tests and examples; CHECK-fails if the simulation runs dry first).
  void Quiesce();

  LockService& lock_service() { return locks_; }
  SessionManager& session_manager(ServerId server) {
    return *sessions_[server];
  }

  /// Retry budget per propagation before it is abandoned (counted in
  /// attempts; generous — Section IV-D argues success is eventually
  /// guaranteed when propagations are retried).
  static constexpr int kMaxAttempts = 500;

 private:
  struct RowQueue {
    std::deque<std::shared_ptr<PropagationTask>> tasks;
    bool running = false;
  };

  /// Serialization resource name for a task (one lock / one queue per
  /// (view, base key), Section IV-F).
  static std::string ResourceOf(const PropagationTask& task);

  const storage::Cell& CurrentGuess(const PropagationTask& task) const;

  /// Linear backoff (capped) for retrying a failed attempt.
  SimTime RetryDelay(const PropagationTask& task) const;

  SimTime SampleDispatchDelay();

  // Lock-service mode.
  void RunWithLocks(std::shared_ptr<PropagationTask> task);

  // Paper-prototype mode: no concurrency control.
  void RunUnsynchronized(std::shared_ptr<PropagationTask> task);

  // Dedicated-propagator mode.
  void EnqueueOnPropagator(std::shared_ptr<PropagationTask> task);
  void PumpRowQueue(ServerId propagator, const std::string& resource);

  /// Handles one attempt's outcome: completion, retry with the next guess
  /// (optionally refreshing guesses from the base row), or abandonment.
  void OnAttemptDone(std::shared_ptr<PropagationTask> task, Status status,
                     std::function<void(bool /*completed*/)> then);

  void RefreshGuesses(std::shared_ptr<PropagationTask> task,
                      std::function<void()> then);

  /// Re-enters a task through its mode's execution path.
  void DispatchTask(std::shared_ptr<PropagationTask> task);

  /// Parks a failed task until a same-row propagation completes (or a
  /// fallback timer fires); Section IV-F modes only.
  void ParkForRetry(const std::string& resource,
                    std::shared_ptr<PropagationTask> task);
  void WakeParked(const std::string& resource);

  void TaskCompleted(const std::shared_ptr<PropagationTask>& task);
  void TaskAbandoned(const std::shared_ptr<PropagationTask>& task);
  /// Settles the task's freshness intent (and with it the origin's session
  /// bookkeeping): MarkApplied when `completed`, MarkWounded otherwise. In
  /// dedicated-propagator mode the settlement notice crosses the network to
  /// the tracker shard colocated with the origin.
  void NotifyOrigin(const std::shared_ptr<PropagationTask>& task,
                    bool completed);

  // --- propagation coalescing ---

  /// Whether `task` may be merged into `winner` (same resource assumed):
  /// the winner must not be writing or in write-limbo, must share the
  /// origin, and must not need a lock upgrade from the merge.
  bool CanAbsorb(const PropagationTask& winner,
                 const PropagationTask& task) const;
  /// LWW-merges `task`'s payload into `winner` and records it for
  /// settlement when the winner finishes.
  void AbsorbTask(const std::shared_ptr<PropagationTask>& winner,
                  const std::shared_ptr<PropagationTask>& task);
  /// Settles the bookkeeping of every task the winner absorbed.
  void FinishAbsorbed(const std::shared_ptr<PropagationTask>& winner,
                      bool completed);

  // --- crash-stop fault model ---

  /// The server a task's attempts execute on: the origin coordinator, or the
  /// base key's primary in dedicated-propagator mode.
  ServerId ExecutorOf(const PropagationTask& task) const;

  void RegisterTask(const std::shared_ptr<PropagationTask>& task);
  void UnregisterTask(const std::shared_ptr<PropagationTask>& task);

  /// Marks a task lost to a crash: it leaves the active set, every pending
  /// closure that still holds it bails out, and the scrub inherits recovery.
  void OrphanTask(const std::shared_ptr<PropagationTask>& task);

  /// Scrubs the view families whose base key is primarily owned by `server`
  /// (skipping families with a propagation still in flight); returns the
  /// number of broken families repaired.
  std::size_t RunOwnedRangeScrub(ServerId server);
  void OwnedRangeScrubTick(ServerId server);

  /// What DoViewGet's partition scan produced: the live records plus how
  /// many sub-shards the scatter could not reach (ISSUE 10; nonzero only on
  /// the allow-partial path, where ServeFromView must clamp its freshness
  /// claim because the missing shards' rows are simply absent).
  struct ViewScanResult {
    std::vector<store::ViewRecord> records;
    int failed_shards = 0;
  };

  // Algorithm 4 with the Section IV-F wait-on-initializing-row rule.
  void DoViewGet(
      store::Server* coordinator, const store::ViewDef& view,
      const Key& view_key, std::vector<ColumnName> columns, int read_quorum,
      bool allow_partial, int attempt,
      std::function<void(StatusOr<ViewScanResult>)> callback);

  // --- freshness contract (ISSUE 7) ---

  /// The bounded-staleness policy ladder: prove the bound from the tracker,
  /// else repair wounded families, else park briefly for in-flight
  /// propagations, else route to the SI/base path (FallbackRead). `deadline`
  /// caps the total parked time; `bound` is the resolved staleness bound.
  void BoundedViewGet(
      store::Server* coordinator, const store::ViewDef& view,
      const Key& view_key, store::ViewReadSpec spec, SimTime bound,
      SimTime deadline, int attempt,
      std::function<void(StatusOr<store::ViewReadOutcome>)> callback);

  /// DoViewGet wrapped into the outcome vocabulary: freshness claimed from
  /// the tracker, served_by = kView.
  void ServeFromView(
      store::Server* coordinator, const store::ViewDef& view,
      const Key& view_key, const store::ViewReadSpec& spec, int read_quorum,
      std::function<void(StatusOr<store::ViewReadOutcome>)> callback);

  /// Serves the read from the secondary index on the view-key column when
  /// one exists, else from a broadcast base-table match scan. Both paths
  /// read the base table's current state, so the outcome claims freshness
  /// "now" (staleness 0) — the router's escape hatch when the view cannot
  /// satisfy a bound in time.
  void FallbackRead(
      store::Server* coordinator, const store::ViewDef& view,
      const Key& view_key, const store::ViewReadSpec& spec,
      std::function<void(StatusOr<store::ViewReadOutcome>)> callback);

  /// Piggybacks (applied high-water, observed lag) for the task's view onto
  /// replica traffic toward the view partition's replicas, feeding their
  /// advisory FreshnessCaches.
  void GossipFreshness(const std::shared_ptr<PropagationTask>& task);

  static constexpr int kMaxReadSpins = 64;
  static constexpr SimTime kReadSpinDelay = Millis(1);

  store::Cluster* cluster_;
  Rng rng_;
  LockService locks_;
  std::vector<std::unique_ptr<SessionManager>> sessions_;
  std::vector<std::map<std::string, RowQueue>> row_queues_;  // by propagator
  std::map<std::string, std::vector<std::shared_ptr<PropagationTask>>>
      parked_;  // retry parking lot, by resource
  std::uint64_t active_ = 0;
  std::uint64_t next_task_id_ = 0;

  /// Every not-yet-finished task, so OnServerCrash can orphan a crashed
  /// server's share eagerly (closures dropped by the network would otherwise
  /// leak them out of the active count).
  std::map<std::uint64_t, std::shared_ptr<PropagationTask>> live_tasks_;
  /// In-flight tasks per serialization resource; the owned-range scrub skips
  /// families that propagation is still working on.
  std::map<std::string, int> active_per_resource_;
  /// The most recently created still-pending task per resource — the merge
  /// target for propagation coalescing. Erased when that task finishes.
  std::map<std::string, std::shared_ptr<PropagationTask>> coalesce_anchor_;

  /// Freshness intents registered at Put issue but not yet attached to
  /// their propagation tasks (OnBasePutIssued -> OnBasePutCommitted window).
  /// A crash of the origin in that window wounds the whole group.
  struct PutGroup {
    ServerId origin;
    std::map<std::string, std::uint64_t> intents;  // by view name
  };
  std::map<std::uint64_t, PutGroup> put_groups_;
  std::uint64_t next_put_group_ = 0;
};

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_MAINTENANCE_ENGINE_H_

// Interpretation of versioned-view rows (Definition 3 + Section IV-F).
//
// A view's backing table stores one flat row per (view key, base key) pair.
// Bookkeeping cells give each row its role:
//
//   __next  — the stale-chain pointer. Self-pointer  => live row;
//             other value => stale row pointing toward the live row.
//   __init  — accessibility marker: present and live on fully initialized
//             live rows; tombstoned while a promotion is copying data.
//   __B     — the base key (redundant with the composite row key; kept per
//             Definition 3 and used by the scrubber).
//   __ds    — live cell => the selection predicate currently fails (hidden).
//
// Rows whose view key is the deleted-row sentinel (store::IsSentinelViewKey)
// are hidden: a view-key deletion propagates as a view-key change to the
// base row's sentinel key, keeping the chain intact for later updates.
//
// These helpers centralize the interpretation so the read path, the
// propagation engine, the scrubber, and the tests all agree on it.

#ifndef MVSTORE_VIEW_VIEW_ROW_H_
#define MVSTORE_VIEW_VIEW_ROW_H_

#include <optional>
#include <string>

#include "common/types.h"
#include "storage/row.h"

namespace mvstore::view {

/// Decoded role of one versioned-view row.
struct RowStatus {
  bool exists = false;        ///< has a usable __next cell
  bool live = false;          ///< __next points to itself
  bool initialized = false;   ///< __init present and live
  bool hidden = false;        ///< sentinel key or __ds live (hidden row)
  Key next;                   ///< __next target (valid when exists)
  Timestamp next_ts = kNullTimestamp;  ///< __next timestamp (tlive / tstale)
};

/// Classifies `row`, stored under view key `view_key`.
RowStatus ClassifyViewRow(const storage::Row& row, const Key& view_key);

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_VIEW_ROW_H_

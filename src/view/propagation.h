// PropagateUpdate and GetLiveKey (Algorithms 2 and 3).
//
// One Propagation object executes a single attempt to propagate one base-
// table update to one view, starting from one view-key guess. It is an
// asynchronous state machine over the coordinator primitives of the server
// it runs on: every Get/Put inside it is a majority-quorum operation on the
// view's backing table ("write quorum for all Puts is a majority of the view
// replicas").
//
// Outcomes:
//   OK        — the versioned view reflects the update (Definition 3).
//   kAborted  — the guess was written by an update that has not itself
//               propagated yet (GetLiveKey found no row). The caller retries
//               with another guess (Algorithm 1, lines 5-7).
//   other     — infrastructure failure (quorum unreachable); caller retries.

#ifndef MVSTORE_VIEW_PROPAGATION_H_
#define MVSTORE_VIEW_PROPAGATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "storage/cell.h"
#include "storage/row.h"
#include "store/schema.h"
#include "store/server.h"

namespace mvstore::view {

/// One base-table update bound for one view (built by the maintenance
/// engine from Algorithm 1's collection step).
struct PropagationTask {
  std::uint64_t id = 0;
  const store::ViewDef* view = nullptr;
  Key base_key;

  /// The written view-key cell, when the update touched the view key:
  /// a live cell = the key was set; a tombstone = the key was deleted
  /// (the row must be marked deleted in the view, Section IV-C).
  std::optional<storage::Cell> view_key_update;

  /// Written cells of view-materialized columns (possibly empty).
  storage::Row materialized_updates;

  /// Distinct pre-update view-key versions collected from the base row's
  /// replicas; null cells mean a replica had never seen a view key.
  std::vector<storage::Cell> guesses;

  store::SessionId session = 0;
  ServerId origin = 0;       ///< coordinator that owns session bookkeeping
  SimTime created_at = 0;
  /// Span covering this task's whole propagation lifetime, a child of the
  /// originating Put's trace. Every attempt, lock wait, chain hop, and
  /// propagator handoff nests beneath it.
  TraceContext trace;
  /// Guess-rotation counter: bumped only on kAborted (guess not propagated
  /// yet), so the next attempt tries a different guess.
  int attempts = 0;
  /// Infrastructure-failure counter (quorum timeouts etc.). These retry
  /// with the SAME guess: a timed-out step's writes may have landed without
  /// their acks, and redoing the identical idempotent sequence is what
  /// cleans that limbo up; switching guesses could instead take the
  /// case-2c shortcut and strand a rival live row.
  int infra_failures = 0;
  /// True while the task sits in the engine's retry parking lot waiting for
  /// a same-row propagation to complete (or for its fallback timer).
  bool parked = false;

  /// Set by the engine when the server executing this task crashes: the
  /// task's volatile state died with the process, every pending closure that
  /// still holds the task bails out, and recovery is left to the view scrub
  /// (which counts it as an orphaned propagation).
  bool orphaned = false;

  /// Dedicated-propagator mode only: true once the task has reached its
  /// propagator's row queue. Before the handoff the task still lives at the
  /// origin (an origin crash orphans it); afterwards it survives origin
  /// crashes and re-dispatches run locally at the propagator.
  bool handed_off = false;

  /// True when the pre-image collection heard from EVERY replica
  /// (diagnostics; creation no longer depends on it because every existing
  /// row family carries its sentinel anchor from birth).
  bool full_collection = false;

  /// True while a Propagation attempt is executing this task — its quorum
  /// writes may be in flight, so coalescing must not mutate the payload.
  bool in_attempt = false;

  /// The server the current (or most recent) attempt executes on: the
  /// origin in lock-service/unsynchronized modes, the row's dedicated
  /// propagator AT THE TIME the attempt was pumped otherwise. A membership
  /// change re-homes ExecutorOf immediately, so this is the only record of
  /// where an already-running attempt actually lives — what OnServerLeave
  /// needs to orphan a departing executor's mid-attempt tasks.
  ServerId executed_on = -1;

  /// Tasks coalesced into this one (same view + base key + origin): their
  /// updates were LWW-merged into this task's payload, and their lifecycle
  /// bookkeeping (completion metrics, session notification, trace close)
  /// settles when this task settles.
  std::vector<std::shared_ptr<PropagationTask>> absorbed;

  /// Freshness intent (ISSUE 7) this task settles: registered by
  /// OnBasePutIssued, attached by OnBasePutCommitted, MarkApplied /
  /// MarkWounded when the task completes / dies. 0 = none.
  std::uint64_t freshness_intent = 0;

  /// Change-set group (ISSUE 10): every task fanned out of the same base
  /// Put shares the put-group id and ONE dispatch delay, so a multi-view
  /// update is maintained in a single maintenance round instead of one
  /// independently-timed round per view. 0 = pre-group task (tests).
  std::uint64_t put_group = 0;

  /// True when no replica had ever seen a view key for this row — the only
  /// situation in which propagation may create the row's first view row.
  bool AllGuessesNull() const;
};

class Propagation : public std::enable_shared_from_this<Propagation> {
 public:
  /// Runs one attempt on `executor` using `guess`. `done` fires exactly once.
  static void Run(store::Server* executor,
                  std::shared_ptr<PropagationTask> task,
                  const storage::Cell& guess,
                  std::function<void(Status)> done);

 private:
  static constexpr int kMaxChainHops = 1024;

  Propagation(store::Server* executor, std::shared_ptr<PropagationTask> task,
              storage::Cell guess, std::function<void(Status)> done);

  void Start();
  void GetLiveKeyStep(Key kv, int hops);
  void OnGuessMissing(const Key& kv, int hops);
  void Dispatch();
  Key EffectiveNewKey() const;

  // Row-family creation (first insert): see CreateAnchor in the .cc.
  void CreateAnchor();
  void RefreshLiveRow();   ///< Case 2c: knew is already the live key
  void Promote();          ///< new key supersedes the live row
  void StaleInsert();      ///< new key loses: insert a stale row

  // Shared tails.
  void ApplyMaterialized(const Key& target_view_key);
  void Finish(Status status);

  // Helpers.
  storage::Row SelectionMarkFromViewKey() const;
  storage::Row SelectionMarkFromMaterialized() const;
  void ViewPut(const Key& view_key, storage::Row cells,
               std::function<void()> next);
  void ViewReadRow(const Key& view_key, std::vector<ColumnName> columns,
                   std::function<void(StatusOr<storage::Row>)> next);
  /// Compose(view_key, base_key) built in `composed_scratch_`: each chain
  /// hop re-encodes into the same buffer instead of allocating a fresh key.
  const Key& ComposedRowKey(const Key& view_key);

  store::Server* executor_;
  std::shared_ptr<PropagationTask> task_;
  storage::Cell guess_;
  std::function<void(Status)> done_;
  Key composed_scratch_;

  // Resolved by GetLiveKey.
  Key live_key_;
  Timestamp live_ts_ = kNullTimestamp;
  bool have_live_ = false;
  /// True when the chase started from a null guess via the sentinel key
  /// (first-insert candidate).
  bool chasing_from_null_ = false;
};

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_PROPAGATION_H_

// Equi-join views, in the style of PNUTS Remote View Tables.
//
// Section III: "our approach could be extended to support equi-join views in
// much the same way as is done in PNUTS". The PNUTS construction co-locates
// the rows of both join sides by the join-key value; the join itself is
// computed at read time from the co-located fragments. We realize it with
// the machinery already in place: an equi-join view over A ⋈ B on
// A.ja = B.jb is DECLARED as two single-table projection views
//
//   <name>_left   over A, view key = ja, materializing `left_columns`
//   <name>_right  over B, view key = jb, materializing `right_columns`
//
// Both are incrementally and asynchronously maintained by the ordinary
// Algorithm 1-3 pipeline (so every correctness property the tests establish
// for single-table views — Definition 2/3 convergence, deletes, session
// guarantees — carries over side by side). A join read issues the two
// single-partition view Gets for the join-key value and pairs the live
// records (inner join).

#ifndef MVSTORE_VIEW_JOIN_VIEW_H_
#define MVSTORE_VIEW_JOIN_VIEW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "store/client.h"
#include "store/schema.h"

namespace mvstore::view {

struct JoinViewDef {
  std::string name;  ///< prefix of the two physical views
  std::string left_table;
  ColumnName left_join_column;
  std::vector<ColumnName> left_columns;  ///< materialized from the left side
  std::string right_table;
  ColumnName right_join_column;
  std::vector<ColumnName> right_columns;

  std::string LeftViewName() const { return name + "_left"; }
  std::string RightViewName() const { return name + "_right"; }
};

/// One joined result: a (left row, right row) pair sharing the join key.
struct JoinedRecord {
  Key left_key;            ///< primary key in the left table
  storage::Row left;       ///< left_columns cells
  Key right_key;           ///< primary key in the right table
  storage::Row right;      ///< right_columns cells
};

/// Declares the join view's two physical views into `schema`. Call before
/// constructing the Cluster, like any other DDL.
Status DeclareJoinView(store::Schema& schema, const JoinViewDef& def);

/// The Query route for this join view: Client::Query(JoinQuerySpec(def,
/// key), ...) delivers the joined pairs in ReadResult::joined.
/// `options.columns` is ignored for joins — each side reads its own
/// materialized columns.
store::QuerySpec JoinQuerySpec(const JoinViewDef& def, const Value& join_key);

/// Inner-join lookup by join-key value — deprecated forwarder onto
/// Client::Query(JoinQuerySpec(...)); kept for the JoinedRecord shape.
[[deprecated("use Client::Query(JoinQuerySpec(def, key), ...)")]] void JoinGet(
    store::Client& client, const JoinViewDef& def, const Value& join_key,
    const store::ReadOptions& options,
    std::function<void(StatusOr<std::vector<JoinedRecord>>)> callback);

using JoinedRecords = std::vector<JoinedRecord>;

/// Synchronous wrapper (drives the simulation; tests and examples).
[[deprecated("use Client::QuerySync(JoinQuerySpec(def, key), ...)")]]  //
StatusOr<JoinedRecords>
JoinGetSync(sim::Simulation& sim, store::Client& client,
            const JoinViewDef& def, const Value& join_key,
            const store::ReadOptions& options = {});

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_JOIN_VIEW_H_

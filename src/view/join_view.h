// Equi-join views, in the style of PNUTS Remote View Tables.
//
// Section III: "our approach could be extended to support equi-join views in
// much the same way as is done in PNUTS". The PNUTS construction co-locates
// the rows of both join sides by the join-key value; the join itself is
// computed at read time from the co-located fragments. We realize it with
// the machinery already in place: an equi-join view over A ⋈ B on
// A.ja = B.jb is DECLARED as two single-table projection views
//
//   <name>_left   over A, view key = ja, materializing `left_columns`
//   <name>_right  over B, view key = jb, materializing `right_columns`
//
// Both are incrementally and asynchronously maintained by the ordinary
// Algorithm 1-3 pipeline (so every correctness property the tests establish
// for single-table views — Definition 2/3 convergence, deletes, session
// guarantees — carries over side by side). A join read issues the two
// single-partition view Gets for the join-key value and pairs the live
// records (inner join).

#ifndef MVSTORE_VIEW_JOIN_VIEW_H_
#define MVSTORE_VIEW_JOIN_VIEW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "store/client.h"
#include "store/schema.h"

namespace mvstore::view {

struct JoinViewDef {
  std::string name;  ///< prefix of the two physical views
  std::string left_table;
  ColumnName left_join_column;
  std::vector<ColumnName> left_columns;  ///< materialized from the left side
  std::string right_table;
  ColumnName right_join_column;
  std::vector<ColumnName> right_columns;

  std::string LeftViewName() const { return name + "_left"; }
  std::string RightViewName() const { return name + "_right"; }
};

/// One joined result: a (left row, right row) pair sharing the join key.
struct JoinedRecord {
  Key left_key;            ///< primary key in the left table
  storage::Row left;       ///< left_columns cells
  Key right_key;           ///< primary key in the right table
  storage::Row right;      ///< right_columns cells
};

/// Declares the join view's two physical views into `schema`. Call before
/// constructing the Cluster, like any other DDL.
Status DeclareJoinView(store::Schema& schema, const JoinViewDef& def);

/// Inner-join lookup by join-key value: issues both view Gets (through
/// `client`, honoring its session) and pairs the results. The callback
/// receives the cross product of live left and right records under the key.
/// `options.columns` is ignored — each side reads its own materialized
/// columns; quorum/timeout/trace apply to both underlying ViewGets.
void JoinGet(store::Client& client, const JoinViewDef& def,
             const Value& join_key, const store::ReadOptions& options,
             std::function<void(StatusOr<std::vector<JoinedRecord>>)> callback);

/// Synchronous wrapper (drives the simulation; tests and examples).
StatusOr<std::vector<JoinedRecord>> JoinGetSync(
    sim::Simulation& sim, store::Client& client, const JoinViewDef& def,
    const Value& join_key, const store::ReadOptions& options = {});

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_JOIN_VIEW_H_

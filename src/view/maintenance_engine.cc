#include "view/maintenance_engine.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "storage/cell.h"
#include "store/codec.h"
#include "view/aggregate.h"
#include "view/scrub.h"
#include "view/view_row.h"

namespace mvstore::view {

namespace {
using storage::Cell;
using storage::Row;
}  // namespace

MaintenanceEngine::MaintenanceEngine(store::Cluster* cluster)
    : cluster_(cluster),
      rng_(cluster->ForkRng()),
      locks_(&cluster->simulation(), &cluster->network(),
             cluster->lock_service_endpoint(), Micros(120),
             cluster->config().lock_lease_ttl),
      row_queues_(static_cast<std::size_t>(cluster->num_servers())) {
  locks_.set_expired_counter(&cluster->metrics().locks_expired);
  sessions_.reserve(static_cast<std::size_t>(cluster->num_servers()));
  for (int i = 0; i < cluster->num_servers(); ++i) {
    // Each coordinator's session facade fronts its slice of the cluster-wide
    // freshness tracker (ISSUE 7).
    sessions_.push_back(std::make_unique<SessionManager>(
        &cluster->freshness(), static_cast<ServerId>(i)));
  }
  // Background owned-range scrub: one staggered tick chain per server.
  const SimTime scrub_interval = cluster->config().view_scrub_interval;
  if (scrub_interval > 0) {
    for (int i = 0; i < cluster->num_servers(); ++i) {
      const ServerId server = static_cast<ServerId>(i);
      const SimTime phase =
          scrub_interval * static_cast<SimTime>(i + 1) /
          static_cast<SimTime>(cluster->num_servers());
      cluster_->simulation().After(
          phase, [this, server] { OwnedRangeScrubTick(server); });
    }
  }
  cluster_->set_view_hook(this);
}

std::string MaintenanceEngine::ResourceOf(const PropagationTask& task) {
  std::string resource = task.view->name;
  resource.push_back('\0');
  resource += task.base_key;
  return resource;
}

SimTime MaintenanceEngine::RetryDelay(const PropagationTask& task) const {
  const store::PerfModel& perf = cluster_->config().perf;
  const SimTime delay =
      perf.propagation_retry_delay *
      static_cast<SimTime>(task.attempts + task.infra_failures + 1);
  return std::min(delay, perf.propagation_retry_delay_max);
}

const storage::Cell& MaintenanceEngine::CurrentGuess(
    const PropagationTask& task) const {
  MVSTORE_CHECK(!task.guesses.empty());
  return task.guesses[static_cast<std::size_t>(task.attempts) %
                      task.guesses.size()];
}

SimTime MaintenanceEngine::SampleDispatchDelay() {
  const store::PerfModel& perf = cluster_->config().perf;
  const double sampled = rng_.LogNormal(perf.propagation_dispatch_mu,
                                        perf.propagation_dispatch_sigma);
  return std::clamp(static_cast<SimTime>(sampled),
                    perf.propagation_dispatch_min,
                    perf.propagation_dispatch_max);
}

// ---------------------------------------------------------------------------
// Algorithm 1, lines 5-7: schedule asynchronous propagation.
// ---------------------------------------------------------------------------

std::uint64_t MaintenanceEngine::OnBasePutIssued(
    store::Server* coordinator, const Key& key,
    const std::vector<const store::ViewDef*>& views, Timestamp ts,
    store::SessionId session) {
  // Register the freshness intents NOW — synchronously, before the Put's
  // replica traffic — so a bounded read racing the Put's ack can never miss
  // them. Partitions are unresolved until the pre-image collection settles,
  // so each intent conservatively blocks its whole view.
  const std::uint64_t group_id = ++next_put_group_;
  PutGroup group;
  group.origin = coordinator->id();
  for (const store::ViewDef* view : views) {
    group.intents[view->name] = cluster_->freshness().RegisterIntent(
        view->name, key, ts, session, coordinator->id());
  }
  put_groups_.emplace(group_id, std::move(group));
  return group_id;
}

void MaintenanceEngine::OnBasePutCommitted(
    store::Server* coordinator, const Key& base_key,
    const storage::Row& written, std::vector<store::CollectedViewKeys> views,
    store::SessionId session, std::uint64_t put_group) {
  // Claim the intent group registered at Put issue. A missing group means
  // the origin crashed (or left) in the issue->collection window and the
  // cleanup already wounded its intents: intent_of then yields 0, and every
  // tracker call below no-ops.
  std::map<std::string, std::uint64_t> intents;
  if (auto it = put_groups_.find(put_group); it != put_groups_.end()) {
    intents = std::move(it->second.intents);
    put_groups_.erase(it);
  }
  auto intent_of = [&intents](const std::string& view_name) -> std::uint64_t {
    auto it = intents.find(view_name);
    return it == intents.end() ? 0 : it->second;
  };

  // Tasks that survive the per-view checks below. The whole group shares
  // ONE dispatch delay (sampled after the loop): a Put touching N views is
  // maintained in a single maintenance round, extending the same-row
  // coalescing of PR 3 across views of the same change-set.
  std::vector<std::shared_ptr<PropagationTask>> group_tasks;
  for (store::CollectedViewKeys& collected : views) {
    const store::ViewDef* view = collected.view;
    const std::uint64_t intent = intent_of(view->name);
    auto task = std::make_shared<PropagationTask>();
    task->id = ++next_task_id_;
    task->view = view;
    task->base_key = base_key;
    if (auto cell = written.Get(view->view_key_column)) {
      task->view_key_update = *cell;
    }
    for (const ColumnName& col : view->materialized_columns) {
      if (auto cell = written.Get(col)) {
        task->materialized_updates.Apply(col, *cell);
      }
    }
    if (!task->view_key_update && task->materialized_updates.empty()) {
      // Put did not actually touch this view: the intent settles with no
      // freshness effect.
      cluster_->freshness().Discard(intent);
      continue;
    }
    if (coordinator->crashed()) {
      // The coordinator died between committing the Put and scheduling the
      // propagation (the abort path still delivers the collected pre-images).
      // The base update is durable on its replicas but nobody will propagate
      // it — orphaned until the owned-range scrub re-derives the view row.
      // (The intent was already wounded by OnServerCrash's group cleanup,
      // so the MarkWounded here is a no-op on the usual path.)
      cluster_->freshness().MarkWounded(intent);
      cluster_->metrics().propagations_orphaned++;
      continue;
    }
    task->freshness_intent = intent;
    // Narrow the intent to the partitions this write can actually land in:
    // the written view key plus every collected pre-image. An empty set
    // (nothing collected, no key written) keeps blocking the whole view.
    {
      std::set<Key> partitions;
      if (task->view_key_update && !task->view_key_update->tombstone &&
          !task->view_key_update->value.empty()) {
        partitions.insert(task->view_key_update->value);
      }
      for (const Cell& guess : collected.old_keys) {
        if (!guess.IsNull() && !guess.tombstone && !guess.value.empty()) {
          partitions.insert(guess.value);
        }
      }
      cluster_->freshness().ResolvePartitions(intent, std::move(partitions));
    }
    // Prefer recent guesses: the newest pre-image is most likely to be the
    // current live key (the coordinator "is free to try the keys in any
    // order").
    task->guesses = std::move(collected.old_keys);
    task->full_collection = collected.full_collection;
    std::sort(task->guesses.begin(), task->guesses.end(),
              [](const Cell& a, const Cell& b) { return a.ts > b.ts; });
    task->session = session;
    task->origin = coordinator->id();
    task->put_group = put_group;
    task->created_at = cluster_->simulation().Now();
    // The task's lifetime span hangs off the Put's trace (we run inside the
    // collection continuation, which the coordinator scoped to the Put's
    // operation context). It stays open across dispatch delays and retries
    // until the task completes, is abandoned, or is orphaned.
    {
      Tracer& tracer = cluster_->tracer();
      task->trace = tracer.StartSpan(tracer.current(),
                                     "view.propagate " + view->name,
                                     static_cast<int>(task->origin),
                                     task->created_at);
    }

    // Session bookkeeping already opened at RegisterIntent (Put issue) —
    // strictly earlier than the historical PropagationStarted call here, so
    // Definition 4's guarantee window only widened.
    cluster_->metrics().propagations_started++;
    ++active_;
    RegisterTask(task);

    // Propagation coalescing: a pending same-row, same-origin task that has
    // not started writing absorbs this update — both propagate in ONE
    // maintenance round instead of two conflicting ones (the conflicts are
    // exactly what Figure 8's retry storms are made of).
    if (cluster_->config().propagation_coalescing) {
      const std::string resource = ResourceOf(*task);
      auto anchor = coalesce_anchor_.find(resource);
      if (anchor != coalesce_anchor_.end() &&
          CanAbsorb(*anchor->second, *task)) {
        AbsorbTask(anchor->second, task);
        continue;  // no dispatch: the task settles with its winner
      }
      coalesce_anchor_[resource] = task;
    }

    group_tasks.push_back(std::move(task));
  }

  if (group_tasks.empty()) return;
  if (group_tasks.size() > 1) cluster_->metrics().prop_multi_view_groups++;
  // One delay for the whole change-set: the views of a multi-view Put enter
  // maintenance together rather than straggling in independently.
  const SimTime delay = SampleDispatchDelay();
  for (std::shared_ptr<PropagationTask>& task : group_tasks) {
    switch (cluster_->config().propagation_mode) {
      case store::PropagationMode::kLockService:
        cluster_->simulation().After(
            delay, [this, task] { RunWithLocks(task); });
        break;
      case store::PropagationMode::kDedicatedPropagators:
        cluster_->simulation().After(
            delay, [this, task] { EnqueueOnPropagator(task); });
        break;
      case store::PropagationMode::kUnsynchronized:
        cluster_->simulation().After(
            delay, [this, task] { RunUnsynchronized(task); });
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Attempt outcome handling (shared by both concurrency-control modes).
// ---------------------------------------------------------------------------

void MaintenanceEngine::OnAttemptDone(
    std::shared_ptr<PropagationTask> task, Status status,
    std::function<void(bool)> then) {
  if (task->orphaned) return;  // executor crashed; bookkeeping already done
  if (status.ok()) {
    TaskCompleted(task);
    then(true);
    return;
  }
  cluster_->metrics().propagation_failures++;
  if (status.IsAborted()) {
    task->attempts++;  // rotate to the next guess
  } else {
    task->infra_failures++;  // same guess: redo the idempotent sequence
  }
  if (task->attempts >= kMaxAttempts || task->infra_failures >= kMaxAttempts) {
    TaskAbandoned(task);
    then(true);
    return;
  }
  // After cycling through every guess once, refresh the guesses from the
  // base row: concurrent updates may have propagated meanwhile and their
  // keys now exist in the view (Section IV-D's progress argument).
  if (status.IsAborted() &&
      task->attempts % static_cast<int>(task->guesses.size()) == 0) {
    RefreshGuesses(task, [then] { then(false); });
    return;
  }
  then(false);
}

void MaintenanceEngine::RefreshGuesses(std::shared_ptr<PropagationTask> task,
                                       std::function<void()> then) {
  // Read from the executing server (== the origin except in dedicated-
  // propagator mode, where a handed-off task outlives its origin).
  Tracer::Scope scope(&cluster_->tracer(), task->trace);
  store::Server& origin = cluster_->server(ExecutorOf(*task));
  origin.CoordinateRead(
      task->view->base_table, task->base_key,
      {task->view->view_key_column}, origin.MajorityQuorum(),
      [](StatusOr<storage::Row>) {},
      [task, then = std::move(then),
       n = cluster_->config().replication_factor](
          std::vector<storage::Row> replicas) {
        if (static_cast<int>(replicas.size()) == n) {
          task->full_collection = true;
        }
        for (const storage::Row& row : replicas) {
          Cell cell;
          if (auto c = row.Get(task->view->view_key_column)) cell = *c;
          // Never chase our OWN write read back from the base table: before
          // this task completes, chasing it can only land on this task's
          // own partial debris (case-2c shortcut) instead of the real live
          // row.
          if (task->view_key_update && cell.ts == task->view_key_update->ts &&
              cell.tombstone == task->view_key_update->tombstone &&
              cell.value == task->view_key_update->value) {
            continue;
          }
          const bool known =
              std::any_of(task->guesses.begin(), task->guesses.end(),
                          [&cell](const Cell& g) {
                            return g.ts == cell.ts && g.value == cell.value &&
                                   g.tombstone == cell.tombstone;
                          });
          if (!known) task->guesses.push_back(cell);
        }
        then();
      });
}

// ---------------------------------------------------------------------------
// Retry parking lot (the two Section IV-F modes): a failed propagation
// almost always failed because a SAME-ROW update has not propagated yet, so
// instead of polling on a timer it parks until a same-row propagation
// completes. A fallback timer guards liveness (e.g. the dependency was
// abandoned, or lives on another row family after a refresh).
// The paper-prototype (unsynchronized) mode deliberately keeps plain timer
// retries — its retry traffic is part of what Figure 8 measures.
// ---------------------------------------------------------------------------

void MaintenanceEngine::DispatchTask(std::shared_ptr<PropagationTask> task) {
  if (task->orphaned) return;
  switch (cluster_->config().propagation_mode) {
    case store::PropagationMode::kLockService:
      RunWithLocks(std::move(task));
      break;
    case store::PropagationMode::kDedicatedPropagators:
      EnqueueOnPropagator(std::move(task));
      break;
    case store::PropagationMode::kUnsynchronized:
      RunUnsynchronized(std::move(task));
      break;
  }
}

void MaintenanceEngine::ParkForRetry(const std::string& resource,
                                     std::shared_ptr<PropagationTask> task) {
  if (task->orphaned) return;
  task->parked = true;
  parked_[resource].push_back(task);
  cluster_->simulation().After(RetryDelay(*task), [this, task, resource] {
    if (!task->parked) return;  // already woken by a completion
    task->parked = false;
    auto it = parked_.find(resource);
    if (it != parked_.end()) {
      auto& tasks = it->second;
      tasks.erase(std::remove(tasks.begin(), tasks.end(), task), tasks.end());
      if (tasks.empty()) parked_.erase(it);
    }
    DispatchTask(task);
  });
}

void MaintenanceEngine::WakeParked(const std::string& resource) {
  auto it = parked_.find(resource);
  if (it == parked_.end()) return;
  std::vector<std::shared_ptr<PropagationTask>> tasks = std::move(it->second);
  parked_.erase(it);
  for (auto& task : tasks) {
    if (!task->parked) continue;
    task->parked = false;
    DispatchTask(task);
  }
}

// ---------------------------------------------------------------------------
// Propagation coalescing: pending same-row tasks collapse into one round.
// ---------------------------------------------------------------------------

bool MaintenanceEngine::CanAbsorb(const PropagationTask& winner,
                                  const PropagationTask& task) const {
  // Merging is only safe while the winner's payload is still inert: no
  // attempt running (its quorum writes would not carry the merged cells
  // atomically), no timed-out attempt in limbo (an infra failure may have
  // landed partial writes derived from the pre-merge payload — those must
  // be redone verbatim, see PropagationTask::infra_failures). The origin
  // must match so executor placement, crash semantics, and session
  // bookkeeping stay aligned; and a shared-lock (materialized-only) round
  // must not silently grow a view-key update it requested no exclusive
  // lock for.
  return !winner.orphaned && !winner.in_attempt &&
         winner.infra_failures == 0 && winner.origin == task.origin &&
         (winner.view_key_update.has_value() ||
          !task.view_key_update.has_value());
}

void MaintenanceEngine::AbsorbTask(
    const std::shared_ptr<PropagationTask>& winner,
    const std::shared_ptr<PropagationTask>& task) {
  cluster_->metrics().prop_batched++;
  // The winner's (pre-merge) view-key write is superseded below if the
  // newcomer's is newer; either way it never reached the view, so the
  // newcomer's pre-image of it must not become a guess to chase. The
  // comparison must be storage::Supersedes, not a bare timestamp test:
  // distinct clients can issue view-key writes at the SAME timestamp, and
  // the base table resolves that tie by the cell ordering — if the merge
  // kept the other cell, the coalesced round would propagate a key the
  // base table's LWW already discarded and the view would converge to the
  // wrong live row.
  const std::optional<Cell> own_write = winner->view_key_update;
  if (task->view_key_update &&
      (!winner->view_key_update ||
       storage::Supersedes(*task->view_key_update,
                           *winner->view_key_update))) {
    winner->view_key_update = task->view_key_update;
  }
  winner->materialized_updates.MergeFrom(task->materialized_updates);
  for (const Cell& guess : task->guesses) {
    if (own_write && guess.ts == own_write->ts &&
        guess.value == own_write->value &&
        guess.tombstone == own_write->tombstone) {
      continue;
    }
    const bool known = std::any_of(
        winner->guesses.begin(), winner->guesses.end(),
        [&guess](const Cell& g) {
          return g.ts == guess.ts && g.value == guess.value &&
                 g.tombstone == guess.tombstone;
        });
    if (!known) winner->guesses.push_back(guess);
  }
  // Mirror the winner's handoff state so a crash dooms or spares them
  // together (dedicated-propagator mode).
  task->handed_off = winner->handed_off;
  winner->absorbed.push_back(task);
  if (task->trace) {
    cluster_->tracer().Annotate(
        task->trace,
        "coalesced into propagation #" + std::to_string(winner->id));
  }
}

void MaintenanceEngine::FinishAbsorbed(
    const std::shared_ptr<PropagationTask>& winner, bool completed) {
  for (const auto& task : winner->absorbed) {
    if (task->orphaned) continue;  // crash bookkeeping already settled it
    if (completed) {
      cluster_->metrics().propagations_completed++;
      cluster_->metrics().propagation_delay.Record(
          cluster_->simulation().Now() - task->created_at);
      cluster_->tracer().EndSpan(task->trace, cluster_->simulation().Now());
    } else {
      cluster_->metrics().propagations_abandoned++;
      if (task->trace) {
        cluster_->tracer().Annotate(task->trace, "abandoned");
        cluster_->tracer().EndSpan(task->trace, cluster_->simulation().Now());
      }
    }
    --active_;
    UnregisterTask(task);
    NotifyOrigin(task, completed);
  }
  winner->absorbed.clear();
}

void MaintenanceEngine::TaskCompleted(
    const std::shared_ptr<PropagationTask>& task) {
  cluster_->metrics().propagations_completed++;
  cluster_->metrics().propagation_delay.Record(
      cluster_->simulation().Now() - task->created_at);
  cluster_->tracer().EndSpan(task->trace, cluster_->simulation().Now());
  --active_;
  UnregisterTask(task);
  NotifyOrigin(task, /*completed=*/true);
  GossipFreshness(task);
  FinishAbsorbed(task, /*completed=*/true);
  WakeParked(ResourceOf(*task));
}

void MaintenanceEngine::TaskAbandoned(
    const std::shared_ptr<PropagationTask>& task) {
  // Under pathological conflict rates (Figure 8 at range 1) thousands of
  // tasks can exhaust their budgets; log the first few and then sample.
  const std::uint64_t n = ++cluster_->metrics().propagations_abandoned;
  if (n <= 3 || n % 1000 == 0) {
    MVSTORE_LOG(Warning) << "abandoning propagation of base key '"
                         << task->base_key << "' to view '"
                         << task->view->name << "' after " << task->attempts
                         << " guess attempts (+" << task->infra_failures
                         << " infra retries); " << n
                         << " abandoned so far (view scrub/repair recovers)";
  }
  if (task->trace) {
    cluster_->tracer().Annotate(task->trace, "abandoned");
    cluster_->tracer().EndSpan(task->trace, cluster_->simulation().Now());
  }
  --active_;
  UnregisterTask(task);
  NotifyOrigin(task, /*completed=*/false);
  FinishAbsorbed(task, /*completed=*/false);
}

// ---------------------------------------------------------------------------
// Crash-stop fault model: eager orphaning of a crashed server's tasks, and
// owned-range scrub as the recovery path.
// ---------------------------------------------------------------------------

ServerId MaintenanceEngine::ExecutorOf(const PropagationTask& task) const {
  if (cluster_->config().propagation_mode ==
      store::PropagationMode::kDedicatedPropagators) {
    return cluster_->ring().PrimaryFor(task.base_key);
  }
  return task.origin;
}

void MaintenanceEngine::RegisterTask(
    const std::shared_ptr<PropagationTask>& task) {
  live_tasks_.emplace(task->id, task);
  active_per_resource_[ResourceOf(*task)]++;
}

void MaintenanceEngine::UnregisterTask(
    const std::shared_ptr<PropagationTask>& task) {
  live_tasks_.erase(task->id);
  const std::string resource = ResourceOf(*task);
  auto it = active_per_resource_.find(resource);
  if (it != active_per_resource_.end() && --it->second <= 0) {
    active_per_resource_.erase(it);
  }
  auto anchor = coalesce_anchor_.find(resource);
  if (anchor != coalesce_anchor_.end() && anchor->second == task) {
    coalesce_anchor_.erase(anchor);
  }
}

void MaintenanceEngine::OrphanTask(
    const std::shared_ptr<PropagationTask>& task) {
  if (task->orphaned) return;
  task->orphaned = true;
  cluster_->metrics().propagations_orphaned++;
  if (task->trace) {
    cluster_->tracer().Annotate(task->trace, "orphaned by crash");
    cluster_->tracer().EndSpan(task->trace, cluster_->simulation().Now());
  }
  --active_;
  UnregisterTask(task);
  if (task->parked) {
    task->parked = false;
    auto it = parked_.find(ResourceOf(*task));
    if (it != parked_.end()) {
      auto& tasks = it->second;
      tasks.erase(std::remove(tasks.begin(), tasks.end(), task), tasks.end());
      if (tasks.empty()) parked_.erase(it);
    }
  }
  // Wound the intent: the write may or may not be in the view, so bounded
  // reads stay blocked until a family audit proves convergence. Wounding
  // also settles the origin's session bookkeeping (engine-level cleanup
  // modeling the origin's failure detector): a session must not wait forever
  // on a propagation that died with another server. When the origin itself
  // is the crashed server, OnServerCrash resets its sessions right after.
  cluster_->freshness().MarkWounded(task->freshness_intent);
  // Tasks absorbed into this one died with it (the flag guard above makes
  // this idempotent against OnServerCrash orphaning them directly).
  for (const auto& absorbed : task->absorbed) OrphanTask(absorbed);
  task->absorbed.clear();
}

void MaintenanceEngine::OnServerCrash(store::Server* server) {
  const ServerId id = server->id();
  const bool dedicated = cluster_->config().propagation_mode ==
                         store::PropagationMode::kDedicatedPropagators;
  // Volatile task state on `id` dies: tasks executing there, and — in
  // dedicated mode — tasks born at `id` that never reached their propagator
  // (the in-flight handoff message is dropped by the incarnation bump).
  std::vector<std::shared_ptr<PropagationTask>> doomed;
  for (const auto& [task_id, task] : live_tasks_) {
    if (ExecutorOf(*task) == id ||
        (dedicated && !task->handed_off && task->origin == id)) {
      doomed.push_back(task);
    }
  }
  for (const auto& task : doomed) OrphanTask(task);
  // Intents registered at Put issue on `id` but not yet attached to a task
  // (the issue->collection window) die with the coordinator: wound them so
  // bounded reads stay honest until the families are audited.
  for (auto it = put_groups_.begin(); it != put_groups_.end();) {
    if (it->second.origin == id) {
      for (const auto& [view_name, intent] : it->second.intents) {
        cluster_->freshness().MarkWounded(intent);
      }
      it = put_groups_.erase(it);
    } else {
      ++it;
    }
  }
  row_queues_[id].clear();
  sessions_[id]->Reset();
}

void MaintenanceEngine::OnServerRestart(store::Server* server) {
  cluster_->metrics().orphaned_propagations_recovered +=
      RunOwnedRangeScrub(server->id());
}

void MaintenanceEngine::OnServerJoin(store::Server* server) {
  // Ownership of base-key ranges moved onto the joiner: re-derive view
  // state for what it now primarily owns, adopting any family orphaned by
  // the ownership move (a dedicated task that re-homed mid-flight).
  cluster_->metrics().orphaned_propagations_recovered +=
      RunOwnedRangeScrub(server->id());
}

void MaintenanceEngine::OnServerLeave(store::Server* server) {
  const ServerId id = server->id();
  const bool dedicated = cluster_->config().propagation_mode ==
                         store::PropagationMode::kDedicatedPropagators;
  // Like a crash, the leaver's volatile share dies — but the ring has
  // ALREADY dropped it, so ExecutorOf points at the ranges' new primaries
  // and cannot name what still physically runs here. Sweep by where work
  // actually is: tasks originated here that never handed off (the handoff
  // message dies with this endpoint's incarnation), attempts pumped on this
  // propagator (executed_on), and its still-queued row queues. Handed-off
  // tasks of this ORIGIN keep running elsewhere — their completion notice
  // to the dead origin just drops, like after an origin crash.
  std::vector<std::shared_ptr<PropagationTask>> doomed;
  for (const auto& [task_id, task] : live_tasks_) {
    if (dedicated) {
      if ((!task->handed_off && task->origin == id) ||
          (task->in_attempt && task->executed_on == id)) {
        doomed.push_back(task);
      }
    } else if (task->origin == id) {
      doomed.push_back(task);
    }
  }
  for (const auto& [resource, queue] : row_queues_[id]) {
    for (const auto& task : queue.tasks) doomed.push_back(task);
  }
  for (const auto& task : doomed) OrphanTask(task);
  // Same unattached-intent cleanup as a crash: the leaver's issue-window
  // intents will never attach to a task.
  for (auto it = put_groups_.begin(); it != put_groups_.end();) {
    if (it->second.origin == id) {
      for (const auto& [view_name, intent] : it->second.intents) {
        cluster_->freshness().MarkWounded(intent);
      }
      it = put_groups_.erase(it);
    } else {
      ++it;
    }
  }
  row_queues_[id].clear();
  sessions_[id]->Reset();
  // Recovery of the orphaned families follows the same path as after a
  // crash: every one of them has a (new) primary owner in the ring, whose
  // periodic owned-range scrub re-derives the view rows. Clusters that
  // churn membership should therefore run with view_scrub_interval > 0,
  // exactly like clusters that crash servers.
}

std::size_t MaintenanceEngine::RunOwnedRangeScrub(ServerId server) {
  std::size_t recovered = 0;
  for (const std::string& table : cluster_->schema().TableNames()) {
    for (const store::ViewDef* view : cluster_->schema().ViewsOn(table)) {
      recovered += ScrubOwnedRanges(
          *cluster_, *view, server,
          [this, view](const Key& base_key) {
            std::string resource = view->name;
            resource.push_back('\0');
            resource += base_key;
            return active_per_resource_.count(resource) != 0;
          },
          [this, view](const Key& base_key) {
            // The audit proved the family matches Definition 1: clear its
            // intents — wounded blockers, and dead bookkeeping whose
            // completion notice was lost (ISSUE 7).
            cluster_->freshness().FamilyAudited(view->name, base_key);
          });
    }
  }
  return recovered;
}

void MaintenanceEngine::OwnedRangeScrubTick(ServerId server) {
  if (!cluster_->server(server).crashed() &&
      cluster_->server(server).is_member()) {
    cluster_->metrics().orphaned_propagations_recovered +=
        RunOwnedRangeScrub(server);
  }
  cluster_->simulation().After(
      cluster_->config().view_scrub_interval,
      [this, server] { OwnedRangeScrubTick(server); });
}

void MaintenanceEngine::NotifyOrigin(
    const std::shared_ptr<PropagationTask>& task, bool completed) {
  // Settling the freshness intent also settles the origin's session
  // bookkeeping (the tracker's session layer). Intent bookkeeping lives
  // with the origin's tracker shard; in dedicated-propagator mode the
  // settlement notice crosses the network, exactly like the historical
  // session completion notice it generalizes — and, like it, can be lost to
  // an origin crash, in which case the next family audit clears the intent.
  const std::uint64_t intent = task->freshness_intent;
  if (intent == 0) return;
  store::FreshnessTracker* tracker = &cluster_->freshness();
  auto settle = [tracker, intent, completed] {
    if (completed) {
      tracker->MarkApplied(intent);
    } else {
      tracker->MarkWounded(intent);
    }
  };
  if (cluster_->config().propagation_mode !=
      store::PropagationMode::kDedicatedPropagators) {
    // Lock-service and unsynchronized modes execute on the origin itself.
    settle();
    return;
  }
  cluster_->network().Send(cluster_->ring().PrimaryFor(task->base_key),
                           task->origin, std::move(settle));
}

// ---------------------------------------------------------------------------
// Paper-prototype mode: coordinator-driven propagation with NO concurrency
// control. Conflicting propagations to the same base row may interleave —
// acceptable when view-key conflicts are rare, and exactly the behaviour
// Figure 8 measures under skew (retry storms from unpropagated guesses).
// ---------------------------------------------------------------------------

void MaintenanceEngine::RunUnsynchronized(
    std::shared_ptr<PropagationTask> task) {
  if (task->orphaned) return;
  store::Server* executor = &cluster_->server(task->origin);
  // Attempts run under the task's span (dispatch arrived via a bare timer,
  // which carries no ambient context).
  Tracer::Scope scope(&cluster_->tracer(), task->trace);
  task->in_attempt = true;
  task->executed_on = task->origin;
  Propagation::Run(executor, task, CurrentGuess(*task),
                   [this, task](Status status) {
                     task->in_attempt = false;
                     OnAttemptDone(task, std::move(status),
                                   [this, task](bool done) {
                                     if (done) return;
                                     cluster_->simulation().After(
                                         RetryDelay(*task), [this, task] {
                                           RunUnsynchronized(task);
                                         });
                                   });
                   });
}

// ---------------------------------------------------------------------------
// Section IV-F mode 1: coordinator-driven propagation under a lock service.
// ---------------------------------------------------------------------------

void MaintenanceEngine::RunWithLocks(std::shared_ptr<PropagationTask> task) {
  if (task->orphaned) return;
  store::Server* executor = &cluster_->server(task->origin);
  task->executed_on = task->origin;
  const std::string resource = ResourceOf(*task);
  const LockMode mode = task->view_key_update.has_value()
                            ? LockMode::kExclusive
                            : LockMode::kShared;
  Tracer::Scope scope(&cluster_->tracer(), task->trace);
  TraceContext lock_wait;
  if (!locks_.WouldGrantImmediately(resource, mode)) {
    cluster_->metrics().lock_waits++;
    // The wait span runs from the acquire request to the grant, making the
    // time spent queued behind a rival propagation visible in the trace.
    lock_wait = cluster_->tracer().StartSpan(
        task->trace, "view.lock_wait", static_cast<int>(executor->id()),
        cluster_->simulation().Now());
  }
  locks_.Acquire(
      executor->id(), resource, mode,
      [this, task, executor, resource, mode, lock_wait] {
        if (lock_wait) {
          cluster_->tracer().EndSpan(lock_wait, cluster_->simulation().Now());
        }
        if (task->orphaned) {
          // The grant reached a crashed requester: the dead process cannot
          // release, so the hold stays registered at the service until its
          // lease expires (counted in Metrics::locks_expired).
          return;
        }
        Tracer::Scope attempt_scope(&cluster_->tracer(), task->trace);
        task->in_attempt = true;
        Propagation::Run(
            executor, task, CurrentGuess(*task),
            [this, task, executor, resource, mode](Status status) {
              task->in_attempt = false;
              if (task->orphaned) {
                // Crashed mid-attempt: the Release below is never sent —
                // lease expiry reclaims the hold.
                return;
              }
              // Release between attempts: holding the lock across a retry
              // would deadlock against the very propagation this one is
              // waiting for.
              locks_.Release(executor->id(), resource, mode);
              OnAttemptDone(task, std::move(status),
                            [this, task, resource](bool done) {
                              if (done) return;
                              ParkForRetry(resource, task);
                            });
            });
      });
}

// ---------------------------------------------------------------------------
// Section IV-F mode 2: dedicated propagators chosen by consistent hashing of
// the base key; per-(view, base key) FIFO execution.
// ---------------------------------------------------------------------------

void MaintenanceEngine::EnqueueOnPropagator(
    std::shared_ptr<PropagationTask> task) {
  if (task->orphaned) return;
  const ServerId propagator = cluster_->ring().PrimaryFor(task->base_key);
  const std::string resource = ResourceOf(*task);
  auto enqueue = [this, task, propagator, resource] {
    if (task->orphaned) return;
    task->handed_off = true;
    RowQueue& queue = row_queues_[propagator][resource];
    queue.tasks.push_back(task);
    if (!queue.running) {
      queue.running = true;
      PumpRowQueue(propagator, resource);
    }
  };
  if (task->handed_off) {
    // Re-dispatch of a task already at the propagator (retry wake-up): no
    // network hop — responsibility was transferred once.
    enqueue();
    return;
  }
  // Hand the task over the network (no-op hop when origin == propagator),
  // under the task's span so the handoff hop shows up in its trace.
  Tracer::Scope scope(&cluster_->tracer(), task->trace);
  cluster_->network().Send(task->origin, propagator, std::move(enqueue));
}

void MaintenanceEngine::PumpRowQueue(ServerId propagator,
                                     const std::string& resource) {
  // The queue entry may have vanished under us: a propagator crash clears
  // row_queues_[propagator] while a completion callback for a previous head
  // is still in flight.
  auto per_server = row_queues_[propagator].find(resource);
  if (per_server == row_queues_[propagator].end()) return;
  RowQueue& queue = per_server->second;
  if (queue.tasks.empty()) {
    queue.running = false;
    row_queues_[propagator].erase(resource);
    return;
  }
  std::shared_ptr<PropagationTask> task = queue.tasks.front();
  queue.tasks.pop_front();
  store::Server* executor = &cluster_->server(propagator);
  // The pump may be running under the PREVIOUS task's delivery context;
  // re-enter the dequeued task's own span.
  Tracer::Scope scope(&cluster_->tracer(), task->trace);
  task->in_attempt = true;
  task->executed_on = propagator;
  Propagation::Run(
      executor, task, CurrentGuess(*task),
      [this, task, propagator, resource](Status status) {
        task->in_attempt = false;
        if (task->orphaned) {
          // Propagator crashed mid-attempt; its queues were cleared and the
          // owned-range scrub inherits this family.
          return;
        }
        OnAttemptDone(
            task, std::move(status),
            [this, task, propagator, resource](bool done) {
              if (!done) {
                // The update this one depends on has not propagated yet;
                // park until a same-row propagation completes (or the
                // fallback timer fires) and keep the queue moving.
                ParkForRetry(resource, task);
              }
              PumpRowQueue(propagator, resource);
            });
      });
}

// ---------------------------------------------------------------------------
// Algorithm 4: reading from a versioned view.
// ---------------------------------------------------------------------------

void MaintenanceEngine::HandleViewGet(
    store::Server* coordinator, const store::ViewDef& view,
    const Key& view_key, store::ViewReadSpec spec,
    std::function<void(StatusOr<store::ViewReadOutcome>)> callback) {
  // The ViewDef lives in the cluster schema, which is immutable for the
  // cluster's lifetime; hold it by pointer across the async hops.
  const store::ViewDef* view_def = &view;

  if (view.IsAggregate()) {
    // The client sees only the folded output column; a caller-supplied
    // projection would starve the fold of the per-base-key sub-aggregate
    // cells it reads. Every path below (view scan, SI/base fallback) folds
    // from the view's own materialized columns.
    spec.columns.clear();
  }

  if (spec.consistency == store::ReadConsistency::kBoundedStaleness) {
    const SimTime bound = spec.max_staleness > 0
                              ? spec.max_staleness
                              : cluster_->config().max_staleness_default;
    const SimTime deadline =
        cluster_->simulation().Now() + cluster_->config().freshness_wait_max;
    BoundedViewGet(coordinator, view, view_key, std::move(spec), bound,
                   deadline, /*attempt=*/0, std::move(callback));
    return;
  }

  SessionManager& sessions = *sessions_[coordinator->id()];
  if (cluster_->config().session_guarantees && spec.session != 0 &&
      spec.consistency == store::ReadConsistency::kReadYourWrites &&
      sessions.MustDefer(spec.session, view.name)) {
    cluster_->metrics().view_get_deferrals++;
    // The deferred continuation fires from the tracker's session layer,
    // under whatever context THAT runs in — capture this read's context
    // explicitly and span the blocked interval (Definition 4's wait, Fig 7).
    Tracer& tracer = cluster_->tracer();
    const TraceContext ctx = tracer.current();
    const TraceContext defer =
        tracer.StartSpan(ctx, "view.session_defer",
                         static_cast<int>(coordinator->id()),
                         cluster_->simulation().Now());
    const store::SessionId session = spec.session;
    sessions.Defer(session, view.name,
                   [this, coordinator, view_def, view_key, ctx, defer,
                    spec = std::move(spec),
                    callback = std::move(callback)]() mutable {
                     cluster_->tracer().EndSpan(defer,
                                                cluster_->simulation().Now());
                     Tracer::Scope scope(&cluster_->tracer(), ctx);
                     ServeFromView(coordinator, *view_def, view_key, spec,
                                   spec.read_quorum, std::move(callback));
                   });
    return;
  }
  ServeFromView(coordinator, view, view_key, spec, spec.read_quorum,
                std::move(callback));
}

// ---------------------------------------------------------------------------
// Freshness contract (ISSUE 7): the bounded-staleness policy ladder.
// ---------------------------------------------------------------------------

void MaintenanceEngine::BoundedViewGet(
    store::Server* coordinator, const store::ViewDef& view,
    const Key& view_key, store::ViewReadSpec spec, SimTime bound,
    SimTime deadline, int attempt,
    std::function<void(StatusOr<store::ViewReadOutcome>)> callback) {
  const store::ViewDef* view_def = &view;
  store::FreshnessTracker& tracker = cluster_->freshness();
  const Timestamp now_ts =
      store::kClientTimestampEpoch + cluster_->simulation().Now();
  const Timestamp need = std::max<Timestamp>(0, now_ts - bound);

  const store::FreshnessTracker::BlockerSummary blockers =
      tracker.BlockersBefore(view.name, view_key, need);

  if (blockers.live == 0 && blockers.wounded == 0) {
    // The bound is proven: no unsettled intent older than (now - bound) can
    // reach this partition. Serve from the view — at a quorum that
    // intersects propagation's majority write quorum, so the scan cannot
    // read a single replica that missed an applied (settled) propagation.
    ServeFromView(coordinator, view, view_key, spec,
                  std::max(spec.read_quorum, coordinator->MajorityQuorum()),
                  std::move(callback));
    return;
  }

  if (attempt == 0) cluster_->metrics().freshness_bound_misses++;

  if (blockers.live == 0) {
    // Only wounded families block: their propagations died, so no amount of
    // waiting helps. Fire a targeted repair of exactly those families (the
    // owned-range scrub's audit, scoped to the blockers), then re-prove.
    cluster_->metrics().freshness_targeted_repairs++;
    std::vector<Key> wounded = blockers.wounded_keys;
    coordinator->Enqueue(
        cluster_->config().perf.view_scan_local,
        [this, coordinator, view_def, view_key, spec = std::move(spec), bound,
         deadline, attempt, wounded = std::move(wounded),
         callback = std::move(callback)]() mutable {
          RepairViewFamilies(*cluster_, *view_def, wounded,
                             [this, view_def](const Key& base_key) {
                               std::string resource = view_def->name;
                               resource.push_back('\0');
                               resource += base_key;
                               return active_per_resource_.count(resource) !=
                                      0;
                             });
          // The audited families provably match Definition 1 now; clearing
          // their intents guarantees the re-entry below cannot see the same
          // wounded blockers (no repair loop).
          for (const Key& base_key : wounded) {
            cluster_->freshness().FamilyAudited(view_def->name, base_key);
          }
          BoundedViewGet(coordinator, *view_def, view_key, std::move(spec),
                         bound, deadline, attempt + 1, std::move(callback));
        });
    return;
  }

  // Live propagations block. Ask the router: will they plausibly settle
  // within the bound/wait budget? The coordinator's advisory cache answers
  // without a tracker round trip; fall through to the tracker's own
  // estimate when the cache is cold.
  SimTime lag = coordinator->freshness_cache().LagEstimate(view.name);
  if (lag < 0) lag = tracker.LagEstimate(view.name);
  const SimTime now = cluster_->simulation().Now();
  if (now >= deadline ||
      (cluster_->config().freshness_router && lag >= 0 && lag > bound)) {
    // Waiting is hopeless (deadline spent) or pointless (typical
    // propagation lag exceeds the bound): route around the view.
    FallbackRead(coordinator, view, view_key, spec, std::move(callback));
    return;
  }

  // Park until the view's freshness improves (an intent applies, discards,
  // or audits away) or the wait deadline fires — whichever comes first.
  cluster_->metrics().freshness_bound_waits++;
  Tracer& tracer = cluster_->tracer();
  const TraceContext ctx = tracer.current();
  auto fired = std::make_shared<bool>(false);
  auto wake = std::make_shared<std::function<void()>>(
      [this, coordinator, view_def, view_key, spec = std::move(spec), bound,
       deadline, attempt, ctx, fired, parked_at = now,
       callback = std::move(callback)]() mutable {
        if (*fired) return;
        *fired = true;
        cluster_->metrics().freshness_wait.Record(
            cluster_->simulation().Now() - parked_at);
        Tracer::Scope scope(&cluster_->tracer(), ctx);
        BoundedViewGet(coordinator, *view_def, view_key, std::move(spec),
                       bound, deadline, attempt + 1, std::move(callback));
      });
  tracker.NotifyOnImprovement(view.name, [wake] { (*wake)(); });
  cluster_->simulation().After(std::max<SimTime>(1, deadline - now),
                               [wake] { (*wake)(); });
}

void MaintenanceEngine::ServeFromView(
    store::Server* coordinator, const store::ViewDef& view,
    const Key& view_key, const store::ViewReadSpec& spec, int read_quorum,
    std::function<void(StatusOr<store::ViewReadOutcome>)> callback) {
  const store::ViewDef* view_def = &view;
  // Only eventual reads may degrade to a partial scatter: RYW and bounded
  // reads promised something about the rows they return, and rows missing
  // with their sub-shard would silently break that promise.
  const bool allow_partial =
      spec.consistency == store::ReadConsistency::kEventual;
  DoViewGet(coordinator, view, view_key, spec.columns, read_quorum,
            allow_partial, /*attempt=*/0,
            [this, view_def, view_key, callback = std::move(callback)](
                StatusOr<ViewScanResult> scan) mutable {
              if (!scan.ok()) {
                callback(scan.status());
                return;
              }
              store::ViewReadOutcome outcome;
              outcome.records = std::move(scan->records);
              if (view_def->IsAggregate()) {
                // Collapse the per-base-key sub-aggregates into the single
                // record the client sees (ISSUE 10).
                const AggregateFold fold =
                    FoldAggregateRecords(*view_def, outcome.records);
                cluster_->metrics().view_aggregate_folds++;
                cluster_->metrics().view_aggregate_fold_skipped +=
                    fold.skipped;
                outcome.records = FoldedAggregateView(*view_def, fold);
              }
              const Timestamp now_ts = store::kClientTimestampEpoch +
                                       cluster_->simulation().Now();
              if (scan->failed_shards > 0) {
                // Partial coverage: some sub-shards' rows are simply absent,
                // so no freshness can honestly be claimed — clamp to the
                // null timestamp ("everything after the epoch may be
                // missing") and record the degradation, not a staleness.
                outcome.freshness = kNullTimestamp;
                outcome.served_by = store::ServedBy::kView;
                callback(std::move(outcome));
                return;
              }
              if (view_def->shard_count > 1) {
                // A scatter-gather read is only as fresh as its weakest
                // sub-shard: claim the min of the per-shard freshness
                // (ISSUE 9's freshness-over-shards rule).
                Timestamp fresh = now_ts;
                for (int shard = 0; shard < view_def->shard_count; ++shard) {
                  fresh = std::min(
                      fresh, cluster_->freshness().FreshAsOfShard(
                                 view_def->name, view_key, shard,
                                 view_def->shard_count, now_ts));
                }
                outcome.freshness = fresh;
              } else {
                outcome.freshness = cluster_->freshness().FreshAsOf(
                    view_def->name, view_key, now_ts);
              }
              outcome.served_by = store::ServedBy::kView;
              cluster_->metrics().view_staleness.Record(
                  std::max<Timestamp>(0, now_ts - outcome.freshness));
              callback(std::move(outcome));
            });
}

void MaintenanceEngine::FallbackRead(
    store::Server* coordinator, const store::ViewDef& view,
    const Key& view_key, const store::ViewReadSpec& spec,
    std::function<void(StatusOr<store::ViewReadOutcome>)> callback) {
  const store::ViewDef* view_def = &view;
  const bool si = cluster_->schema().FindIndex(view.base_table,
                                               view.view_key_column) != nullptr;
  const store::ServedBy path =
      si ? store::ServedBy::kSiPath : store::ServedBy::kBaseScan;
  if (si) {
    cluster_->metrics().freshness_fallback_si++;
  } else {
    cluster_->metrics().freshness_fallback_base++;
  }
  auto on_rows = [this, view_def, path, columns = spec.columns,
                  callback = std::move(callback)](
                     StatusOr<std::vector<storage::KeyedRow>> rows) mutable {
    if (!rows.ok()) {
      callback(rows.status());
      return;
    }
    // Evaluate the view definition inline over the base rows: selection
    // filter, then project the wanted materialized columns.
    const std::vector<ColumnName>& wanted =
        columns.empty() ? view_def->materialized_columns : columns;
    store::ViewReadOutcome outcome;
    for (const storage::KeyedRow& kr : *rows) {
      if (view_def->selection.has_value()) {
        auto selected = kr.row.GetValue(view_def->selection->column);
        if (!selected || *selected != view_def->selection->equals) continue;
      }
      store::ViewRecord record;
      record.base_key = kr.key;
      for (const ColumnName& col : wanted) {
        if (auto cell = kr.row.Get(col); cell && !cell->tombstone) {
          record.cells.Apply(col, *cell);
        }
      }
      outcome.records.push_back(std::move(record));
    }
    if (view_def->IsAggregate()) {
      // Same fold as the view path, over the base rows' freshly evaluated
      // records — recompute-on-read, the baseline fig10 measures against.
      const AggregateFold fold =
          FoldAggregateRecords(*view_def, outcome.records);
      cluster_->metrics().view_aggregate_folds++;
      cluster_->metrics().view_aggregate_fold_skipped += fold.skipped;
      outcome.records = FoldedAggregateView(*view_def, fold);
    }
    // Both fallback paths read the base table's CURRENT state (the SI is
    // maintained synchronously with each replica write), so the outcome
    // claims freshness "now": staleness zero by construction.
    outcome.freshness =
        store::kClientTimestampEpoch + cluster_->simulation().Now();
    outcome.served_by = path;
    cluster_->metrics().view_staleness.Record(0);
    callback(std::move(outcome));
  };
  if (si) {
    coordinator->CoordinateIndexScan(view.base_table, view.view_key_column,
                                     view_key, std::move(on_rows));
  } else {
    coordinator->CoordinateBaseMatchScan(view.base_table, view.view_key_column,
                                         view_key, std::move(on_rows));
  }
}

void MaintenanceEngine::GossipFreshness(
    const std::shared_ptr<PropagationTask>& task) {
  // Piggyback (applied high-water, observed lag) for this view onto traffic
  // toward the view partition's replicas — the servers a future read of
  // this partition will coordinate scans against.
  const std::string view_name = task->view->name;
  const SimTime lag = cluster_->simulation().Now() - task->created_at;
  const double alpha = cluster_->config().freshness_lag_alpha;
  cluster_->freshness().RecordLag(view_name, lag, alpha);

  Key partition;
  if (task->view_key_update && !task->view_key_update->tombstone &&
      !task->view_key_update->value.empty()) {
    partition = task->view_key_update->value;
  } else {
    for (const Cell& guess : task->guesses) {
      if (!guess.IsNull() && !guess.tombstone && !guess.value.empty()) {
        partition = guess.value;
        break;
      }
    }
  }
  if (partition.empty()) return;

  const Timestamp high_water =
      cluster_->freshness().AppliedHighWater(view_name, partition);
  const ServerId from = ExecutorOf(*task);
  // Gossip to the replicas of the sub-shard this task actually wrote — the
  // servers a scatter-gather read of that shard will scan.
  const int shard_count = task->view->shard_count;
  for (ServerId replica : cluster_->server(0).ReplicasOf(
           view_name,
           store::ShardedViewPartitionPrefix(
               partition, store::ShardOfBaseKey(task->base_key, shard_count),
               shard_count))) {
    cluster_->metrics().freshness_gossip_updates++;
    store::Server* target = &cluster_->server(replica);
    cluster_->network().Send(
        from, replica, [target, view_name, high_water, lag, alpha] {
          target->freshness_cache().Merge(view_name, high_water, lag, alpha);
        });
  }
}

void MaintenanceEngine::DoViewGet(
    store::Server* coordinator, const store::ViewDef& view,
    const Key& view_key, std::vector<ColumnName> columns, int read_quorum,
    bool allow_partial, int attempt,
    std::function<void(StatusOr<ViewScanResult>)> callback) {
  const store::ViewDef* view_def = &view;
  // Sharded views scatter one scan per sub-shard and merge at the
  // coordinator; a single-shard view degenerates to the classic one-prefix
  // scan inside CoordinateViewScatterScan.
  std::vector<Key> prefixes;
  prefixes.reserve(static_cast<std::size_t>(std::max(1, view.shard_count)));
  for (int shard = 0; shard < std::max(1, view.shard_count); ++shard) {
    prefixes.push_back(
        store::ShardedViewPartitionPrefix(view_key, shard, view.shard_count));
  }
  coordinator->CoordinateViewScatterScan(
      view.name, std::move(prefixes), read_quorum, allow_partial,
      [this, coordinator, view_def, view_key, columns, read_quorum,
       allow_partial, attempt, callback = std::move(callback)](
          StatusOr<store::ScatterScanResult> scan) mutable {
        if (!scan.ok()) {
          callback(scan.status());
          return;
        }
        std::map<Key, const storage::Row*> live_rows;  // by base key
        std::map<Key, bool> initializing;              // by base key
        for (const storage::KeyedRow& kr : scan->rows) {
          auto split =
              store::SplitShardedViewRowKey(kr.key, view_def->shard_count);
          if (!split || split->first != view_key) continue;
          const Key& base_key = split->second;
          RowStatus status = ClassifyViewRow(kr.row, view_key);
          if (!status.exists) continue;
          if (!status.live) {
            cluster_->metrics().stale_rows_filtered++;
            continue;
          }
          if (!status.initialized) {
            initializing[base_key] = true;
            continue;
          }
          if (status.hidden) continue;
          live_rows[base_key] = &kr.row;
        }
        // Section IV-F: never expose a window where the row's only live
        // version is still being initialized — wait for the promotion to
        // finish (bounded).
        bool must_spin = false;
        for (const auto& [base_key, unused] : initializing) {
          if (live_rows.count(base_key) == 0) {
            must_spin = true;
            break;
          }
        }
        if (must_spin && attempt < kMaxReadSpins) {
          cluster_->metrics().view_get_spins++;
          // The retry crosses a bare timer; carry the context over it and
          // span the wait so initialization spins show in the timeline.
          Tracer& tracer = cluster_->tracer();
          const TraceContext ctx = tracer.current();
          const TraceContext spin =
              tracer.StartSpan(ctx, "view.read_spin",
                               static_cast<int>(coordinator->id()),
                               cluster_->simulation().Now());
          cluster_->simulation().After(
              kReadSpinDelay,
              [this, coordinator, view_def, view_key, ctx, spin,
               columns = std::move(columns), read_quorum, allow_partial,
               attempt, callback = std::move(callback)]() mutable {
                cluster_->tracer().EndSpan(spin, cluster_->simulation().Now());
                Tracer::Scope scope(&cluster_->tracer(), ctx);
                DoViewGet(coordinator, *view_def, view_key, std::move(columns),
                          read_quorum, allow_partial, attempt + 1,
                          std::move(callback));
              });
          return;
        }
        const std::vector<ColumnName>& wanted =
            columns.empty() ? view_def->materialized_columns : columns;
        ViewScanResult result;
        result.failed_shards = scan->failed_shards;
        result.records.reserve(live_rows.size());
        for (const auto& [base_key, row] : live_rows) {
          store::ViewRecord record;
          record.base_key = base_key;
          for (const ColumnName& col : wanted) {
            if (auto cell = row->Get(col); cell && !cell->tombstone) {
              record.cells.Apply(col, *cell);
            }
          }
          result.records.push_back(std::move(record));
        }
        callback(std::move(result));
      });
}

// ---------------------------------------------------------------------------

void MaintenanceEngine::Quiesce() {
  while (active_ > 0) {
    MVSTORE_CHECK(cluster_->simulation().Step())
        << "simulation ran dry with " << active_ << " propagations pending";
  }
}

}  // namespace mvstore::view

#include "view/session_manager.h"

#include "common/logging.h"

namespace mvstore::view {

void SessionManager::PropagationStarted(store::SessionId session,
                                        const std::string& view) {
  if (session == 0) return;
  pending_[{session, view}]++;
}

void SessionManager::PropagationFinished(store::SessionId session,
                                         const std::string& view) {
  if (session == 0) return;
  const SessionView key{session, view};
  auto it = pending_.find(key);
  // A finish with no matching start is possible under the crash model: the
  // coordinator crashed (resetting its session bookkeeping) and a completion
  // notice for a pre-crash propagation arrived afterwards.
  if (it == pending_.end()) return;
  if (--it->second > 0) return;
  pending_.erase(it);
  auto waiting = waiting_.find(key);
  if (waiting == waiting_.end()) return;
  std::vector<std::function<void()>> resumes = std::move(waiting->second);
  waiting_.erase(waiting);
  for (auto& resume : resumes) resume();
}

bool SessionManager::MustDefer(store::SessionId session,
                               const std::string& view) const {
  if (session == 0) return false;
  return pending_.count({session, view}) != 0;
}

void SessionManager::Reset() {
  pending_.clear();
  waiting_.clear();
}

void SessionManager::Defer(store::SessionId session, const std::string& view,
                           std::function<void()> resume) {
  MVSTORE_CHECK(MustDefer(session, view));
  ++deferred_total_;
  waiting_[{session, view}].push_back(std::move(resume));
}

}  // namespace mvstore::view

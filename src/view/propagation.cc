#include "view/propagation.h"

#include <utility>

#include "common/logging.h"
#include "store/codec.h"
#include "store/metrics.h"

namespace mvstore::view {

namespace {

using storage::Cell;
using storage::Row;
using store::kViewBaseKeyColumn;
using store::kViewInitColumn;
using store::kViewNextColumn;
using store::kViewSelectionColumn;

/// LWW comparison between a propagating view-key update and the current live
/// row, mirroring the base table's cell tie-breaking: larger timestamp wins;
/// on a timestamp tie a deletion (sentinel) beats a set, then the larger key
/// wins. Keeping this aligned with storage::Supersedes is what makes the
/// view converge to the same winner as the base table.
bool NewKeyWins(const Key& knew, Timestamp tnew, const Key& klive,
                Timestamp tlive) {
  if (tnew != tlive) return tnew > tlive;
  const bool new_sentinel = store::IsSentinelViewKey(knew);
  const bool live_sentinel = store::IsSentinelViewKey(klive);
  if (new_sentinel != live_sentinel) return new_sentinel;
  return knew > klive;
}

}  // namespace

bool PropagationTask::AllGuessesNull() const {
  for (const Cell& guess : guesses) {
    if (!guess.IsNull()) return false;
  }
  return true;
}

void Propagation::Run(store::Server* executor,
                      std::shared_ptr<PropagationTask> task,
                      const storage::Cell& guess,
                      std::function<void(Status)> done) {
  auto op = std::shared_ptr<Propagation>(
      new Propagation(executor, std::move(task), guess, std::move(done)));
  op->Start();
}

Propagation::Propagation(store::Server* executor,
                         std::shared_ptr<PropagationTask> task,
                         storage::Cell guess, std::function<void(Status)> done)
    : executor_(executor),
      task_(std::move(task)),
      guess_(std::move(guess)),
      done_(std::move(done)) {}

const Key& Propagation::ComposedRowKey(const Key& view_key) {
  composed_scratch_.clear();
  // Shard by BASE key, not view key: every row of one base key's family
  // (live row, stale chain, sentinel anchor) must stay within one sub-shard
  // or GetLiveKey's chain walk would cross partitions (DESIGN.md §12).
  const store::ViewDef& view = *task_->view;
  store::ShardedViewRowKeyTo(
      view_key, task_->base_key,
      store::ShardOfBaseKey(task_->base_key, view.shard_count),
      view.shard_count, composed_scratch_);
  return composed_scratch_;
}

void Propagation::ViewPut(const Key& view_key, storage::Row cells,
                          std::function<void()> next) {
  auto self = shared_from_this();
  executor_->CoordinateWrite(
      task_->view->name, ComposedRowKey(view_key), cells,
      executor_->MajorityQuorum(),
      [self, next = std::move(next)](Status status) {
        if (!status.ok()) {
          self->Finish(status);
          return;
        }
        next();
      });
}

void Propagation::ViewReadRow(
    const Key& view_key, std::vector<ColumnName> columns,
    std::function<void(StatusOr<storage::Row>)> next) {
  executor_->CoordinateRead(
      task_->view->name, ComposedRowKey(view_key), std::move(columns),
      executor_->MajorityQuorum(), std::move(next));
}

// The effective new view key of a view-key update: deletions map to the
// base row's sentinel key (the row is kept but hidden; Section IV-C).
Key Propagation::EffectiveNewKey() const {
  MVSTORE_CHECK(task_->view_key_update.has_value());
  const Cell& update = *task_->view_key_update;
  return update.tombstone ? store::DeletedSentinelViewKey(task_->base_key)
                          : update.value;
}

void Propagation::Start() {
  if (guess_.IsNull()) {
    // A never-written pre-image: this update was applied at some replica
    // before ANY view-key write. The row family, if it exists at all, hangs
    // off the sentinel anchor (every chain originates there); if even the
    // anchor is missing, this propagation may create it.
    chasing_from_null_ = true;
    GetLiveKeyStep(store::DeletedSentinelViewKey(task_->base_key), /*hops=*/0);
    return;
  }
  if (guess_.tombstone) {
    // Pre-image says "deleted": the deletion's propagation left (or will
    // leave) a sentinel row; chase from there.
    GetLiveKeyStep(store::DeletedSentinelViewKey(task_->base_key), /*hops=*/0);
    return;
  }
  GetLiveKeyStep(guess_.value, /*hops=*/0);
}

// Algorithm 3: follow Next pointers from the guess to the live row.
void Propagation::GetLiveKeyStep(Key kv, int hops) {
  if (hops > kMaxChainHops) {
    Finish(Status::Internal("stale chain exceeded " +
                            std::to_string(kMaxChainHops) + " hops"));
    return;
  }
  auto self = shared_from_this();
  ViewReadRow(kv, {kViewNextColumn},
              [self, kv, hops](StatusOr<storage::Row> result) {
                if (!result.ok()) {
                  self->Finish(result.status());
                  return;
                }
                auto next = result->Get(kViewNextColumn);
                if (!next || next->tombstone) {
                  self->OnGuessMissing(kv, hops);
                  return;
                }
                if (next->value == kv) {  // found the live row
                  self->live_key_ = kv;
                  self->live_ts_ = next->ts;
                  self->have_live_ = true;
                  self->Dispatch();
                  return;
                }
                self->executor_->metrics()->chain_hops++;
                if (Tracer* tracer = self->executor_->tracer();
                    tracer != nullptr && self->task_->trace) {
                  // Instant marker: one per Next-pointer followed, so a
                  // trace shows how long the stale chain was (Algorithm 3).
                  TraceContext hop_span = tracer->StartSpan(
                      self->task_->trace, "view.chain_hop",
                      static_cast<int>(self->executor_->id()),
                      self->executor_->simulation()->Now());
                  tracer->Annotate(hop_span,
                                   "hop=" + std::to_string(hops + 1));
                  tracer->EndSpan(hop_span,
                                  self->executor_->simulation()->Now());
                }
                self->GetLiveKeyStep(next->value, hops + 1);
              });
}

// Key kv does not exist in the view (Algorithm 3 line 10). Normally that
// means the update that wrote this guess has not propagated yet and the
// caller must retry with another guess. The exception: a null pre-image led
// us to the sentinel anchor and even the anchor is missing — then this
// propagation creates the anchor itself (an idempotent write: every creator
// writes identical bookkeeping cells, so concurrent creators converge) and
// proceeds from it. Routing ALL row creation through the anchor is what
// keeps concurrent first inserts from deadlocking on each other's
// unpropagated keys or from creating rival live rows.
void Propagation::OnGuessMissing(const Key& kv, int hops) {
  // A null guess chased the sentinel anchor and found nothing. Since EVERY
  // existing row family has its anchor from birth (bootstrap and creation
  // both write it), a missing anchor means the family does not exist yet —
  // so this propagation creates it. Creation is idempotent and conflict-free
  // (one fixed key per family, identical bookkeeping cells from every
  // creator), so racing creators and even stale knowledge are harmless:
  // worst case we re-write the same anchor.
  if (hops == 0 && chasing_from_null_) {
    CreateAnchor();
    return;
  }
  Finish(Status::Aborted("view key guess '" + kv + "' not in view yet"));
}

void Propagation::Dispatch() {
  MVSTORE_CHECK(have_live_);
  if (!task_->view_key_update.has_value()) {
    // Materialized-column (and/or selection) update only: line 12.
    ApplyMaterialized(live_key_);
    return;
  }
  const Key knew = EffectiveNewKey();
  const Timestamp tnew = task_->view_key_update->ts;
  if (knew == live_key_) {
    RefreshLiveRow();
  } else if (NewKeyWins(knew, tnew, live_key_, live_ts_)) {
    Promote();
  } else {
    StaleInsert();
  }
}

storage::Row Propagation::SelectionMarkFromViewKey() const {
  Row marks;
  const auto& view = *task_->view;
  if (!view.selection.has_value() ||
      view.selection->column != view.view_key_column ||
      !task_->view_key_update || task_->view_key_update->tombstone) {
    return marks;
  }
  const Cell& update = *task_->view_key_update;
  const bool selected = update.value == view.selection->equals;
  marks.Apply(kViewSelectionColumn,
              selected ? Cell::Tombstone(update.ts)
                       : Cell::Live("1", update.ts));
  return marks;
}

storage::Row Propagation::SelectionMarkFromMaterialized() const {
  Row marks;
  const auto& view = *task_->view;
  if (!view.selection.has_value()) return marks;
  auto cell = task_->materialized_updates.Get(view.selection->column);
  if (!cell) return marks;
  const bool selected =
      !cell->tombstone && cell->value == view.selection->equals;
  marks.Apply(kViewSelectionColumn, selected ? Cell::Tombstone(cell->ts)
                                             : Cell::Live("1", cell->ts));
  return marks;
}

// Creates the row family's sentinel anchor: a hidden live row under the
// base row's sentinel key with the minimum possible Next timestamp, so any
// real view-key update supersedes it via the normal Promote path (which
// also copies out any materialized cells parked here). The bookkeeping
// cells are identical for every creator, so concurrent creations LWW-merge
// into one anchor. Materialized cells of THIS update ride along.
void Propagation::CreateAnchor() {
  const Key anchor = store::DeletedSentinelViewKey(task_->base_key);
  const Timestamp t_anchor = kNullTimestamp + 1;

  Row cells;
  cells.Apply(kViewBaseKeyColumn, Cell::Live(task_->base_key, t_anchor));
  cells.Apply(kViewNextColumn, Cell::Live(anchor, t_anchor));
  cells.Apply(kViewInitColumn, Cell::Live("1", t_anchor));
  cells.MergeFrom(task_->materialized_updates);
  cells.MergeFrom(SelectionMarkFromMaterialized());

  auto self = shared_from_this();
  ViewPut(anchor, std::move(cells), [self, anchor, t_anchor] {
    if (!self->task_->view_key_update.has_value()) {
      // Materialized-only update: its cells are parked in the anchor (the
      // row family's current live row); done.
      self->Finish(Status::OK());
      return;
    }
    // Proceed as if GetLiveKey had found the anchor as the live row; the
    // real view-key update then promotes over it (any real timestamp beats
    // t_anchor) or refreshes it (deletion of a never-set key).
    self->live_key_ = anchor;
    self->live_ts_ = t_anchor;
    self->have_live_ = true;
    self->Dispatch();
  });
}

// Case 2c: knew is already the live view key — refresh its timestamp
// (Algorithm 2 line 4 has no structural effect) and fold in any
// materialized updates. The refresh also (re)asserts the __init marker:
// after a promotion that crashed between staling the old row and writing
// __init, the retry lands here and must complete the initialization, or
// the row would stay invisible forever.
void Propagation::RefreshLiveRow() {
  const Timestamp tnew = task_->view_key_update->ts;
  const Key knew = EffectiveNewKey();
  Row cells;
  cells.Apply(kViewBaseKeyColumn, Cell::Live(task_->base_key, tnew));
  cells.Apply(kViewNextColumn, Cell::Live(knew, tnew));
  cells.Apply(kViewInitColumn, Cell::Live("1", tnew));
  cells.MergeFrom(SelectionMarkFromViewKey());

  auto self = shared_from_this();
  ViewPut(knew, std::move(cells),
          [self, knew] { self->ApplyMaterialized(knew); });
}

// The new view key supersedes the current live row. We deviate from
// Algorithm 2's literal step order (create row; CopyData; stale old) in one
// way: the copied cells ride in the SAME Put that creates the new row. A
// row with a self Next pointer therefore always carries its inherited
// materialized cells — a half-finished promotion can be retried (or
// completed by a later update's case-2c refresh) without ever losing data,
// which the literal order cannot guarantee when messages are lost between
// the steps.
//
// Steps: (1) read the old live row's materialized cells (+ the selection
// mark, a row-level fact that travels with the row); (2) write the new row
// — bookkeeping cells, copied cells at their ORIGINAL timestamps (LWW keeps
// whichever value is globally newest), and this update's own materialized
// cells — still inaccessible (no __init yet); (3) mark the old live row
// stale (line 8), revoking its __init; (4) set __init on the new row
// (Section IV-F's accessibility rule: at no point are two initialized live
// rows exposed).
void Propagation::Promote() {
  const Key knew = EffectiveNewKey();
  const Timestamp tnew = task_->view_key_update->ts;
  executor_->metrics()->live_row_switches++;

  auto self = shared_from_this();
  std::vector<ColumnName> copy_columns = task_->view->materialized_columns;
  copy_columns.push_back(kViewSelectionColumn);
  ViewReadRow(
      live_key_, std::move(copy_columns),
      [self, knew, tnew](StatusOr<storage::Row> old_row) {
        if (!old_row.ok()) {
          self->Finish(old_row.status());
          return;
        }
        Row cells = *std::move(old_row);  // CopyData (line 7)
        cells.Apply(kViewBaseKeyColumn,
                    Cell::Live(self->task_->base_key, tnew));
        cells.Apply(kViewNextColumn, Cell::Live(knew, tnew));
        cells.MergeFrom(self->SelectionMarkFromViewKey());
        cells.MergeFrom(self->task_->materialized_updates);
        cells.MergeFrom(self->SelectionMarkFromMaterialized());
        self->ViewPut(knew, std::move(cells), [self, knew, tnew] {
          // Line 8: the old live row becomes stale and loses its
          // accessibility marker. The revocation is stamped with the OLD
          // row's live timestamp, not tnew: a live row's __init always
          // carries its Next pointer's timestamp, so the tombstone still
          // wins that tie — while a later re-promotion of the old key at
          // tnew (reachable when distinct clients write at the same
          // timestamp and the value tie-break re-elects it) can re-assert
          // __init instead of losing the tie to this tombstone forever.
          Row stale;
          stale.Apply(kViewNextColumn, Cell::Live(knew, tnew));
          stale.Apply(kViewInitColumn, Cell::Tombstone(self->live_ts_));
          self->executor_->metrics()->stale_rows_created++;
          self->ViewPut(self->live_key_, std::move(stale),
                        [self, knew, tnew] {
                          Row init;
                          init.Apply(kViewInitColumn, Cell::Live("1", tnew));
                          self->ViewPut(knew, std::move(init), [self] {
                            self->Finish(Status::OK());
                          });
                        });
        });
      });
}

// The new view key loses to the current live row: record it as a stale row
// whose Next pointer leads (directly) to the live row (Algorithm 2 line 10).
void Propagation::StaleInsert() {
  const Key knew = EffectiveNewKey();
  const Timestamp tnew = task_->view_key_update->ts;
  executor_->metrics()->stale_rows_created++;

  Row cells;
  cells.Apply(kViewBaseKeyColumn, Cell::Live(task_->base_key, tnew));
  cells.Apply(kViewNextColumn, Cell::Live(live_key_, tnew));

  auto self = shared_from_this();
  Key target = live_key_;
  ViewPut(knew, std::move(cells),
          [self, target] { self->ApplyMaterialized(target); });
}

// Algorithm 2 line 12: write the materialized cells into the live row.
void Propagation::ApplyMaterialized(const Key& target_view_key) {
  Row cells = task_->materialized_updates;
  cells.MergeFrom(SelectionMarkFromMaterialized());
  if (cells.empty()) {
    Finish(Status::OK());
    return;
  }
  auto self = shared_from_this();
  ViewPut(target_view_key, std::move(cells),
          [self] { self->Finish(Status::OK()); });
}

void Propagation::Finish(Status status) {
  MVSTORE_CHECK(done_ != nullptr) << "Propagation finished twice";
  auto done = std::move(done_);
  done_ = nullptr;
  done(std::move(status));
}

}  // namespace mvstore::view

#include "view/aggregate.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "storage/cell.h"

namespace mvstore::view {

std::optional<std::int64_t> ParseAggregateValue(std::string_view value) {
  if (value.empty()) return std::nullopt;
  // strtoll accepts leading whitespace and trailing garbage; reject both by
  // checking the parse consumed the whole string.
  std::string buf(value);
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::int64_t>(parsed);
}

AggregateFold FoldAggregateRecords(
    const store::ViewDef& view,
    const std::vector<store::ViewRecord>& records) {
  AggregateFold fold;
  for (const store::ViewRecord& record : records) {
    if (view.aggregate == store::AggregateFn::kCount) {
      // Membership is the sub-aggregate: every live record counts once,
      // cells or not.
      fold.value += 1;
      fold.has_value = true;
      fold.contributing++;
      for (const auto& [col, cell] : record.cells.cells()) {
        fold.max_ts = std::max(fold.max_ts, cell.ts);
      }
      continue;
    }
    auto cell = record.cells.Get(view.aggregate_column);
    std::optional<std::int64_t> value;
    if (cell && !cell->tombstone) value = ParseAggregateValue(cell->value);
    if (!value) {
      fold.skipped++;
      continue;
    }
    switch (view.aggregate) {
      case store::AggregateFn::kSum:
        fold.value += *value;
        break;
      case store::AggregateFn::kMin:
        fold.value = fold.has_value ? std::min(fold.value, *value) : *value;
        break;
      case store::AggregateFn::kMax:
        fold.value = fold.has_value ? std::max(fold.value, *value) : *value;
        break;
      case store::AggregateFn::kCount:
      case store::AggregateFn::kNone:
        break;  // unreachable: count handled above, kNone never folds
    }
    fold.has_value = true;
    fold.contributing++;
    fold.max_ts = std::max(fold.max_ts, cell->ts);
  }
  return fold;
}

std::vector<store::ViewRecord> FoldedAggregateView(
    const store::ViewDef& view,
    const std::vector<store::ViewRecord>& records) {
  return FoldedAggregateView(view, FoldAggregateRecords(view, records));
}

std::vector<store::ViewRecord> FoldedAggregateView(const store::ViewDef& view,
                                                   const AggregateFold& fold) {
  std::vector<store::ViewRecord> out;
  if (!fold.has_value) return out;
  store::ViewRecord record;
  record.cells.Apply(view.AggregateOutputColumn(),
                     storage::Cell::Live(std::to_string(fold.value),
                                         fold.max_ts));
  out.push_back(std::move(record));
  return out;
}

}  // namespace mvstore::view

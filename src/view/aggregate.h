// Read-side folding for aggregate views (ISSUE 10).
//
// An aggregate view's backing table stores one row per (view key, base key)
// — exactly the layout of a projection view — whose materialized cell is
// that base row's *sub-aggregate* (its qty for SUM(qty), its bare
// membership for COUNT(*)). Propagation deltas therefore stay LWW cell
// merges: duplicated or reordered deltas converge to the same per-base-key
// cells without coordination, the same order-insensitive-state/fold-at-read
// split that fixed the PR 4 anti-entropy digests. The fold below is the
// other half: the coordinator collapses the (possibly scatter-gathered)
// partition scan into the single aggregate record the client sees.
//
// Folding at read time is what makes the design eventually consistent for
// free: a stored running total would need the deltas to commute *as
// applied* (increments), which LWW registers do not give — per-base-key
// cells do.

#ifndef MVSTORE_VIEW_AGGREGATE_H_
#define MVSTORE_VIEW_AGGREGATE_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "store/hooks.h"
#include "store/schema.h"

namespace mvstore::view {

/// Parses a cell value as a signed 64-bit integer (the aggregate domain).
/// Rejects empty strings, non-digit characters, and out-of-range values.
std::optional<std::int64_t> ParseAggregateValue(std::string_view value);

/// The fold of one view key's live records.
struct AggregateFold {
  /// False when nothing contributed (no records, or every record's
  /// aggregate cell was missing/unparsable for sum/min/max).
  bool has_value = false;
  std::int64_t value = 0;
  std::uint64_t contributing = 0;  ///< records folded into `value`
  std::uint64_t skipped = 0;       ///< records dropped (bad/missing cell)
  /// Newest cell timestamp among contributing records (kNullTimestamp when
  /// none carried a cell, e.g. COUNT over bookkeeping-only rows).
  Timestamp max_ts = kNullTimestamp;
};

/// Folds the per-base-key records of `view` (which must be an aggregate
/// view) under its AggregateFn. COUNT counts every record; SUM/MIN/MAX fold
/// the parseable `aggregate_column` cells and count the rest in `skipped`.
AggregateFold FoldAggregateRecords(const store::ViewDef& view,
                                   const std::vector<store::ViewRecord>& records);

/// The client-visible shape: one record named by AggregateOutputColumn()
/// carrying the folded value (base_key empty — no single base row produced
/// it), or an empty vector when nothing contributed (like SQL GROUP BY, an
/// empty group is absent rather than zero).
std::vector<store::ViewRecord> FoldedAggregateView(const store::ViewDef& view,
                                                   const AggregateFold& fold);
std::vector<store::ViewRecord> FoldedAggregateView(
    const store::ViewDef& view, const std::vector<store::ViewRecord>& records);

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_AGGREGATE_H_

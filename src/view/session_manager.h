// Session guarantees (Section V, Definition 4).
//
// One SessionManager per coordinator server ("all requests in a session are
// directed by the client to the same coordinator server"). The coordinator
// associates every pending view-update propagation with the session of the
// base-table update that triggered it; a session's view Get blocks until the
// session's own pending propagations for that view have completed.

#ifndef MVSTORE_VIEW_SESSION_MANAGER_H_
#define MVSTORE_VIEW_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "store/hooks.h"

namespace mvstore::view {

class SessionManager {
 public:
  SessionManager() = default;

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers one pending propagation for (session, view). Called when the
  /// base Put commits — before the propagation is even dispatched — so a
  /// view Get issued immediately after the Put's ack observes it.
  void PropagationStarted(store::SessionId session, const std::string& view);

  /// Marks one propagation complete; resumes any Gets it was blocking.
  void PropagationFinished(store::SessionId session, const std::string& view);

  /// True when a Get on `view` within `session` must wait.
  bool MustDefer(store::SessionId session, const std::string& view) const;

  /// Parks `resume` until (session, view) has no pending propagations.
  /// Callers check MustDefer first.
  void Defer(store::SessionId session, const std::string& view,
             std::function<void()> resume);

  /// Drops all session bookkeeping and parked resumes: the coordinator that
  /// owned these sessions crashed, and its sessions died with it (deferred
  /// Gets are answered by the client's own request timeout).
  void Reset();

  std::uint64_t deferred_total() const { return deferred_total_; }

 private:
  using SessionView = std::pair<store::SessionId, std::string>;

  std::map<SessionView, int> pending_;
  std::map<SessionView, std::vector<std::function<void()>>> waiting_;
  std::uint64_t deferred_total_ = 0;
};

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_SESSION_MANAGER_H_

// Session guarantees (Section V, Definition 4).
//
// One SessionManager per coordinator server ("all requests in a session are
// directed by the client to the same coordinator server"). The coordinator
// associates every pending view-update propagation with the session of the
// base-table update that triggered it; a session's view Get blocks until the
// session's own pending propagations for that view have completed.
//
// Since ISSUE 7 the actual bookkeeping lives in the cluster-wide
// store::FreshnessTracker (a session's "my own writes" set is exactly the
// set of freshness intents registered under this coordinator + session), so
// this class is a facade over one origin's slice of the tracker's session
// layer. The historical standalone shape — default-construct and drive
// PropagationStarted/Finished directly — still works: the facade then owns a
// private tracker of its own.

#ifndef MVSTORE_VIEW_SESSION_MANAGER_H_
#define MVSTORE_VIEW_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "store/freshness.h"

namespace mvstore::view {

class SessionManager {
 public:
  /// Standalone: owns a private tracker (unit tests, bare construction).
  SessionManager()
      : owned_(std::make_unique<store::FreshnessTracker>()),
        tracker_(owned_.get()),
        origin_(0) {}

  /// Facade over `origin`'s slice of the cluster-wide tracker.
  SessionManager(store::FreshnessTracker* tracker, ServerId origin)
      : tracker_(tracker), origin_(origin) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers one pending propagation for (session, view). Called when the
  /// base Put is issued — before the propagation is even dispatched — so a
  /// view Get issued immediately after the Put's ack observes it.
  void PropagationStarted(store::SessionId session, const std::string& view) {
    tracker_->SessionStarted(origin_, session, view);
  }

  /// Marks one propagation complete; resumes any Gets it was blocking.
  void PropagationFinished(store::SessionId session, const std::string& view) {
    tracker_->SessionFinished(origin_, session, view);
  }

  /// True when a Get on `view` within `session` must wait.
  bool MustDefer(store::SessionId session, const std::string& view) const {
    return tracker_->SessionMustDefer(origin_, session, view);
  }

  /// Parks `resume` until (session, view) has no pending propagations.
  /// Callers check MustDefer first.
  void Defer(store::SessionId session, const std::string& view,
             std::function<void()> resume) {
    tracker_->SessionDefer(origin_, session, view, std::move(resume));
  }

  /// Drops this origin's session bookkeeping and parked resumes: the
  /// coordinator that owned these sessions crashed, and its sessions died
  /// with it (deferred Gets are answered by the client's own request
  /// timeout).
  void Reset() { tracker_->ResetSessions(origin_); }

  std::uint64_t deferred_total() const {
    return tracker_->deferred_total(origin_);
  }

 private:
  std::unique_ptr<store::FreshnessTracker> owned_;
  store::FreshnessTracker* tracker_;
  ServerId origin_;
};

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_SESSION_MANAGER_H_

#include "view/join_view.h"

#include <memory>
#include <optional>

#include "common/logging.h"

namespace mvstore::view {

Status DeclareJoinView(store::Schema& schema, const JoinViewDef& def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("join view needs a name");
  }
  store::ViewDef left;
  left.name = def.LeftViewName();
  left.base_table = def.left_table;
  left.view_key_column = def.left_join_column;
  left.materialized_columns = def.left_columns;
  MVSTORE_RETURN_IF_ERROR(schema.CreateView(left));

  store::ViewDef right;
  right.name = def.RightViewName();
  right.base_table = def.right_table;
  right.view_key_column = def.right_join_column;
  right.materialized_columns = def.right_columns;
  return schema.CreateView(right);
}

namespace {

struct JoinState {
  std::optional<StatusOr<std::vector<store::ViewRecord>>> left;
  std::optional<StatusOr<std::vector<store::ViewRecord>>> right;
  std::function<void(StatusOr<std::vector<JoinedRecord>>)> callback;

  void MaybeFinish() {
    if (!left.has_value() || !right.has_value()) return;
    if (!left->ok()) {
      callback(left->status());
      return;
    }
    if (!right->ok()) {
      callback(right->status());
      return;
    }
    std::vector<JoinedRecord> joined;
    joined.reserve(left->value().size() * right->value().size());
    for (const store::ViewRecord& l : left->value()) {
      for (const store::ViewRecord& r : right->value()) {
        joined.push_back(
            JoinedRecord{l.base_key, l.cells, r.base_key, r.cells});
      }
    }
    callback(std::move(joined));
  }
};

}  // namespace

void JoinGet(
    store::Client& client, const JoinViewDef& def, const Value& join_key,
    const store::ReadOptions& options,
    std::function<void(StatusOr<std::vector<JoinedRecord>>)> callback) {
  auto state = std::make_shared<JoinState>();
  state->callback = std::move(callback);
  store::ReadOptions left_options = options;
  left_options.columns = def.left_columns;
  client.ViewGet(def.LeftViewName(), join_key, left_options,
                 [state](store::ReadResult result) {
                   if (result.ok()) {
                     state->left = std::move(result.records);
                   } else {
                     state->left = std::move(result.status);
                   }
                   state->MaybeFinish();
                 });
  store::ReadOptions right_options = options;
  right_options.columns = def.right_columns;
  client.ViewGet(def.RightViewName(), join_key, right_options,
                 [state](store::ReadResult result) {
                   if (result.ok()) {
                     state->right = std::move(result.records);
                   } else {
                     state->right = std::move(result.status);
                   }
                   state->MaybeFinish();
                 });
}

StatusOr<std::vector<JoinedRecord>> JoinGetSync(
    sim::Simulation& sim, store::Client& client, const JoinViewDef& def,
    const Value& join_key, const store::ReadOptions& options) {
  std::optional<StatusOr<std::vector<JoinedRecord>>> slot;
  JoinGet(client, def, join_key, options,
          [&slot](StatusOr<std::vector<JoinedRecord>> result) {
            slot = std::move(result);
          });
  while (!slot.has_value() && sim.Step()) {
  }
  MVSTORE_CHECK(slot.has_value()) << "simulation ran dry during JoinGet";
  return *std::move(slot);
}

}  // namespace mvstore::view

#include "view/join_view.h"

#include <memory>
#include <optional>

#include "common/logging.h"

namespace mvstore::view {

Status DeclareJoinView(store::Schema& schema, const JoinViewDef& def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("join view needs a name");
  }
  store::ViewDef left;
  left.name = def.LeftViewName();
  left.base_table = def.left_table;
  left.view_key_column = def.left_join_column;
  left.materialized_columns = def.left_columns;
  MVSTORE_RETURN_IF_ERROR(schema.CreateView(left));

  store::ViewDef right;
  right.name = def.RightViewName();
  right.base_table = def.right_table;
  right.view_key_column = def.right_join_column;
  right.materialized_columns = def.right_columns;
  return schema.CreateView(right);
}

store::QuerySpec JoinQuerySpec(const JoinViewDef& def, const Value& join_key) {
  return store::QuerySpec::Join(def.LeftViewName(), def.RightViewName(),
                                join_key, def.left_columns,
                                def.right_columns);
}

namespace {

/// Maps the Query route's JoinedPair payload to this header's JoinedRecord.
std::vector<JoinedRecord> ToJoinedRecords(std::vector<store::JoinedPair> in) {
  std::vector<JoinedRecord> out;
  out.reserve(in.size());
  for (store::JoinedPair& pair : in) {
    out.push_back(JoinedRecord{std::move(pair.left.base_key),
                               std::move(pair.left.cells),
                               std::move(pair.right.base_key),
                               std::move(pair.right.cells)});
  }
  return out;
}

}  // namespace

void JoinGet(
    store::Client& client, const JoinViewDef& def, const Value& join_key,
    const store::ReadOptions& options,
    std::function<void(StatusOr<std::vector<JoinedRecord>>)> callback) {
  client.Query(JoinQuerySpec(def, join_key), options,
               [callback = std::move(callback)](store::ReadResult result) {
                 if (!result.ok()) {
                   callback(std::move(result.status));
                   return;
                 }
                 callback(ToJoinedRecords(std::move(result.joined)));
               });
}

StatusOr<std::vector<JoinedRecord>> JoinGetSync(
    sim::Simulation& sim, store::Client& client, const JoinViewDef& def,
    const Value& join_key, const store::ReadOptions& options) {
  std::optional<StatusOr<std::vector<JoinedRecord>>> slot;
  client.Query(JoinQuerySpec(def, join_key), options,
               [&slot](store::ReadResult result) {
                 if (!result.ok()) {
                   slot = std::move(result.status);
                 } else {
                   slot = ToJoinedRecords(std::move(result.joined));
                 }
               });
  while (!slot.has_value() && sim.Step()) {
  }
  MVSTORE_CHECK(slot.has_value()) << "simulation ran dry during JoinGet";
  return *std::move(slot);
}

}  // namespace mvstore::view

#include "view/scrub.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "store/codec.h"
#include "view/view_row.h"

namespace mvstore::view {

namespace {

using storage::Cell;
using storage::Row;

/// Cell-wise merge of a table across every server's replica: the state all
/// replicas converge to under anti-entropy.
std::map<Key, Row> MergedTable(store::Cluster& cluster,
                               const std::string& table) {
  std::map<Key, Row> merged;
  for (int s = 0; s < cluster.num_servers(); ++s) {
    store::Server& server = cluster.server(static_cast<ServerId>(s));
    // Slots outside the ring hold nothing (never joined) or a frozen
    // pre-decommission snapshot whose cells could resurrect rows that GC
    // has since purged from the live replicas. Only members count.
    if (!server.is_member()) continue;
    server.EngineFor(table).ForEach(
        [&merged](const Key& key, const Row& row) {
          merged[key].MergeFrom(row);
        });
  }
  return merged;
}

bool RecordLess(const ExpectedRecord& a, const ExpectedRecord& b) {
  if (a.view_key != b.view_key) return a.view_key < b.view_key;
  return a.base_key < b.base_key;
}

}  // namespace

std::vector<ExpectedRecord> ComputeExpectedView(store::Cluster& cluster,
                                                const store::ViewDef& view) {
  std::vector<ExpectedRecord> expected;
  for (const auto& [base_key, row] : MergedTable(cluster, view.base_table)) {
    auto view_key = row.Get(view.view_key_column);
    if (!view_key || view_key->tombstone) continue;  // no row (Definition 1)
    if (view.selection.has_value()) {
      auto selected = row.GetValue(view.selection->column);
      if (!selected || *selected != view.selection->equals) continue;
    }
    ExpectedRecord record;
    record.view_key = view_key->value;
    record.base_key = base_key;
    for (const ColumnName& col : view.materialized_columns) {
      if (auto cell = row.Get(col); cell && !cell->tombstone) {
        record.cells.Apply(col, *cell);
      }
    }
    expected.push_back(std::move(record));
  }
  std::sort(expected.begin(), expected.end(), RecordLess);
  return expected;
}

std::vector<ExpectedRecord> ReadConvergedView(store::Cluster& cluster,
                                              const store::ViewDef& view) {
  std::vector<ExpectedRecord> exposed;
  for (const auto& [key, row] : MergedTable(cluster, view.name)) {
    auto split = store::SplitShardedViewRowKey(key, view.shard_count);
    if (!split) continue;
    RowStatus status = ClassifyViewRow(row, split->first);
    if (!status.exists || !status.live || !status.initialized ||
        status.hidden) {
      continue;
    }
    ExpectedRecord record;
    record.view_key = split->first;
    record.base_key = split->second;
    for (const ColumnName& col : view.materialized_columns) {
      if (auto cell = row.Get(col); cell && !cell->tombstone) {
        record.cells.Apply(col, *cell);
      }
    }
    exposed.push_back(std::move(record));
  }
  std::sort(exposed.begin(), exposed.end(), RecordLess);
  return exposed;
}

std::string ScrubReport::Summary() const {
  std::ostringstream os;
  os << "rows=" << rows_examined << " live=" << live_rows
     << " stale=" << stale_rows << " hidden=" << hidden_rows;
  if (clean()) {
    os << " CLEAN";
  } else {
    os << " VIOLATIONS:"
       << " multi_live=" << multiple_live_rows.size()
       << " broken_chains=" << broken_chains.size()
       << " uninit_live=" << uninitialized_live.size()
       << " missing=" << missing_records.size()
       << " spurious=" << spurious_records.size()
       << " wrong=" << wrong_cells.size();
  }
  return os.str();
}

ScrubReport CheckView(store::Cluster& cluster, const store::ViewDef& view) {
  ScrubReport report;
  const std::map<Key, Row> rows = MergedTable(cluster, view.name);

  // Index the versioned view by (base key -> view key -> status).
  std::map<Key, std::map<Key, RowStatus>> by_base;
  for (const auto& [key, row] : rows) {
    auto split = store::SplitShardedViewRowKey(key, view.shard_count);
    if (!split) continue;
    RowStatus status = ClassifyViewRow(row, split->first);
    if (!status.exists) continue;
    report.rows_examined++;
    if (status.live) {
      report.live_rows++;
      if (status.hidden) report.hidden_rows++;
      if (!status.initialized) {
        report.uninitialized_live.push_back(split->second + "@" +
                                            split->first);
      }
    } else {
      report.stale_rows++;
    }
    by_base[split->second][split->first] = status;
  }

  // Definition 3: one live row per base key; every stale chain reaches it.
  for (const auto& [base_key, versions] : by_base) {
    int live_count = 0;
    Key live_key;
    for (const auto& [view_key, status] : versions) {
      if (status.live) {
        ++live_count;
        live_key = view_key;
      }
    }
    if (live_count > 1) report.multiple_live_rows.push_back(base_key);
    for (const auto& [view_key, status] : versions) {
      if (status.live) continue;
      // Follow the chain.
      Key at = view_key;
      bool reached_live = false;
      std::set<Key> seen;
      while (seen.insert(at).second) {
        auto it = versions.find(at);
        if (it == versions.end()) break;  // dangling pointer
        if (it->second.live) {
          reached_live = true;
          break;
        }
        at = it->second.next;
      }
      if (!reached_live) {
        report.broken_chains.push_back(base_key + "@" + view_key);
      }
    }
  }

  // Content: the exposed records must equal the Definition-1 evaluation.
  const std::vector<ExpectedRecord> expected =
      ComputeExpectedView(cluster, view);
  const std::vector<ExpectedRecord> exposed = ReadConvergedView(cluster, view);
  auto label = [](const ExpectedRecord& r) {
    return r.base_key + "@" + r.view_key;
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < expected.size() || j < exposed.size()) {
    if (j == exposed.size() ||
        (i < expected.size() && RecordLess(expected[i], exposed[j]))) {
      report.missing_records.push_back(label(expected[i]));
      ++i;
    } else if (i == expected.size() || RecordLess(exposed[j], expected[i])) {
      report.spurious_records.push_back(label(exposed[j]));
      ++j;
    } else {
      if (!(expected[i].cells == exposed[j].cells)) {
        report.wrong_cells.push_back(label(expected[i]));
      }
      ++i;
      ++j;
    }
  }
  return report;
}

std::size_t RepairView(store::Cluster& cluster, const store::ViewDef& view) {
  const std::vector<ExpectedRecord> expected =
      ComputeExpectedView(cluster, view);
  std::set<Key> keep;
  Timestamp repair_ts = 0;
  const std::map<Key, Row> existing = MergedTable(cluster, view.name);
  for (const auto& [key, row] : existing) {
    repair_ts = std::max(repair_ts, row.MaxTimestamp());
  }
  repair_ts += 1;

  auto apply_everywhere = [&cluster, &view](const Key& key, const Row& cells) {
    for (ServerId replica :
         cluster.server(0).ReplicasOf(view.name, key)) {
      cluster.server(replica).EngineFor(view.name).ApplyRow(key, cells);
    }
  };

  for (const ExpectedRecord& record : expected) {
    const int shard =
        store::ShardOfBaseKey(record.base_key, view.shard_count);
    const Key key = store::ShardedViewRowKey(record.view_key, record.base_key,
                                             shard, view.shard_count);
    keep.insert(key);
    Row cells;
    cells.Apply(store::kViewBaseKeyColumn,
                Cell::Live(record.base_key, repair_ts));
    cells.Apply(store::kViewNextColumn,
                Cell::Live(record.view_key, repair_ts));
    cells.Apply(store::kViewInitColumn, Cell::Live("1", repair_ts));
    cells.Apply(store::kViewSelectionColumn, Cell::Tombstone(repair_ts));
    cells.MergeFrom(record.cells);
    apply_everywhere(key, cells);

    // Re-root the family: the sentinel anchor survives as a stale row
    // pointing at the repaired live key (the invariant the propagation
    // engine's creation logic relies on).
    const Key anchor_key =
        store::DeletedSentinelViewKey(record.base_key);
    const Key anchor_row = store::ShardedViewRowKey(
        anchor_key, record.base_key, shard, view.shard_count);
    keep.insert(anchor_row);
    Row anchor;
    anchor.Apply(store::kViewBaseKeyColumn,
                 Cell::Live(record.base_key, repair_ts));
    anchor.Apply(store::kViewNextColumn,
                 Cell::Live(record.view_key, repair_ts));
    anchor.Apply(store::kViewInitColumn, Cell::Tombstone(repair_ts));
    apply_everywhere(anchor_row, anchor);
  }

  // Retire every row that is not an expected live row: tombstone its Next
  // pointer so reads and GetLiveKey treat it as nonexistent.
  for (const auto& [key, row] : existing) {
    if (keep.count(key) != 0) continue;
    Row cells;
    cells.Apply(store::kViewNextColumn, Cell::Tombstone(repair_ts));
    cells.Apply(store::kViewInitColumn, Cell::Tombstone(repair_ts));
    apply_everywhere(key, cells);
  }
  return expected.size();
}

namespace {

/// One classified row of a per-base-key view family.
struct FamilyRow {
  Key view_key;
  Key row_key;
  const Row* row;
  RowStatus status;
};

/// The merged state a family audit works from. FamilyRow::row points into
/// `view_rows` (map nodes are stable under move).
struct FamilyIndex {
  std::map<Key, Row> base;
  std::map<Key, Row> view_rows;
  std::map<Key, std::vector<FamilyRow>> families;
};

FamilyIndex LoadFamilies(store::Cluster& cluster, const store::ViewDef& view) {
  FamilyIndex index;
  index.base = MergedTable(cluster, view.base_table);
  index.view_rows = MergedTable(cluster, view.name);
  for (const auto& [key, row] : index.view_rows) {
    auto split = store::SplitShardedViewRowKey(key, view.shard_count);
    if (!split) continue;
    RowStatus status = ClassifyViewRow(row, split->first);
    if (!status.exists) continue;
    index.families[split->second].push_back({split->first, key, &row, status});
  }
  return index;
}

/// Definition-1 evaluation of one merged base row.
std::optional<ExpectedRecord> ExpectedOf(const FamilyIndex& index,
                                         const store::ViewDef& view,
                                         const Key& base_key) {
  auto it = index.base.find(base_key);
  if (it == index.base.end()) return std::nullopt;
  const Row& row = it->second;
  auto view_key = row.Get(view.view_key_column);
  if (!view_key || view_key->tombstone) return std::nullopt;
  if (view.selection.has_value()) {
    auto selected = row.GetValue(view.selection->column);
    if (!selected || *selected != view.selection->equals) return std::nullopt;
  }
  ExpectedRecord record;
  record.view_key = view_key->value;
  record.base_key = base_key;
  for (const ColumnName& col : view.materialized_columns) {
    if (auto cell = row.Get(col); cell && !cell->tombstone) {
      record.cells.Apply(col, *cell);
    }
  }
  return record;
}

/// Audits one family against Definition 1 and repairs it when broken.
/// Returns true when a repair was applied. The shared guts of
/// ScrubOwnedRanges and RepairViewFamilies.
bool AuditAndRepairFamily(store::Cluster& cluster, const store::ViewDef& view,
                          const FamilyIndex& index, const Key& base_key) {
  const std::optional<ExpectedRecord> expected =
      ExpectedOf(index, view, base_key);
  static const std::vector<FamilyRow> kNoRows;
  auto fam_it = index.families.find(base_key);
  const std::vector<FamilyRow>& fam =
      fam_it == index.families.end() ? kNoRows : fam_it->second;

  // Health check: exactly the Definition-1 record exposed (value AND
  // timestamp — repairs preserve base timestamps, so this is stable), no
  // stray live rows, no uninitialized live row a reader would spin on.
  // Hidden live rows (selection currently false) are a valid resting state
  // and judged only through the exposure count.
  bool broken = false;
  int exposed = 0;
  for (const FamilyRow& fr : fam) {
    if (!fr.status.live) continue;
    if (!fr.status.initialized) {
      broken = true;
      continue;
    }
    if (fr.status.hidden) continue;
    ++exposed;
    if (!expected || fr.view_key != expected->view_key) {
      broken = true;
      continue;
    }
    Row cells;
    for (const ColumnName& col : view.materialized_columns) {
      if (auto cell = fr.row->Get(col); cell && !cell->tombstone) {
        cells.Apply(col, *cell);
      }
    }
    if (!(cells == expected->cells)) broken = true;
  }
  if (exposed != (expected.has_value() ? 1 : 0)) broken = true;
  if (!broken) return false;

  // Crashed replicas are skipped: their copy is re-synchronized by WAL
  // replay plus anti-entropy at restart.
  auto apply_alive = [&cluster, &view](const Key& key, const Row& cells) {
    for (ServerId replica : cluster.server(0).ReplicasOf(view.name, key)) {
      if (cluster.server(replica).crashed()) continue;
      cluster.server(replica).EngineFor(view.name).ApplyRow(key, cells);
    }
  };

  // Per-family RepairView: force-write the expected live row (and re-root
  // its anchor), retire everything else, all one tick above the family's
  // newest cell so LWW makes the repair stick.
  Timestamp repair_ts = 0;
  for (const FamilyRow& fr : fam) {
    repair_ts = std::max(repair_ts, fr.row->MaxTimestamp());
  }
  if (expected) {
    repair_ts = std::max(repair_ts, expected->cells.MaxTimestamp());
  }
  repair_ts += 1;

  std::set<Key> keep;
  if (expected) {
    const int shard = store::ShardOfBaseKey(base_key, view.shard_count);
    const Key key = store::ShardedViewRowKey(expected->view_key, base_key,
                                             shard, view.shard_count);
    keep.insert(key);
    Row cells;
    cells.Apply(store::kViewBaseKeyColumn, Cell::Live(base_key, repair_ts));
    cells.Apply(store::kViewNextColumn,
                Cell::Live(expected->view_key, repair_ts));
    cells.Apply(store::kViewInitColumn, Cell::Live("1", repair_ts));
    cells.Apply(store::kViewSelectionColumn, Cell::Tombstone(repair_ts));
    cells.MergeFrom(expected->cells);
    apply_alive(key, cells);

    const Key anchor_row = store::ShardedViewRowKey(
        store::DeletedSentinelViewKey(base_key), base_key, shard,
        view.shard_count);
    keep.insert(anchor_row);
    Row anchor;
    anchor.Apply(store::kViewBaseKeyColumn, Cell::Live(base_key, repair_ts));
    anchor.Apply(store::kViewNextColumn,
                 Cell::Live(expected->view_key, repair_ts));
    anchor.Apply(store::kViewInitColumn, Cell::Tombstone(repair_ts));
    apply_alive(anchor_row, anchor);
  }
  for (const FamilyRow& fr : fam) {
    if (keep.count(fr.row_key) != 0) continue;
    Row cells;
    cells.Apply(store::kViewNextColumn, Cell::Tombstone(repair_ts));
    cells.Apply(store::kViewInitColumn, Cell::Tombstone(repair_ts));
    apply_alive(fr.row_key, cells);
  }
  return true;
}

}  // namespace

std::size_t ScrubOwnedRanges(
    store::Cluster& cluster, const store::ViewDef& view, ServerId owner,
    const std::function<bool(const Key&)>& skip,
    const std::function<void(const Key&)>& on_family_audited) {
  const FamilyIndex index = LoadFamilies(cluster, view);

  // Every base key with either a base row or leftover view rows.
  std::set<Key> base_keys;
  for (const auto& [key, row] : index.base) base_keys.insert(key);
  for (const auto& [key, fam] : index.families) base_keys.insert(key);

  std::size_t repaired = 0;
  for (const Key& base_key : base_keys) {
    if (cluster.ring().PrimaryFor(base_key) != owner) continue;
    if (skip && skip(base_key)) continue;
    if (AuditAndRepairFamily(cluster, view, index, base_key)) ++repaired;
    // After the audit (repairing or not) the family provably matches
    // Definition 1 — the proof the freshness tracker needs to clear the
    // family's wounded intents.
    if (on_family_audited) on_family_audited(base_key);
  }
  return repaired;
}

std::size_t RepairViewFamilies(store::Cluster& cluster,
                               const store::ViewDef& view,
                               const std::vector<Key>& base_keys,
                               const std::function<bool(const Key&)>& skip) {
  const FamilyIndex index = LoadFamilies(cluster, view);
  std::set<Key> seen;
  std::size_t repaired = 0;
  for (const Key& base_key : base_keys) {
    if (!seen.insert(base_key).second) continue;
    if (skip && skip(base_key)) continue;
    if (AuditAndRepairFamily(cluster, view, index, base_key)) ++repaired;
  }
  return repaired;
}

std::size_t TrimStaleViewRows(store::Cluster& cluster,
                              const store::ViewDef& view,
                              Timestamp older_than) {
  const std::map<Key, Row> rows = MergedTable(cluster, view.name);

  // Identify families that currently have a live row — only their stale
  // rows are retireable (a family mid-promotion must not lose chain links)
  // — and remember each family's live key so anchors can be re-pointed.
  std::map<Key, Key> live_key_of;  // base key -> live view key
  for (const auto& [key, row] : rows) {
    auto split = store::SplitShardedViewRowKey(key, view.shard_count);
    if (!split) continue;
    RowStatus status = ClassifyViewRow(row, split->first);
    if (status.exists && status.live) live_key_of[split->second] = split->first;
  }

  std::size_t trimmed = 0;
  std::set<Key> trimmed_families;
  for (const auto& [key, row] : rows) {
    auto split = store::SplitShardedViewRowKey(key, view.shard_count);
    if (!split) continue;
    // The sentinel anchor is the row family's permanent chain root: never
    // trimmed (it is re-pointed below instead).
    if (store::IsSentinelViewKey(split->first)) continue;
    RowStatus status = ClassifyViewRow(row, split->first);
    if (!status.exists || status.live) continue;
    if (live_key_of.count(split->second) == 0) continue;
    // Freshness is judged by the Next pointer's timestamp: chain targets are
    // always at least as fresh as their pointers, so trimming by next_ts can
    // never leave a surviving non-anchor row dangling.
    if (status.next_ts >= older_than) continue;

    // Sever only the BOOKKEEPING cells: without a live __next the row is
    // invisible to reads and nonexistent to GetLiveKey, and compaction
    // purges the tombstones after the GC grace period. Materialized cells
    // are left in place: CopyData writes carry their ORIGINAL (old)
    // timestamps, so a tombstone at `older_than` would shadow the data a
    // future re-promotion of this key copies back in. The leftovers are
    // inert (they come from the same base-cell history, so LWW merges them
    // harmlessly if the key is reused).
    Row tombstones;
    tombstones.Apply(store::kViewNextColumn, Cell::Tombstone(older_than));
    tombstones.Apply(store::kViewInitColumn, Cell::Tombstone(older_than));
    for (ServerId replica : cluster.server(0).ReplicasOf(view.name, key)) {
      cluster.server(replica).EngineFor(view.name).ApplyRow(key, tombstones);
    }
    trimmed_families.insert(split->second);
    ++trimmed;
  }

  // Re-point affected anchors straight at their live rows, so the chain
  // root stays valid after its old target was retired. (LWW: a newer
  // deletion/reassignment pointer on the anchor wins over this.)
  for (const Key& base_key : trimmed_families) {
    const Key anchor_key = store::DeletedSentinelViewKey(base_key);
    Row repoint;
    repoint.Apply(store::kViewNextColumn,
                  Cell::Live(live_key_of[base_key], older_than));
    const Key anchor_row = store::ShardedViewRowKey(
        anchor_key, base_key,
        store::ShardOfBaseKey(base_key, view.shard_count), view.shard_count);
    for (ServerId replica :
         cluster.server(0).ReplicasOf(view.name, anchor_row)) {
      cluster.server(replica).EngineFor(view.name).ApplyRow(anchor_row,
                                                            repoint);
    }
  }
  return trimmed;
}

}  // namespace mvstore::view

// View scrubber: offline verification and repair of materialized views.
//
// Two jobs:
//
//  1. ComputeExpectedView — evaluates Definition 1 (plus selection and the
//     deletion semantics) against the CURRENT merged state of the base
//     table, yielding the set of records a fully-propagated, fully-converged
//     view must expose. Property tests compare the live rows of the real
//     versioned view against this after quiescing.
//
//  2. CheckView / RepairView — audits the versioned view's structural
//     invariants (Definition 3): at most one live row per base key, every
//     stale chain reaches the live row, no cycles, live rows initialized —
//     and that the live rows agree with the expected view. RepairView
//     force-writes the expected state (the recovery tool for the
//     failure-window cases DESIGN.md documents, e.g. orphan live rows
//     created when replicas were unreachable during pre-image collection).
//
// The scrubber runs outside simulated time (direct engine access), as an
// offline maintenance utility would.

#ifndef MVSTORE_VIEW_SCRUB_H_
#define MVSTORE_VIEW_SCRUB_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/row.h"
#include "store/cluster.h"
#include "store/schema.h"

namespace mvstore::view {

/// One expected view record: (view key, base key) -> materialized cells.
struct ExpectedRecord {
  Key view_key;
  Key base_key;
  storage::Row cells;  ///< materialized columns only

  friend bool operator==(const ExpectedRecord& a, const ExpectedRecord& b) {
    return a.view_key == b.view_key && a.base_key == b.base_key &&
           a.cells == b.cells;
  }
};

/// Definition-1 evaluation against the merged base table (all replicas
/// merged cell-wise, i.e. the state every replica converges to).
/// Records are sorted by (view_key, base_key).
std::vector<ExpectedRecord> ComputeExpectedView(store::Cluster& cluster,
                                                const store::ViewDef& view);

/// The records the versioned view currently exposes (live, initialized, not
/// hidden), evaluated on the merged view table. Sorted like
/// ComputeExpectedView. Values are restricted to materialized columns.
std::vector<ExpectedRecord> ReadConvergedView(store::Cluster& cluster,
                                              const store::ViewDef& view);

/// Structural-invariant and content findings of one audit.
struct ScrubReport {
  std::uint64_t rows_examined = 0;
  std::uint64_t live_rows = 0;
  std::uint64_t stale_rows = 0;
  std::uint64_t hidden_rows = 0;

  // Definition-3 violations.
  std::vector<std::string> multiple_live_rows;   ///< base keys with >1 live
  std::vector<std::string> broken_chains;        ///< stale rows not reaching live
  std::vector<std::string> uninitialized_live;   ///< live rows missing __init

  // Content divergence vs ComputeExpectedView.
  std::vector<std::string> missing_records;      ///< expected but not exposed
  std::vector<std::string> spurious_records;     ///< exposed but not expected
  std::vector<std::string> wrong_cells;          ///< exposed with wrong values

  bool clean() const {
    return multiple_live_rows.empty() && broken_chains.empty() &&
           uninitialized_live.empty() && missing_records.empty() &&
           spurious_records.empty() && wrong_cells.empty();
  }
  std::string Summary() const;
};

/// Audits `view` (structure + content) against the merged base table.
ScrubReport CheckView(store::Cluster& cluster, const store::ViewDef& view);

/// Rewrites the view's backing table (on every replica) to exactly the
/// expected state: live rows per Definition 1, no stale rows. Returns the
/// number of records written. Timestamps are preserved from the base table.
std::size_t RepairView(store::Cluster& cluster, const store::ViewDef& view);

/// Incremental, ownership-scoped variant of RepairView for the crash fault
/// model: audits only the view families whose base key is PRIMARILY owned by
/// `owner` on the ring, and repairs just the broken ones (one repair per
/// family, mirroring RepairView's cell layout). A family is broken when the
/// records it exposes differ from Definition 1 — the signature a propagation
/// orphaned by a coordinator crash leaves behind — or when a live row is
/// uninitialized (which would wedge Algorithm-4 readers). Families for which
/// `skip` returns true (a propagation still in flight) are left to the
/// propagation engine. Repairs are applied to the non-crashed replicas only;
/// anti-entropy carries them to recovering servers. Returns the number of
/// families repaired.
///
/// `on_family_audited` (optional) fires for EVERY family the scrub actually
/// audited — owned, not skipped — whether or not it needed repair: after the
/// call the family provably matches Definition 1, which is what lets the
/// freshness tracker clear the family's wounded intents (ISSUE 7).
std::size_t ScrubOwnedRanges(
    store::Cluster& cluster, const store::ViewDef& view, ServerId owner,
    const std::function<bool(const Key&)>& skip,
    const std::function<void(const Key&)>& on_family_audited = nullptr);

/// Targeted variant for the bounded-read path (ISSUE 7): audits and repairs
/// exactly the named families, with no ownership filter — the reading
/// coordinator repairs whatever wounded family blocks its staleness bound,
/// wherever it lives. Same audit and repair logic as ScrubOwnedRanges;
/// families for which `skip` returns true are left alone (and NOT proven
/// converged). Returns the number of families repaired.
std::size_t RepairViewFamilies(store::Cluster& cluster,
                               const store::ViewDef& view,
                               const std::vector<Key>& base_keys,
                               const std::function<bool(const Key&)>& skip);

/// Retires stale rows whose every cell is older than `older_than` by
/// tombstoning them on all replicas (the engines' tombstone GC then purges
/// them at compaction). Returns the number of rows retired.
///
/// Safety: a stale row is only ever needed by an in-flight propagation
/// whose view-key guess predates the row's retirement; propagations are
/// bounded in lifetime (retry budget x max backoff), so calling this with
/// `older_than` = now - grace, grace far above that bound, never breaks a
/// chase. A trimmed key can still come back: a later view-key update to the
/// same value rewrites the row's cells with fresh timestamps, superseding
/// the tombstones (Theorem 1 case 2b). Rows of families without a live row
/// and rows still carrying recent cells are left alone. This closes the
/// lifecycle the paper leaves open ("stale rows accumulate").
std::size_t TrimStaleViewRows(store::Cluster& cluster,
                              const store::ViewDef& view,
                              Timestamp older_than);

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_SCRUB_H_

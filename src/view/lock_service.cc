#include "view/lock_service.h"

#include <utility>

#include "common/logging.h"

namespace mvstore::view {

LockService::LockService(sim::Simulation* sim, sim::Network* network,
                         sim::EndpointId endpoint, SimTime hop_latency)
    : sim_(sim),
      network_(network),
      endpoint_(endpoint),
      hop_latency_(hop_latency) {}

void LockService::Acquire(sim::EndpointId requester,
                          const std::string& resource, LockMode mode,
                          std::function<void()> granted) {
  // Request message travels to the lock endpoint (reliable channel).
  sim_->After(hop_latency_,
              [this, resource,
               waiter = Waiter{requester, mode, std::move(granted)}]() mutable {
                DoAcquire(std::move(waiter), resource);
              });
}

void LockService::Release(sim::EndpointId requester,
                          const std::string& resource, LockMode mode) {
  sim_->After(hop_latency_,
              [this, resource, mode] { DoRelease(resource, mode); });
}

bool LockService::Compatible(const LockState& state, LockMode mode) const {
  if (state.exclusive_held) return false;
  if (mode == LockMode::kExclusive) return state.shared_held == 0;
  return true;
}

void LockService::Grant(Waiter waiter) {
  ++grants_;
  // ...and the grant travels back to the requester (reliable channel).
  sim_->After(hop_latency_, [granted = std::move(waiter.granted)] { granted(); });
}

void LockService::DoAcquire(Waiter waiter, const std::string& resource) {
  LockState& state = locks_[resource];
  // FIFO fairness: grant immediately only when compatible AND nobody is
  // already queued (otherwise a shared stream could starve an exclusive
  // waiter forever).
  if (state.waiters.empty() && Compatible(state, waiter.mode)) {
    if (waiter.mode == LockMode::kExclusive) {
      state.exclusive_held = true;
    } else {
      ++state.shared_held;
    }
    Grant(std::move(waiter));
    return;
  }
  ++waits_;
  state.waiters.push_back(std::move(waiter));
}

void LockService::DoRelease(const std::string& resource, LockMode mode) {
  auto it = locks_.find(resource);
  MVSTORE_CHECK(it != locks_.end()) << "release of unknown lock " << resource;
  LockState& state = it->second;
  if (mode == LockMode::kExclusive) {
    MVSTORE_CHECK(state.exclusive_held);
    state.exclusive_held = false;
  } else {
    MVSTORE_CHECK_GT(state.shared_held, 0);
    --state.shared_held;
  }
  PumpWaiters(resource);
  // Re-find: PumpWaiters may have erased the entry.
  it = locks_.find(resource);
  if (it != locks_.end() && it->second.waiters.empty() &&
      it->second.shared_held == 0 && !it->second.exclusive_held) {
    locks_.erase(it);
  }
}

void LockService::PumpWaiters(const std::string& resource) {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  while (!state.waiters.empty() &&
         Compatible(state, state.waiters.front().mode)) {
    Waiter waiter = std::move(state.waiters.front());
    state.waiters.pop_front();
    if (waiter.mode == LockMode::kExclusive) {
      state.exclusive_held = true;
    } else {
      ++state.shared_held;
    }
    Grant(std::move(waiter));
  }
}

bool LockService::WouldGrantImmediately(const std::string& resource,
                                        LockMode mode) const {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return true;
  return it->second.waiters.empty() && Compatible(it->second, mode);
}

}  // namespace mvstore::view

#include "view/lock_service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mvstore::view {

LockService::LockService(sim::Simulation* sim, sim::Network* network,
                         sim::EndpointId endpoint, SimTime hop_latency,
                         SimTime lease_ttl)
    : sim_(sim),
      network_(network),
      endpoint_(endpoint),
      hop_latency_(hop_latency),
      lease_ttl_(lease_ttl) {}

void LockService::Acquire(sim::EndpointId requester,
                          const std::string& resource, LockMode mode,
                          std::function<void()> granted) {
  // Request message travels to the lock endpoint (reliable channel).
  sim_->After(hop_latency_,
              [this, resource,
               waiter = Waiter{requester, mode, std::move(granted)}]() mutable {
                DoAcquire(std::move(waiter), resource);
              });
}

void LockService::Release(sim::EndpointId requester,
                          const std::string& resource, LockMode mode) {
  sim_->After(hop_latency_, [this, resource, requester, mode] {
    DoRelease(resource, requester, mode);
  });
}

bool LockService::Compatible(const LockState& state, LockMode mode) const {
  if (state.exclusive_held) return false;
  if (mode == LockMode::kExclusive) return state.shared_held == 0;
  return true;
}

void LockService::Grant(Waiter waiter) {
  ++grants_;
  // ...and the grant travels back to the requester (reliable channel).
  sim_->After(hop_latency_, [granted = std::move(waiter.granted)] { granted(); });
}

void LockService::GrantHold(const std::string& resource, LockState& state,
                            Waiter waiter) {
  if (waiter.mode == LockMode::kExclusive) {
    state.exclusive_held = true;
  } else {
    ++state.shared_held;
  }
  Hold hold;
  hold.id = ++next_hold_id_;
  hold.requester = waiter.requester;
  hold.mode = waiter.mode;
  if (lease_ttl_ > 0) {
    const std::uint64_t hold_id = hold.id;
    hold.expiry = sim_->AfterCancelable(
        lease_ttl_, [this, resource, hold_id] { ExpireHold(resource, hold_id); });
  }
  state.holds.push_back(std::move(hold));
  Grant(std::move(waiter));
}

void LockService::DoAcquire(Waiter waiter, const std::string& resource) {
  LockState& state = locks_[resource];
  // FIFO fairness: grant immediately only when compatible AND nobody is
  // already queued (otherwise a shared stream could starve an exclusive
  // waiter forever).
  if (state.waiters.empty() && Compatible(state, waiter.mode)) {
    GrantHold(resource, state, std::move(waiter));
    return;
  }
  ++waits_;
  state.waiters.push_back(std::move(waiter));
}

void LockService::DoRelease(const std::string& resource,
                            sim::EndpointId requester, LockMode mode) {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;  // hold already reclaimed by lease expiry
  LockState& state = it->second;
  auto hold = std::find_if(state.holds.begin(), state.holds.end(),
                           [requester, mode](const Hold& h) {
                             return h.requester == requester && h.mode == mode;
                           });
  if (hold == state.holds.end()) return;  // already reclaimed
  hold->expiry.Cancel();
  state.holds.erase(hold);
  if (mode == LockMode::kExclusive) {
    MVSTORE_CHECK(state.exclusive_held);
    state.exclusive_held = false;
  } else {
    MVSTORE_CHECK_GT(state.shared_held, 0);
    --state.shared_held;
  }
  PumpWaiters(resource);
  EraseIfIdle(resource);
}

void LockService::ExpireHold(const std::string& resource,
                             std::uint64_t hold_id) {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  auto hold = std::find_if(state.holds.begin(), state.holds.end(),
                           [hold_id](const Hold& h) { return h.id == hold_id; });
  if (hold == state.holds.end()) return;  // released in the same tick
  if (hold->mode == LockMode::kExclusive) {
    state.exclusive_held = false;
  } else {
    --state.shared_held;
  }
  state.holds.erase(hold);
  ++expirations_;
  if (expired_counter_ != nullptr) ++*expired_counter_;
  PumpWaiters(resource);
  EraseIfIdle(resource);
}

void LockService::EraseIfIdle(const std::string& resource) {
  auto it = locks_.find(resource);
  if (it != locks_.end() && it->second.waiters.empty() &&
      it->second.holds.empty() && it->second.shared_held == 0 &&
      !it->second.exclusive_held) {
    locks_.erase(it);
  }
}

void LockService::PumpWaiters(const std::string& resource) {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  while (!state.waiters.empty() &&
         Compatible(state, state.waiters.front().mode)) {
    Waiter waiter = std::move(state.waiters.front());
    state.waiters.pop_front();
    GrantHold(resource, state, std::move(waiter));
  }
}

bool LockService::WouldGrantImmediately(const std::string& resource,
                                        LockMode mode) const {
  auto it = locks_.find(resource);
  if (it == locks_.end()) return true;
  return it->second.waiters.empty() && Compatible(it->second, mode);
}

}  // namespace mvstore::view

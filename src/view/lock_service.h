// Lock service for update propagation (Section IV-F, first alternative).
//
// "Since each base row corresponds to a distinct set of view rows, it is
// sufficient for propagation operations to lock the key of the base row...
// Propagations of view key updates must obtain an exclusive lock, while
// propagations of view-materialized cell updates can proceed with a shared
// lock. Locks could be implemented by a separate lock service."
//
// We model exactly that: a dedicated endpoint holding the lock tables.
// Acquire/grant/release each cost one message latency, so locking is
// visible in the ablation bench (A2). The lock channel is RELIABLE (a real
// lock service speaks TCP and retries internally; losing a grant would
// strand its propagation forever), so messages bypass the lossy datapath
// network and pay a fixed per-hop latency instead. Locks affect only update
// propagation — never base-table Puts/Gets or view Gets.

#ifndef MVSTORE_VIEW_LOCK_SERVICE_H_
#define MVSTORE_VIEW_LOCK_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "sim/network.h"
#include "sim/simulation.h"

namespace mvstore::view {

enum class LockMode { kShared, kExclusive };

class LockService {
 public:
  /// `endpoint` is the lock service's address (kept for diagnostics);
  /// `hop_latency` is the one-way cost of each lock message.
  LockService(sim::Simulation* sim, sim::Network* network,
              sim::EndpointId endpoint,
              SimTime hop_latency = Micros(120));

  LockService(const LockService&) = delete;
  LockService& operator=(const LockService&) = delete;

  /// Requests `resource` in `mode` from `requester`; `granted` runs at the
  /// requester once the lock is held. FIFO queuing (no starvation of
  /// exclusive requests behind a shared stream).
  void Acquire(sim::EndpointId requester, const std::string& resource,
               LockMode mode, std::function<void()> granted);

  /// Releases one previously granted hold. Fire-and-forget from the
  /// requester's perspective.
  void Release(sim::EndpointId requester, const std::string& resource,
               LockMode mode);

  /// True when a new Acquire of `mode` would be granted immediately
  /// (introspection for tests/metrics; evaluated instantly).
  bool WouldGrantImmediately(const std::string& resource, LockMode mode) const;

  std::uint64_t grants() const { return grants_; }
  std::uint64_t waits() const { return waits_; }

 private:
  struct Waiter {
    sim::EndpointId requester;
    LockMode mode;
    std::function<void()> granted;
  };
  struct LockState {
    int shared_held = 0;
    bool exclusive_held = false;
    std::deque<Waiter> waiters;
  };

  // Executed at the lock endpoint.
  void DoAcquire(Waiter waiter, const std::string& resource);
  void DoRelease(const std::string& resource, LockMode mode);
  bool Compatible(const LockState& state, LockMode mode) const;
  void Grant(Waiter waiter);
  void PumpWaiters(const std::string& resource);

  sim::Simulation* sim_;
  sim::Network* network_;  // unused for transport (reliable channel); kept
                           // for future partition-aware modeling
  sim::EndpointId endpoint_;
  SimTime hop_latency_;
  std::map<std::string, LockState> locks_;
  std::uint64_t grants_ = 0;
  std::uint64_t waits_ = 0;
};

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_LOCK_SERVICE_H_

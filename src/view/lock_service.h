// Lock service for update propagation (Section IV-F, first alternative).
//
// "Since each base row corresponds to a distinct set of view rows, it is
// sufficient for propagation operations to lock the key of the base row...
// Propagations of view key updates must obtain an exclusive lock, while
// propagations of view-materialized cell updates can proceed with a shared
// lock. Locks could be implemented by a separate lock service."
//
// We model exactly that: a dedicated endpoint holding the lock tables.
// Acquire/grant/release each cost one message latency, so locking is
// visible in the ablation bench (A2). The lock channel is RELIABLE (a real
// lock service speaks TCP and retries internally; losing a grant would
// strand its propagation forever), so messages bypass the lossy datapath
// network and pay a fixed per-hop latency instead. Locks affect only update
// propagation — never base-table Puts/Gets or view Gets.
//
// Crash model: grants are LEASES. A holder that crashes between acquire and
// release never sends its Release, so every hold carries a TTL; when it
// expires the service force-releases the hold and pumps the wait queue. A
// Release arriving for an already-expired hold is ignored (the service
// already reclaimed it). TTL 0 disables expiry (pre-crash-model behaviour).

#ifndef MVSTORE_VIEW_LOCK_SERVICE_H_
#define MVSTORE_VIEW_LOCK_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace mvstore::view {

enum class LockMode { kShared, kExclusive };

class LockService {
 public:
  /// `endpoint` is the lock service's address (kept for diagnostics);
  /// `hop_latency` is the one-way cost of each lock message; `lease_ttl` is
  /// the hold expiry window (0 = holds never expire).
  LockService(sim::Simulation* sim, sim::Network* network,
              sim::EndpointId endpoint,
              SimTime hop_latency = Micros(120),
              SimTime lease_ttl = 0);

  LockService(const LockService&) = delete;
  LockService& operator=(const LockService&) = delete;

  /// Requests `resource` in `mode` from `requester`; `granted` runs at the
  /// requester once the lock is held. FIFO queuing (no starvation of
  /// exclusive requests behind a shared stream).
  void Acquire(sim::EndpointId requester, const std::string& resource,
               LockMode mode, std::function<void()> granted);

  /// Releases one previously granted hold. Fire-and-forget from the
  /// requester's perspective.
  void Release(sim::EndpointId requester, const std::string& resource,
               LockMode mode);

  /// True when a new Acquire of `mode` would be granted immediately
  /// (introspection for tests/metrics; evaluated instantly).
  bool WouldGrantImmediately(const std::string& resource, LockMode mode) const;

  std::uint64_t grants() const { return grants_; }
  std::uint64_t waits() const { return waits_; }

  /// Holds reclaimed by lease expiry (their holder never released).
  std::uint64_t expirations() const { return expirations_; }

  /// Optional external counter (store::Metrics::locks_expired) bumped on
  /// every lease expiry.
  void set_expired_counter(Counter* counter) { expired_counter_ = counter; }

  SimTime lease_ttl() const { return lease_ttl_; }

  /// Currently granted holds across all resources (test introspection: lets
  /// a crash test fire exactly while some propagation holds its lock).
  std::size_t holds_outstanding() const {
    std::size_t n = 0;
    for (const auto& [resource, state] : locks_) n += state.holds.size();
    return n;
  }

 private:
  struct Waiter {
    sim::EndpointId requester;
    LockMode mode;
    std::function<void()> granted;
  };
  /// One granted hold; `expiry` fires if the holder never releases.
  struct Hold {
    std::uint64_t id = 0;
    sim::EndpointId requester = 0;
    LockMode mode = LockMode::kShared;
    sim::EventHandle expiry;
  };
  struct LockState {
    int shared_held = 0;
    bool exclusive_held = false;
    std::vector<Hold> holds;
    std::deque<Waiter> waiters;
  };

  // Executed at the lock endpoint.
  void DoAcquire(Waiter waiter, const std::string& resource);
  void DoRelease(const std::string& resource, sim::EndpointId requester,
                 LockMode mode);
  bool Compatible(const LockState& state, LockMode mode) const;
  void GrantHold(const std::string& resource, LockState& state, Waiter waiter);
  void Grant(Waiter waiter);
  void PumpWaiters(const std::string& resource);
  void ExpireHold(const std::string& resource, std::uint64_t hold_id);
  void EraseIfIdle(const std::string& resource);

  sim::Simulation* sim_;
  sim::Network* network_;  // unused for transport (reliable channel); kept
                           // for future partition-aware modeling
  sim::EndpointId endpoint_;
  SimTime hop_latency_;
  SimTime lease_ttl_;
  std::map<std::string, LockState> locks_;
  std::uint64_t grants_ = 0;
  std::uint64_t waits_ = 0;
  std::uint64_t expirations_ = 0;
  std::uint64_t next_hold_id_ = 0;
  Counter* expired_counter_ = nullptr;
};

}  // namespace mvstore::view

#endif  // MVSTORE_VIEW_LOCK_SERVICE_H_

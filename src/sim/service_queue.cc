#include "sim/service_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace mvstore::sim {

ServiceQueue::ServiceQueue(Simulation* sim, int cores) : sim_(sim) {
  MVSTORE_CHECK_GT(cores, 0);
  const std::size_t n = cores > 0 ? static_cast<std::size_t>(cores) : 1;
  core_free_at_.assign(n, 0);
}

void ServiceQueue::Submit(SimTime service_time, UniqueFn<void()> fn) {
  MVSTORE_CHECK_GE(service_time, 0);
  auto it = std::min_element(core_free_at_.begin(), core_free_at_.end());
  const SimTime start = std::max(sim_->Now(), *it);
  const SimTime end = start + service_time;
  *it = end;
  busy_time_ += service_time;
  ++tasks_;
  const SimTime queue_wait = start - sim_->Now();
  if (queue_wait_histogram_ != nullptr) queue_wait_histogram_->Record(queue_wait);
  if (service_histogram_ != nullptr) service_histogram_->Record(service_time);
  if (tracer_ != nullptr && tracer_->current()) {
    TraceContext span =
        tracer_->StartSpan(tracer_->current(), "svc", endpoint_, sim_->Now());
    if (queue_wait > 0) {
      tracer_->Annotate(span, "queue_wait_us=" + std::to_string(queue_wait));
    }
    sim_->At(end, [tracer = tracer_, span, end, fn = std::move(fn)]() mutable {
      tracer->EndSpan(span, end);
      Tracer::Scope scope(tracer, span);
      fn();
    });
    return;
  }
  sim_->At(end, std::move(fn));
}

void ServiceQueue::Reset() {
  std::fill(core_free_at_.begin(), core_free_at_.end(), sim_->Now());
}

SimTime ServiceQueue::QueueDelay() const {
  const SimTime soonest =
      *std::min_element(core_free_at_.begin(), core_free_at_.end());
  return std::max<SimTime>(0, soonest - sim_->Now());
}

}  // namespace mvstore::sim

// Discrete-event simulation core.
//
// The entire cluster (servers, network, clients) runs inside one Simulation:
// a virtual clock plus an ordered queue of events. Events scheduled for the
// same instant execute in scheduling order, so runs are fully deterministic.
//
// This is the substrate substitution described in DESIGN.md section 4: the
// paper evaluates on a physical 4-node Cassandra cluster; we reproduce the
// relevant behaviour (message latencies, per-server service demand, and the
// interleavings that make multi-master view maintenance hard) in simulated
// time.
//
// The event queue is a bucketed calendar queue (sim/event_queue.h): O(1)
// amortized push/pop for the near-future events that dominate, a sorted
// overflow heap for long timers, and the exact (time, seq) execution order
// of the priority queue it replaced — seeded runs replay byte-identically.
// Closures are move-only (common/unique_fn.h), so events can carry payload
// buffers without copies and the typical closure schedules allocation-free.

#ifndef MVSTORE_SIM_SIMULATION_H_
#define MVSTORE_SIM_SIMULATION_H_

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "common/unique_fn.h"
#include "sim/event_queue.h"

namespace mvstore::sim {

/// Cancellation handle for a scheduled event. Default-constructed handles are
/// inert. Cancelling after the event fired is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from running (if it has not run yet).
  void Cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool active() const { return cancelled_ != nullptr && !*cancelled_; }

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

/// Calendar-queue tuning (see sim/event_queue.h). The defaults suit the
/// microsecond-scale latencies every cluster in this repo simulates; they
/// only affect speed, never event order.
struct SimulationOptions {
  /// Virtual-time span of one calendar bucket.
  SimTime bucket_width = Micros(128);
  /// Ring length; bucket_width * num_buckets is the near-future horizon
  /// (events past it wait in the sorted overflow heap).
  std::size_t num_buckets = 4096;
};

class Simulation {
 public:
  explicit Simulation(SimulationOptions options = SimulationOptions())
      : queue_(options.bucket_width, options.num_buckets) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time (microseconds since simulation start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= Now()).
  void At(SimTime t, UniqueFn<void()> fn);

  /// Schedules `fn` after a delay of `dt` (>= 0).
  void After(SimTime dt, UniqueFn<void()> fn);

  /// Like After, but returns a handle that can cancel the event.
  EventHandle AfterCancelable(SimTime dt, UniqueFn<void()> fn);

  /// Runs events until the queue is empty.
  void Run();

  /// Executes the next event. Returns false when the queue is empty.
  /// (Cancelled events are skipped but still count as progress.)
  bool Step();

  /// Runs all events with time <= `t`, then sets the clock to `t`.
  void RunUntil(SimTime t);

  /// Runs for `dt` more virtual time.
  void RunFor(SimTime dt) { RunUntil(now_ + dt); }

  /// Total events executed (for tests and debugging).
  std::uint64_t steps() const { return steps_; }

  /// Number of pending events (cancelled-but-unpopped ones included).
  std::size_t pending() const { return queue_.size(); }

 private:
  void Push(SimTime t, UniqueFn<void()> fn, std::shared_ptr<bool> cancelled);

  CalendarQueue queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_SIMULATION_H_

// Discrete-event simulation core.
//
// The entire cluster (servers, network, clients) runs inside one Simulation:
// a virtual clock plus an ordered queue of events. Events scheduled for the
// same instant execute in scheduling order, so runs are fully deterministic.
//
// This is the substrate substitution described in DESIGN.md section 4: the
// paper evaluates on a physical 4-node Cassandra cluster; we reproduce the
// relevant behaviour (message latencies, per-server service demand, and the
// interleavings that make multi-master view maintenance hard) in simulated
// time.

#ifndef MVSTORE_SIM_SIMULATION_H_
#define MVSTORE_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mvstore::sim {

/// Cancellation handle for a scheduled event. Default-constructed handles are
/// inert. Cancelling after the event fired is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from running (if it has not run yet).
  void Cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool active() const { return cancelled_ != nullptr && !*cancelled_; }

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulation {
 public:
  Simulation() = default;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time (microseconds since simulation start).
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= Now()).
  void At(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after a delay of `dt` (>= 0).
  void After(SimTime dt, std::function<void()> fn);

  /// Like After, but returns a handle that can cancel the event.
  EventHandle AfterCancelable(SimTime dt, std::function<void()> fn);

  /// Runs events until the queue is empty.
  void Run();

  /// Executes the next event. Returns false when the queue is empty.
  /// (Cancelled events are skipped but still count as progress.)
  bool Step();

  /// Runs all events with time <= `t`, then sets the clock to `t`.
  void RunUntil(SimTime t);

  /// Runs for `dt` more virtual time.
  void RunFor(SimTime dt) { RunUntil(now_ + dt); }

  /// Total events executed (for tests and debugging).
  std::uint64_t steps() const { return steps_; }

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO within an instant
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;  // may be null
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Push(SimTime t, std::function<void()> fn,
            std::shared_ptr<bool> cancelled);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_SIMULATION_H_

// Per-server CPU model.
//
// Each simulated server owns a ServiceQueue with a small number of cores
// (the paper's testbed used dual-core machines). Work submitted to the queue
// occupies a core for its service time; when all cores are busy, work waits.
// This is what makes throughput saturate in the figure-4/6 experiments: a
// native-secondary-index read consumes service time on EVERY server, so SI
// saturates the cluster at a far lower request rate than BT or MV access.

#ifndef MVSTORE_SIM_SERVICE_QUEUE_H_
#define MVSTORE_SIM_SERVICE_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/trace.h"
#include "common/types.h"
#include "common/unique_fn.h"
#include "sim/simulation.h"

namespace mvstore::sim {

class ServiceQueue {
 public:
  ServiceQueue(Simulation* sim, int cores);

  ServiceQueue(const ServiceQueue&) = delete;
  ServiceQueue& operator=(const ServiceQueue&) = delete;

  /// Runs `fn` after the work has queued for a free core and then executed
  /// for `service_time`. FIFO assignment to the earliest-free core.
  void Submit(SimTime service_time, UniqueFn<void()> fn);

  /// Virtual time the next submission would wait before starting service.
  SimTime QueueDelay() const;

  /// Frees every core as of the current simulation time, discarding queued
  /// backlog delay (a crashed server's restarted process starts with empty
  /// run queues; the already-scheduled closures still fire but their owners
  /// guard them by incarnation).
  void Reset();

  /// Total busy time accumulated across cores (utilization accounting).
  SimTime busy_time() const { return busy_time_; }
  std::uint64_t tasks() const { return tasks_; }

  /// Observability taps (optional; neither perturbs the simulation).
  /// With a tracer installed, each Submit under a live ambient context
  /// records a service span (annotated with its queue wait) and runs `fn`
  /// under it. `endpoint` labels the spans with this queue's owner.
  void set_tracer(Tracer* tracer, int endpoint) {
    tracer_ = tracer;
    endpoint_ = endpoint;
  }
  /// Per-submission queue-wait and service-time samples.
  void set_stage_histograms(Histogram* queue_wait, Histogram* service) {
    queue_wait_histogram_ = queue_wait;
    service_histogram_ = service;
  }

 private:
  Simulation* sim_;
  std::vector<SimTime> core_free_at_;
  SimTime busy_time_ = 0;
  std::uint64_t tasks_ = 0;
  Tracer* tracer_ = nullptr;
  int endpoint_ = -1;
  Histogram* queue_wait_histogram_ = nullptr;
  Histogram* service_histogram_ = nullptr;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_SERVICE_QUEUE_H_

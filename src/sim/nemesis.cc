#include "sim/nemesis.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace mvstore::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kDropRate:
      return "drop-rate";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kLeave:
      return "leave";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << "t=" << ToMillis(at) << "ms " << FaultKindName(kind);
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kRestart:
    case FaultKind::kLeave:
      os << " s" << a;
      break;
    case FaultKind::kJoin:
      break;  // the cluster picks the spare slot
    case FaultKind::kPartition:
    case FaultKind::kHeal:
      os << " s" << a << "<->s" << b;
      break;
    case FaultKind::kDropRate:
    case FaultKind::kLatencySpike:
      os << " " << rate;
      break;
  }
  return os.str();
}

FaultSchedule GenerateRandomSchedule(Rng rng, const NemesisOptions& options) {
  FaultSchedule schedule;

  // Crash/restart cycles: sample windows, rejecting ones that would crash an
  // already-down server or exceed the concurrent-down budget.
  struct Window {
    EndpointId server;
    SimTime start;
    SimTime end;
  };
  std::vector<Window> windows;
  for (int i = 0; i < options.crashes; ++i) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto server = static_cast<EndpointId>(
          rng.UniformInt(0, options.num_servers - 1));
      const SimTime downtime =
          rng.UniformInt(options.min_downtime, options.max_downtime);
      if (options.horizon <= downtime) break;
      const SimTime start = rng.UniformInt(0, options.horizon - downtime - 1);
      const SimTime end = start + downtime;
      bool ok = true;
      for (const Window& w : windows) {
        if (w.server == server && start < w.end + options.min_downtime &&
            w.start < end + options.min_downtime) {
          ok = false;  // same server: keep windows well separated
          break;
        }
      }
      if (ok) {
        // Concurrency budget: count overlapping windows of other servers.
        int concurrent = 1;
        for (const Window& w : windows) {
          if (w.server != server && start < w.end && w.start < end) {
            ++concurrent;
          }
        }
        if (concurrent > options.max_concurrent_down) ok = false;
      }
      if (!ok) continue;
      windows.push_back(Window{server, start, end});
      schedule.push_back({start, FaultKind::kCrash, server, 0, 0.0});
      schedule.push_back({end, FaultKind::kRestart, server, 0, 0.0});
      break;
    }
  }

  for (int i = 0; i < options.partitions; ++i) {
    const auto a =
        static_cast<EndpointId>(rng.UniformInt(0, options.num_servers - 1));
    auto b = static_cast<EndpointId>(rng.UniformInt(0, options.num_servers - 2));
    if (b >= a) ++b;
    const SimTime duration =
        rng.UniformInt(options.min_partition, options.max_partition);
    if (options.horizon <= duration) continue;
    const SimTime start = rng.UniformInt(0, options.horizon - duration - 1);
    schedule.push_back({start, FaultKind::kPartition, a, b, 0.0});
    schedule.push_back({start + duration, FaultKind::kHeal, a, b, 0.0});
  }

  for (int i = 0; i < options.drop_surges; ++i) {
    if (options.horizon <= options.surge_duration) break;
    const SimTime start =
        rng.UniformInt(0, options.horizon - options.surge_duration - 1);
    const double rate = rng.Uniform(0.05, 0.3);
    schedule.push_back({start, FaultKind::kDropRate, 0, 0, rate});
    schedule.push_back({start + options.surge_duration, FaultKind::kDropRate,
                        0, 0, options.baseline_drop_rate});
  }

  for (int i = 0; i < options.latency_spikes; ++i) {
    if (options.horizon <= options.spike_duration) break;
    const SimTime start =
        rng.UniformInt(0, options.horizon - options.spike_duration - 1);
    const double multiplier = rng.Uniform(2.0, 8.0);
    schedule.push_back({start, FaultKind::kLatencySpike, 0, 0, multiplier});
    schedule.push_back(
        {start + options.spike_duration, FaultKind::kLatencySpike, 0, 0, 1.0});
  }

  // Membership churn: a join early in the cycle window, a leave of a random
  // baseline server one churn-gap later. Cycles are spread across the
  // horizon so joins and leaves interleave with the other fault kinds; the
  // cluster rejects infeasible events (no spare slot, target not serving),
  // which keeps any randomly generated timeline safe to execute.
  for (int i = 0; i < options.membership_churn; ++i) {
    const SimTime gap =
        rng.UniformInt(options.min_churn_gap, options.max_churn_gap);
    if (options.horizon <= gap) break;
    const SimTime join_at = rng.UniformInt(0, options.horizon - gap - 1);
    const auto leaver = static_cast<EndpointId>(
        rng.UniformInt(0, options.num_servers - 1));
    schedule.push_back({join_at, FaultKind::kJoin, 0, 0, 0.0});
    schedule.push_back({join_at + gap, FaultKind::kLeave, leaver, 0, 0.0});
  }

  std::sort(schedule.begin(), schedule.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return x.at < y.at;
            });
  return schedule;
}

Nemesis::Nemesis(Simulation* sim, Network* network,
                 std::function<void(EndpointId)> crash,
                 std::function<void(EndpointId)> restart)
    : sim_(sim),
      network_(network),
      crash_(std::move(crash)),
      restart_(std::move(restart)) {}

void Nemesis::SetMembershipCallbacks(std::function<void()> join,
                                     std::function<void(EndpointId)> leave) {
  join_ = std::move(join);
  leave_ = std::move(leave);
}

void Nemesis::Schedule(FaultSchedule schedule) {
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  for (const FaultEvent& event : schedule) {
    sim_->At(event.at, [this, event] { Execute(event); });
  }
}

void Nemesis::Execute(const FaultEvent& event) {
  ++events_fired_;
  switch (event.kind) {
    case FaultKind::kCrash:
      if (down_servers_.count(event.a) != 0) return;  // already down
      down_servers_.insert(event.a);
      crash_(event.a);
      break;
    case FaultKind::kRestart:
      if (down_servers_.count(event.a) == 0) return;  // not down
      down_servers_.erase(event.a);
      restart_(event.a);
      break;
    case FaultKind::kPartition:
      open_partitions_.insert({event.a, event.b});
      network_->PartitionLink(event.a, event.b);
      break;
    case FaultKind::kHeal:
      open_partitions_.erase({event.a, event.b});
      network_->RestoreLink(event.a, event.b);
      break;
    case FaultKind::kDropRate:
      network_->set_drop_probability(event.rate);
      break;
    case FaultKind::kLatencySpike:
      network_->set_latency_multiplier(event.rate);
      break;
    case FaultKind::kJoin:
      if (join_) join_();
      break;
    case FaultKind::kLeave:
      // Never decommission a server the nemesis itself has down: a crashed
      // server cannot stream its ranges out (the cluster would reject the
      // call anyway, this just keeps the timeline legible).
      if (leave_ && down_servers_.count(event.a) == 0) leave_(event.a);
      break;
  }
}

void Nemesis::HealAllAt(SimTime at) {
  sim_->At(at, [this] {
    for (const auto& [a, b] : open_partitions_) {
      network_->RestoreLink(a, b);
    }
    open_partitions_.clear();
    network_->set_drop_probability(0.0);
    network_->set_latency_multiplier(1.0);
    // Restart last so recovery (commit-log replay, anti-entropy kick,
    // re-scrub) runs against a healthy network.
    for (EndpointId server : down_servers_) {
      restart_(server);
    }
    down_servers_.clear();
  });
}

}  // namespace mvstore::sim

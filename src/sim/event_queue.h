// Bucketed calendar queue for simulation events.
//
// The global std::priority_queue the simulator started with pays O(log n)
// comparisons and Event moves per push AND per pop; at millions of pending
// events the constant is what bounds simulated-ops-per-wall-second. Event
// times in this simulator cluster tightly (network latencies and service
// times are tens of microseconds), so a calendar layout fits: the near
// future is a ring of fixed-width day buckets addressed by t / width, and
// only events beyond the ring's horizon (long timers: rpc timeouts, hint
// replay, anti-entropy ticks) fall through to a sorted overflow heap, which
// migrates into the ring as the horizon slides forward.
//
// Ordering contract (the determinism guarantee): events execute in strictly
// increasing (time, seq) order, where seq is the global scheduling counter
// — exactly the order the old priority queue produced, so seeded runs
// replay byte-identically across the swap. Within a bucket the order is
// kept by a small binary heap of slot indices (u32 moves, not event moves);
// across buckets by the day cursor, which only accepts a bucket when its
// earliest event belongs to the cursor's day (a bucket may hold events from
// several calendar laps); against the overflow by the horizon invariant
// (every overflow event is at or past the horizon, which never shrinks).

#ifndef MVSTORE_SIM_EVENT_QUEUE_H_
#define MVSTORE_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "common/unique_fn.h"

namespace mvstore::sim {

struct SimEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;  // tie-breaker: FIFO within an instant
  UniqueFn<void()> fn;
  std::shared_ptr<bool> cancelled;  // null for non-cancelable events
};

class CalendarQueue {
 public:
  /// `bucket_width` is the span of virtual time one bucket covers;
  /// `num_buckets` sets how far ahead of the cursor the ring reaches
  /// (width * buckets). Events past that horizon wait in the overflow heap.
  explicit CalendarQueue(SimTime bucket_width = Micros(128),
                         std::size_t num_buckets = 4096);

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  /// Adds an event. The simulator guarantees event.time >= the time of the
  /// last popped event (no scheduling into the past); pushes earlier than
  /// the cursor's current day rewind the cursor, which is safe because the
  /// skipped days hold no events of their own lap.
  void Push(SimEvent event);

  /// Time of the earliest pending event; kSimTimeMax when empty. May slide
  /// the calendar window (hence non-const).
  SimTime MinTime();

  /// Removes and returns the earliest pending event. Precondition: !empty().
  SimEvent PopMin();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  SimTime bucket_width() const { return width_; }

 private:
  struct Bucket {
    /// Events appended in arrival order. Slots whose event was popped keep
    /// their (dead) entry until the bucket drains, so heap indices stay
    /// stable.
    std::vector<SimEvent> slots;
    /// Binary min-heap of slot indices ordered by (time, seq).
    std::vector<std::uint32_t> heap;
  };

  std::int64_t DayOf(SimTime t) const { return t / width_; }

  void BucketPush(Bucket& bucket, SimEvent event);
  SimEvent BucketPop(Bucket& bucket);
  /// Positions `day_` at the day of the globally earliest event and returns
  /// its bucket; nullptr when the queue is empty.
  Bucket* Position();
  /// Extends the horizon to cover `day_ + num_buckets` and moves every
  /// overflow event inside it into its bucket.
  void ExtendHorizon();

  // Overflow min-heap on (time, seq), stored as a std::*_heap vector.
  void OverflowPush(SimEvent event);
  SimEvent OverflowPop();

  SimTime width_;
  std::vector<Bucket> buckets_;
  std::vector<SimEvent> overflow_;
  /// Pop cursor: the day currently being drained. Pushes may rewind it.
  std::int64_t day_ = 0;
  /// First day NOT admitted to the ring (overflow events are all >= this).
  /// Never shrinks.
  std::int64_t horizon_day_ = 0;
  std::size_t ring_size_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_EVENT_QUEUE_H_

#include "sim/simulation.h"

#include <utility>

#include "common/logging.h"

namespace mvstore::sim {

void Simulation::Push(SimTime t, UniqueFn<void()> fn,
                      std::shared_ptr<bool> cancelled) {
  MVSTORE_CHECK_GE(t, now_);
  queue_.Push(SimEvent{t, next_seq_++, std::move(fn), std::move(cancelled)});
}

void Simulation::At(SimTime t, UniqueFn<void()> fn) {
  Push(t, std::move(fn), nullptr);
}

void Simulation::After(SimTime dt, UniqueFn<void()> fn) {
  MVSTORE_CHECK_GE(dt, 0);
  Push(now_ + dt, std::move(fn), nullptr);
}

EventHandle Simulation::AfterCancelable(SimTime dt, UniqueFn<void()> fn) {
  MVSTORE_CHECK_GE(dt, 0);
  auto cancelled = std::make_shared<bool>(false);
  Push(now_ + dt, std::move(fn), cancelled);
  return EventHandle(std::move(cancelled));
}

bool Simulation::Step() {
  if (queue_.empty()) return false;
  SimEvent ev = queue_.PopMin();
  now_ = ev.time;
  if (!(ev.cancelled && *ev.cancelled)) {
    ++steps_;
    ev.fn();
  }
  return true;
}

void Simulation::Run() {
  while (!queue_.empty()) {
    SimEvent ev = queue_.PopMin();
    now_ = ev.time;
    if (ev.cancelled && *ev.cancelled) continue;
    ++steps_;
    ev.fn();
  }
}

void Simulation::RunUntil(SimTime t) {
  MVSTORE_CHECK_GE(t, now_);
  while (!queue_.empty() && queue_.MinTime() <= t) {
    SimEvent ev = queue_.PopMin();
    now_ = ev.time;
    if (ev.cancelled && *ev.cancelled) continue;
    ++steps_;
    ev.fn();
  }
  now_ = t;
}

}  // namespace mvstore::sim

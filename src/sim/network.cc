#include "sim/network.h"

#include <algorithm>

namespace mvstore::sim {

namespace {
std::pair<EndpointId, EndpointId> Ordered(EndpointId a, EndpointId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

SimTime Network::SampleLatency() {
  SimTime jitter = 0;
  if (config_.jitter_mean > 0) {
    jitter = static_cast<SimTime>(
        rng_.Exponential(static_cast<double>(config_.jitter_mean)));
  }
  return config_.base_latency + jitter;
}

void Network::Send(EndpointId from, EndpointId to,
                   std::function<void()> deliver) {
  ++messages_sent_;
  if (down_.count(from) != 0 || down_.count(to) != 0 ||
      (from != to && cut_links_.count(Ordered(from, to)) != 0) ||
      (config_.drop_probability > 0 && rng_.Chance(config_.drop_probability))) {
    ++messages_dropped_;
    return;
  }
  const SimTime latency = from == to ? Micros(1) : SampleLatency();
  sim_->After(latency, std::move(deliver));
}

void Network::PartitionLink(EndpointId a, EndpointId b) {
  cut_links_.insert(Ordered(a, b));
}

void Network::RestoreLink(EndpointId a, EndpointId b) {
  cut_links_.erase(Ordered(a, b));
}

void Network::SetEndpointDown(EndpointId e, bool down) {
  if (down) {
    down_.insert(e);
  } else {
    down_.erase(e);
  }
}

bool Network::IsEndpointDown(EndpointId e) const {
  return down_.count(e) != 0;
}

}  // namespace mvstore::sim

#include "sim/network.h"

#include <algorithm>

namespace mvstore::sim {

namespace {
std::pair<EndpointId, EndpointId> Ordered(EndpointId a, EndpointId b) {
  return {std::min(a, b), std::max(a, b)};
}
}  // namespace

SimTime Network::SampleLatency() {
  SimTime jitter = 0;
  if (config_.jitter_mean > 0) {
    jitter = static_cast<SimTime>(
        rng_.Exponential(static_cast<double>(config_.jitter_mean)));
  }
  const SimTime latency = config_.base_latency + jitter;
  if (latency_multiplier_ == 1.0) return latency;
  return static_cast<SimTime>(static_cast<double>(latency) *
                              latency_multiplier_);
}

bool Network::Blocked(EndpointId from, EndpointId to) const {
  return down_.count(from) != 0 || down_.count(to) != 0 ||
         (from != to && cut_links_.count(Ordered(from, to)) != 0);
}

void Network::Send(EndpointId from, EndpointId to, UniqueFn<void()> deliver,
                   std::uint64_t payloads) {
  ++messages_sent_;
  payloads_sent_ += payloads;
  // A hop span inherits the sender's ambient context; the span stays open
  // until delivery (a dropped message leaves it unended — visible loss).
  TraceContext hop;
  if (tracer_ != nullptr && tracer_->current()) {
    hop = tracer_->StartSpan(
        tracer_->current(),
        "net " + std::to_string(from) + "->" + std::to_string(to),
        static_cast<int>(to), sim_->Now());
  }
  if (Blocked(from, to) ||
      (config_.drop_probability > 0 && rng_.Chance(config_.drop_probability))) {
    ++messages_dropped_;
    if (hop) tracer_->Annotate(hop, "dropped at send");
    return;
  }
  const SimTime latency = from == to ? Micros(1) : SampleLatency();
  if (latency_histogram_ != nullptr && from != to) {
    latency_histogram_->Record(latency);
  }
  // Fault state is re-evaluated when the message ARRIVES: a destination that
  // crashed, a link that partitioned, or an endpoint that restarted into a
  // new incarnation while the message was in flight all lose it.
  const std::uint64_t from_inc = incarnation(from);
  const std::uint64_t to_inc = incarnation(to);
  sim_->After(latency, [this, from, to, from_inc, to_inc, hop,
                        deliver = std::move(deliver)]() mutable {
    if (Blocked(from, to) || incarnation(from) != from_inc ||
        incarnation(to) != to_inc) {
      ++messages_dropped_;
      if (hop) tracer_->Annotate(hop, "dropped in flight");
      return;
    }
    if (hop) {
      tracer_->EndSpan(hop, sim_->Now());
      // Deliver under the hop's context so the receiver's work (service
      // queue spans, further sends) nests beneath it.
      Tracer::Scope scope(tracer_, hop);
      deliver();
      return;
    }
    deliver();
  });
}

void Network::PartitionLink(EndpointId a, EndpointId b) {
  cut_links_.insert(Ordered(a, b));
}

void Network::RestoreLink(EndpointId a, EndpointId b) {
  cut_links_.erase(Ordered(a, b));
}

void Network::SetEndpointDown(EndpointId e, bool down) {
  if (down) {
    down_.insert(e);
  } else {
    down_.erase(e);
  }
}

bool Network::IsEndpointDown(EndpointId e) const {
  return down_.count(e) != 0;
}

void Network::BumpIncarnation(EndpointId e) {
  if (e >= incarnations_.size()) incarnations_.resize(e + 1, 0);
  ++incarnations_[e];
}

std::uint64_t Network::incarnation(EndpointId e) const {
  return e < incarnations_.size() ? incarnations_[e] : 0;
}

}  // namespace mvstore::sim

// Deterministic fault-injection (nemesis) harness.
//
// A FaultSchedule is an explicit timeline of fault events — crash, restart,
// partition, heal, drop-rate surge, latency spike — executed as ordinary
// simulation events, so a whole chaos run is exactly reproducible: the same
// schedule (or the same generator seed) against the same cluster seed yields
// the same simulation, event for event.
//
// The sim layer knows how to drive the Network directly; crashing and
// restarting a server is a store-layer concern, so the Nemesis is handed
// crash/restart callbacks at construction (the cluster wires them to
// Server::Crash / Server::Restart). Schedules can be scripted by hand or
// generated from a seed via GenerateRandomSchedule.

#ifndef MVSTORE_SIM_NEMESIS_H_
#define MVSTORE_SIM_NEMESIS_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace mvstore::sim {

enum class FaultKind {
  kCrash,         ///< crash-stop server `a` (volatile state lost)
  kRestart,       ///< restart server `a` (commit-log replay + rejoin)
  kPartition,     ///< cut the (a, b) link
  kHeal,          ///< restore the (a, b) link
  kDropRate,      ///< set the network drop probability to `rate`
  kLatencySpike,  ///< set the network latency multiplier to `rate`
  kJoin,          ///< bootstrap a spare server into the ring (membership)
  kLeave,         ///< decommission server `a` out of the ring (membership)
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = 0;  ///< absolute simulation time
  FaultKind kind = FaultKind::kCrash;
  EndpointId a = 0;
  EndpointId b = 0;     ///< second endpoint (partition/heal only)
  double rate = 0.0;    ///< drop probability or latency multiplier

  std::string ToString() const;
};

/// A timeline, sorted by `at` (Schedule() sorts defensively).
using FaultSchedule = std::vector<FaultEvent>;

struct NemesisOptions {
  SimTime horizon = Seconds(10);  ///< events fall in [0, horizon)
  int num_servers = 4;
  /// Crash/restart cycles to inject (spread across servers; a server is
  /// never crashed while already down, and every crash is paired with a
  /// restart inside the horizon).
  int crashes = 4;
  SimTime min_downtime = Millis(200);
  SimTime max_downtime = Millis(1500);
  /// At most this many servers may be down simultaneously (keep quorums
  /// reachable often enough for the workload to make progress).
  int max_concurrent_down = 1;
  /// Partition/heal cycles between random server pairs.
  int partitions = 3;
  SimTime min_partition = Millis(200);
  SimTime max_partition = Millis(1200);
  /// Drop-rate surges (surge to [0.05, 0.3], then back to the baseline).
  int drop_surges = 2;
  SimTime surge_duration = Millis(500);
  double baseline_drop_rate = 0.0;  ///< restored when a surge ends
  /// Latency spikes (multiplier in [2, 8], then back to 1).
  int latency_spikes = 2;
  SimTime spike_duration = Millis(500);
  /// Membership-churn cycles: each cycle fires a kJoin (bootstrap a spare
  /// server slot) and, a churn-gap later, a kLeave of a random baseline
  /// server. Requires the cluster to be built with `max_servers` headroom
  /// and membership callbacks wired via SetMembershipCallbacks; joins past
  /// the headroom and leaves of non-serving servers are rejected by the
  /// cluster and become no-ops.
  int membership_churn = 0;
  SimTime min_churn_gap = Seconds(1);  ///< join -> leave spacing in a cycle
  SimTime max_churn_gap = Seconds(3);
};

/// Deterministically generates a random-but-reproducible schedule: the same
/// (rng seed, options) always yields the same timeline.
FaultSchedule GenerateRandomSchedule(Rng rng, const NemesisOptions& options);

class Nemesis {
 public:
  /// `crash` / `restart` are invoked with a server's endpoint id when a
  /// kCrash / kRestart event fires (the store wires these to the servers).
  Nemesis(Simulation* sim, Network* network,
          std::function<void(EndpointId)> crash,
          std::function<void(EndpointId)> restart);

  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  /// Wires the membership fault kinds: `join` bootstraps one spare server
  /// (the cluster picks the slot), `leave` decommissions the given server.
  /// kJoin/kLeave events are silently skipped while these are unset.
  void SetMembershipCallbacks(std::function<void()> join,
                              std::function<void(EndpointId)> leave);

  /// Registers every event of `schedule` with the simulation. May be called
  /// more than once; timelines interleave.
  void Schedule(FaultSchedule schedule);

  /// Crashed-but-not-yet-restarted servers are restarted and all partitions,
  /// drop surges, and latency spikes are cleared — at simulation time `at`.
  /// Call before the quiescence phase so convergence is reachable.
  void HealAllAt(SimTime at);

  std::uint64_t events_fired() const { return events_fired_; }

 private:
  void Execute(const FaultEvent& event);

  Simulation* sim_;
  Network* network_;
  std::function<void(EndpointId)> crash_;
  std::function<void(EndpointId)> restart_;
  std::function<void()> join_;
  std::function<void(EndpointId)> leave_;
  std::set<EndpointId> down_servers_;
  std::set<std::pair<EndpointId, EndpointId>> open_partitions_;
  std::uint64_t events_fired_ = 0;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_NEMESIS_H_

// Simulated message-passing network.
//
// Endpoints (servers and client hosts) are numbered densely. Send() delivers
// a callback to the destination after a sampled one-way latency, unless the
// message is dropped (random drop injection, an explicit partition, or a
// down endpoint). Fault state is evaluated BOTH at send time and again at
// delivery time: a message already in flight when its destination crashes or
// the link partitions is lost, exactly as a broken TCP connection loses its
// unacknowledged bytes. Each endpoint carries an incarnation counter bumped
// by crashes, so a message addressed to one incarnation is never delivered
// to the next one. The network is fail-silent: senders learn about losses
// only through their own timeouts, exactly as in the modeled system.

#ifndef MVSTORE_SIM_NETWORK_H_
#define MVSTORE_SIM_NETWORK_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"
#include "common/unique_fn.h"
#include "sim/simulation.h"

namespace mvstore::sim {

using EndpointId = std::uint32_t;

struct NetworkConfig {
  /// Fixed one-way propagation + protocol cost per message.
  SimTime base_latency = Micros(60);
  /// Mean of the exponential jitter added to every message.
  SimTime jitter_mean = Micros(20);
  /// Probability that any given message is silently dropped.
  double drop_probability = 0.0;
};

class Network {
 public:
  Network(Simulation* sim, Rng rng, NetworkConfig config)
      : sim_(sim), rng_(rng), config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Delivers `deliver` at the destination after a sampled latency, or never
  /// (drop / partition / endpoint down / destination restarted into a new
  /// incarnation while the message was in flight). Self-sends skip the wire
  /// but still go through the event queue (never synchronous), preserving
  /// the asynchrony the view-maintenance algorithms must tolerate.
  /// `payloads` counts the logical requests the message carries (a batched
  /// replica-write flush ships several in one envelope); it only feeds the
  /// payloads_sent() accounting — the wire cost is still one message.
  void Send(EndpointId from, EndpointId to, UniqueFn<void()> deliver,
            std::uint64_t payloads = 1);

  /// Cuts both directions of the (a, b) link until RestoreLink. Messages in
  /// flight across the link when it is cut are lost.
  void PartitionLink(EndpointId a, EndpointId b);
  void RestoreLink(EndpointId a, EndpointId b);

  /// Marks an endpoint down: all traffic to and from it is dropped,
  /// including messages already in flight.
  void SetEndpointDown(EndpointId e, bool down);
  bool IsEndpointDown(EndpointId e) const;

  /// Advances an endpoint's incarnation (crash-stop model): every message
  /// sent to or from the previous incarnation — even one surviving the
  /// down-window because the endpoint restarted quickly — is discarded at
  /// delivery time.
  void BumpIncarnation(EndpointId e);
  std::uint64_t incarnation(EndpointId e) const;

  void set_drop_probability(double p) { config_.drop_probability = p; }
  /// Scales sampled latencies (base + jitter); nemesis latency spikes.
  void set_latency_multiplier(double m) { latency_multiplier_ = m; }
  double latency_multiplier() const { return latency_multiplier_; }
  const NetworkConfig& config() const { return config_; }

  /// Observability taps (both optional; neither perturbs the simulation).
  /// With a tracer installed, every Send under a live ambient trace context
  /// records a network-hop span and delivers the message under it, so causal
  /// chains thread through the wire automatically.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  /// Records each sampled one-way latency (self-sends excluded).
  void set_latency_histogram(Histogram* histogram) {
    latency_histogram_ = histogram;
  }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  /// Logical requests carried across all messages; payloads_sent() ==
  /// messages_sent() when no batching is in effect. The ratio is the
  /// batching factor the coordinator achieved.
  std::uint64_t payloads_sent() const { return payloads_sent_; }

 private:
  SimTime SampleLatency();
  bool Blocked(EndpointId from, EndpointId to) const;

  Simulation* sim_;
  Rng rng_;
  NetworkConfig config_;
  Tracer* tracer_ = nullptr;
  Histogram* latency_histogram_ = nullptr;
  double latency_multiplier_ = 1.0;
  std::set<std::pair<EndpointId, EndpointId>> cut_links_;
  std::set<EndpointId> down_;
  /// Dense, indexed by endpoint id (ids are allocated contiguously from 0);
  /// grown on first bump so unseen endpoints read incarnation 0.
  std::vector<std::uint64_t> incarnations_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t payloads_sent_ = 0;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_NETWORK_H_

// Simulated message-passing network.
//
// Endpoints (servers and client hosts) are numbered densely. Send() delivers
// a callback to the destination after a sampled one-way latency, unless the
// message is dropped (random drop injection or an explicit partition). The
// network is fail-silent: senders learn about losses only through their own
// timeouts, exactly as in the modeled system.

#ifndef MVSTORE_SIM_NETWORK_H_
#define MVSTORE_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/simulation.h"

namespace mvstore::sim {

using EndpointId = std::uint32_t;

struct NetworkConfig {
  /// Fixed one-way propagation + protocol cost per message.
  SimTime base_latency = Micros(60);
  /// Mean of the exponential jitter added to every message.
  SimTime jitter_mean = Micros(20);
  /// Probability that any given message is silently dropped.
  double drop_probability = 0.0;
};

class Network {
 public:
  Network(Simulation* sim, Rng rng, NetworkConfig config)
      : sim_(sim), rng_(rng), config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Delivers `deliver` at the destination after a sampled latency, or never
  /// (drop / partition / endpoint down). Self-sends skip the wire but still
  /// go through the event queue (never synchronous), preserving the
  /// asynchrony the view-maintenance algorithms must tolerate.
  void Send(EndpointId from, EndpointId to, std::function<void()> deliver);

  /// Cuts both directions of the (a, b) link until RestoreLink.
  void PartitionLink(EndpointId a, EndpointId b);
  void RestoreLink(EndpointId a, EndpointId b);

  /// Marks an endpoint down: all traffic to and from it is dropped.
  void SetEndpointDown(EndpointId e, bool down);
  bool IsEndpointDown(EndpointId e) const;

  void set_drop_probability(double p) { config_.drop_probability = p; }
  const NetworkConfig& config() const { return config_; }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  SimTime SampleLatency();

  Simulation* sim_;
  Rng rng_;
  NetworkConfig config_;
  std::set<std::pair<EndpointId, EndpointId>> cut_links_;
  std::set<EndpointId> down_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_dropped_ = 0;
};

}  // namespace mvstore::sim

#endif  // MVSTORE_SIM_NETWORK_H_

#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mvstore::sim {

namespace {

/// Strict (time, seq) order; seq is unique, so this is a total order.
inline bool EarlierEvent(const SimEvent& a, const SimEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

}  // namespace

CalendarQueue::CalendarQueue(SimTime bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets) {
  MVSTORE_CHECK_GT(bucket_width, 0);
  MVSTORE_CHECK_GT(num_buckets, 0u);
  horizon_day_ = static_cast<std::int64_t>(num_buckets);
}

void CalendarQueue::Push(SimEvent event) {
  ++size_;
  const std::int64_t day = DayOf(event.time);
  if (day >= horizon_day_) {
    OverflowPush(std::move(event));
    return;
  }
  // A push may land before the cursor's day: RunUntil peeks ahead, then
  // hands control back with the clock behind the peeked event, and the next
  // scheduled event can be earlier than where the peek walked the cursor.
  // Rewinding is safe — the days between hold no events, or Position()'s
  // min-day check re-skips them.
  if (day < day_) day_ = day;
  BucketPush(buckets_[static_cast<std::size_t>(day) % buckets_.size()],
             std::move(event));
  ++ring_size_;
}

void CalendarQueue::BucketPush(Bucket& bucket, SimEvent event) {
  const auto slot = static_cast<std::uint32_t>(bucket.slots.size());
  bucket.slots.push_back(std::move(event));
  // Sift the new slot index up the per-bucket heap (u32 moves only).
  bucket.heap.push_back(slot);
  std::size_t i = bucket.heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!EarlierEvent(bucket.slots[bucket.heap[i]],
                      bucket.slots[bucket.heap[parent]])) {
      break;
    }
    std::swap(bucket.heap[i], bucket.heap[parent]);
    i = parent;
  }
}

SimEvent CalendarQueue::BucketPop(Bucket& bucket) {
  const std::uint32_t slot = bucket.heap.front();
  SimEvent event = std::move(bucket.slots[slot]);
  // Standard sift-down after moving the last leaf to the root.
  bucket.heap.front() = bucket.heap.back();
  bucket.heap.pop_back();
  std::size_t i = 0;
  const std::size_t n = bucket.heap.size();
  while (true) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n && EarlierEvent(bucket.slots[bucket.heap[left]],
                                 bucket.slots[bucket.heap[best]])) {
      best = left;
    }
    if (right < n && EarlierEvent(bucket.slots[bucket.heap[right]],
                                  bucket.slots[bucket.heap[best]])) {
      best = right;
    }
    if (best == i) break;
    std::swap(bucket.heap[i], bucket.heap[best]);
    i = best;
  }
  if (bucket.heap.empty()) {
    // Bucket drained: drop the dead slots but keep moderate capacity for
    // its next lap around the calendar.
    if (bucket.slots.capacity() > 512) {
      std::vector<SimEvent>().swap(bucket.slots);
    } else {
      bucket.slots.clear();
    }
  }
  return event;
}

void CalendarQueue::OverflowPush(SimEvent event) {
  overflow_.push_back(std::move(event));
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [](const SimEvent& a, const SimEvent& b) {
                   return EarlierEvent(b, a);  // min-heap
                 });
}

SimEvent CalendarQueue::OverflowPop() {
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [](const SimEvent& a, const SimEvent& b) {
                  return EarlierEvent(b, a);
                });
  SimEvent event = std::move(overflow_.back());
  overflow_.pop_back();
  return event;
}

void CalendarQueue::ExtendHorizon() {
  const std::int64_t reach =
      day_ + static_cast<std::int64_t>(buckets_.size());
  if (reach <= horizon_day_) return;
  horizon_day_ = reach;
  while (!overflow_.empty() && DayOf(overflow_.front().time) < horizon_day_) {
    SimEvent event = OverflowPop();
    BucketPush(
        buckets_[static_cast<std::size_t>(DayOf(event.time)) % buckets_.size()],
        std::move(event));
    ++ring_size_;
  }
}

CalendarQueue::Bucket* CalendarQueue::Position() {
  if (size_ == 0) return nullptr;
  while (true) {
    if (ring_size_ == 0) {
      // Nothing in the ring: jump the cursor straight to the overflow's
      // earliest day instead of walking empty buckets toward it.
      day_ = std::max(day_, DayOf(overflow_.front().time));
      ExtendHorizon();
      continue;
    }
    Bucket& bucket = buckets_[static_cast<std::size_t>(day_) % buckets_.size()];
    // The bucket counts only when its earliest event belongs to the
    // cursor's day — it may also hold events a whole lap (or more) ahead.
    if (!bucket.heap.empty() &&
        DayOf(bucket.slots[bucket.heap.front()].time) == day_) {
      return &bucket;
    }
    ++day_;
    ExtendHorizon();
  }
}

SimTime CalendarQueue::MinTime() {
  Bucket* bucket = Position();
  if (bucket == nullptr) return kSimTimeMax;
  return bucket->slots[bucket->heap.front()].time;
}

SimEvent CalendarQueue::PopMin() {
  Bucket* bucket = Position();
  MVSTORE_CHECK(bucket != nullptr);
  --ring_size_;
  --size_;
  return BucketPop(*bucket);
}

}  // namespace mvstore::sim

file(REMOVE_RECURSE
  "CMakeFiles/skew_demo.dir/skew_demo.cc.o"
  "CMakeFiles/skew_demo.dir/skew_demo.cc.o.d"
  "skew_demo"
  "skew_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for skew_demo.
# This may be replaced when dependencies are built.

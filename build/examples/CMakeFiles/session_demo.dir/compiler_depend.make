# Empty compiler generated dependencies file for session_demo.
# This may be replaced when dependencies are built.

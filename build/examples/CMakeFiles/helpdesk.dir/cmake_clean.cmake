file(REMOVE_RECURSE
  "CMakeFiles/helpdesk.dir/helpdesk.cc.o"
  "CMakeFiles/helpdesk.dir/helpdesk.cc.o.d"
  "helpdesk"
  "helpdesk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helpdesk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for helpdesk.
# This may be replaced when dependencies are built.

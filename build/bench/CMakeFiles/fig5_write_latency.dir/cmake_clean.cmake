file(REMOVE_RECURSE
  "CMakeFiles/fig5_write_latency.dir/fig5_write_latency.cc.o"
  "CMakeFiles/fig5_write_latency.dir/fig5_write_latency.cc.o.d"
  "fig5_write_latency"
  "fig5_write_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig3_read_latency.dir/fig3_read_latency.cc.o"
  "CMakeFiles/fig3_read_latency.dir/fig3_read_latency.cc.o.d"
  "fig3_read_latency"
  "fig3_read_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_read_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

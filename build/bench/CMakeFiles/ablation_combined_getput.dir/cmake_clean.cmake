file(REMOVE_RECURSE
  "CMakeFiles/ablation_combined_getput.dir/ablation_combined_getput.cc.o"
  "CMakeFiles/ablation_combined_getput.dir/ablation_combined_getput.cc.o.d"
  "ablation_combined_getput"
  "ablation_combined_getput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combined_getput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

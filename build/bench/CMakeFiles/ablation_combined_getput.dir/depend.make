# Empty dependencies file for ablation_combined_getput.
# This may be replaced when dependencies are built.

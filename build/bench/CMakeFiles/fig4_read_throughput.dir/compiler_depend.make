# Empty compiler generated dependencies file for fig4_read_throughput.
# This may be replaced when dependencies are built.

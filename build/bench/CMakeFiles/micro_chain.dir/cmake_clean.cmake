file(REMOVE_RECURSE
  "CMakeFiles/micro_chain.dir/micro_chain.cc.o"
  "CMakeFiles/micro_chain.dir/micro_chain.cc.o.d"
  "micro_chain"
  "micro_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig8_update_skew.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_session_guarantees.dir/fig7_session_guarantees.cc.o"
  "CMakeFiles/fig7_session_guarantees.dir/fig7_session_guarantees.cc.o.d"
  "fig7_session_guarantees"
  "fig7_session_guarantees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_session_guarantees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

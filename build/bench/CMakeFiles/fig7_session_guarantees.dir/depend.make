# Empty dependencies file for fig7_session_guarantees.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_quorums.dir/ablation_quorums.cc.o"
  "CMakeFiles/ablation_quorums.dir/ablation_quorums.cc.o.d"
  "ablation_quorums"
  "ablation_quorums.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quorums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_quorums.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_propagation_mode.
# This may be replaced when dependencies are built.

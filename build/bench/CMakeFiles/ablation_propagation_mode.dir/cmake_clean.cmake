file(REMOVE_RECURSE
  "CMakeFiles/ablation_propagation_mode.dir/ablation_propagation_mode.cc.o"
  "CMakeFiles/ablation_propagation_mode.dir/ablation_propagation_mode.cc.o.d"
  "ablation_propagation_mode"
  "ablation_propagation_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_propagation_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

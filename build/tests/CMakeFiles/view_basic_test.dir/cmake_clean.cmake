file(REMOVE_RECURSE
  "CMakeFiles/view_basic_test.dir/view_basic_test.cc.o"
  "CMakeFiles/view_basic_test.dir/view_basic_test.cc.o.d"
  "view_basic_test"
  "view_basic_test.pdb"
  "view_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for view_basic_test.
# This may be replaced when dependencies are built.

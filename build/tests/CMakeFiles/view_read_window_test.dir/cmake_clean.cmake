file(REMOVE_RECURSE
  "CMakeFiles/view_read_window_test.dir/view_read_window_test.cc.o"
  "CMakeFiles/view_read_window_test.dir/view_read_window_test.cc.o.d"
  "view_read_window_test"
  "view_read_window_test.pdb"
  "view_read_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_read_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

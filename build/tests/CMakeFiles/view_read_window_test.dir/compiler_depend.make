# Empty compiler generated dependencies file for view_read_window_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/view_failure_test.dir/view_failure_test.cc.o"
  "CMakeFiles/view_failure_test.dir/view_failure_test.cc.o.d"
  "view_failure_test"
  "view_failure_test.pdb"
  "view_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

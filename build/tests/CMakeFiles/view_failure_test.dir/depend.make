# Empty dependencies file for view_failure_test.
# This may be replaced when dependencies are built.

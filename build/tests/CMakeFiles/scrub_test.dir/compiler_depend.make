# Empty compiler generated dependencies file for scrub_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/index_test.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/index_test.dir/index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/view/CMakeFiles/mv_view.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/mv_store.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mv_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for lock_service_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/view_concurrent_test.dir/view_concurrent_test.cc.o"
  "CMakeFiles/view_concurrent_test.dir/view_concurrent_test.cc.o.d"
  "view_concurrent_test"
  "view_concurrent_test.pdb"
  "view_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

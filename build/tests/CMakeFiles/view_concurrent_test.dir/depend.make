# Empty dependencies file for view_concurrent_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for view_extensions_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/view_extensions_test.dir/view_extensions_test.cc.o"
  "CMakeFiles/view_extensions_test.dir/view_extensions_test.cc.o.d"
  "view_extensions_test"
  "view_extensions_test.pdb"
  "view_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

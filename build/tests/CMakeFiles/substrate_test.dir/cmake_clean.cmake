file(REMOVE_RECURSE
  "CMakeFiles/substrate_test.dir/substrate_test.cc.o"
  "CMakeFiles/substrate_test.dir/substrate_test.cc.o.d"
  "substrate_test"
  "substrate_test.pdb"
  "substrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for view_property_test.
# This may be replaced when dependencies are built.

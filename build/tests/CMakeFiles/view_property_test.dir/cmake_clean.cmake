file(REMOVE_RECURSE
  "CMakeFiles/view_property_test.dir/view_property_test.cc.o"
  "CMakeFiles/view_property_test.dir/view_property_test.cc.o.d"
  "view_property_test"
  "view_property_test.pdb"
  "view_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

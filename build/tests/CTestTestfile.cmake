# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/lock_service_test[1]_include.cmake")
include("/root/repo/build/tests/ring_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/scrub_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/substrate_test[1]_include.cmake")
include("/root/repo/build/tests/view_basic_test[1]_include.cmake")
include("/root/repo/build/tests/view_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/view_property_test[1]_include.cmake")
include("/root/repo/build/tests/view_read_window_test[1]_include.cmake")
include("/root/repo/build/tests/view_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/view_failure_test[1]_include.cmake")
include("/root/repo/build/tests/view_selection_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/mv_store.dir/client.cc.o"
  "CMakeFiles/mv_store.dir/client.cc.o.d"
  "CMakeFiles/mv_store.dir/cluster.cc.o"
  "CMakeFiles/mv_store.dir/cluster.cc.o.d"
  "CMakeFiles/mv_store.dir/codec.cc.o"
  "CMakeFiles/mv_store.dir/codec.cc.o.d"
  "CMakeFiles/mv_store.dir/ring.cc.o"
  "CMakeFiles/mv_store.dir/ring.cc.o.d"
  "CMakeFiles/mv_store.dir/schema.cc.o"
  "CMakeFiles/mv_store.dir/schema.cc.o.d"
  "CMakeFiles/mv_store.dir/server.cc.o"
  "CMakeFiles/mv_store.dir/server.cc.o.d"
  "libmv_store.a"
  "libmv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

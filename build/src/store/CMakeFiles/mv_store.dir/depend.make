# Empty dependencies file for mv_store.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/client.cc" "src/store/CMakeFiles/mv_store.dir/client.cc.o" "gcc" "src/store/CMakeFiles/mv_store.dir/client.cc.o.d"
  "/root/repo/src/store/cluster.cc" "src/store/CMakeFiles/mv_store.dir/cluster.cc.o" "gcc" "src/store/CMakeFiles/mv_store.dir/cluster.cc.o.d"
  "/root/repo/src/store/codec.cc" "src/store/CMakeFiles/mv_store.dir/codec.cc.o" "gcc" "src/store/CMakeFiles/mv_store.dir/codec.cc.o.d"
  "/root/repo/src/store/ring.cc" "src/store/CMakeFiles/mv_store.dir/ring.cc.o" "gcc" "src/store/CMakeFiles/mv_store.dir/ring.cc.o.d"
  "/root/repo/src/store/schema.cc" "src/store/CMakeFiles/mv_store.dir/schema.cc.o" "gcc" "src/store/CMakeFiles/mv_store.dir/schema.cc.o.d"
  "/root/repo/src/store/server.cc" "src/store/CMakeFiles/mv_store.dir/server.cc.o" "gcc" "src/store/CMakeFiles/mv_store.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mv_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

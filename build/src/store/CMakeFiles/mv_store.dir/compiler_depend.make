# Empty compiler generated dependencies file for mv_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmv_store.a"
)

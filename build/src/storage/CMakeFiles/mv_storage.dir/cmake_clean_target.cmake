file(REMOVE_RECURSE
  "libmv_storage.a"
)

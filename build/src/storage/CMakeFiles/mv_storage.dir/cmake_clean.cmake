file(REMOVE_RECURSE
  "CMakeFiles/mv_storage.dir/bloom.cc.o"
  "CMakeFiles/mv_storage.dir/bloom.cc.o.d"
  "CMakeFiles/mv_storage.dir/cell.cc.o"
  "CMakeFiles/mv_storage.dir/cell.cc.o.d"
  "CMakeFiles/mv_storage.dir/engine.cc.o"
  "CMakeFiles/mv_storage.dir/engine.cc.o.d"
  "CMakeFiles/mv_storage.dir/memtable.cc.o"
  "CMakeFiles/mv_storage.dir/memtable.cc.o.d"
  "CMakeFiles/mv_storage.dir/row.cc.o"
  "CMakeFiles/mv_storage.dir/row.cc.o.d"
  "CMakeFiles/mv_storage.dir/run.cc.o"
  "CMakeFiles/mv_storage.dir/run.cc.o.d"
  "libmv_storage.a"
  "libmv_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

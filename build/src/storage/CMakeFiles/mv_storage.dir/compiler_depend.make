# Empty compiler generated dependencies file for mv_storage.
# This may be replaced when dependencies are built.

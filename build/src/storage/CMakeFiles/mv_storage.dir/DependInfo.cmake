
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bloom.cc" "src/storage/CMakeFiles/mv_storage.dir/bloom.cc.o" "gcc" "src/storage/CMakeFiles/mv_storage.dir/bloom.cc.o.d"
  "/root/repo/src/storage/cell.cc" "src/storage/CMakeFiles/mv_storage.dir/cell.cc.o" "gcc" "src/storage/CMakeFiles/mv_storage.dir/cell.cc.o.d"
  "/root/repo/src/storage/engine.cc" "src/storage/CMakeFiles/mv_storage.dir/engine.cc.o" "gcc" "src/storage/CMakeFiles/mv_storage.dir/engine.cc.o.d"
  "/root/repo/src/storage/memtable.cc" "src/storage/CMakeFiles/mv_storage.dir/memtable.cc.o" "gcc" "src/storage/CMakeFiles/mv_storage.dir/memtable.cc.o.d"
  "/root/repo/src/storage/row.cc" "src/storage/CMakeFiles/mv_storage.dir/row.cc.o" "gcc" "src/storage/CMakeFiles/mv_storage.dir/row.cc.o.d"
  "/root/repo/src/storage/run.cc" "src/storage/CMakeFiles/mv_storage.dir/run.cc.o" "gcc" "src/storage/CMakeFiles/mv_storage.dir/run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mv_sim.
# This may be replaced when dependencies are built.

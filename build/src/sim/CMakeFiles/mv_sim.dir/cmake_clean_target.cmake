file(REMOVE_RECURSE
  "libmv_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mv_sim.dir/network.cc.o"
  "CMakeFiles/mv_sim.dir/network.cc.o.d"
  "CMakeFiles/mv_sim.dir/service_queue.cc.o"
  "CMakeFiles/mv_sim.dir/service_queue.cc.o.d"
  "CMakeFiles/mv_sim.dir/simulation.cc.o"
  "CMakeFiles/mv_sim.dir/simulation.cc.o.d"
  "libmv_sim.a"
  "libmv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mv_index.
# This may be replaced when dependencies are built.

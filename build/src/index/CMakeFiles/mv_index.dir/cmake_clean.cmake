file(REMOVE_RECURSE
  "CMakeFiles/mv_index.dir/local_index.cc.o"
  "CMakeFiles/mv_index.dir/local_index.cc.o.d"
  "libmv_index.a"
  "libmv_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

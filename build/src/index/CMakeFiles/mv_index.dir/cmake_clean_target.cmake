file(REMOVE_RECURSE
  "libmv_index.a"
)

# Empty dependencies file for mv_view.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mv_view.dir/join_view.cc.o"
  "CMakeFiles/mv_view.dir/join_view.cc.o.d"
  "CMakeFiles/mv_view.dir/lock_service.cc.o"
  "CMakeFiles/mv_view.dir/lock_service.cc.o.d"
  "CMakeFiles/mv_view.dir/maintenance_engine.cc.o"
  "CMakeFiles/mv_view.dir/maintenance_engine.cc.o.d"
  "CMakeFiles/mv_view.dir/propagation.cc.o"
  "CMakeFiles/mv_view.dir/propagation.cc.o.d"
  "CMakeFiles/mv_view.dir/scrub.cc.o"
  "CMakeFiles/mv_view.dir/scrub.cc.o.d"
  "CMakeFiles/mv_view.dir/session_manager.cc.o"
  "CMakeFiles/mv_view.dir/session_manager.cc.o.d"
  "CMakeFiles/mv_view.dir/view_row.cc.o"
  "CMakeFiles/mv_view.dir/view_row.cc.o.d"
  "libmv_view.a"
  "libmv_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

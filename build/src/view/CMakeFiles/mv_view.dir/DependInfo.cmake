
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/view/join_view.cc" "src/view/CMakeFiles/mv_view.dir/join_view.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/join_view.cc.o.d"
  "/root/repo/src/view/lock_service.cc" "src/view/CMakeFiles/mv_view.dir/lock_service.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/lock_service.cc.o.d"
  "/root/repo/src/view/maintenance_engine.cc" "src/view/CMakeFiles/mv_view.dir/maintenance_engine.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/maintenance_engine.cc.o.d"
  "/root/repo/src/view/propagation.cc" "src/view/CMakeFiles/mv_view.dir/propagation.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/propagation.cc.o.d"
  "/root/repo/src/view/scrub.cc" "src/view/CMakeFiles/mv_view.dir/scrub.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/scrub.cc.o.d"
  "/root/repo/src/view/session_manager.cc" "src/view/CMakeFiles/mv_view.dir/session_manager.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/session_manager.cc.o.d"
  "/root/repo/src/view/view_row.cc" "src/view/CMakeFiles/mv_view.dir/view_row.cc.o" "gcc" "src/view/CMakeFiles/mv_view.dir/view_row.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mv_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/mv_store.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mv_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

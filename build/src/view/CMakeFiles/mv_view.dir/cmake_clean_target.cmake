file(REMOVE_RECURSE
  "libmv_view.a"
)

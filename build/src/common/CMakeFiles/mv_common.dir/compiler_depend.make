# Empty compiler generated dependencies file for mv_common.
# This may be replaced when dependencies are built.

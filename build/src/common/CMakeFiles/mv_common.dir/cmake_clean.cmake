file(REMOVE_RECURSE
  "CMakeFiles/mv_common.dir/hash.cc.o"
  "CMakeFiles/mv_common.dir/hash.cc.o.d"
  "CMakeFiles/mv_common.dir/histogram.cc.o"
  "CMakeFiles/mv_common.dir/histogram.cc.o.d"
  "CMakeFiles/mv_common.dir/logging.cc.o"
  "CMakeFiles/mv_common.dir/logging.cc.o.d"
  "CMakeFiles/mv_common.dir/rng.cc.o"
  "CMakeFiles/mv_common.dir/rng.cc.o.d"
  "CMakeFiles/mv_common.dir/status.cc.o"
  "CMakeFiles/mv_common.dir/status.cc.o.d"
  "CMakeFiles/mv_common.dir/str_util.cc.o"
  "CMakeFiles/mv_common.dir/str_util.cc.o.d"
  "libmv_common.a"
  "libmv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

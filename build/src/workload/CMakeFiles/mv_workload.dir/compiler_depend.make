# Empty compiler generated dependencies file for mv_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmv_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/mv_workload.dir/key_generator.cc.o"
  "CMakeFiles/mv_workload.dir/key_generator.cc.o.d"
  "CMakeFiles/mv_workload.dir/runner.cc.o"
  "CMakeFiles/mv_workload.dir/runner.cc.o.d"
  "libmv_workload.a"
  "libmv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Sub-sharded views (ISSUE 9): scatter-gather reads over a view key split
// into sub-shards, maintenance routing by base-key hash, the shard_count=1
// byte-layout regression, and convergence of sharded views under a zipfian
// workload with crashes and membership churn.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/nemesis.h"
#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"
#include "view/scrub.h"
#include "workload/key_generator.h"

namespace mvstore {
namespace {

using store::kClientTimestampEpoch;
using store::QuerySpec;
using store::ReadOptions;
using store::WriteOptions;
using test::TestCluster;

constexpr int kShards = 8;

TestCluster ShardedCluster(store::ClusterConfig config =
                               test::DefaultTestConfig()) {
  return TestCluster(std::move(config),
                     test::TicketSchema(/*with_index=*/true,
                                        /*with_view=*/true, kShards));
}

// A hot view key whose rows land in several sub-shards must still be served
// whole: the scatter-gather read merges every sub-scan.
TEST(ViewShardingTest, ScatterGatherServesTheWholeHotKey) {
  TestCluster t = ShardedCluster();
  const int kRows = 32;
  std::set<int> shards_hit;
  for (int k = 0; k < kRows; ++k) {
    const Key key = "t" + std::to_string(k);
    shards_hit.insert(store::ShardOfBaseKey(key, kShards));
    t.cluster.BootstrapLoadRow(
        "ticket", key,
        {{"assigned_to", std::string("hot")},
         {"status", "s" + std::to_string(k)}},
        100 + k);
  }
  // The point of the test is a multi-shard merge; 32 hashed keys into 8
  // shards leave no shard empty with overwhelming probability.
  ASSERT_GT(shards_hit.size(), 1u);

  auto client = t.cluster.NewClient();
  auto result = client->QuerySync(QuerySpec::View("assigned_to_view", "hot"),
                                  {.quorum = 3});
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_EQ(result.records.size(), static_cast<std::size_t>(kRows));
  std::set<Key> base_keys;
  for (const store::ViewRecord& r : result.records) {
    base_keys.insert(r.base_key);
    const int k = std::stoi(r.base_key.substr(1));
    EXPECT_EQ(r.cells.GetValue("status").value_or(""),
              "s" + std::to_string(k));
  }
  EXPECT_EQ(base_keys.size(), static_cast<std::size_t>(kRows));
  EXPECT_GT(t.cluster.metrics().view_scatter_scans, 0u);
}

// Incremental maintenance routes each base key's family to one sub-shard;
// moves and deletes must be visible through the scattered read exactly as
// they are through an unsharded view.
TEST(ViewShardingTest, MaintainedIncrementallyAcrossShards) {
  TestCluster t = ShardedCluster();
  auto client = t.cluster.NewClient();
  const int kRows = 16;
  for (int k = 0; k < kRows; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", std::string("hot")},
                               {"status", std::string("open")}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();

  // Move half the rows to another assignee, delete two, restatus one.
  for (int k = 0; k < kRows; k += 2) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", std::string("cold")}},
                              WriteOptions{})
                    .ok());
  }
  ASSERT_TRUE(
      client->DeleteSync("ticket", "t1", {"assigned_to"}, WriteOptions{})
          .ok());
  ASSERT_TRUE(
      client->DeleteSync("ticket", "t3", {"assigned_to"}, WriteOptions{})
          .ok());
  ASSERT_TRUE(client
                  ->PutSync("ticket", "t5",
                            {{"status", std::string("closed")}},
                            WriteOptions{})
                  .ok());
  t.Quiesce();

  auto hot = client->QuerySync(QuerySpec::View("assigned_to_view", "hot"),
                               {.quorum = 3});
  ASSERT_TRUE(hot.ok());
  std::map<Key, std::string> got;
  for (const store::ViewRecord& r : hot.records) {
    got[r.base_key] = r.cells.GetValue("status").value_or("");
  }
  // Odd keys stayed hot, minus the two deletes; t5 shows its new status.
  std::map<Key, std::string> want;
  for (int k = 1; k < kRows; k += 2) {
    if (k == 1 || k == 3) continue;
    want["t" + std::to_string(k)] = k == 5 ? "closed" : "open";
  }
  EXPECT_EQ(got, want);

  auto cold = client->QuerySync(QuerySpec::View("assigned_to_view", "cold"),
                                {.quorum = 3});
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold.records.size(), static_cast<std::size_t>(kRows / 2));

  // Structural invariants hold with the sharded layout.
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
}

// Unsharded views never take the scatter path and never write shard
// headers — the byte layout is exactly the classic one.
TEST(ViewShardingTest, ShardCountOneKeepsClassicLayoutAndReadPath) {
  TestCluster t;  // default schema: shard_count = 1
  auto client = t.cluster.NewClient();
  for (int k = 0; k < 8; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", "a" + std::to_string(k % 3)},
                               {"status", std::string("open")}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();
  auto result = client->QuerySync(QuerySpec::View("assigned_to_view", "a1"),
                                  {.quorum = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.records.empty());
  EXPECT_EQ(t.cluster.metrics().view_scatter_scans, 0u);

  // Every stored view row parses with the CLASSIC (headerless) splitter.
  for (int s = 0; s < t.cluster.num_servers(); ++s) {
    t.cluster.server(s).EngineFor("assigned_to_view")
        .ForEach([](const Key& key, const storage::Row&) {
          EXPECT_NE(key.front(), store::kShardHeaderPrefix) << "sharded "
              "header leaked into an unsharded view";
          EXPECT_TRUE(store::SplitViewRowKey(key).has_value());
        });
  }
}

// Sharded rows DO carry the header, and every row sits in the sub-shard its
// base key hashes to (the routing invariant the chain walk depends on).
TEST(ViewShardingTest, EveryStoredRowSitsInItsBaseKeyShard) {
  TestCluster t = ShardedCluster();
  auto client = t.cluster.NewClient();
  for (int k = 0; k < 24; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", "a" + std::to_string(k % 2)},
                               {"status", std::string("open")}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();
  int rows_seen = 0;
  for (int s = 0; s < t.cluster.num_servers(); ++s) {
    t.cluster.server(s).EngineFor("assigned_to_view")
        .ForEach([&rows_seen](const Key& key, const storage::Row&) {
          auto shard = store::ShardOfComposedKey(key, kShards);
          ASSERT_TRUE(shard.has_value()) << "row without a shard header";
          auto split = store::SplitShardedViewRowKey(key, kShards);
          ASSERT_TRUE(split.has_value());
          EXPECT_EQ(*shard, store::ShardOfBaseKey(split->second, kShards));
          ++rows_seen;
        });
  }
  EXPECT_GT(rows_seen, 0);
}

// Freshness over a scattered read is the MIN over sub-shards: a result is
// only as fresh as its laggiest shard. Served through the working read path
// under a live propagation backlog, the claim must stay monotone and honest
// (never ahead of now).
TEST(ViewShardingTest, ScatteredFreshnessIsClaimedConservatively) {
  TestCluster t = ShardedCluster();
  auto client = t.cluster.NewClient();
  for (int k = 0; k < 16; ++k) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(k),
                              {{"assigned_to", std::string("hot")},
                               {"status", std::string("open")}},
                              WriteOptions{})
                    .ok());
  }
  t.Quiesce();
  auto result = client->QuerySync(QuerySpec::View("assigned_to_view", "hot"),
                                  {.quorum = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.freshness, kNullTimestamp);
  EXPECT_LE(result.freshness, kClientTimestampEpoch + t.cluster.Now());
}

// The zipfian chaos property: a skewed workload over a sharded view, with
// crashes AND membership churn, converges to Definition 1 once healed.
TEST(ViewShardingPropertyTest, ZipfianConvergesUnderCrashAndChurn) {
  for (std::uint64_t seed : {11u, 47u}) {
    store::ClusterConfig config = test::DefaultTestConfig();
    config.seed = seed;
    config.max_servers = 6;
    config.rpc_timeout = Millis(50);
    config.anti_entropy_interval = Millis(250);
    config.hint_replay_interval = Millis(100);
    config.view_scrub_interval = Millis(300);
    TestCluster t(config, test::TicketSchema(/*with_index=*/false,
                                             /*with_view=*/true, kShards));
    const int kBaseKeys = 40;
    for (int k = 0; k < kBaseKeys; ++k) {
      t.cluster.BootstrapLoadRow(
          "ticket", workload::FormatKey("t", static_cast<std::uint64_t>(k)),
          {{"assigned_to", "a" + std::to_string(k % 4)},
           {"status", std::string("open")}},
          100 + k);
    }

    sim::Nemesis nemesis(
        &t.cluster.simulation(), &t.cluster.network(),
        [&t](sim::EndpointId s) { t.cluster.CrashServer(s); },
        [&t](sim::EndpointId s) { t.cluster.RestartServer(s); });
    nemesis.SetMembershipCallbacks(
        [&t] { t.cluster.JoinServer(); },
        [&t](sim::EndpointId s) { t.cluster.DecommissionServer(s); });
    sim::NemesisOptions options;
    options.horizon = Seconds(3);
    options.num_servers = t.cluster.num_servers();
    options.crashes = 2;
    options.min_downtime = Millis(150);
    options.max_downtime = Millis(500);
    options.partitions = 1;
    options.membership_churn = 1;
    options.min_churn_gap = Millis(500);
    options.max_churn_gap = Seconds(1);
    nemesis.Schedule(sim::GenerateRandomSchedule(Rng(seed * 13), options));
    nemesis.HealAllAt(options.horizon);

    // Zipfian base keys (hot rows), zipfian assignees (hot view keys): the
    // skew concentrates updates in few sub-shards while reads scatter.
    Rng rng(seed * 101);
    workload::ZipfianKeyGenerator base_keys("t", kBaseKeys, 0.99);
    workload::ZipfianKeyGenerator assignees("a", 4, 0.99);
    std::vector<std::unique_ptr<store::Client>> clients;
    std::function<void(int)> issue = [&](int c) {
      auto next = [&issue, c](bool) { issue(c); };
      if (rng.Chance(0.7)) {
        clients[c]->Put("ticket", base_keys.Next(rng),
                        {{"assigned_to", assignees.Next(rng)}}, {.quorum = 1},
                        [next](store::WriteResult w) { next(w.ok()); });
      } else {
        clients[c]->Query(QuerySpec::View("assigned_to_view",
                                          assignees.Next(rng)),
                          {.columns = {"status"}},
                          [next](store::ReadResult r) { next(r.ok()); });
      }
    };
    for (int c = 0; c < 3; ++c) {
      clients.push_back(t.cluster.NewClient(c));
      clients.back()->set_request_timeout(Millis(120));
      issue(c);
    }
    t.cluster.RunFor(options.horizon + Millis(500));
    issue = [](int) {};  // stop the loops

    // Let membership operations finish, then converge.
    const store::Metrics& m = t.cluster.metrics();
    for (int i = 0; i < 100 &&
                    (m.member_joins_completed < m.member_joins_started ||
                     m.member_leaves_completed < m.member_leaves_started);
         ++i) {
      t.cluster.RunFor(Millis(100));
    }
    EXPECT_EQ(m.member_joins_completed, m.member_joins_started)
        << "seed " << seed;
    EXPECT_EQ(m.member_leaves_completed, m.member_leaves_started)
        << "seed " << seed;
    t.views->Quiesce();
    t.cluster.RunFor(Seconds(2));
    t.Quiesce();

    const store::ViewDef& view = test::TicketView(t.cluster);
    view::ScrubReport report = view::CheckView(t.cluster, view);
    EXPECT_TRUE(report.clean()) << "seed " << seed << ": "
                                << report.Summary();
    const auto expected = view::ComputeExpectedView(t.cluster, view);
    const auto exposed = view::ReadConvergedView(t.cluster, view);
    ASSERT_EQ(expected.size(), exposed.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], exposed[i]) << "seed " << seed << " row " << i;
    }
    EXPECT_GT(m.view_scatter_scans, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mvstore

// Key interning and arena allocation: handle identity must agree exactly
// with string equality (the property every placement-cache and codec fast
// path relies on), interned views and hashes must be stable across table
// growth, and the arena must honor its block/reset contract.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/interner.h"
#include "common/rng.h"

namespace mvstore {
namespace {

TEST(ArenaTest, CopyReturnsStableIndependentBytes) {
  Arena arena(64);
  std::string original = "hello arena";
  std::string_view copy = arena.Copy(original);
  EXPECT_EQ(copy, "hello arena");
  // The copy does not alias the source.
  original[0] = 'X';
  EXPECT_EQ(copy, "hello arena");
}

TEST(ArenaTest, SmallAllocationsShareBlocks) {
  Arena arena(1024);
  for (int i = 0; i < 10; ++i) arena.Allocate(32);
  EXPECT_EQ(arena.blocks(), 1u);
  EXPECT_GE(arena.bytes_used(), 320u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(64);
  std::string big(1000, 'b');
  std::string_view copy = arena.Copy(big);
  EXPECT_EQ(copy, big);
  // Small allocations still work after an oversized one.
  EXPECT_EQ(arena.Copy("tail"), "tail");
}

TEST(ArenaTest, ResetReclaimsSpace) {
  Arena arena(256);
  for (int i = 0; i < 50; ++i) arena.Copy("some payload bytes");
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.Copy("after reset"), "after reset");
}

TEST(InternerTest, SameStringSameRef) {
  KeyInterner interner;
  KeyRef a = interner.Intern("alpha");
  KeyRef b = interner.Intern("alpha");
  KeyRef c = interner.Intern("beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, ViewRoundTripsAndHashMatchesHash64) {
  KeyInterner interner;
  const std::string nasty("k\x00\x01\x02y", 5);
  KeyRef ref = interner.Intern(nasty);
  EXPECT_EQ(interner.View(ref), std::string_view(nasty));
  EXPECT_EQ(interner.HashOf(ref), Hash64(nasty));
}

TEST(InternerTest, FindNeverInterns) {
  KeyInterner interner;
  EXPECT_FALSE(interner.Find("missing").valid());
  EXPECT_EQ(interner.size(), 0u);
  KeyRef ref = interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), ref);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, EmptyStringIsInternable) {
  KeyInterner interner;
  KeyRef empty = interner.Intern("");
  EXPECT_TRUE(empty.valid());
  EXPECT_EQ(interner.View(empty), "");
  EXPECT_EQ(interner.Intern(""), empty);
  EXPECT_NE(interner.Intern("x"), empty);
}

TEST(InternerTest, RefsSurviveTableGrowth) {
  // Start tiny so Intern must rehash several times; handles and views issued
  // before every growth stay valid after it.
  KeyInterner::Options options;
  options.initial_capacity = 2;
  KeyInterner interner(options);
  std::vector<KeyRef> refs;
  std::vector<std::string> strings;
  for (int i = 0; i < 500; ++i) {
    strings.push_back("key-" + std::to_string(i));
    refs.push_back(interner.Intern(strings.back()));
  }
  EXPECT_EQ(interner.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(interner.View(refs[i]), strings[i]);
    EXPECT_EQ(interner.Intern(strings[i]), refs[i]);
    EXPECT_EQ(interner.Find(strings[i]), refs[i]);
  }
}

TEST(InternerTest, FuzzRefEqualityMatchesStringEquality) {
  // The core contract: ref identity <=> byte equality, under a workload of
  // short binary strings dense enough to force collisions and growth.
  Rng rng(2024);
  KeyInterner::Options options;
  options.initial_capacity = 4;
  KeyInterner interner(options);
  std::map<std::string, KeyRef> model;
  for (int i = 0; i < 20000; ++i) {
    std::string s;
    const int len = static_cast<int>(rng.UniformInt(0, 8));
    for (int j = 0; j < len; ++j) {
      // A 4-symbol alphabet makes duplicates and near-misses common.
      s.push_back(static_cast<char>(rng.UniformInt(0, 3)));
    }
    KeyRef ref = interner.Intern(s);
    auto [it, fresh] = model.emplace(s, ref);
    if (fresh) {
      EXPECT_EQ(interner.View(ref), s);
    } else {
      EXPECT_EQ(ref, it->second) << "same bytes must re-yield the same ref";
    }
    EXPECT_EQ(interner.HashOf(ref), Hash64(s));
  }
  EXPECT_EQ(interner.size(), model.size());
  // Distinct strings got distinct refs (injectivity).
  std::set<std::uint32_t> ids;
  for (const auto& [s, ref] : model) ids.insert(ref.id);
  EXPECT_EQ(ids.size(), model.size());
}

}  // namespace
}  // namespace mvstore

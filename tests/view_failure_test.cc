// View maintenance under infrastructure failures: message loss, downed
// replicas, timeouts during propagation — and recovery through retries,
// anti-entropy, and the offline scrubber.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using test::TestCluster;

store::ClusterConfig LossyConfig() {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(60);
  config.anti_entropy_interval = Seconds(1);
  return config;
}

TEST(ViewFailureTest, PropagationSurvivesMessageLoss) {
  TestCluster t(LossyConfig());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient();

  t.cluster.network().set_drop_probability(0.25);
  int acked = 0;
  for (int i = 0; i < 10; ++i) {
    client->Put("ticket", "1", {{"assigned_to", "u" + std::to_string(i)}},
                {.quorum = 1}, [&acked](store::WriteResult w) {
                  if (w.ok()) ++acked;
                });
    t.cluster.RunFor(Millis(50));
  }
  t.cluster.RunFor(Seconds(2));
  t.cluster.network().set_drop_probability(0.0);

  // Drain all remaining propagation work under a healthy network, let
  // anti-entropy reconcile replicas, then audit.
  t.views->Quiesce();
  t.cluster.RunFor(Seconds(4));
  EXPECT_GT(acked, 0);

  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  // Retries plus anti-entropy must have converged the view to Definition 1
  // of the (merged) base table.
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST(ViewFailureTest, PropagationRetriesThroughReplicaOutage) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(60);
  TestCluster t(config);
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient(0);

  // Knock out one replica of the view partition for bob's row; majority
  // quorums (2 of 3) still work, so propagation proceeds.
  const Key view_row = store::ComposeViewRowKey("bob", "1");
  const auto replicas =
      t.cluster.server(0).ReplicasOf("assigned_to_view", view_row);
  t.cluster.network().SetEndpointDown(replicas[2], true);

  // The write itself must go to a live coordinator.
  ServerId coordinator = 0;
  while (coordinator == replicas[2]) ++coordinator;
  auto writer = t.cluster.NewClient(coordinator);
  ASSERT_TRUE(
      writer->PutSync("ticket", "1", {{"assigned_to", std::string("bob")}}, {.quorum = 1})
.ok());
  t.Quiesce();

  auto records = writer->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 2});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.records.size(), 1u);

  // Bring the replica back; anti-entropy is off in this config, but a
  // majority-read of the view plus read repair heals it on access.
  t.cluster.network().SetEndpointDown(replicas[2], false);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(writer->QuerySync(
        store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 3}).ok());
    t.cluster.RunFor(Millis(100));
  }
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << report.Summary();
}

TEST(ViewFailureTest, AbandonedPropagationIsRepairable) {
  // Force abandonment: take the view partition's majority down so every
  // propagation Put fails until the retry budget is gone. The scrubber then
  // restores the view offline — the documented recovery path.
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(20);
  config.perf.propagation_retry_delay = Micros(200);
  config.perf.propagation_retry_delay_max = Micros(500);
  TestCluster t(config);
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);

  const Key view_row = store::ComposeViewRowKey("bob", "1");
  const auto replicas =
      t.cluster.server(0).ReplicasOf("assigned_to_view", view_row);
  t.cluster.network().SetEndpointDown(replicas[0], true);
  t.cluster.network().SetEndpointDown(replicas[1], true);

  ServerId coordinator = 0;
  while (coordinator == replicas[0] || coordinator == replicas[1]) {
    ++coordinator;
  }
  auto client = t.cluster.NewClient(coordinator);
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"assigned_to", std::string("bob")}}, {.quorum = 1})
.ok());
  t.Quiesce();  // terminates via abandonment
  EXPECT_GT(t.cluster.metrics().propagations_abandoned, 0u);

  t.cluster.network().SetEndpointDown(replicas[0], false);
  t.cluster.network().SetEndpointDown(replicas[1], false);
  view::ScrubReport broken =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_FALSE(broken.clean()) << "abandonment must be visible to the scrub";

  view::RepairView(t.cluster, test::TicketView(t.cluster));
  view::ScrubReport repaired =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(repaired.clean()) << repaired.Summary();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.records.size(), 1u);
}

TEST(ViewFailureTest, LossyNetworkPropertySweep) {
  // Randomized end-to-end: drops during a mixed workload, then healthy
  // drain + anti-entropy; the view must converge for every seed.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    store::ClusterConfig config = LossyConfig();
    config.seed = seed;
    TestCluster t(config);
    for (int k = 0; k < 10; ++k) {
      t.cluster.BootstrapLoadRow(
          "ticket", "t" + std::to_string(k),
          {{"assigned_to", "a" + std::to_string(k % 3)},
           {"status", std::string("open")}},
          100 + k);
    }
    auto client = t.cluster.NewClient();
    Rng rng(seed);

    t.cluster.network().set_drop_probability(0.15);
    int issued = 0;
    for (int i = 0; i < 40; ++i) {
      const Key key = "t" + std::to_string(rng.UniformInt(0, 9));
      if (rng.Chance(0.5)) {
        client->Put(
            "ticket", key,
            {{"assigned_to", "a" + std::to_string(rng.UniformInt(0, 4))}},
            {.quorum = 1}, [](store::WriteResult) {});
      } else {
        client->Put("ticket", key,
                    {{"status", rng.Chance(0.5) ? "open" : "closed"}},
                    {.quorum = 1}, [](store::WriteResult) {});
      }
      ++issued;
      t.cluster.RunFor(Millis(20));
    }
    t.cluster.RunFor(Seconds(1));
    t.cluster.network().set_drop_probability(0.0);
    t.views->Quiesce();
    t.cluster.RunFor(Seconds(4));  // anti-entropy rounds

    // Structure must ALWAYS converge: exactly one live row per base key,
    // intact chains, no missing/spurious records.
    view::ScrubReport report =
        view::CheckView(t.cluster, test::TicketView(t.cluster));
    EXPECT_TRUE(report.multiple_live_rows.empty() &&
                report.broken_chains.empty() &&
                report.uninitialized_live.empty() &&
                report.missing_records.empty() &&
                report.spurious_records.empty())
        << "seed " << seed << ": " << report.Summary();

    // Content must converge at VALUE level. (Cell timestamps can drift
    // under lost-ack limbo — a superseded-but-equal value may carry an
    // older timestamp; see DESIGN.md's residual-hole discussion. The
    // strict cell-level scrub reports those, and RepairView clears them.)
    auto expected =
        view::ComputeExpectedView(t.cluster, test::TicketView(t.cluster));
    auto exposed =
        view::ReadConvergedView(t.cluster, test::TicketView(t.cluster));
    ASSERT_EQ(expected.size(), exposed.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].view_key, exposed[i].view_key);
      EXPECT_EQ(expected[i].base_key, exposed[i].base_key);
      EXPECT_EQ(expected[i].cells.GetValue("status"),
                exposed[i].cells.GetValue("status"))
          << "seed " << seed << " " << expected[i].base_key;
    }

    // And the strict audit must be restorable offline.
    if (!report.clean()) {
      view::RepairView(t.cluster, test::TicketView(t.cluster));
      view::ScrubReport repaired =
          view::CheckView(t.cluster, test::TicketView(t.cluster));
      EXPECT_TRUE(repaired.clean())
          << "seed " << seed << ": " << repaired.Summary();
    }
  }
}

}  // namespace
}  // namespace mvstore

// The generic coordinator state machine (ISSUE 3): quorum accounting, slot
// deduplication, reply-once semantics, per-op-kind failure messages, the
// per-replica silence retry, hint scheduling for unresponsive write targets,
// crash-abort, and replica-write batching atomicity under a nemesis drop
// surge.

#include "store/quorum_op.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/nemesis.h"
#include "storage/cell.h"
#include "storage/row.h"
#include "store/client.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using storage::Cell;
using store::QuorumOp;
using store::QuerySpec;
using store::ReadOptions;
using store::WriteOptions;

/// TicketSchema plus a plain "kv" table (no index, no view) whose writes
/// take the pure replica-write path.
store::Schema SchemaWithPlainTable() {
  store::Schema schema = test::TicketSchema();
  MVSTORE_CHECK(schema.CreateTable({.name = "kv"}).ok());
  return schema;
}

/// The one server of a 4-server / replication-3 cluster that holds no
/// replica of `key` — the coordinator whose every replica request crosses
/// the network.
ServerId NonReplicaCoordinator(store::Cluster& cluster, const Key& key) {
  const std::vector<ServerId> replicas =
      cluster.ring().ReplicasFor(key, cluster.config().replication_factor);
  for (ServerId s = 0; s < static_cast<ServerId>(cluster.config().num_servers); ++s) {
    if (std::find(replicas.begin(), replicas.end(), s) == replicas.end()) {
      return s;
    }
  }
  MVSTORE_CHECK(false) << "no non-replica server for key " << key;
  return 0;
}

// --------------------------------------------------------------------------
// Quorum accounting on the raw state machine (custom transport so the test
// controls exactly when each slot answers).
// --------------------------------------------------------------------------

TEST(QuorumOpTest, RepliesOnceAtQuorumAndSettlesWhenAllAnswer) {
  test::TestCluster t(test::DefaultTestConfig(), SchemaWithPlainTable());
  sim::Simulation& sim = t.cluster.simulation();

  int quorum_calls = 0;
  int error_calls = 0;
  int settled_calls = 0;
  int responses_at_quorum = -1;
  int responses_at_settle = -1;

  QuorumOp<bool>::Spec spec;
  spec.name = "test";
  spec.targets = {1, 2, 3};
  spec.quorum = 2;
  // Slot i answers at (i + 1) ms; nothing touches the real network.
  spec.send = [&sim](store::Server&, ServerId target,
                     std::function<void(bool)> reply) {
    sim.After(Millis(static_cast<SimTime>(target)),
              [reply = std::move(reply)] { reply(true); });
  };
  spec.on_quorum = [&](QuorumOp<bool>& op) {
    ++quorum_calls;
    responses_at_quorum = op.num_responses();
  };
  spec.on_error = [&](QuorumOp<bool>&, const Status&) { ++error_calls; };
  spec.on_settled = [&](QuorumOp<bool>& op, bool aborted) {
    ++settled_calls;
    EXPECT_FALSE(aborted);
    responses_at_settle = op.num_responses();
  };
  QuorumOp<bool>::Start(&t.cluster.server(0), spec);

  t.cluster.RunFor(Millis(50));
  EXPECT_EQ(quorum_calls, 1) << "reply-once: the 3rd response must not re-fire";
  EXPECT_EQ(error_calls, 0);
  EXPECT_EQ(settled_calls, 1);
  EXPECT_EQ(responses_at_quorum, 2);
  EXPECT_EQ(responses_at_settle, 3) << "late responses still land in the op";
}

TEST(QuorumOpTest, DuplicateRepliesForOneSlotNeverSatisfyTheQuorum) {
  test::TestCluster t(test::DefaultTestConfig(), SchemaWithPlainTable());
  sim::Simulation& sim = t.cluster.simulation();

  int quorum_calls = 0;
  int error_calls = 0;

  QuorumOp<bool>::Spec spec;
  spec.name = "test";
  spec.targets = {1, 2};
  spec.quorum = 2;
  spec.quorum_error = "test quorum not reached";
  // Server 1 acks THREE times (a replayed ack); server 2 never answers.
  spec.send = [&sim](store::Server&, ServerId target,
                     std::function<void(bool)> reply) {
    if (target != 1) return;
    for (int i = 1; i <= 3; ++i) {
      sim.After(Millis(i), [reply] { reply(true); });
    }
  };
  spec.on_quorum = [&](QuorumOp<bool>&) { ++quorum_calls; };
  spec.on_error = [&](QuorumOp<bool>& op, const Status& status) {
    ++error_calls;
    EXPECT_EQ(status.message(), "test quorum not reached");
    EXPECT_EQ(op.num_responses(), 1) << "slot dedupe: one slot, one response";
  };
  QuorumOp<bool>::Start(&t.cluster.server(0), spec);

  t.cluster.RunFor(Millis(400));  // past rpc_timeout
  EXPECT_EQ(quorum_calls, 0)
      << "duplicate acks from one replica must not fake a quorum";
  EXPECT_EQ(error_calls, 1);
}

// --------------------------------------------------------------------------
// Per-replica silence timeout: retry with backoff, then hint the target.
// --------------------------------------------------------------------------

TEST(QuorumOpTest, SilentReplicaIsRetriedAndAnswersOnTheSecondProbe) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.replica_retry_timeout = Millis(5);
  config.replica_retry_backoff = Millis(1);
  config.replica_retry_max = 2;
  test::TestCluster t(config, SchemaWithPlainTable());
  sim::Simulation& sim = t.cluster.simulation();
  const auto retries_before = t.cluster.metrics().coordinator_retries.value();

  int attempts_to_1 = 0;
  int quorum_calls = 0;

  QuorumOp<bool>::Spec spec;
  spec.name = "test";
  spec.targets = {1, 2, 3};
  spec.quorum = 3;
  spec.send = [&](store::Server&, ServerId target,
                  std::function<void(bool)> reply) {
    if (target == 1 && ++attempts_to_1 == 1) return;  // first probe vanishes
    sim.After(Micros(100), [reply = std::move(reply)] { reply(true); });
  };
  spec.on_quorum = [&](QuorumOp<bool>& op) {
    ++quorum_calls;
    EXPECT_EQ(op.num_responses(), 3);
  };
  spec.on_error = [&](QuorumOp<bool>&, const Status&) {
    FAIL() << "the retry should have completed the quorum";
  };
  QuorumOp<bool>::Start(&t.cluster.server(0), spec);

  t.cluster.RunFor(Millis(50));
  EXPECT_EQ(quorum_calls, 1);
  EXPECT_EQ(attempts_to_1, 2) << "exactly one re-send to the silent replica";
  EXPECT_GT(t.cluster.metrics().coordinator_retries.value(), retries_before);
}

TEST(QuorumOpTest, UnresponsiveWriteTargetGetsAHintAndReplayDeliversIt) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.hint_replay_interval = Millis(20);
  test::TestCluster t(config, SchemaWithPlainTable());
  sim::Simulation& sim = t.cluster.simulation();

  storage::Row cells;
  cells.Apply("c", Cell::Live("hinted", store::kClientTimestampEpoch + 1));

  QuorumOp<bool>::Spec spec;
  spec.name = "test";
  spec.targets = {1, 2};
  spec.quorum = 1;
  spec.hint_table = "kv";
  spec.hint_key = "hinted-key";
  spec.hint_cells = cells;
  // Server 1 acks; server 2 stays silent through every probe, so
  // finalization must store a hint for it.
  spec.send = [&sim](store::Server&, ServerId target,
                     std::function<void(bool)> reply) {
    if (target == 1) sim.After(Micros(100), [reply] { reply(true); });
  };
  spec.on_quorum = [](QuorumOp<bool>&) {};
  spec.on_error = [](QuorumOp<bool>&, const Status&) {
    FAIL() << "quorum of 1 was reachable";
  };
  QuorumOp<bool>::Start(&t.cluster.server(0), spec);

  t.cluster.RunFor(Millis(300));  // past rpc_timeout: finalize + store hint
  EXPECT_EQ(t.cluster.metrics().hints_stored.value(), 1u);

  t.cluster.RunFor(Millis(100));  // several replay ticks
  EXPECT_GE(t.cluster.metrics().hints_replayed.value(), 1u);
  auto row = t.cluster.server(2).EngineFor("kv").GetRow("hinted-key");
  ASSERT_TRUE(row.has_value()) << "hint replay must deliver the write";
  EXPECT_EQ(row->GetValue("c"), "hinted");
}

// --------------------------------------------------------------------------
// Per-op-kind quorum-failure messages, end to end through the client.
// --------------------------------------------------------------------------

TEST(QuorumOpTest, EachOperationKindReportsItsOwnQuorumFailure) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.combined_get_then_put = true;  // Puts on view tables = get-then-put
  test::TestCluster t(config, SchemaWithPlainTable());

  const Key key = "t-err";
  const ServerId coord = NonReplicaCoordinator(t.cluster, key);
  auto client = t.cluster.NewClient(coord);

  // Cut the coordinator off from two of the key's three replicas: a quorum
  // of 3 can never assemble, and each op kind must say so in its own words.
  const std::vector<ServerId> replicas = t.cluster.ring().ReplicasFor(
      key, t.cluster.config().replication_factor);
  t.cluster.network().PartitionLink(coord, replicas[1]);
  t.cluster.network().PartitionLink(coord, replicas[2]);

  ReadOptions read3;
  read3.quorum = 3;
  auto read = client->GetSync("kv", key, read3);
  EXPECT_EQ(read.status.message(), "read quorum not reached");

  WriteOptions write3;
  write3.quorum = 3;
  auto write = client->PutSync("kv", key, {{"c", std::string("v")}}, write3);
  EXPECT_EQ(write.status.message(), "write quorum not reached");

  // Same key on the view table: the combined path must not claim a plain
  // write failed (the pre-refactor coordinator reused the write message).
  auto combined = client->PutSync(
      "ticket", key, {{"assigned_to", std::string("alice")}}, write3);
  EXPECT_EQ(combined.status.message(), "get-then-put quorum not reached");

  // An index scan needs every fragment; one severed link is enough.
  auto scan = client->QuerySync(
      QuerySpec::Index("ticket", "assigned_to", std::string("alice")),
      ReadOptions{});
  EXPECT_EQ(scan.status.message(), "index fragments unreachable");
}

// --------------------------------------------------------------------------
// Crash-stop: a coordinator crash aborts its in-flight ops.
// --------------------------------------------------------------------------

TEST(QuorumOpTest, CoordinatorCrashAbortsTheOpWithoutSideEffects) {
  test::TestCluster t(test::DefaultTestConfig(), SchemaWithPlainTable());

  int error_calls = 0;
  int settled_calls = 0;

  QuorumOp<bool>::Spec spec;
  spec.name = "test";
  spec.targets = {1, 2, 3};
  spec.quorum = 2;
  spec.hint_table = "kv";  // must NOT produce hints from a dead process
  spec.hint_key = "k";
  spec.send = [](store::Server&, ServerId, std::function<void(bool)>) {
    // Nobody ever answers; only the crash can end this op.
  };
  spec.on_quorum = [](QuorumOp<bool>&) { FAIL() << "no responses arrived"; };
  spec.on_error = [&](QuorumOp<bool>&, const Status& status) {
    ++error_calls;
    EXPECT_EQ(status.message(), "coordinator crashed");
  };
  spec.on_settled = [&](QuorumOp<bool>&, bool aborted) {
    ++settled_calls;
    EXPECT_TRUE(aborted);
  };
  QuorumOp<bool>::Start(&t.cluster.server(0), spec);

  t.cluster.RunFor(Millis(10));
  t.cluster.CrashServer(0);
  t.cluster.RunFor(Millis(500));  // past rpc_timeout: no double finalize

  EXPECT_EQ(error_calls, 1);
  EXPECT_EQ(settled_calls, 1);
  EXPECT_EQ(t.cluster.metrics().hints_stored.value(), 0u)
      << "a crashed coordinator stores no hints";
}

// --------------------------------------------------------------------------
// Replica-write batching under a nemesis drop surge: a batch message is
// atomic (all mutations land or none), so every acknowledged write must be
// durably readable once the network heals.
// --------------------------------------------------------------------------

TEST(QuorumOpTest, BatchedWritesAckedUnderDropSurgeSurviveTheSurge) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.default_read_quorum = 2;
  config.default_write_quorum = 2;
  config.write_batch_max = 4;
  config.write_batch_delay = Micros(800);
  config.hint_replay_interval = Millis(50);
  test::TestCluster t(config, SchemaWithPlainTable());

  sim::Nemesis nemesis(
      &t.cluster.simulation(), &t.cluster.network(),
      [&t](sim::EndpointId s) { t.cluster.CrashServer(s); },
      [&t](sim::EndpointId s) { t.cluster.RestartServer(s); });
  nemesis.Schedule({
      {.at = Millis(1), .kind = sim::FaultKind::kDropRate, .rate = 0.2},
      {.at = Millis(60), .kind = sim::FaultKind::kDropRate, .rate = 0.0},
  });

  auto client = t.cluster.NewClient(/*coordinator=*/0);
  // The surge can eat a request before it reaches the coordinator; a client
  // deadline turns that into a resolved failure instead of a hung callback.
  client->set_request_timeout(Millis(500));
  constexpr int kWrites = 40;
  std::vector<std::optional<Status>> acks(kWrites);
  for (int i = 0; i < kWrites; ++i) {
    client->Put("kv", "k" + std::to_string(i),
                {{"c", std::string("v") + std::to_string(i)}}, WriteOptions{},
                [&acks, i](store::WriteResult result) {
                  acks[i] = result.status;
                });
  }

  t.cluster.RunFor(Seconds(1));  // surge, heal, hint replay, quiesce

  EXPECT_GT(t.cluster.metrics().replica_write_batches.value(), 0u)
      << "the burst must have produced at least one multi-mutation batch";

  int acked = 0;
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(acks[i].has_value()) << "write " << i << " never resolved";
    if (!acks[i]->ok()) continue;  // surge casualty: failing is allowed
    ++acked;
    auto read = client->GetSync("kv", "k" + std::to_string(i), ReadOptions{});
    ASSERT_TRUE(read.ok()) << "acked write " << i << " unreadable after heal";
    EXPECT_EQ(read.row.GetValue("c"), std::string("v") + std::to_string(i))
        << "acked write " << i << " lost (batch atomicity violated)";
  }
  EXPECT_GT(acked, kWrites / 2) << "the surge should not fail most writes";
}

}  // namespace
}  // namespace mvstore

// Unit tests for src/common: Status/StatusOr, RNG and distributions,
// hashing, histograms, and string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/str_util.h"

namespace mvstore {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("row 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "row 7");
  EXPECT_EQ(s.ToString(), "not_found: row 7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("x"), Status::Aborted("x"));
  EXPECT_FALSE(Status::Aborted("x") == Status::Aborted("y"));
  EXPECT_FALSE(Status::Aborted("x") == Status::TimedOut("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "internal");
}

Status Fails() { return Status::TimedOut("deadline"); }
Status PropagatesError() {
  MVSTORE_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(PropagatesError().IsTimedOut());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(7), 7);
}

StatusOr<int> MaybeInt(bool ok) {
  if (!ok) return Status::Aborted("no");
  return 5;
}
StatusOr<int> Doubled(bool ok) {
  MVSTORE_ASSIGN_OR_RETURN(int v, MaybeInt(ok));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(true), 10);
  EXPECT_TRUE(Doubled(false).status().IsAborted());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(9);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(250.0);
  EXPECT_NEAR(sum / kN, 250.0, 10.0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfianTest, SkewFavorsLowRanks) {
  Rng rng(23);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Next(rng)]++;
  // Rank 0 should dominate any mid-pack rank by a wide margin.
  EXPECT_GT(counts[0], 1000);
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfianTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(29);
  ZipfianGenerator zipf(10, 0.0);
  std::map<std::uint64_t, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) counts[zipf.Next(rng)]++;
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, kN / 10, kN / 40) << "rank " << rank;
  }
}

TEST(ZipfianTest, RanksInRange) {
  Rng rng(31);
  ZipfianGenerator zipf(7, 0.9);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(rng), 7u);
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64("hello"), Hash64("hello"));
  EXPECT_NE(Hash64("hello"), Hash64("hello", 1));
  EXPECT_NE(Hash64("hello"), Hash64("hellp"));
}

TEST(HashTest, EmptyAndBinaryInputs) {
  EXPECT_EQ(Hash64(""), Hash64(""));
  std::string binary("\x00\x01\x02\xff", 4);
  EXPECT_EQ(Hash64(binary), Hash64(binary));
  EXPECT_NE(Hash64(binary), Hash64(""));
}

TEST(HashTest, AvalancheOnSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = Hash64("key-000");
  const std::uint64_t b = Hash64("key-001");
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, MeanAndExtremesExact) {
  Histogram h;
  for (int v : {10, 20, 30}) h.Record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
}

TEST(HistogramTest, PercentileApproximation) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  // Buckets grow by ~8%, so percentiles carry bounded relative error.
  EXPECT_NEAR(h.Percentile(50), 500, 50);
  EXPECT_NEAR(h.Percentile(99), 990, 90);
  EXPECT_EQ(h.Percentile(100), 1000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(1);
  b.Record(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 1);
  EXPECT_EQ(a.max(), 100);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
}

TEST(StrUtilTest, PaddedInt) {
  EXPECT_EQ(PaddedInt(7, 4), "0007");
  EXPECT_EQ(PaddedInt(12345, 4), "12345");
  EXPECT_EQ(PaddedInt(0, 1), "0");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(StrFormat("%6.2f", 3.14159), "  3.14");
}

TEST(StrUtilTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace mvstore

// Selection views (the extension Section III calls easy): a row belongs to
// the view only while the selection column equals the configured value.
// Selection flips must propagate through the __ds hidden marker with LWW
// ordering.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "tests/test_util.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using store::kClientTimestampEpoch;
using test::TestCluster;

store::Schema SelectionSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "ticket"}).ok());
  store::ViewDef view;
  view.name = "open_by_assignee";
  view.base_table = "ticket";
  view.view_key_column = "assigned_to";
  view.materialized_columns = {"status", "priority"};
  view.selection = store::SelectionDef{.column = "status", .equals = "open"};
  MVSTORE_CHECK(schema.CreateView(view).ok());
  return schema;
}

const store::ViewDef& SelectionView(store::Cluster& cluster) {
  return *cluster.schema().GetView("open_by_assignee");
}

TEST(ViewSelectionTest, BootstrapHonorsSelection) {
  TestCluster t(test::DefaultTestConfig(), SelectionSchema());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("open")}},
                             100);
  t.cluster.BootstrapLoadRow("ticket", "2",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("closed")}},
                             101);
  auto client = t.cluster.NewClient();
  auto records = client->QuerySync(
      store::QuerySpec::View("open_by_assignee", "a"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].base_key, "1");
}

TEST(ViewSelectionTest, StatusFlipRemovesAndRestoresRow) {
  TestCluster t(test::DefaultTestConfig(), SelectionSchema());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("open")}},
                             100);
  auto client = t.cluster.NewClient();

  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("closed")}}, store::WriteOptions{})
          .ok());
  t.Quiesce();
  auto closed = client->QuerySync(
      store::QuerySpec::View("open_by_assignee", "a"), {.quorum = 3});
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed.records.empty());

  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("open")}}, store::WriteOptions{}).ok());
  t.Quiesce();
  auto reopened = client->QuerySync(
      store::QuerySpec::View("open_by_assignee", "a"), {.quorum = 3});
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened.records.size(), 1u);
  EXPECT_TRUE(
      view::CheckView(t.cluster, SelectionView(t.cluster)).clean());
}

TEST(ViewSelectionTest, OutOfOrderFlipsConvergeByTimestamp) {
  TestCluster t(test::DefaultTestConfig(), SelectionSchema());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("open")}},
                             100);
  auto c1 = t.cluster.NewClient(0);
  auto c2 = t.cluster.NewClient(1);

  // "closed" carries the larger timestamp but is issued first; the
  // lower-timestamped "open" propagates later and must NOT resurrect the row.
  ASSERT_TRUE(c1->PutSync("ticket", "1", {{"status", std::string("closed")}}, {.ts = kClientTimestampEpoch + 200})
                  .ok());
  t.Quiesce();
  ASSERT_TRUE(c2->PutSync("ticket", "1", {{"status", std::string("open")}}, {.ts = kClientTimestampEpoch + 100})
                  .ok());
  t.Quiesce();

  auto client = t.cluster.NewClient();
  auto records = client->QuerySync(
      store::QuerySpec::View("open_by_assignee", "a"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.records.empty());
  EXPECT_TRUE(view::CheckView(t.cluster, SelectionView(t.cluster)).clean());
}

TEST(ViewSelectionTest, ReassignmentCarriesSelectionState) {
  TestCluster t(test::DefaultTestConfig(), SelectionSchema());
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("a")},
                              {"status", std::string("closed")}},
                             100);
  auto client = t.cluster.NewClient();
  // Reassign a deselected (closed) ticket: the promoted row must stay hidden.
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"assigned_to", std::string("b")}}, store::WriteOptions{})
          .ok());
  t.Quiesce();
  auto records = client->QuerySync(
      store::QuerySpec::View("open_by_assignee", "b"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.records.empty());
  EXPECT_TRUE(view::CheckView(t.cluster, SelectionView(t.cluster)).clean());

  // Reopening makes it visible under the new assignee.
  ASSERT_TRUE(
      client->PutSync("ticket", "1", {{"status", std::string("open")}}, store::WriteOptions{}).ok());
  t.Quiesce();
  auto visible = client->QuerySync(
      store::QuerySpec::View("open_by_assignee", "b"), {.quorum = 3});
  ASSERT_TRUE(visible.ok());
  ASSERT_EQ(visible.records.size(), 1u);
}

TEST(ViewSelectionTest, SelectionOnViewKeyColumn) {
  store::Schema schema;
  ASSERT_TRUE(schema.CreateTable({.name = "ticket"}).ok());
  store::ViewDef view;
  view.name = "rliu_only";
  view.base_table = "ticket";
  view.view_key_column = "assigned_to";
  view.materialized_columns = {"status"};
  view.selection =
      store::SelectionDef{.column = "assigned_to", .equals = "rliu"};
  ASSERT_TRUE(schema.CreateView(view).ok());
  TestCluster t(test::DefaultTestConfig(), std::move(schema));

  auto client = t.cluster.NewClient();
  ASSERT_TRUE(client
                  ->PutSync("ticket", "1", {{"assigned_to", std::string("rliu")},
                                            {"status", std::string("open")}}, store::WriteOptions{})
                  .ok());
  ASSERT_TRUE(client
                  ->PutSync("ticket", "2", {{"assigned_to", std::string("bob")},
                                            {"status", std::string("open")}}, store::WriteOptions{})
                  .ok());
  t.Quiesce();
  auto rliu = client->QuerySync(
      store::QuerySpec::View("rliu_only", "rliu"), {.quorum = 3});
  ASSERT_TRUE(rliu.ok());
  EXPECT_EQ(rliu.records.size(), 1u);
  auto bob = client->QuerySync(
      store::QuerySpec::View("rliu_only", "bob"), {.quorum = 3});
  ASSERT_TRUE(bob.ok());
  EXPECT_TRUE(bob.records.empty());
  EXPECT_TRUE(
      view::CheckView(t.cluster, *t.cluster.schema().GetView("rliu_only"))
          .clean());
}

}  // namespace
}  // namespace mvstore

// Substrate mechanisms added around the core store: bloom filters on runs,
// hinted handoff, Merkle-style anti-entropy, and scan-path read repair.

#include <gtest/gtest.h>

#include <string>

#include "storage/bloom.h"
#include "storage/run.h"
#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using storage::BloomFilter;
using storage::Cell;
using storage::Row;
using test::TestCluster;

// ---------------------------------------------------------------------------
// Bloom filters.
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1000);
  for (int i = 0; i < 1000; ++i) {
    filter.Add("key" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter filter(1000, /*bits_per_key=*/10);
  for (int i = 0; i < 1000; ++i) {
    filter.Add("key" + std::to_string(i));
  }
  int false_positives = 0;
  constexpr int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  // 10 bits/key targets ~1%; allow generous slack.
  EXPECT_LT(false_positives, kProbes / 20);
  EXPECT_LT(filter.EstimatedFalsePositiveRate(), 0.05);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(100);
  EXPECT_FALSE(filter.MayContain("anything"));
}

TEST(BloomFilterTest, RunShortCircuitsMisses) {
  std::vector<storage::KeyedRow> entries;
  for (int i = 0; i < 100; ++i) {
    Row row;
    row.Apply("c", Cell::Live("v", 1));
    entries.push_back(storage::KeyedRow{"k" + std::to_string(1000 + i), row});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.key < b.key; });
  auto run = storage::Run::FromSorted(std::move(entries));
  // Misses outside [min_key, max_key] are rejected by the key fence before
  // the bloom filter is even consulted.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(run->Get("zz" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(run->fence_skips(), 1000u);
  EXPECT_EQ(run->bloom_negatives(), 0u);
  // Misses inside the key range fall through to the filter, which must
  // answer the vast majority without touching the entries.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(run->Get("k1050x" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(run->fence_skips(), 1000u);
  EXPECT_GT(run->bloom_negatives(), 900u);
}

// ---------------------------------------------------------------------------
// Hinted handoff.
// ---------------------------------------------------------------------------

store::Schema PlainSchema() {
  store::Schema schema;
  MVSTORE_CHECK(schema.CreateTable({.name = "t"}).ok());
  return schema;
}

TEST(HintedHandoffTest, HintsStoredForUnackedReplicaAndReplayed) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(50);
  config.hint_replay_interval = Millis(200);
  config.anti_entropy_interval = 0;  // hints must do this alone
  TestCluster t(config, PlainSchema());

  const auto replicas = t.cluster.server(0).ReplicasOf("t", "k");
  const ServerId down = replicas[2];
  t.cluster.network().SetEndpointDown(down, true);

  ServerId coordinator = 0;
  while (coordinator == down) ++coordinator;
  auto client = t.cluster.NewClient(coordinator);
  ASSERT_TRUE(
      client->PutSync("t", "k", {{"a", std::string("v")}}, {.quorum = 1})
          .ok());
  t.cluster.RunFor(Millis(100));  // past the rpc timeout

  EXPECT_GT(t.cluster.metrics().hints_stored, 0u);
  EXPECT_EQ(t.cluster.server(coordinator).pending_hints(down), 1u);
  // While the target stays down, replays do not clear the queue.
  t.cluster.RunFor(Millis(600));
  EXPECT_EQ(t.cluster.server(coordinator).pending_hints(down), 1u);

  // Recovery: the next replay delivers and retires the hint.
  t.cluster.network().SetEndpointDown(down, false);
  t.cluster.RunFor(Millis(600));
  EXPECT_EQ(t.cluster.server(coordinator).pending_hints(down), 0u);
  EXPECT_GT(t.cluster.metrics().hints_replayed, 0u);
  auto cell = t.cluster.server(down).EngineFor("t").GetCell("k", "a");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->value, "v");
}

TEST(HintedHandoffTest, NoHintsWhenAllReplicasAck) {
  store::ClusterConfig config = test::DefaultTestConfig();
  TestCluster t(config, PlainSchema());
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(client->PutSync("t", "k", {{"a", std::string("v")}}, {.quorum = 3})
.ok());
  t.cluster.RunFor(Millis(400));
  EXPECT_EQ(t.cluster.metrics().hints_stored, 0u);
}

TEST(HintedHandoffTest, QueueCapDropsOldest) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.rpc_timeout = Millis(20);
  config.max_hints_per_target = 5;
  config.hint_replay_interval = Seconds(100);  // effectively off
  TestCluster t(config, PlainSchema());

  const auto replicas = t.cluster.server(0).ReplicasOf("t", "k");
  const ServerId down = replicas[2];
  t.cluster.network().SetEndpointDown(down, true);
  ServerId coordinator = 0;
  while (coordinator == down) ++coordinator;
  auto client = t.cluster.NewClient(coordinator);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client
                    ->PutSync("t", "k", {{"a", std::to_string(i)}},
                              {.quorum = 1})
                    .ok());
    t.cluster.RunFor(Millis(50));
  }
  t.cluster.RunFor(Millis(100));
  EXPECT_LE(t.cluster.server(coordinator).pending_hints(down), 5u);
  EXPECT_GT(t.cluster.metrics().hints_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Merkle-style anti-entropy.
// ---------------------------------------------------------------------------

TEST(AntiEntropyTest, InSyncReplicasExchangeOnlyDigests) {
  store::ClusterConfig config = test::DefaultTestConfig();
  TestCluster t(config, PlainSchema());
  for (int i = 0; i < 50; ++i) {
    t.cluster.BootstrapLoadRow("t", "k" + std::to_string(i),
                               {{"a", std::to_string(i)}}, 100 + i);
  }
  t.cluster.server(0).RunAntiEntropyRound();
  t.cluster.RunFor(Millis(200));
  EXPECT_GT(t.cluster.metrics().anti_entropy_digest_exchanges, 0u);
  EXPECT_EQ(t.cluster.metrics().anti_entropy_buckets_synced, 0u);
  EXPECT_EQ(t.cluster.metrics().anti_entropy_rows_pushed, 0u);
}

TEST(AntiEntropyTest, DivergentRowSyncsBothWays) {
  store::ClusterConfig config = test::DefaultTestConfig();
  TestCluster t(config, PlainSchema());
  for (int i = 0; i < 50; ++i) {
    t.cluster.BootstrapLoadRow("t", "k" + std::to_string(i),
                               {{"a", std::to_string(i)}}, 100 + i);
  }
  // Diverge: replica[0] gets a newer cell for k7 the others lack; replica[1]
  // gets one for k9.
  const auto r7 = t.cluster.server(0).ReplicasOf("t", "k7");
  Row newer7;
  newer7.Apply("a", Cell::Live("newer7", 5000));
  t.cluster.server(r7[0]).EngineFor("t").ApplyRow("k7", newer7);
  const auto r9 = t.cluster.server(0).ReplicasOf("t", "k9");
  Row newer9;
  newer9.Apply("a", Cell::Live("newer9", 5000));
  t.cluster.server(r9[1]).EngineFor("t").ApplyRow("k9", newer9);

  for (int s = 0; s < t.cluster.num_servers(); ++s) {
    t.cluster.server(static_cast<ServerId>(s)).RunAntiEntropyRound();
  }
  t.cluster.RunFor(Millis(500));

  EXPECT_GT(t.cluster.metrics().anti_entropy_buckets_synced, 0u);
  for (ServerId replica : r7) {
    auto cell = t.cluster.server(replica).EngineFor("t").GetCell("k7", "a");
    ASSERT_TRUE(cell.has_value());
    EXPECT_EQ(cell->value, "newer7") << "replica " << replica;
  }
  for (ServerId replica : r9) {
    auto cell = t.cluster.server(replica).EngineFor("t").GetCell("k9", "a");
    ASSERT_TRUE(cell.has_value());
    EXPECT_EQ(cell->value, "newer9") << "replica " << replica;
  }
}

TEST(AntiEntropyTest, DigestsCoverOnlySharedKeys) {
  store::ClusterConfig config = test::DefaultTestConfig();
  TestCluster t(config, PlainSchema());
  for (int i = 0; i < 100; ++i) {
    t.cluster.BootstrapLoadRow("t", "k" + std::to_string(i),
                               {{"a", std::string("v")}}, 100 + i);
  }
  // For any pair (a, b), a's digests over keys shared with b must equal b's
  // digests over keys shared with a.
  for (ServerId a = 0; a < 4; ++a) {
    for (ServerId b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_EQ(t.cluster.server(a).ComputeSyncDigests("t", b, 32),
                t.cluster.server(b).ComputeSyncDigests("t", a, 32))
          << a << " vs " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Scan-path read repair.
// ---------------------------------------------------------------------------

TEST(ScanRepairTest, ViewPartitionHealsOnRead) {
  TestCluster t;  // ticket schema with the view
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")},
                              {"status", std::string("open")}},
                             100);
  // Diverge: one replica holds a NEWER status cell the others missed (as if
  // a propagation write reached only it).
  const Key row_key = store::ComposeViewRowKey("alice", "1");
  const auto replicas =
      t.cluster.server(0).ReplicasOf("assigned_to_view", row_key);
  Row newer;
  newer.Apply("status",
              Cell::Live("resolved", store::kClientTimestampEpoch + 1));
  t.cluster.server(replicas[2]).EngineFor("assigned_to_view").ApplyRow(
      row_key, newer);

  auto client = t.cluster.NewClient();
  // A full-quorum view read observes all three replicas, returns the newest
  // value, and pushes repairs to the lagging replicas.
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "alice"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].cells.GetValue("status").value_or(""), "resolved");
  t.cluster.RunFor(Millis(100));
  EXPECT_GT(t.cluster.metrics().read_repairs, 0u);
  for (ServerId replica : replicas) {
    auto cell = t.cluster.server(replica)
                    .EngineFor("assigned_to_view")
                    .GetCell(row_key, "status");
    ASSERT_TRUE(cell.has_value()) << "replica " << replica;
    EXPECT_EQ(cell->value, "resolved") << "replica " << replica;
  }
}

}  // namespace
}  // namespace mvstore

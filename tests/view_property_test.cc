// Property-based testing of incremental view maintenance.
//
// The core obligation (Definition 2 after full propagation + Definition 1):
// for ANY sequence of base-table updates, issued concurrently from many
// clients with timestamps deliberately decoupled from issue order, once all
// propagations complete the view's live rows must equal the view computed
// directly from the (merged) base table. The structural invariants of
// Definition 3 must hold as well. Swept across both concurrency-control
// modes, both Get-then-Put modes, and several workload shapes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "store/client.h"
#include "tests/test_util.h"
#include "view/scrub.h"

namespace mvstore {
namespace {

using store::kClientTimestampEpoch;
using store::Mutation;
using store::PropagationMode;
using test::TestCluster;

struct WorkloadShape {
  const char* name;
  int num_ops;
  int num_base_keys;
  int num_assignees;
  int num_clients;
  // Op mix weights (percent): view-key set, materialized set, both, delete.
  int w_set;
  int w_mat;
  int w_both;
  int w_del;
};

constexpr WorkloadShape kShapes[] = {
    {"spread", 120, 40, 8, 6, 50, 30, 10, 10},
    {"hot_row", 80, 2, 5, 6, 60, 20, 10, 10},
    {"single_row", 60, 1, 4, 8, 70, 10, 10, 10},
    {"insert_heavy", 120, 100, 6, 4, 60, 30, 10, 0},
    {"delete_heavy", 100, 10, 5, 6, 40, 20, 10, 30},
};

using Param = std::tuple<PropagationMode, bool /*combined*/, int /*shape*/,
                         int /*seed*/>;

class ViewPropertyTest : public ::testing::TestWithParam<Param> {};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto& [mode, combined, shape, seed] = info.param;
  std::string name =
      mode == PropagationMode::kLockService ? "Locks" : "Propagators";
  name += combined ? "_Combined" : "_Separate";
  name += "_";
  name += kShapes[shape].name;
  name += "_s" + std::to_string(seed);
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ViewPropertyTest,
    ::testing::Combine(
        ::testing::Values(PropagationMode::kLockService,
                          PropagationMode::kDedicatedPropagators),
        ::testing::Bool(), ::testing::Range(0, 5), ::testing::Values(1, 2)),
    ParamName);

TEST_P(ViewPropertyTest, ConvergesToDefinition1) {
  const auto& [mode, combined, shape_index, seed] = GetParam();
  const WorkloadShape& shape = kShapes[shape_index];

  store::ClusterConfig config = test::DefaultTestConfig();
  config.propagation_mode = mode;
  config.combined_get_then_put = combined;
  config.seed = 77000 + static_cast<std::uint64_t>(seed);
  TestCluster t(config);

  Rng rng(config.seed * 31 + static_cast<std::uint64_t>(shape_index));

  // Bootstrap half the key space so updates hit both existing and fresh rows.
  for (int k = 0; k < shape.num_base_keys; k += 2) {
    t.cluster.BootstrapLoadRow(
        "ticket", "t" + std::to_string(k),
        {{"assigned_to", "a" + std::to_string(k % shape.num_assignees)},
         {"status", std::string("open")}},
        100 + k);
  }

  std::vector<std::unique_ptr<store::Client>> clients;
  for (int c = 0; c < shape.num_clients; ++c) {
    clients.push_back(t.cluster.NewClient(static_cast<ServerId>(c % 4)));
  }

  // Pre-generate ops with timestamps decoupled from issue order: shuffle the
  // timestamp assignment so propagation order and serialization order
  // disagree heavily.
  std::vector<Timestamp> timestamps;
  for (int i = 0; i < shape.num_ops; ++i) {
    timestamps.push_back(kClientTimestampEpoch + 1000 + i);
  }
  rng.Shuffle(timestamps);

  int completed = 0;
  for (int i = 0; i < shape.num_ops; ++i) {
    const Key key =
        "t" + std::to_string(rng.UniformInt(0, shape.num_base_keys - 1));
    const std::string who =
        "a" + std::to_string(rng.UniformInt(0, shape.num_assignees - 1));
    const std::string status = rng.Chance(0.5) ? "open" : "resolved";
    const Timestamp ts = timestamps[static_cast<std::size_t>(i)];
    store::Client& client =
        *clients[static_cast<std::size_t>(rng.UniformInt(
            0, shape.num_clients - 1))];

    const int total = shape.w_set + shape.w_mat + shape.w_both + shape.w_del;
    const int roll = static_cast<int>(rng.UniformInt(0, total - 1));
    auto done = [&completed](Status s) {
      ASSERT_TRUE(s.ok()) << s;
      ++completed;
    };
    // Spread issue times over a window so ops from different clients overlap.
    const SimTime issue_at =
        t.cluster.Now() + static_cast<SimTime>(rng.UniformInt(0, 20000));
    t.cluster.simulation().At(
        issue_at, [&client, key, who, status, ts, roll, done, &shape] {
          auto on_write = [done](store::WriteResult w) { done(w.status); };
          if (roll < shape.w_set) {
            client.Put("ticket", key, {{"assigned_to", who}}, {.ts = ts},
                       on_write);
          } else if (roll < shape.w_set + shape.w_mat) {
            client.Put("ticket", key, {{"status", status}}, {.ts = ts},
                       on_write);
          } else if (roll < shape.w_set + shape.w_mat + shape.w_both) {
            client.Put("ticket", key,
                       {{"assigned_to", who}, {"status", status}}, {.ts = ts},
                       on_write);
          } else {
            client.Delete("ticket", key, {"assigned_to"}, {.ts = ts},
                          on_write);
          }
        });
  }

  while (completed < shape.num_ops) {
    ASSERT_TRUE(t.cluster.simulation().Step()) << "ran dry at " << completed;
  }
  t.Quiesce();

  EXPECT_EQ(t.cluster.metrics().propagations_abandoned, 0u);
  view::ScrubReport report =
      view::CheckView(t.cluster, test::TicketView(t.cluster));
  EXPECT_TRUE(report.clean()) << shape.name << ": " << report.Summary();
}

}  // namespace
}  // namespace mvstore

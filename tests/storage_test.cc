// Unit and property tests for the storage engine: LWW cell merge semantics
// (the foundation of replica convergence), rows, memtable, runs, flush,
// compaction, and tombstone GC.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/cell.h"
#include "storage/engine.h"
#include "storage/memtable.h"
#include "storage/row.h"
#include "storage/row_cache.h"
#include "storage/run.h"

namespace mvstore::storage {
namespace {

TEST(CellTest, LargerTimestampWins) {
  Cell a = Cell::Live("x", 10);
  Cell b = Cell::Live("y", 20);
  EXPECT_TRUE(Supersedes(b, a));
  EXPECT_FALSE(Supersedes(a, b));
  EXPECT_EQ(MergeCells(a, b).value, "y");
}

TEST(CellTest, TombstoneWinsTimestampTie) {
  Cell live = Cell::Live("x", 10);
  Cell dead = Cell::Tombstone(10);
  EXPECT_TRUE(Supersedes(dead, live));
  EXPECT_TRUE(MergeCells(live, dead).tombstone);
}

TEST(CellTest, ValueBreaksFullTie) {
  Cell a = Cell::Live("apple", 10);
  Cell b = Cell::Live("banana", 10);
  EXPECT_TRUE(Supersedes(b, a));
  EXPECT_EQ(MergeCells(a, b).value, "banana");
}

TEST(CellTest, MergeIsIdempotent) {
  Cell a = Cell::Live("x", 10);
  EXPECT_EQ(MergeCells(a, a), a);
}

// The convergence property: merge must be commutative and associative so
// replicas agree regardless of delivery order. Exercised over random cells.
TEST(CellTest, MergeCommutativeAssociativeRandomized) {
  Rng rng(42);
  auto random_cell = [&rng]() {
    Cell c;
    c.ts = rng.UniformInt(0, 4);
    c.tombstone = rng.Chance(0.3);
    if (!c.tombstone) c.value = std::string(1, 'a' + rng.UniformInt(0, 3));
    return c;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    Cell a = random_cell();
    Cell b = random_cell();
    Cell c = random_cell();
    EXPECT_EQ(MergeCells(a, b), MergeCells(b, a));
    EXPECT_EQ(MergeCells(MergeCells(a, b), c), MergeCells(a, MergeCells(b, c)));
  }
}

// The full merge algebra, fuzzed over the awkward corners the randomized
// test above never generates: null cells (kNullTimestamp, no value),
// timestamp ties between tombstones and lives, and identical cells. Any
// violation here is a replica-divergence bug — MergeCells must be a
// commutative, associative, idempotent join for LWW convergence to hold.
TEST(CellTest, MergeAlgebraHoldsWithNullCellsAndTies) {
  Rng rng(20130401);
  auto random_cell = [&rng]() {
    Cell c;
    if (rng.Chance(0.15)) return c;  // null cell
    c.ts = rng.UniformInt(0, 3);     // tight range: ties are common
    c.tombstone = rng.Chance(0.4);
    if (!c.tombstone) {
      c.value = std::string(1, static_cast<char>('a' + rng.UniformInt(0, 1)));
    }
    return c;
  };
  for (int trial = 0; trial < 5000; ++trial) {
    Cell a = random_cell();
    Cell b = random_cell();
    Cell c = random_cell();
    EXPECT_EQ(MergeCells(a, a), a);  // idempotent
    EXPECT_EQ(MergeCells(a, b), MergeCells(b, a));  // commutative
    EXPECT_EQ(MergeCells(MergeCells(a, b), c),
              MergeCells(a, MergeCells(b, c)));  // associative
  }
}

TEST(RowTest, ApplyKeepsNewest) {
  Row row;
  EXPECT_TRUE(row.Apply("c", Cell::Live("v1", 10)));
  EXPECT_FALSE(row.Apply("c", Cell::Live("old", 5)));
  EXPECT_TRUE(row.Apply("c", Cell::Live("v2", 20)));
  EXPECT_EQ(row.GetValue("c").value_or(""), "v2");
}

TEST(RowTest, GetValueHidesTombstones) {
  Row row;
  row.Apply("c", Cell::Live("v", 10));
  row.Apply("c", Cell::Tombstone(20));
  EXPECT_FALSE(row.GetValue("c").has_value());
  ASSERT_TRUE(row.Get("c").has_value());  // raw cell still visible
  EXPECT_TRUE(row.Get("c")->tombstone);
}

TEST(RowTest, MergeFromIsCellwise) {
  Row a;
  a.Apply("x", Cell::Live("ax", 10));
  a.Apply("y", Cell::Live("ay", 30));
  Row b;
  b.Apply("x", Cell::Live("bx", 20));
  b.Apply("z", Cell::Live("bz", 5));
  a.MergeFrom(b);
  EXPECT_EQ(a.GetValue("x").value_or(""), "bx");
  EXPECT_EQ(a.GetValue("y").value_or(""), "ay");
  EXPECT_EQ(a.GetValue("z").value_or(""), "bz");
}

TEST(RowTest, MaxTimestampAndAllTombstones) {
  Row row;
  EXPECT_EQ(row.MaxTimestamp(), kNullTimestamp);
  row.Apply("a", Cell::Tombstone(7));
  row.Apply("b", Cell::Tombstone(9));
  EXPECT_EQ(row.MaxTimestamp(), 9);
  EXPECT_TRUE(row.AllTombstones());
  row.Apply("b", Cell::Live("v", 12));
  EXPECT_FALSE(row.AllTombstones());
}

TEST(MemTableTest, ApplyAndGet) {
  MemTable mt;
  mt.Apply("k1", "c", Cell::Live("v", 1));
  ASSERT_NE(mt.Get("k1"), nullptr);
  EXPECT_EQ(mt.Get("k1")->GetValue("c").value_or(""), "v");
  EXPECT_EQ(mt.Get("k2"), nullptr);
  EXPECT_EQ(mt.entries(), 1u);
  EXPECT_EQ(mt.cell_count(), 1u);
}

TEST(MemTableTest, ScanPrefixOrderedAndBounded) {
  MemTable mt;
  for (const char* k : {"a1", "a2", "b1", "a3", "ab"}) {
    mt.Apply(k, "c", Cell::Live(k, 1));
  }
  std::vector<Key> keys;
  mt.ScanPrefix("a", [&](const Key& k, const Row&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<Key>{"a1", "a2", "a3", "ab"}));
}

TEST(RunTest, BinarySearchGet) {
  std::vector<KeyedRow> entries;
  for (const char* k : {"a", "c", "e"}) {
    Row row;
    row.Apply("v", Cell::Live(k, 1));
    entries.push_back(KeyedRow{k, row});
  }
  auto run = Run::FromSorted(std::move(entries));
  EXPECT_NE(run->Get("c"), nullptr);
  EXPECT_EQ(run->Get("b"), nullptr);
  EXPECT_EQ(run->Get("z"), nullptr);
  EXPECT_EQ(run->entries(), 3u);
}

TEST(RunTest, MergePurgesExpiredTombstones) {
  std::vector<KeyedRow> e1;
  Row r1;
  r1.Apply("c", Cell::Tombstone(50));
  e1.push_back(KeyedRow{"k", r1});
  auto run1 = Run::FromSorted(std::move(e1));

  // Purge threshold above the tombstone timestamp: the cell disappears and
  // the empty row is elided.
  auto merged = Run::Merge({run1}, /*purge_tombstones_before=*/100);
  EXPECT_EQ(merged->entries(), 0u);

  // Below the threshold it must be kept (still shadowing older live cells).
  auto kept = Run::Merge({run1}, /*purge_tombstones_before=*/10);
  EXPECT_EQ(kept->entries(), 1u);
}

TEST(RunTest, MergeCountsPurgedAndDeferredTombstones) {
  std::vector<KeyedRow> entries;
  for (const auto& [key, ts] :
       std::vector<std::pair<Key, Timestamp>>{{"a", 10}, {"b", 50}, {"c", 90}}) {
    Row row;
    row.Apply("col", Cell::Tombstone(ts));
    entries.push_back(KeyedRow{key, row});
  }
  auto run = Run::FromSorted(std::move(entries));

  GcStats stats;
  // ts 10 is below the purge threshold (dropped); ts 50 sits in the deferral
  // window [40, 80) — past grace but protected by a pending-hint floor; ts 90
  // is simply within grace.
  auto merged = Run::Merge({run}, /*purge_tombstones_before=*/40,
                           /*defer_before=*/80, &stats);
  EXPECT_EQ(stats.tombstones_purged, 1u);
  EXPECT_EQ(stats.tombstones_deferred, 1u);
  EXPECT_EQ(merged->entries(), 2u);
  EXPECT_EQ(merged->Get("a"), nullptr);
  EXPECT_NE(merged->Get("b"), nullptr);
  EXPECT_NE(merged->Get("c"), nullptr);
}

TEST(RunTest, ScanPrefixFenceSkipsDisjointRuns) {
  std::vector<KeyedRow> entries;
  for (const char* k : {"m1", "m2", "m3"}) {
    Row row;
    row.Apply("c", Cell::Live(k, 1));
    entries.push_back(KeyedRow{k, row});
  }
  auto run = Run::FromSorted(std::move(entries));

  int visited = 0;
  run->ScanPrefix("z", [&](const Key&, const Row&) { ++visited; });
  EXPECT_EQ(visited, 0);
  EXPECT_EQ(run->fence_skips(), 1u);  // every key < "z"

  run->ScanPrefix("a", [&](const Key&, const Row&) { ++visited; });
  EXPECT_EQ(visited, 0);
  EXPECT_EQ(run->fence_skips(), 2u);  // every key already > the "a" prefix

  run->ScanPrefix("m", [&](const Key&, const Row&) { ++visited; });
  EXPECT_EQ(visited, 3);
  EXPECT_EQ(run->fence_skips(), 2u);  // intersecting scan pays full price
}

TEST(EngineTest, GetMergesAcrossMemtableAndRuns) {
  EngineOptions options;
  options.memtable_flush_entries = 2;  // flush aggressively
  Engine engine(options);
  engine.Apply("k", "a", Cell::Live("v1", 10));
  engine.Apply("k2", "a", Cell::Live("x", 10));  // triggers flush
  engine.Apply("k", "b", Cell::Live("v2", 20));  // lands in new memtable

  auto row = engine.GetRow("k");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetValue("a").value_or(""), "v1");
  EXPECT_EQ(row->GetValue("b").value_or(""), "v2");
  EXPECT_GE(engine.num_runs(), 1u);
}

TEST(EngineTest, NewerCellInOlderRunStillWins) {
  EngineOptions options;
  options.memtable_flush_entries = 1000;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Live("new", 100));
  engine.Flush();
  engine.Apply("k", "c", Cell::Live("stale", 50));  // older write arrives late
  auto cell = engine.GetCell("k", "c");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->value, "new");
}

TEST(EngineTest, ScanPrefixMergesStructures) {
  Engine engine;
  engine.Apply("p1", "c", Cell::Live("a", 1));
  engine.Flush();
  engine.Apply("p2", "c", Cell::Live("b", 1));
  std::vector<Key> keys;
  engine.ScanPrefix("p", [&](const Key& k, const Row&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<Key>{"p1", "p2"}));
}

TEST(EngineTest, CompactionReducesRunsAndKeepsData) {
  EngineOptions options;
  options.memtable_flush_entries = 1;
  options.max_runs = 100;  // no automatic compaction
  Engine engine(options);
  for (int i = 0; i < 10; ++i) {
    engine.Apply("k" + std::to_string(i), "c", Cell::Live("v", i));
  }
  EXPECT_GE(engine.num_runs(), 9u);
  engine.Compact(kNullTimestamp);
  EXPECT_EQ(engine.num_runs(), 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(engine.GetRow("k" + std::to_string(i)).has_value());
  }
  EXPECT_EQ(engine.compactions(), 1u);
}

TEST(EngineTest, AutomaticCompactionBoundsRunCount) {
  EngineOptions options;
  options.memtable_flush_entries = 1;
  options.max_runs = 3;
  Engine engine(options);
  for (int i = 0; i < 50; ++i) {
    engine.Apply("k" + std::to_string(i), "c", Cell::Live("v", i));
  }
  EXPECT_LE(engine.num_runs(), 4u);
}

TEST(EngineTest, SizeTieredCompactionLeavesLargeRunsAlone) {
  EngineOptions options;
  options.memtable_flush_entries = 1000;  // manual flushes only
  options.max_runs = 3;
  Engine engine(options);

  // One large, old run of 100 keys.
  for (int i = 0; i < 100; ++i) {
    engine.Apply("big" + std::to_string(i), "c", Cell::Live("v", 1));
  }
  engine.Flush();
  // Three 1-entry runs behind it.
  for (int i = 0; i < 3; ++i) {
    engine.Apply("small" + std::to_string(i), "c", Cell::Live("v", 1));
    engine.Flush();
  }
  ASSERT_EQ(engine.num_runs(), 4u);
  const std::uint64_t before = engine.compactions();

  // The next apply trips the run-count trigger. Size-tiering must merge the
  // tier of small runs only — NOT rewrite the 100-entry run (the quadratic
  // write amplification the old merge-everything behaviour had).
  engine.Apply("trigger", "c", Cell::Live("v", 1));
  EXPECT_EQ(engine.compactions(), before + 1);
  const std::vector<std::size_t> counts = engine.run_entry_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_TRUE(counts[0] == 100 || counts[1] == 100)
      << "the large run was rewritten";
  // All data still readable.
  EXPECT_TRUE(engine.GetRow("big42").has_value());
  EXPECT_TRUE(engine.GetRow("small2").has_value());
  EXPECT_TRUE(engine.GetRow("trigger").has_value());
}

TEST(EngineTest, CompactReportsGcStatsAndHonorsPurgeFloor) {
  EngineOptions options;
  options.tombstone_gc_grace = 100;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Tombstone(200));
  engine.Flush();

  // Grace expired (cutoff 400 > 200) but the purge floor — the oldest
  // pending-hint timestamp — protects the delete: it is counted deferred,
  // not purged.
  GcStats deferred = engine.Compact(/*now=*/500, /*purge_floor=*/150);
  EXPECT_EQ(deferred.tombstones_purged, 0u);
  EXPECT_EQ(deferred.tombstones_deferred, 1u);
  ASSERT_TRUE(engine.GetCell("k", "c").has_value());
  EXPECT_TRUE(engine.GetCell("k", "c")->tombstone);

  // Floor lifted (hint acknowledged): the tombstone goes.
  GcStats purged = engine.Compact(/*now=*/500);
  EXPECT_EQ(purged.tombstones_purged, 1u);
  EXPECT_EQ(purged.tombstones_deferred, 0u);
  EXPECT_FALSE(engine.GetRow("k").has_value());
}

TEST(EngineTest, TombstoneGcHonorsGracePeriod) {
  EngineOptions options;
  options.tombstone_gc_grace = 100;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Live("v", 10));
  engine.Apply("k", "c", Cell::Tombstone(20));
  engine.Flush();
  engine.Apply("other", "c", Cell::Live("x", 30));
  engine.Flush();

  // Within grace: tombstone retained.
  engine.Compact(/*now=*/50);
  ASSERT_TRUE(engine.GetCell("k", "c").has_value());
  EXPECT_TRUE(engine.GetCell("k", "c")->tombstone);

  // Past grace: tombstone (and the empty row) disappear.
  engine.Compact(/*now=*/500);
  EXPECT_FALSE(engine.GetRow("k").has_value());
  EXPECT_TRUE(engine.GetRow("other").has_value());
}

TEST(EngineTest, CompactionDoesNotResurrectDeletedData) {
  // The deletion shadows an older live cell sitting in an older run. GC of
  // the tombstone must not bring the old value back.
  EngineOptions options;
  options.tombstone_gc_grace = 100;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Live("old", 10));
  engine.Flush();
  engine.Apply("k", "c", Cell::Tombstone(20));
  engine.Compact(/*now=*/500);  // grace expired; both cells merge first
  EXPECT_FALSE(engine.GetCell("k", "c").has_value());
}

TEST(EngineTest, ForEachVisitsMergedRowsInOrder) {
  Engine engine;
  engine.Apply("b", "c", Cell::Live("1", 1));
  engine.Flush();
  engine.Apply("a", "c", Cell::Live("2", 1));
  std::vector<Key> keys;
  engine.ForEach([&](const Key& k, const Row&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<Key>{"a", "b"}));
}

// Randomized: an Engine receiving updates in ANY order equals a plain map
// applying LWW — regardless of interleaved flushes and compactions.
TEST(EngineTest, RandomizedEquivalenceToLwwMap) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    EngineOptions options;
    options.memtable_flush_entries = 4;
    options.max_runs = 3;
    Engine engine(options);
    std::map<Key, Row> model;
    for (int i = 0; i < 300; ++i) {
      Key key = "k" + std::to_string(rng.UniformInt(0, 10));
      ColumnName col = "c" + std::to_string(rng.UniformInt(0, 2));
      Cell cell;
      cell.ts = rng.UniformInt(0, 50);
      cell.tombstone = rng.Chance(0.2);
      if (!cell.tombstone) {
        cell.value = std::to_string(rng.UniformInt(0, 99));
      }
      engine.Apply(key, col, cell);
      model[key].Apply(col, cell);
      if (rng.Chance(0.05)) engine.Flush();
      if (rng.Chance(0.02)) engine.Compact(kNullTimestamp);
    }
    for (const auto& [key, row] : model) {
      auto stored = engine.GetRow(key);
      ASSERT_TRUE(stored.has_value()) << key;
      EXPECT_EQ(*stored, row) << key;
    }
  }
}

TEST(RowCacheTest, LruEvictionAndStats) {
  RowCache cache(2);
  Row row;
  row.Apply("c", Cell::Live("v", 1));
  cache.Put("t", "a", row);
  cache.Put("t", "b", row);
  EXPECT_NE(cache.Get("t", "a"), nullptr);  // bumps "a" to MRU
  cache.Put("t", "c", row);                 // evicts LRU "b"
  EXPECT_TRUE(cache.Contains("t", "a"));
  EXPECT_FALSE(cache.Contains("t", "b"));
  EXPECT_TRUE(cache.Contains("t", "c"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);  // Contains is a pure probe
  EXPECT_EQ(cache.Get("t", "b"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RowCacheTest, InvalidateAndClear) {
  RowCache cache(8);
  Row row;
  row.Apply("c", Cell::Live("v", 1));
  cache.Put("t", "a", row);
  cache.Put("t", "b", row);
  cache.Invalidate("t", "a");
  EXPECT_FALSE(cache.Contains("t", "a"));
  EXPECT_TRUE(cache.Contains("t", "b"));
  EXPECT_EQ(cache.invalidations(), 1u);
  cache.Invalidate("t", "nope");  // absent: no effect, no count
  EXPECT_EQ(cache.invalidations(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.invalidations(), 2u);
}

TEST(RowCacheTest, ZeroCapacityStoresNothing) {
  RowCache cache(0);
  Row row;
  row.Apply("c", Cell::Live("v", 1));
  cache.Put("t", "a", row);
  EXPECT_FALSE(cache.Contains("t", "a"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RowCacheTest, TablesNamespaceKeys) {
  RowCache cache(8);
  Row row;
  row.Apply("c", Cell::Live("v", 1));
  cache.Put("t1", "k", row);
  EXPECT_TRUE(cache.Contains("t1", "k"));
  EXPECT_FALSE(cache.Contains("t2", "k"));
}

TEST(EngineTest, RowCacheServesInvalidatesAndClearsOnPurge) {
  RowCache cache(16);
  EngineOptions options;
  options.tombstone_gc_grace = 100;
  Engine engine(options);
  engine.set_row_cache(&cache, "t");

  engine.Apply("k", "c", Cell::Live("v1", 10));
  EXPECT_FALSE(cache.Contains("t", "k"));
  engine.GetRow("k");  // miss populates
  EXPECT_TRUE(cache.Contains("t", "k"));
  auto row = engine.GetRow("k");  // hit
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetValue("c").value_or(""), "v1");
  EXPECT_EQ(cache.hits(), 1u);

  // Every local apply invalidates, so a cached row can never mask a write.
  engine.Apply("k", "c", Cell::Live("v2", 20));
  EXPECT_FALSE(cache.Contains("t", "k"));
  EXPECT_EQ(engine.GetRow("k")->GetValue("c").value_or(""), "v2");
  // GetCell routes through the cached merged row and agrees with it.
  EXPECT_EQ(engine.GetCell("k", "c")->value, "v2");
  EXPECT_GE(cache.hits(), 2u);

  // A tombstone-purging compaction clears the cache — a cached copy of the
  // pre-purge row would otherwise resurface purged cells.
  engine.Apply("k", "c", Cell::Tombstone(30));
  engine.GetRow("k");  // re-cache the tombstoned row
  EXPECT_TRUE(cache.Contains("t", "k"));
  engine.Compact(/*now=*/500);
  EXPECT_FALSE(cache.Contains("t", "k"));
  EXPECT_FALSE(engine.GetRow("k").has_value());

  // Crash path: volatile state includes the cache.
  engine.Apply("k2", "c", Cell::Live("v", 40));
  engine.GetRow("k2");
  EXPECT_TRUE(cache.Contains("t", "k2"));
  engine.LoseVolatileState();
  EXPECT_FALSE(cache.Contains("t", "k2"));
}

}  // namespace
}  // namespace mvstore::storage

// Unit and property tests for the storage engine: LWW cell merge semantics
// (the foundation of replica convergence), rows, memtable, runs, flush,
// compaction, and tombstone GC.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/cell.h"
#include "storage/engine.h"
#include "storage/memtable.h"
#include "storage/row.h"
#include "storage/run.h"

namespace mvstore::storage {
namespace {

TEST(CellTest, LargerTimestampWins) {
  Cell a = Cell::Live("x", 10);
  Cell b = Cell::Live("y", 20);
  EXPECT_TRUE(Supersedes(b, a));
  EXPECT_FALSE(Supersedes(a, b));
  EXPECT_EQ(MergeCells(a, b).value, "y");
}

TEST(CellTest, TombstoneWinsTimestampTie) {
  Cell live = Cell::Live("x", 10);
  Cell dead = Cell::Tombstone(10);
  EXPECT_TRUE(Supersedes(dead, live));
  EXPECT_TRUE(MergeCells(live, dead).tombstone);
}

TEST(CellTest, ValueBreaksFullTie) {
  Cell a = Cell::Live("apple", 10);
  Cell b = Cell::Live("banana", 10);
  EXPECT_TRUE(Supersedes(b, a));
  EXPECT_EQ(MergeCells(a, b).value, "banana");
}

TEST(CellTest, MergeIsIdempotent) {
  Cell a = Cell::Live("x", 10);
  EXPECT_EQ(MergeCells(a, a), a);
}

// The convergence property: merge must be commutative and associative so
// replicas agree regardless of delivery order. Exercised over random cells.
TEST(CellTest, MergeCommutativeAssociativeRandomized) {
  Rng rng(42);
  auto random_cell = [&rng]() {
    Cell c;
    c.ts = rng.UniformInt(0, 4);
    c.tombstone = rng.Chance(0.3);
    if (!c.tombstone) c.value = std::string(1, 'a' + rng.UniformInt(0, 3));
    return c;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    Cell a = random_cell();
    Cell b = random_cell();
    Cell c = random_cell();
    EXPECT_EQ(MergeCells(a, b), MergeCells(b, a));
    EXPECT_EQ(MergeCells(MergeCells(a, b), c), MergeCells(a, MergeCells(b, c)));
  }
}

TEST(RowTest, ApplyKeepsNewest) {
  Row row;
  EXPECT_TRUE(row.Apply("c", Cell::Live("v1", 10)));
  EXPECT_FALSE(row.Apply("c", Cell::Live("old", 5)));
  EXPECT_TRUE(row.Apply("c", Cell::Live("v2", 20)));
  EXPECT_EQ(row.GetValue("c").value_or(""), "v2");
}

TEST(RowTest, GetValueHidesTombstones) {
  Row row;
  row.Apply("c", Cell::Live("v", 10));
  row.Apply("c", Cell::Tombstone(20));
  EXPECT_FALSE(row.GetValue("c").has_value());
  ASSERT_TRUE(row.Get("c").has_value());  // raw cell still visible
  EXPECT_TRUE(row.Get("c")->tombstone);
}

TEST(RowTest, MergeFromIsCellwise) {
  Row a;
  a.Apply("x", Cell::Live("ax", 10));
  a.Apply("y", Cell::Live("ay", 30));
  Row b;
  b.Apply("x", Cell::Live("bx", 20));
  b.Apply("z", Cell::Live("bz", 5));
  a.MergeFrom(b);
  EXPECT_EQ(a.GetValue("x").value_or(""), "bx");
  EXPECT_EQ(a.GetValue("y").value_or(""), "ay");
  EXPECT_EQ(a.GetValue("z").value_or(""), "bz");
}

TEST(RowTest, MaxTimestampAndAllTombstones) {
  Row row;
  EXPECT_EQ(row.MaxTimestamp(), kNullTimestamp);
  row.Apply("a", Cell::Tombstone(7));
  row.Apply("b", Cell::Tombstone(9));
  EXPECT_EQ(row.MaxTimestamp(), 9);
  EXPECT_TRUE(row.AllTombstones());
  row.Apply("b", Cell::Live("v", 12));
  EXPECT_FALSE(row.AllTombstones());
}

TEST(MemTableTest, ApplyAndGet) {
  MemTable mt;
  mt.Apply("k1", "c", Cell::Live("v", 1));
  ASSERT_NE(mt.Get("k1"), nullptr);
  EXPECT_EQ(mt.Get("k1")->GetValue("c").value_or(""), "v");
  EXPECT_EQ(mt.Get("k2"), nullptr);
  EXPECT_EQ(mt.entries(), 1u);
  EXPECT_EQ(mt.cell_count(), 1u);
}

TEST(MemTableTest, ScanPrefixOrderedAndBounded) {
  MemTable mt;
  for (const char* k : {"a1", "a2", "b1", "a3", "ab"}) {
    mt.Apply(k, "c", Cell::Live(k, 1));
  }
  std::vector<Key> keys;
  mt.ScanPrefix("a", [&](const Key& k, const Row&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<Key>{"a1", "a2", "a3", "ab"}));
}

TEST(RunTest, BinarySearchGet) {
  std::vector<KeyedRow> entries;
  for (const char* k : {"a", "c", "e"}) {
    Row row;
    row.Apply("v", Cell::Live(k, 1));
    entries.push_back(KeyedRow{k, row});
  }
  auto run = Run::FromSorted(std::move(entries));
  EXPECT_NE(run->Get("c"), nullptr);
  EXPECT_EQ(run->Get("b"), nullptr);
  EXPECT_EQ(run->Get("z"), nullptr);
  EXPECT_EQ(run->entries(), 3u);
}

TEST(RunTest, MergePurgesExpiredTombstones) {
  std::vector<KeyedRow> e1;
  Row r1;
  r1.Apply("c", Cell::Tombstone(50));
  e1.push_back(KeyedRow{"k", r1});
  auto run1 = Run::FromSorted(std::move(e1));

  // Purge threshold above the tombstone timestamp: the cell disappears and
  // the empty row is elided.
  auto merged = Run::Merge({run1}, /*purge_tombstones_before=*/100);
  EXPECT_EQ(merged->entries(), 0u);

  // Below the threshold it must be kept (still shadowing older live cells).
  auto kept = Run::Merge({run1}, /*purge_tombstones_before=*/10);
  EXPECT_EQ(kept->entries(), 1u);
}

TEST(EngineTest, GetMergesAcrossMemtableAndRuns) {
  EngineOptions options;
  options.memtable_flush_entries = 2;  // flush aggressively
  Engine engine(options);
  engine.Apply("k", "a", Cell::Live("v1", 10));
  engine.Apply("k2", "a", Cell::Live("x", 10));  // triggers flush
  engine.Apply("k", "b", Cell::Live("v2", 20));  // lands in new memtable

  auto row = engine.GetRow("k");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->GetValue("a").value_or(""), "v1");
  EXPECT_EQ(row->GetValue("b").value_or(""), "v2");
  EXPECT_GE(engine.num_runs(), 1u);
}

TEST(EngineTest, NewerCellInOlderRunStillWins) {
  EngineOptions options;
  options.memtable_flush_entries = 1000;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Live("new", 100));
  engine.Flush();
  engine.Apply("k", "c", Cell::Live("stale", 50));  // older write arrives late
  auto cell = engine.GetCell("k", "c");
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->value, "new");
}

TEST(EngineTest, ScanPrefixMergesStructures) {
  Engine engine;
  engine.Apply("p1", "c", Cell::Live("a", 1));
  engine.Flush();
  engine.Apply("p2", "c", Cell::Live("b", 1));
  std::vector<Key> keys;
  engine.ScanPrefix("p", [&](const Key& k, const Row&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<Key>{"p1", "p2"}));
}

TEST(EngineTest, CompactionReducesRunsAndKeepsData) {
  EngineOptions options;
  options.memtable_flush_entries = 1;
  options.max_runs = 100;  // no automatic compaction
  Engine engine(options);
  for (int i = 0; i < 10; ++i) {
    engine.Apply("k" + std::to_string(i), "c", Cell::Live("v", i));
  }
  EXPECT_GE(engine.num_runs(), 9u);
  engine.Compact(kNullTimestamp);
  EXPECT_EQ(engine.num_runs(), 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(engine.GetRow("k" + std::to_string(i)).has_value());
  }
  EXPECT_EQ(engine.compactions(), 1u);
}

TEST(EngineTest, AutomaticCompactionBoundsRunCount) {
  EngineOptions options;
  options.memtable_flush_entries = 1;
  options.max_runs = 3;
  Engine engine(options);
  for (int i = 0; i < 50; ++i) {
    engine.Apply("k" + std::to_string(i), "c", Cell::Live("v", i));
  }
  EXPECT_LE(engine.num_runs(), 4u);
}

TEST(EngineTest, TombstoneGcHonorsGracePeriod) {
  EngineOptions options;
  options.tombstone_gc_grace = 100;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Live("v", 10));
  engine.Apply("k", "c", Cell::Tombstone(20));
  engine.Flush();
  engine.Apply("other", "c", Cell::Live("x", 30));
  engine.Flush();

  // Within grace: tombstone retained.
  engine.Compact(/*now=*/50);
  ASSERT_TRUE(engine.GetCell("k", "c").has_value());
  EXPECT_TRUE(engine.GetCell("k", "c")->tombstone);

  // Past grace: tombstone (and the empty row) disappear.
  engine.Compact(/*now=*/500);
  EXPECT_FALSE(engine.GetRow("k").has_value());
  EXPECT_TRUE(engine.GetRow("other").has_value());
}

TEST(EngineTest, CompactionDoesNotResurrectDeletedData) {
  // The deletion shadows an older live cell sitting in an older run. GC of
  // the tombstone must not bring the old value back.
  EngineOptions options;
  options.tombstone_gc_grace = 100;
  Engine engine(options);
  engine.Apply("k", "c", Cell::Live("old", 10));
  engine.Flush();
  engine.Apply("k", "c", Cell::Tombstone(20));
  engine.Compact(/*now=*/500);  // grace expired; both cells merge first
  EXPECT_FALSE(engine.GetCell("k", "c").has_value());
}

TEST(EngineTest, ForEachVisitsMergedRowsInOrder) {
  Engine engine;
  engine.Apply("b", "c", Cell::Live("1", 1));
  engine.Flush();
  engine.Apply("a", "c", Cell::Live("2", 1));
  std::vector<Key> keys;
  engine.ForEach([&](const Key& k, const Row&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<Key>{"a", "b"}));
}

// Randomized: an Engine receiving updates in ANY order equals a plain map
// applying LWW — regardless of interleaved flushes and compactions.
TEST(EngineTest, RandomizedEquivalenceToLwwMap) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    EngineOptions options;
    options.memtable_flush_entries = 4;
    options.max_runs = 3;
    Engine engine(options);
    std::map<Key, Row> model;
    for (int i = 0; i < 300; ++i) {
      Key key = "k" + std::to_string(rng.UniformInt(0, 10));
      ColumnName col = "c" + std::to_string(rng.UniformInt(0, 2));
      Cell cell;
      cell.ts = rng.UniformInt(0, 50);
      cell.tombstone = rng.Chance(0.2);
      if (!cell.tombstone) {
        cell.value = std::to_string(rng.UniformInt(0, 99));
      }
      engine.Apply(key, col, cell);
      model[key].Apply(col, cell);
      if (rng.Chance(0.05)) engine.Flush();
      if (rng.Chance(0.02)) engine.Compact(kNullTimestamp);
    }
    for (const auto& [key, row] : model) {
      auto stored = engine.GetRow(key);
      ASSERT_TRUE(stored.has_value()) << key;
      EXPECT_EQ(*stored, row) << key;
    }
  }
}

}  // namespace
}  // namespace mvstore::storage

// Shard placement is ONE function (ISSUE 10): the codec's ShardOfBaseKey is
// the single routing authority, and every layer that slices a view key into
// sub-shards — row-key encoding (maintenance/propagation), scatter prefixes
// (reads), and the freshness tracker's per-shard intent filter — must agree
// with it key-for-key. These property tests pin the agreement so a future
// "local copy" of the hash can never silently diverge and strand intents
// (or rows) in a shard no reader consults.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "store/codec.h"
#include "store/freshness.h"

namespace mvstore {
namespace {

std::string RandomKey(Rng& rng) {
  const int len = static_cast<int>(rng.UniformInt(1, 24));
  std::string key;
  key.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    key.push_back(static_cast<char>(rng.UniformInt(32, 126)));
  }
  return key;
}

// The encoded row key of (view_key, base_key) must land in exactly the
// shard ShardOfBaseKey names — the invariant the chain walk, scatter read,
// and scrub all navigate by.
TEST(ShardPlacementTest, RowKeyEncodingAgreesWithShardOfBaseKey) {
  Rng rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    const int shards =
        static_cast<int>(rng.UniformInt(2, store::kMaxViewShards));
    const Key view_key = RandomKey(rng);
    const Key base_key = RandomKey(rng);
    const int want = store::ShardOfBaseKey(base_key, shards);
    const Key row_key =
        store::ShardedViewRowKey(view_key, base_key, want, shards);

    auto encoded_shard = store::ShardOfComposedKey(row_key, shards);
    ASSERT_TRUE(encoded_shard.has_value());
    EXPECT_EQ(*encoded_shard, want);

    // The row sits under its shard's scatter prefix and splits back.
    const Key prefix =
        store::ShardedViewPartitionPrefix(view_key, want, shards);
    EXPECT_EQ(row_key.compare(0, prefix.size(), prefix), 0);
    auto split = store::SplitShardedViewRowKey(row_key, shards);
    ASSERT_TRUE(split.has_value());
    EXPECT_EQ(split->first, view_key);
    EXPECT_EQ(split->second, base_key);
  }
}

// The freshness tracker filters per-shard blockers with the SAME routing:
// an unsettled intent for base key B must depress FreshAsOfShard for
// exactly ShardOfBaseKey(B) and no other shard — otherwise a scatter read
// would claim freshness for the very shard the pending write lands in.
TEST(ShardPlacementTest, FreshnessIntentBlocksExactlyTheRoutedShard) {
  Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    store::FreshnessTracker tracker;
    const int shards = static_cast<int>(rng.UniformInt(2, 16));
    const Key partition = RandomKey(rng);
    const Key base_key = RandomKey(rng);
    const Timestamp ts = 1000;
    const Timestamp now_ts = 2000;
    const std::uint64_t intent =
        tracker.RegisterIntent("v", base_key, ts, /*session=*/0,
                               /*origin=*/0);
    tracker.ResolvePartitions(intent, {partition});

    const int routed = store::ShardOfBaseKey(base_key, shards);
    for (int shard = 0; shard < shards; ++shard) {
      const Timestamp fresh =
          tracker.FreshAsOfShard("v", partition, shard, shards, now_ts);
      if (shard == routed) {
        EXPECT_EQ(fresh, ts - 1) << "trial " << trial;
      } else {
        EXPECT_EQ(fresh, now_ts) << "trial " << trial << " shard " << shard;
      }
    }
    // Settling the intent releases the routed shard too.
    tracker.MarkApplied(intent);
    EXPECT_EQ(tracker.FreshAsOfShard("v", partition, routed, shards, now_ts),
              now_ts);
  }
}

// Hash quality guard: the router spreads keys over every shard (no shard
// starves), so scatter reads cannot quietly degenerate to one scan.
TEST(ShardPlacementTest, RoutingCoversEveryShard) {
  Rng rng(7);
  for (int shards : {2, 8, store::kMaxViewShards}) {
    std::set<int> hit;
    for (int i = 0;
         i < 200 * shards && static_cast<int>(hit.size()) < shards; ++i) {
      hit.insert(store::ShardOfBaseKey(RandomKey(rng), shards));
    }
    EXPECT_EQ(static_cast<int>(hit.size()), shards);
  }
}

}  // namespace
}  // namespace mvstore

// Directed tests of the Section IV-F read-visibility rules: a view Get must
// never expose a half-initialized live row, must wait (bounded) when a
// promotion is mid-flight, and must resume as soon as the row initializes.
// These tests build the in-between states by hand, directly in the replica
// engines, to pin the exact windows the concurrency discussion describes.

#include <gtest/gtest.h>

#include <string>

#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using storage::Cell;
using storage::Row;
using test::TestCluster;

// Writes `row` into every replica of the view row (view_key, base_key).
void PutViewRowEverywhere(store::Cluster& cluster, const Key& view_key,
                          const Key& base_key, const Row& row) {
  const Key key = store::ComposeViewRowKey(view_key, base_key);
  for (ServerId replica :
       cluster.server(0).ReplicasOf("assigned_to_view", key)) {
    cluster.server(replica).EngineFor("assigned_to_view").ApplyRow(key, row);
  }
}

// A live-and-initialized row, as bootstrap or a finished promotion leaves it.
Row LiveRow(const Key& view_key, const Key& base_key, Timestamp ts,
            const std::string& status) {
  Row row;
  row.Apply(store::kViewBaseKeyColumn, Cell::Live(base_key, ts));
  row.Apply(store::kViewNextColumn, Cell::Live(view_key, ts));
  row.Apply(store::kViewInitColumn, Cell::Live("1", ts));
  row.Apply("status", Cell::Live(status, ts));
  return row;
}

// A mid-promotion row: self Next pointer but no __init yet.
Row UninitializedLiveRow(const Key& view_key, const Key& base_key,
                         Timestamp ts, const std::string& status) {
  Row row;
  row.Apply(store::kViewBaseKeyColumn, Cell::Live(base_key, ts));
  row.Apply(store::kViewNextColumn, Cell::Live(view_key, ts));
  row.Apply("status", Cell::Live(status, ts));
  return row;
}

TEST(ViewReadWindowTest, UninitializedRowIsNeverExposed) {
  TestCluster t;
  PutViewRowEverywhere(t.cluster, "bob", "1",
                       UninitializedLiveRow("bob", "1", 200, "open"));
  auto client = t.cluster.NewClient();

  const SimTime before = t.cluster.Now();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.records.empty());
  // The reader spun waiting for the initialization that never came.
  EXPECT_GT(t.cluster.metrics().view_get_spins, 0u);
  EXPECT_GE(t.cluster.Now() - before, Millis(50));
}

TEST(ViewReadWindowTest, SpinResolvesWhenInitializationLands) {
  TestCluster t;
  PutViewRowEverywhere(t.cluster, "bob", "1",
                       UninitializedLiveRow("bob", "1", 200, "open"));
  // The promotion's final step lands 20 ms from now.
  t.cluster.simulation().After(Millis(20), [&t] {
    Row init;
    init.Apply(store::kViewInitColumn, Cell::Live("1", 200));
    PutViewRowEverywhere(t.cluster, "bob", "1", init);
  });

  auto client = t.cluster.NewClient();
  const SimTime before = t.cluster.Now();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].cells.GetValue("status").value_or(""), "open");
  const SimTime waited = t.cluster.Now() - before;
  EXPECT_GE(waited, Millis(20));
  EXPECT_LT(waited, Millis(64));  // resolved well before the spin budget
  EXPECT_GT(t.cluster.metrics().view_get_spins, 0u);
}

TEST(ViewReadWindowTest, OldLiveRowServedDuringPromotionWindow) {
  // The window between "new row written" and "old row staled": the old row
  // is still the only initialized live row and must be what readers see —
  // under the OLD key; the new key's partition shows nothing yet.
  TestCluster t;
  PutViewRowEverywhere(t.cluster, "alice", "1",
                       LiveRow("alice", "1", 100, "open"));
  PutViewRowEverywhere(t.cluster, "bob", "1",
                       UninitializedLiveRow("bob", "1", 200, "open"));
  auto client = t.cluster.NewClient();

  auto old_key = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "alice"), {.quorum = 3});
  ASSERT_TRUE(old_key.ok());
  ASSERT_EQ(old_key.records.size(), 1u);
  EXPECT_EQ(old_key.records[0].base_key, "1");

  auto new_key = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 3});
  ASSERT_TRUE(new_key.ok());
  EXPECT_TRUE(new_key.records.empty());
}

TEST(ViewReadWindowTest, AfterPromotionCompletesOnlyNewKeyServes) {
  TestCluster t;
  // Finished promotion: alice staled toward bob; bob live + initialized.
  Row stale;
  stale.Apply(store::kViewBaseKeyColumn, Cell::Live("1", 100));
  stale.Apply(store::kViewNextColumn, Cell::Live("bob", 200));
  stale.Apply(store::kViewInitColumn, Cell::Tombstone(200));
  stale.Apply("status", Cell::Live("open", 100));
  PutViewRowEverywhere(t.cluster, "alice", "1", stale);
  PutViewRowEverywhere(t.cluster, "bob", "1", LiveRow("bob", "1", 200, "open"));

  auto client = t.cluster.NewClient();
  auto old_key = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "alice"), {.quorum = 3});
  ASSERT_TRUE(old_key.ok());
  EXPECT_TRUE(old_key.records.empty());
  EXPECT_GT(t.cluster.metrics().stale_rows_filtered, 0u);

  auto new_key = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "bob"), {.quorum = 3});
  ASSERT_TRUE(new_key.ok());
  EXPECT_EQ(new_key.records.size(), 1u);
}

TEST(ViewReadWindowTest, MixedPartitionFiltersPerBaseKey) {
  // One view-key partition holding rows of several base keys in different
  // states: live (served), stale (filtered), uninitialized (spun on, then
  // filtered) — each decided independently.
  TestCluster t;
  PutViewRowEverywhere(t.cluster, "team", "a", LiveRow("team", "a", 100, "s1"));
  Row stale;
  stale.Apply(store::kViewBaseKeyColumn, Cell::Live("b", 100));
  stale.Apply(store::kViewNextColumn, Cell::Live("other", 150));
  PutViewRowEverywhere(t.cluster, "team", "b", stale);
  PutViewRowEverywhere(t.cluster, "team", "c",
                       UninitializedLiveRow("team", "c", 100, "s3"));

  auto client = t.cluster.NewClient();
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "team"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.records.size(), 1u);
  EXPECT_EQ(records.records[0].base_key, "a");
}

TEST(ViewReadWindowTest, SentinelPartitionsUnreachableThroughClientApi) {
  // Deleted-row sentinel rows live under keys clients cannot express:
  // a Get for any ordinary key never scans them, and writing a view-key
  // value with the reserved first byte is rejected outright.
  TestCluster t;
  t.cluster.BootstrapLoadRow("ticket", "1",
                             {{"assigned_to", std::string("alice")}}, 100);
  auto client = t.cluster.NewClient();
  ASSERT_TRUE(client->DeleteSync("ticket", "1", {"assigned_to"},
                                 store::WriteOptions{})
                  .ok());
  t.Quiesce();

  auto bad = client->PutSync(
      "ticket", "2", {{"assigned_to", std::string("\x03sneaky")}},
      store::WriteOptions{});
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);

  // The sentinel row exists internally but no client key reaches it.
  auto records = client->QuerySync(
      store::QuerySpec::View("assigned_to_view", "alice"), {.quorum = 3});
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.records.empty());
}

}  // namespace
}  // namespace mvstore

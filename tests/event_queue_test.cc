// The calendar event queue: must produce exactly the (time, seq) order the
// old global priority queue produced — FIFO within an instant, overflow
// events migrating into the ring as the horizon slides, cursor rewinds when
// a pop's successor schedules into an earlier day — because seeded runs
// replay byte-identically only if the swap is order-invisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace mvstore::sim {
namespace {

SimEvent Event(SimTime t, std::uint64_t seq) {
  return SimEvent{t, seq, [] {}, nullptr};
}

TEST(CalendarQueueTest, EmptyQueueReportsMaxTime) {
  CalendarQueue q(Micros(10), 8);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.MinTime(), kSimTimeMax);
}

TEST(CalendarQueueTest, SameInstantPopsInSeqOrder) {
  CalendarQueue q(Micros(10), 8);
  // Insert out of seq order at one instant; pops must come back FIFO.
  q.Push(Event(Micros(5), 2));
  q.Push(Event(Micros(5), 0));
  q.Push(Event(Micros(5), 1));
  EXPECT_EQ(q.PopMin().seq, 0u);
  EXPECT_EQ(q.PopMin().seq, 1u);
  EXPECT_EQ(q.PopMin().seq, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, OverflowEventsMigrateIntoRing) {
  // Horizon is 10us * 4 buckets = 40us; everything past it starts in the
  // overflow heap and must surface in order as the window slides.
  CalendarQueue q(Micros(10), 4);
  std::vector<SimTime> times = {Micros(2),    Micros(39),   Micros(41),
                                Micros(400),  Micros(4000), Micros(40000),
                                Micros(40001)};
  std::uint64_t seq = 0;
  for (SimTime t : times) q.Push(Event(t, seq++));
  std::vector<SimTime> got;
  while (!q.empty()) {
    EXPECT_EQ(q.MinTime(), times[got.size()]);
    got.push_back(q.PopMin().time);
  }
  EXPECT_EQ(got, times);
}

TEST(CalendarQueueTest, PushBehindCursorRewinds) {
  CalendarQueue q(Micros(10), 8);
  q.Push(Event(Micros(55), 0));
  EXPECT_EQ(q.PopMin().time, Micros(55));  // cursor is now on day 5
  // A consequence of popping at t=55 schedules at t=57, same day...
  q.Push(Event(Micros(57), 1));
  // ...and another at t=56 lands ahead of a later-pushed t=70.
  q.Push(Event(Micros(70), 2));
  q.Push(Event(Micros(56), 3));
  EXPECT_EQ(q.PopMin().time, Micros(56));
  EXPECT_EQ(q.PopMin().time, Micros(57));
  EXPECT_EQ(q.PopMin().time, Micros(70));
}

TEST(CalendarQueueTest, FuzzMatchesReferenceOrder) {
  // Interleaved pushes and pops against a sorted reference model, with
  // monotone non-decreasing push times (the simulator never schedules into
  // the past) spanning many calendar laps and the overflow heap.
  Rng rng(7);
  CalendarQueue q(Micros(16), 8);
  std::vector<std::pair<SimTime, std::uint64_t>> model;
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (int round = 0; round < 20000; ++round) {
    const bool push = model.empty() || rng.UniformInt(0, 99) < 55;
    if (push) {
      // Mostly near-future, occasionally far past the horizon (timeouts).
      const SimTime delay = rng.UniformInt(0, 99) < 90
                                ? Micros(rng.UniformInt(0, 200))
                                : Micros(rng.UniformInt(1000, 100000));
      q.Push(Event(now + delay, seq));
      model.emplace_back(now + delay, seq);
      ++seq;
    } else {
      auto min_it = std::min_element(model.begin(), model.end());
      const SimEvent popped = q.PopMin();
      EXPECT_EQ(popped.time, min_it->first);
      EXPECT_EQ(popped.seq, min_it->second);
      now = popped.time;
      model.erase(min_it);
    }
    EXPECT_EQ(q.size(), model.size());
  }
  while (!model.empty()) {
    auto min_it = std::min_element(model.begin(), model.end());
    EXPECT_EQ(q.MinTime(), min_it->first);
    const SimEvent popped = q.PopMin();
    EXPECT_EQ(popped.seq, min_it->second);
    model.erase(min_it);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueSimulationTest, TinyRingPreservesExecutionOrder) {
  // The same schedule must execute identically under a pathologically small
  // ring (everything overflows) and the default geometry.
  auto run = [](SimulationOptions options) {
    Simulation sim(options);
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.At(Micros((i * 7919) % 1000), [&order, i] { order.push_back(i); });
    }
    sim.At(Micros(500000), [&order] { order.push_back(-1); });
    sim.Run();
    return order;
  };
  SimulationOptions tiny;
  tiny.bucket_width = Micros(1);
  tiny.num_buckets = 2;
  EXPECT_EQ(run(tiny), run(SimulationOptions()));
}

TEST(CalendarQueueSimulationTest, CancelledOverflowEventStaysDead) {
  SimulationOptions tiny;
  tiny.bucket_width = Micros(2);
  tiny.num_buckets = 2;
  Simulation sim(tiny);
  bool ran = false;
  // Far past the horizon: the handle must keep working after the event
  // migrates from the overflow heap into the ring.
  EventHandle handle = sim.AfterCancelable(Micros(10000), [&ran] { ran = true; });
  sim.After(Micros(5000), [&handle] { handle.Cancel(); });
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(CalendarQueueSimulationTest, RunUntilAdvancesPastIdleDays) {
  SimulationOptions tiny;
  tiny.bucket_width = Micros(4);
  tiny.num_buckets = 4;
  Simulation sim(tiny);
  int fired = 0;
  sim.At(Micros(3), [&fired] { ++fired; });
  sim.At(Micros(90000), [&fired] { ++fired; });
  sim.RunUntil(Micros(50000));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Micros(50000));
  // Scheduling "now" after the idle fast-forward still works (the cursor
  // rewound from the far-future day it peeked at).
  sim.At(Micros(50001), [&fired] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 3);
}

}  // namespace
}  // namespace mvstore::sim

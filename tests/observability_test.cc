// Observability: causal traces, the metrics registry, and their determinism.
//
// The tentpole guarantee under test: a Put followed by a ViewGet on the same
// key reconstructs as ONE connected causal timeline spanning client ->
// coordinator -> replicas -> view propagation -> view read; and same-seed
// runs export byte-identical metrics JSON.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "store/client.h"
#include "store/cluster.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using store::ReadOptions;
using store::QuerySpec;
using store::WriteOptions;
using test::TestCluster;

bool HasSpanNamed(const std::vector<TraceEvent>& events,
                  const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return true;
  }
  return false;
}

bool HasSpanPrefixed(const std::vector<TraceEvent>& events,
                     const std::string& prefix) {
  for (const TraceEvent& e : events) {
    if (e.name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// --- the acceptance-criterion trace: Put then ViewGet, one span tree ---

TEST(TraceReconstruction, PutThenViewGetFormsOneConnectedTrace) {
  TestCluster tc;
  auto client = tc.cluster.NewClient(0);
  Tracer& tracer = tc.cluster.tracer();

  // A caller-minted root stitches both operations into one trace.
  TraceContext root =
      tracer.StartTrace("test.put_then_view_get", /*where=*/-1,
                        tc.cluster.Now());
  ASSERT_TRUE(static_cast<bool>(root));

  WriteOptions put_options;
  put_options.trace = root;
  store::WriteResult put = client->PutSync(
      "ticket", "t1", {{"assigned_to", "alice"}, {"status", "open"}},
      put_options);
  ASSERT_TRUE(put.ok()) << put.status;
  EXPECT_EQ(put.trace, root.trace);

  tc.Quiesce();  // let the view propagation run to completion

  ReadOptions get_options;
  get_options.columns = {"status"};
  get_options.trace = root;
  store::ReadResult got =
      client->QuerySync(
          QuerySpec::View("assigned_to_view", "alice"), get_options);
  ASSERT_TRUE(got.ok()) << got.status;
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.trace, root.trace);

  tracer.EndSpan(root, tc.cluster.Now());

  // One connected span tree...
  EXPECT_TRUE(tracer.IsConnected(root.trace));
  std::vector<TraceEvent> events = tracer.Collect(root.trace);

  // ...spanning the client ops, the client->coordinator and replica network
  // hops, coordinator/replica service, and the propagation task.
  EXPECT_TRUE(HasSpanNamed(events, "client.put"));
  EXPECT_TRUE(HasSpanNamed(events, "client.view_get"));
  EXPECT_TRUE(HasSpanPrefixed(events, "net "));
  EXPECT_TRUE(HasSpanNamed(events, "svc"));
  EXPECT_TRUE(HasSpanNamed(events, "view.propagate assigned_to_view"));

  // Spans executed on at least two distinct places (client is -1; replica
  // work runs at server endpoints).
  bool saw_client = false;
  bool saw_server = false;
  for (const TraceEvent& e : events) {
    if (e.where < 0) saw_client = true;
    if (e.where >= 0) saw_server = true;
  }
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_server);

  // The dump is non-empty, parseable-looking JSON carrying the trace id.
  const std::string dump = tracer.DumpJson(root.trace);
  EXPECT_NE(dump.find("\"trace\""), std::string::npos);
  EXPECT_NE(dump.find("client.put"), std::string::npos);
}

TEST(TraceReconstruction, EachUntracedOpMintsItsOwnRootTrace) {
  TestCluster tc;
  auto client = tc.cluster.NewClient(0);

  store::WriteResult put = client->PutSync(
      "ticket", "t1", {{"assigned_to", "bob"}, {"status", "open"}},
      WriteOptions{});
  ASSERT_TRUE(put.ok());
  EXPECT_NE(put.trace, 0u);
  EXPECT_TRUE(tc.cluster.tracer().IsConnected(put.trace));

  store::ReadResult got = client->GetSync("ticket", "t1", ReadOptions{});
  ASSERT_TRUE(got.ok());
  EXPECT_NE(got.trace, 0u);
  EXPECT_NE(got.trace, put.trace);
  EXPECT_TRUE(tc.cluster.tracer().IsConnected(got.trace));
}

TEST(TraceReconstruction, ZeroCapacityDisablesTracing) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.trace_capacity = 0;
  TestCluster tc(config);
  auto client = tc.cluster.NewClient(0);

  store::WriteResult put = client->PutSync(
      "ticket", "t1", {{"assigned_to", "carol"}, {"status", "open"}},
      WriteOptions{});
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.trace, 0u);
  EXPECT_EQ(tc.cluster.tracer().recorded(), 0u);
}

TEST(TraceReconstruction, DeprecatedSignaturesStillTraceImplicitly) {
  TestCluster tc;
  auto client = tc.cluster.NewClient(0);
  ASSERT_TRUE(client
                  ->PutSync("ticket", "t9",
                            {{"assigned_to", "dan"}, {"status", "open"}}, store::WriteOptions{})
                  .ok());
  EXPECT_GT(tc.cluster.tracer().recorded(), 0u);
}

// --- ring buffer bounds ---

TEST(TracerRing, EvictsOldestBeyondCapacity) {
  Tracer tracer(/*capacity=*/4);
  TraceContext first = tracer.StartTrace("first", 0, 1);
  tracer.EndSpan(first, 2);
  std::vector<TraceContext> rest;
  for (int i = 0; i < 8; ++i) {
    TraceContext t = tracer.StartTrace("t" + std::to_string(i), 0, 10 + i);
    tracer.EndSpan(t, 11 + i);
    rest.push_back(t);
  }
  EXPECT_EQ(tracer.recorded(), 9u);
  EXPECT_EQ(tracer.evicted(), 5u);
  // The first trace fell out of the ring; the newest survives intact.
  EXPECT_TRUE(tracer.Collect(first.trace).empty());
  EXPECT_FALSE(tracer.IsConnected(first.trace));
  EXPECT_EQ(tracer.Collect(rest.back().trace).size(), 1u);
  EXPECT_TRUE(tracer.IsConnected(rest.back().trace));
}

TEST(TracerRing, AnnotationsAndOrphansAreTolerated) {
  Tracer tracer(8);
  TraceContext root = tracer.StartTrace("root", 0, 1);
  TraceContext child = tracer.StartSpan(root, "child", 1, 2);
  tracer.Annotate(child, "one");
  tracer.Annotate(child, "two");
  tracer.EndSpan(child, 3);
  tracer.EndSpan(root, 4);
  std::vector<TraceEvent> events = tracer.Collect(root.trace);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].note, "one; two");
  // A child whose parent span was never recorded breaks connectivity.
  TraceContext fake{root.trace, 99999};
  tracer.StartSpan(fake, "orphan", 2, 5);
  EXPECT_FALSE(tracer.IsConnected(root.trace));
}

// --- metrics registry ---

TEST(MetricsRegistry, SnapshotAndDelta) {
  MetricsRegistry registry;
  Counter& hits = registry.RegisterCounter("hits");
  Histogram& lat = registry.RegisterHistogram("lat");
  hits += 3;
  lat.Record(10);
  lat.Record(20);

  MetricsSnapshot before = registry.Snapshot();
  EXPECT_EQ(before.counters.at("hits"), 3u);
  EXPECT_EQ(before.histograms.at("lat").count, 2u);
  EXPECT_DOUBLE_EQ(before.histograms.at("lat").sum, 30.0);

  ++hits;
  hits++;
  lat.Record(40);
  MetricsSnapshot after = registry.Snapshot();

  MetricsSnapshot delta = Delta(before, after);
  EXPECT_EQ(delta.counters.at("hits"), 2u);
  EXPECT_EQ(delta.histograms.at("lat").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("lat").sum, 40.0);

  // Re-registering a name returns the same instrument.
  EXPECT_EQ(&registry.RegisterCounter("hits"), &hits);
  EXPECT_EQ(registry.FindCounter("hits")->value(), 5u);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);

  registry.Reset();
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(lat.count(), 0u);
}

TEST(MetricsRegistry, ClusterCountersLiveInTheRegistry) {
  TestCluster tc;
  auto client = tc.cluster.NewClient(0);
  ASSERT_TRUE(client
                  ->PutSync("ticket", "t1",
                            {{"assigned_to", "erin"}, {"status", "open"}},
                            WriteOptions{})
                  .ok());
  const store::Metrics& m = tc.cluster.metrics();
  EXPECT_EQ(m.registry.FindCounter("client_puts")->value(),
            m.client_puts.value());
  EXPECT_GE(m.client_puts.value(), 1u);
  MetricsSnapshot snap = m.Snapshot();
  EXPECT_EQ(snap.counters.at("client_puts"), m.client_puts.value());
  EXPECT_GT(snap.counters.size(), 30u);
}

TEST(Metrics, StageHistogramsPopulate) {
  TestCluster tc;
  auto client = tc.cluster.NewClient(0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client
                    ->PutSync("ticket", "t" + std::to_string(i),
                              {{"assigned_to", "kim"}, {"status", "open"}},
                              WriteOptions{})
                    .ok());
  }
  tc.Quiesce();
  const store::Metrics& m = tc.cluster.metrics();
  EXPECT_GT(m.stage_queue_wait.count(), 0u);
  EXPECT_GT(m.stage_service.count(), 0u);
  EXPECT_GT(m.stage_network.count(), 0u);
  EXPECT_GT(m.put_latency.count(), 0u);
}

TEST(Metrics, TimeSeriesSamplesOnSimulatedClock) {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.metrics_sample_interval = Millis(10);
  TestCluster tc(config);
  auto client = tc.cluster.NewClient(0);
  ASSERT_TRUE(client
                  ->PutSync("ticket", "t1",
                            {{"assigned_to", "lee"}, {"status", "open"}},
                            WriteOptions{})
                  .ok());
  tc.cluster.RunFor(Millis(100));
  const auto& points = tc.cluster.metrics().time_series.points();
  ASSERT_GE(points.size(), 5u);
  // Some interval saw the put traffic.
  bool saw_put = false;
  for (const auto& point : points) {
    auto it = point.delta.counters.find("client_puts");
    if (it != point.delta.counters.end() && it->second > 0) saw_put = true;
  }
  EXPECT_TRUE(saw_put);
  EXPECT_FALSE(tc.cluster.metrics().time_series.ToJson().empty());
}

// --- determinism: same seed, byte-identical exports ---

struct RunArtifacts {
  std::string metrics_json;
  std::string time_series_json;
  std::string trace_json;
};

RunArtifacts RunSeededWorkload() {
  store::ClusterConfig config = test::DefaultTestConfig();
  config.metrics_sample_interval = Millis(20);
  TestCluster tc(config);
  auto client = tc.cluster.NewClient(0);
  TraceId last_trace = 0;
  for (int i = 0; i < 10; ++i) {
    store::WriteResult put = client->PutSync(
        "ticket", "t" + std::to_string(i % 4),
        {{"assigned_to", "user" + std::to_string(i % 3)},
         {"status", i % 2 == 0 ? "open" : "closed"}},
        WriteOptions{});
    MVSTORE_CHECK(put.ok());
    last_trace = put.trace;
  }
  tc.Quiesce();
  for (int i = 0; i < 3; ++i) {
    store::ReadResult got = client->QuerySync(
        QuerySpec::View("assigned_to_view", "user" + std::to_string(i)),
        ReadOptions{});
    MVSTORE_CHECK(got.ok());
  }
  return RunArtifacts{tc.cluster.metrics().ToJson(),
                      tc.cluster.metrics().time_series.ToJson(),
                      tc.cluster.tracer().DumpJson(last_trace)};
}

TEST(Determinism, SameSeedYieldsByteIdenticalExports) {
  RunArtifacts a = RunSeededWorkload();
  RunArtifacts b = RunSeededWorkload();
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.time_series_json, b.time_series_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  // Sanity: the export is substantive, not trivially empty.
  EXPECT_GT(a.metrics_json.size(), 100u);
  EXPECT_NE(a.trace_json.find("client.put"), std::string::npos);
}

}  // namespace
}  // namespace mvstore

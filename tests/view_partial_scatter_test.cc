// Partial-shard degradation of scatter-gather reads (ISSUE 10).
//
// Pre-ISSUE-10, CoordinateViewScatterScan failed the WHOLE query when any
// one sub-shard's scan missed its quorum — an eventual-consistency read of
// a 128-shard partition went dark because one shard's replicas were down.
// Now kEventual reads serve the merge of the reachable shards, clamp the
// claimed freshness to kNullTimestamp (nothing can honestly be promised
// about the missing shards), and count the degradation; stronger reads
// keep the all-or-nothing contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "store/client.h"
#include "store/codec.h"
#include "tests/test_util.h"

namespace mvstore {
namespace {

using store::QuerySpec;
using store::ReadConsistency;
using store::WriteOptions;
using test::TestCluster;

constexpr int kShards = 8;

struct PartialFixture {
  PartialFixture()
      : t([] {
          store::ClusterConfig config = test::DefaultTestConfig();
          config.rpc_timeout = Millis(50);
          return config;
        }(),
          test::TicketSchema(/*with_index=*/false, /*with_view=*/true,
                             kShards)) {}

  /// Loads `rows` tickets for view key "hot" and quiesces.
  void Load(int rows) {
    auto client = t.cluster.NewClient();
    for (int k = 0; k < rows; ++k) {
      keys.push_back("t" + std::to_string(k));
      EXPECT_TRUE(client
                      ->PutSync("ticket", keys.back(),
                                {{"assigned_to", std::string("hot")},
                                 {"status", std::string("open")}},
                                WriteOptions{})
                      .ok());
    }
    t.Quiesce();
  }

  /// Picks a server whose death quorum-kills SOME sub-shards of "hot" but
  /// not all of them (with RF=3 over 4 servers each prefix excludes exactly
  /// one server, so such a server exists unless every prefix excludes the
  /// same one). Returns -1 if the layout degenerated.
  ServerId VictimServer() {
    std::vector<std::set<ServerId>> replica_sets;
    for (int shard = 0; shard < kShards; ++shard) {
      const Key prefix =
          store::ShardedViewPartitionPrefix("hot", shard, kShards);
      const auto& replicas =
          t.cluster.server(0).ReplicasOf("assigned_to_view", prefix);
      replica_sets.emplace_back(replicas.begin(), replicas.end());
    }
    for (ServerId s = 0; s < t.cluster.num_servers(); ++s) {
      int in = 0;
      for (const auto& set : replica_sets) in += set.count(s) ? 1 : 0;
      if (in > 0 && in < kShards) {
        for (int shard = 0; shard < kShards; ++shard) {
          if (replica_sets[static_cast<std::size_t>(shard)].count(s)) {
            dead_shards.insert(shard);
          }
        }
        return s;
      }
    }
    return -1;
  }

  TestCluster t;
  std::vector<Key> keys;
  std::set<int> dead_shards;  ///< shards quorum-killed by the victim crash
};

TEST(ViewPartialScatterTest, EventualReadServesReachableShards) {
  PartialFixture f;
  f.Load(32);
  const ServerId victim = f.VictimServer();
  ASSERT_GE(victim, 0) << "degenerate replica layout";
  ASSERT_FALSE(f.dead_shards.empty());
  ASSERT_LT(static_cast<int>(f.dead_shards.size()), kShards);
  f.t.cluster.CrashServer(victim);

  auto client = f.t.cluster.NewClient(
      victim == 0 ? ServerId{1} : ServerId{0});
  client->set_request_timeout(Seconds(2));
  // Read quorum 3 = every replica: any shard touching the dead server
  // cannot assemble its scan quorum.
  auto result = client->QuerySync(QuerySpec::View("assigned_to_view", "hot"),
                                  {.quorum = 3});
  ASSERT_TRUE(result.ok()) << result.status;

  // Exactly the rows whose sub-shard survived are served.
  std::set<Key> want;
  for (const Key& key : f.keys) {
    if (f.dead_shards.count(store::ShardOfBaseKey(key, kShards)) == 0) {
      want.insert(key);
    }
  }
  std::set<Key> got;
  for (const store::ViewRecord& r : result.records) got.insert(r.base_key);
  EXPECT_EQ(got, want);
  EXPECT_FALSE(got.empty());
  EXPECT_LT(got.size(), f.keys.size());

  // The degradation is visible: clamped freshness claim plus the counter.
  EXPECT_EQ(result.freshness, kNullTimestamp);
  EXPECT_GT(f.t.cluster.metrics().view_scatter_partial, 0u);
}

TEST(ViewPartialScatterTest, StrongerReadsKeepAllOrNothing) {
  PartialFixture f;
  f.Load(32);
  const ServerId victim = f.VictimServer();
  ASSERT_GE(victim, 0) << "degenerate replica layout";
  f.t.cluster.CrashServer(victim);

  auto client = f.t.cluster.NewClient(
      victim == 0 ? ServerId{1} : ServerId{0});
  client->set_request_timeout(Seconds(2));
  // Read-your-writes promised to reflect the session's writes wherever they
  // hashed — a merge missing sub-shards could silently drop them, so the
  // query must fail outright instead of degrading.
  auto result = client->QuerySync(
      QuerySpec::View("assigned_to_view", "hot"),
      {.quorum = 3, .consistency = ReadConsistency::kReadYourWrites});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(f.t.cluster.metrics().view_scatter_partial, 0u);
}

TEST(ViewPartialScatterTest, RecoveryRestoresFullCoverageAndFreshness) {
  PartialFixture f;
  f.Load(16);
  const ServerId victim = f.VictimServer();
  ASSERT_GE(victim, 0) << "degenerate replica layout";
  f.t.cluster.CrashServer(victim);
  auto client = f.t.cluster.NewClient(
      victim == 0 ? ServerId{1} : ServerId{0});
  client->set_request_timeout(Seconds(2));
  auto degraded = client->QuerySync(
      QuerySpec::View("assigned_to_view", "hot"), {.quorum = 3});
  ASSERT_TRUE(degraded.ok());
  ASSERT_LT(degraded.records.size(), f.keys.size());

  f.t.cluster.RestartServer(victim);
  f.t.cluster.RunFor(Seconds(1));
  auto healed = client->QuerySync(QuerySpec::View("assigned_to_view", "hot"),
                                  {.quorum = 3});
  ASSERT_TRUE(healed.ok()) << healed.status;
  EXPECT_EQ(healed.records.size(), f.keys.size());
  EXPECT_GT(healed.freshness, kNullTimestamp);
}

}  // namespace
}  // namespace mvstore
